//! Equivalence property suite for the `slap-opt` pass pipeline.
//!
//! The pipeline's contract (DESIGN.md §15) is that passes only ever
//! restructure — never re-function — the subject graph. This suite
//! pins that on the whole catalog: every pass alone and the full
//! pipeline preserve 64-bit parallel-sim equivalence across random
//! input seeds, the pipeline is idempotent (a second run is a
//! structural no-op) and thread-count-invariant, and mapping the
//! optimized graph on both targets still implements the *raw* circuit.

use slap_aig::sim::random_equiv_check;
use slap_aig::Aig;
use slap_cell::asap7_mini;
use slap_circuits::{table2_benchmarks, Scale};
use slap_cuts::CutConfig;
use slap_map::{LutMapper, MapOptions, MapPolicy, Mapper};
use slap_opt::{PassPipeline, FULL_SPEC};

/// Random-sim seeds; each drives `rounds` × 64 parallel patterns.
const SEEDS: [u64; 3] = [1, 0xDEAD_BEEF, 0x5EED_5EED];

fn pipeline(spec: &str) -> PassPipeline {
    PassPipeline::parse(spec).expect("valid spec in test")
}

/// Content digest of an AIG's ASCII AIGER serialization — structural
/// identity, not just functional equivalence.
fn aiger_hash(aig: &Aig) -> u64 {
    let mut bytes = Vec::new();
    slap_aig::aiger::write_ascii(aig, &mut bytes).expect("serialize AIG");
    slap_obs::content_hash(&bytes)
}

#[test]
fn every_pass_alone_and_the_full_pipeline_preserve_equivalence() {
    let benches = table2_benchmarks();
    assert_eq!(benches.len(), 14, "the whole catalog is covered");
    for bench in &benches {
        let raw = bench.build(Scale::Quick);
        for spec in ["strash", "fold", "sweep", "balance", FULL_SPEC] {
            let (out, report) = pipeline(spec).optimize(raw.clone());
            assert!(
                report.ands_out <= report.ands_in,
                "{} / {spec}: a pass grew the graph ({} -> {})",
                bench.name,
                report.ands_in,
                report.ands_out
            );
            for &seed in &SEEDS {
                assert!(
                    random_equiv_check(&raw, &out, 4, seed),
                    "{} / {spec}: sim equivalence broke under seed {seed:#x}",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn full_pipeline_is_idempotent_and_thread_invariant() {
    for bench in table2_benchmarks() {
        let raw = bench.build(Scale::Quick);
        // Thread invariance: the pipeline must produce the same
        // *structure* (not merely the same function) no matter the
        // worker-pool size a host process happens to run with.
        let mut hashes = Vec::new();
        for threads in [1usize, 2, 8] {
            slap_par::set_threads(threads);
            let (out, _) = pipeline(FULL_SPEC).optimize(raw.clone());
            hashes.push(aiger_hash(&out));
        }
        slap_par::set_threads(1);
        assert!(
            hashes.windows(2).all(|w| w[0] == w[1]),
            "{}: pipeline output varies with the thread count",
            bench.name
        );

        // Idempotence: the optimized graph is a fixpoint, so a second
        // run must reproduce it bit-for-bit (AIGER hash, which also
        // pins PI/PO order).
        let (once, _) = pipeline(FULL_SPEC).optimize(raw);
        let once_hash = aiger_hash(&once);
        let (twice, _) = pipeline(FULL_SPEC).optimize(once);
        assert_eq!(
            once_hash,
            aiger_hash(&twice),
            "{}: running the pipeline twice was not a no-op",
            bench.name
        );
    }
}

#[test]
fn optimized_mappings_verify_against_the_raw_circuit_on_both_targets() {
    let lib = asap7_mini();
    let asic = Mapper::new(&lib, MapOptions::default());
    let lut = LutMapper::lut(6, MapOptions::default());
    for bench in table2_benchmarks() {
        let raw = bench.build(Scale::Quick);
        let (opt, _) = pipeline(FULL_SPEC).optimize(raw.clone());
        let nl_asic = asic
            .map_policy(&opt, &CutConfig::default(), MapPolicy::Default)
            .expect("asic maps");
        assert!(
            nl_asic.verify_against(&raw, 4, 7),
            "{}: ASIC mapping of the optimized graph diverged from the raw circuit",
            bench.name
        );
        let nl_lut = lut
            .map_policy(&opt, &CutConfig::with_k(6), MapPolicy::Default)
            .expect("lut maps");
        assert!(
            nl_lut.verify_against(&raw, 4, 7),
            "{}: lut:6 mapping of the optimized graph diverged from the raw circuit",
            bench.name
        );
    }
}
