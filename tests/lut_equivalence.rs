//! LUT-target equivalence suite: the k-LUT mapping path must satisfy the
//! same simulation-equivalence and determinism contracts (DESIGN.md §8,
//! §9, §12) the ASIC path is held to.
//!
//! For every catalog circuit the 6-LUT mapper is run cold (one-shot) and
//! warm (through a cached [`MapSession`], first and second map) at 1, 2,
//! and 8 worker threads. Every variant must
//!
//! * simulate identically to the source AIG (`verify_against` over the
//!   LUT instances' truth tables);
//! * reproduce the 1-thread cold netlist bit-for-bit — instances, PO
//!   sources, cover cuts, QoR floats;
//! * obey the unit cost model: area = LUT count, delay = logic depth in
//!   whole levels, STA delay = DP delay.

use slap_circuits::{table2_benchmarks, Scale};
use slap_cuts::CutConfig;
use slap_map::{LutMapper, MapOptions, MappedNetlist};

/// Serializes tests that mutate the process-global worker count (same
/// pattern as the golden ASIC suite — the two binaries don't share the
/// lock, but tests within this binary must not race each other).
static THREAD_AXIS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const LUT_K: usize = 6;

fn lut_mapper() -> LutMapper {
    LutMapper::lut(LUT_K, MapOptions::default())
}

fn cut_config() -> CutConfig {
    CutConfig::with_k(LUT_K)
}

/// Everything a re-mapped netlist must reproduce bit-for-bit from the
/// baseline (cache-traffic counters excluded, as in the ASIC suite).
fn assert_same_mapping(got: &MappedNetlist, base: &MappedNetlist, label: &str) {
    assert_eq!(got.instances(), base.instances(), "{label}: instances");
    assert_eq!(got.pos(), base.pos(), "{label}: po sources");
    assert_eq!(got.cover_cuts(), base.cover_cuts(), "{label}: cover cuts");
    assert_eq!(got.area().to_bits(), base.area().to_bits(), "{label}: area");
    assert_eq!(
        got.delay().to_bits(),
        base.delay().to_bits(),
        "{label}: delay"
    );
    assert_eq!(
        got.stats().dp_delay.to_bits(),
        base.stats().dp_delay.to_bits(),
        "{label}: dp delay"
    );
    assert_eq!(
        got.stats().match_stats.without_cache_counters(),
        base.stats().match_stats.without_cache_counters(),
        "{label}: match stats"
    );
}

/// The LUT cost-model invariants: unit area per LUT (so area = instance
/// count), unit level delay (so delays are whole numbers and the
/// load-aware STA agrees with the DP's unit-load model), and no instance
/// wider than k inputs.
fn assert_lut_cost_model(nl: &MappedNetlist, label: &str) {
    assert_eq!(
        nl.area() as usize,
        nl.instances().len(),
        "{label}: area must equal the LUT count"
    );
    assert_eq!(
        nl.delay(),
        nl.delay().trunc(),
        "{label}: LUT delay must be a whole level count"
    );
    assert_eq!(
        nl.delay().to_bits(),
        nl.stats().dp_delay.to_bits(),
        "{label}: unit-load STA must equal the DP delay"
    );
    for inst in nl.instances() {
        let tt = inst.lut_tt().expect("LUT netlists hold only LUT instances");
        assert!(inst.inputs.len() <= LUT_K, "{label}: LUT wider than k");
        assert_eq!(
            tt.num_vars(),
            inst.inputs.len(),
            "{label}: truth table width must match the input count"
        );
    }
}

/// The headline contract: all 14 catalog circuits, cold and warm cache,
/// 1/2/8 worker threads — every LUT netlist simulates identically to its
/// AIG and reproduces the 1-thread cold map bit-for-bit.
#[test]
fn lut_maps_verify_and_are_thread_and_cache_invariant() {
    let _guard = THREAD_AXIS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = slap_par::threads();
    let mapper = lut_mapper();
    let config = cut_config();
    for bench in table2_benchmarks() {
        let aig = bench.build(Scale::Quick);
        slap_par::set_threads(1);
        let cold = mapper.map_default(&aig, &config).expect("cold maps");
        assert!(
            cold.verify_against(&aig, 8, 7),
            "{}: cold LUT netlist not equivalent to the AIG",
            bench.name
        );
        assert_lut_cost_model(&cold, bench.name);

        // Warm sessions replay from the function cache; first (filling)
        // and second (replaying) maps must both equal the cold map.
        let mut session = mapper.session_cached(&aig, true);
        let warm1 = session.map_default(&config).expect("warm maps");
        let warm2 = session.map_default(&config).expect("warm maps");
        assert_same_mapping(&warm1, &cold, &format!("{}/warm-first", bench.name));
        assert_same_mapping(&warm2, &cold, &format!("{}/warm-second", bench.name));
        assert!(
            warm2.verify_against(&aig, 8, 7),
            "{}: warm LUT netlist not equivalent to the AIG",
            bench.name
        );

        for t in [2usize, 8] {
            slap_par::set_threads(t);
            let cold_t = mapper.map_default(&aig, &config).expect("cold maps");
            assert_same_mapping(&cold_t, &cold, &format!("{}/cold/t={t}", bench.name));
            let mut session = mapper.session_cached(&aig, true);
            let warm_t = session.map_default(&config).expect("warm maps");
            assert_same_mapping(&warm_t, &cold, &format!("{}/warm/t={t}", bench.name));
        }
    }
    slap_par::set_threads(prev);
}

/// The shuffle-policy axis (the SLAP datagen workhorse) on a subset of
/// circuits to bound runtime: shuffled LUT maps verify and stay
/// thread-count invariant, warm or cold.
#[test]
fn shuffled_lut_maps_verify_and_stay_invariant() {
    let _guard = THREAD_AXIS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = slap_par::threads();
    let mapper = lut_mapper();
    let config = cut_config();
    for bench in &table2_benchmarks()[..3] {
        let aig = bench.build(Scale::Quick);
        for (seed, keep) in [(7u64, 8usize), (3, 4)] {
            slap_par::set_threads(1);
            let cold = mapper
                .map_shuffled(&aig, &config, seed, keep)
                .expect("cold maps");
            assert!(
                cold.verify_against(&aig, 8, seed),
                "{}/shuffle-{seed}-{keep}: not equivalent",
                bench.name
            );
            assert_lut_cost_model(&cold, bench.name);
            for t in [2usize, 8] {
                slap_par::set_threads(t);
                let mut session = mapper.session_cached(&aig, true);
                let warm = session
                    .map_shuffled(&config, seed, keep)
                    .expect("warm maps");
                assert_same_mapping(
                    &warm,
                    &cold,
                    &format!("{}/shuffle-{seed}-{keep}/t={t}", bench.name),
                );
            }
        }
    }
    slap_par::set_threads(prev);
}
