//! Library code must not swallow invariants behind bare `.unwrap()`:
//! fallible paths return errors, and the remaining panics are `expect`s
//! whose message names the violated invariant. This test walks every
//! crate's `src/` tree and fails on `.unwrap()` outside binaries, test
//! modules, and doc comments (doc examples may unwrap for brevity).

use std::path::{Path, PathBuf};

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            // Binaries may panic on bad CLI input; that is their job.
            if path.file_name().map(|n| n == "bin").unwrap_or(false) {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
}

#[test]
fn library_code_does_not_unwrap() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    rust_sources(&root.join("src"), &mut files);
    for entry in std::fs::read_dir(root.join("crates")).expect("crates dir") {
        let dir = entry.expect("dir entry").path().join("src");
        if dir.is_dir() {
            rust_sources(&dir, &mut files);
        }
    }
    assert!(
        files.len() > 20,
        "walker found too few files ({})",
        files.len()
    );

    let mut offenders = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).expect("readable source file");
        for (lineno, line) in text.lines().enumerate() {
            let trimmed = line.trim_start();
            // Everything from the first test-module marker on is test code,
            // which may unwrap freely.
            if trimmed.starts_with("#[cfg(test)]") {
                break;
            }
            if trimmed.starts_with("//") {
                continue; // comments and doc examples
            }
            if trimmed.contains(".unwrap()") {
                offenders.push(format!("{}:{}: {}", file.display(), lineno + 1, trimmed));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "bare .unwrap() in library code (return an error or use an \
         invariant-naming expect):\n{}",
        offenders.join("\n")
    );
}
