//! Randomized integration tests: random AIGs through the whole mapping
//! stack must always produce functionally equivalent netlists.
//!
//! Driven by the workspace's own deterministic [`Rng64`] instead of an
//! external property-testing crate (workspace policy: zero external
//! dependencies). Every run replays the same cases from a fixed seed.

use slap::aig::aiger::{read_aiger, write_binary};
use slap::aig::sim::random_equiv_check;
use slap::aig::{Aig, Lit, Rng64};
use slap::cell::asap7_mini;
use slap::cuts::CutConfig;
use slap::map::{MapOptions, Mapper};

/// Builds a random DAG: each step ANDs two previously created literals
/// (with random complementation) and the final few literals become POs.
fn build_random_aig(num_pis: usize, steps: &[(usize, usize, bool, bool)]) -> Aig {
    let mut aig = Aig::new();
    let mut lits = aig.add_pis(num_pis);
    for &(i, j, ci, cj) in steps {
        let a = lits[i % lits.len()].xor_complement(ci);
        let b = lits[j % lits.len()].xor_complement(cj);
        let f = aig.and(a, b);
        lits.push(f);
    }
    let n = lits.len();
    for k in 0..3.min(n) {
        let l = lits[n - 1 - k];
        aig.add_po(if k % 2 == 0 { l } else { !l });
    }
    aig
}

fn steps(rng: &mut Rng64) -> Vec<(usize, usize, bool, bool)> {
    let len = 1 + rng.index(59);
    (0..len)
        .map(|_| (rng.index(200), rng.index(200), rng.bool(), rng.bool()))
        .collect()
}

#[test]
fn default_mapping_is_always_equivalent() {
    let mut rng = Rng64::seed_from(0x3A9_0001);
    for _ in 0..24 {
        let aig = build_random_aig(5, &steps(&mut rng));
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        assert!(nl.verify_against(&aig, 8, 1));
    }
}

#[test]
fn shuffled_mapping_is_always_equivalent() {
    let mut rng = Rng64::seed_from(0x3A9_0002);
    for _ in 0..24 {
        let aig = build_random_aig(5, &steps(&mut rng));
        let seed = rng.below(1000);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_shuffled(&aig, &CutConfig::default(), seed, 3)
            .expect("maps");
        assert!(nl.verify_against(&aig, 8, 2));
    }
}

#[test]
fn delay_only_area_recovery_relation() {
    let mut rng = Rng64::seed_from(0x3A9_0003);
    for _ in 0..24 {
        let aig = build_random_aig(5, &steps(&mut rng));
        let lib = asap7_mini();
        let plain = Mapper::new(&lib, MapOptions::delay_only());
        let recovered = Mapper::new(&lib, MapOptions::default());
        let cfg = CutConfig::default();
        let a = plain.map_default(&aig, &cfg).expect("maps");
        let b = recovered.map_default(&aig, &cfg).expect("maps");
        // Area recovery never increases area and never breaks function.
        assert!(b.area() <= a.area() + 1e-3);
        assert!(b.verify_against(&aig, 4, 3));
    }
}

#[test]
fn aiger_binary_round_trip() {
    let mut rng = Rng64::seed_from(0x3A9_0004);
    for _ in 0..24 {
        let aig = build_random_aig(5, &steps(&mut rng));
        let mut buf = Vec::new();
        write_binary(&aig, &mut buf).expect("write");
        let back = read_aiger(&buf[..]).expect("parse");
        assert_eq!(back.num_pis(), aig.num_pis());
        assert_eq!(back.num_pos(), aig.num_pos());
        assert!(random_equiv_check(&aig, &back, 8, 4));
    }
}

#[test]
fn k_sweep_mappings_stay_equivalent() {
    let mut rng = Rng64::seed_from(0x3A9_0005);
    for _ in 0..24 {
        let aig = build_random_aig(4, &steps(&mut rng));
        let k = 3 + rng.index(4);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::with_k(k))
            .expect("maps");
        assert!(nl.verify_against(&aig, 4, 5));
    }
}

#[test]
fn constant_and_degenerate_outputs() {
    let mut aig = Aig::new();
    let a = aig.add_pi();
    let b = aig.add_pi();
    let f = aig.and(a, b);
    aig.add_po(Lit::TRUE);
    aig.add_po(Lit::FALSE);
    aig.add_po(f);
    aig.add_po(f); // duplicate PO
    aig.add_po(!f);
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let nl = mapper
        .map_default(&aig, &CutConfig::default())
        .expect("maps");
    assert!(nl.verify_against(&aig, 8, 6));
}
