//! Property-based integration tests: random AIGs through the whole
//! mapping stack must always produce functionally equivalent netlists.

use proptest::prelude::*;
use slap::aig::aiger::{read_aiger, write_binary};
use slap::aig::sim::random_equiv_check;
use slap::aig::{Aig, Lit};
use slap::cell::asap7_mini;
use slap::cuts::CutConfig;
use slap::map::{MapOptions, Mapper};

/// Builds a random DAG: each step ANDs two previously created literals
/// (with random complementation) and the final few literals become POs.
fn build_random_aig(num_pis: usize, steps: &[(usize, usize, bool, bool)]) -> Aig {
    let mut aig = Aig::new();
    let mut lits = aig.add_pis(num_pis);
    for &(i, j, ci, cj) in steps {
        let a = lits[i % lits.len()].xor_complement(ci);
        let b = lits[j % lits.len()].xor_complement(cj);
        let f = aig.and(a, b);
        lits.push(f);
    }
    let n = lits.len();
    for k in 0..3.min(n) {
        let l = lits[n - 1 - k];
        aig.add_po(if k % 2 == 0 { l } else { !l });
    }
    aig
}

fn steps() -> impl Strategy<Value = Vec<(usize, usize, bool, bool)>> {
    prop::collection::vec((0usize..200, 0usize..200, any::<bool>(), any::<bool>()), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn default_mapping_is_always_equivalent(s in steps()) {
        let aig = build_random_aig(5, &s);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper.map_default(&aig, &CutConfig::default()).expect("maps");
        prop_assert!(nl.verify_against(&aig, 8, 1));
    }

    #[test]
    fn shuffled_mapping_is_always_equivalent(s in steps(), seed in 0u64..1000) {
        let aig = build_random_aig(5, &s);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper.map_shuffled(&aig, &CutConfig::default(), seed, 3).expect("maps");
        prop_assert!(nl.verify_against(&aig, 8, 2));
    }

    #[test]
    fn delay_only_area_recovery_relation(s in steps()) {
        let aig = build_random_aig(5, &s);
        let lib = asap7_mini();
        let plain = Mapper::new(&lib, MapOptions::delay_only());
        let recovered = Mapper::new(&lib, MapOptions::default());
        let cfg = CutConfig::default();
        let a = plain.map_default(&aig, &cfg).expect("maps");
        let b = recovered.map_default(&aig, &cfg).expect("maps");
        // Area recovery never increases area and never breaks function.
        prop_assert!(b.area() <= a.area() + 1e-3);
        prop_assert!(b.verify_against(&aig, 4, 3));
    }

    #[test]
    fn aiger_binary_round_trip(s in steps()) {
        let aig = build_random_aig(5, &s);
        let mut buf = Vec::new();
        write_binary(&aig, &mut buf).expect("write");
        let back = read_aiger(&buf[..]).expect("parse");
        prop_assert_eq!(back.num_pis(), aig.num_pis());
        prop_assert_eq!(back.num_pos(), aig.num_pos());
        prop_assert!(random_equiv_check(&aig, &back, 8, 4));
    }

    #[test]
    fn k_sweep_mappings_stay_equivalent(s in steps(), k in 3usize..=6) {
        let aig = build_random_aig(4, &s);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper.map_default(&aig, &CutConfig::with_k(k)).expect("maps");
        prop_assert!(nl.verify_against(&aig, 4, 5));
    }
}

#[test]
fn constant_and_degenerate_outputs() {
    let mut aig = Aig::new();
    let a = aig.add_pi();
    let b = aig.add_pi();
    let f = aig.and(a, b);
    aig.add_po(Lit::TRUE);
    aig.add_po(Lit::FALSE);
    aig.add_po(f);
    aig.add_po(f); // duplicate PO
    aig.add_po(!f);
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let nl = mapper.map_default(&aig, &CutConfig::default()).expect("maps");
    assert!(nl.verify_against(&aig, 8, 6));
}
