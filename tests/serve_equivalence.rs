//! Serve-engine equivalence suite: the multi-tenant batch engine must
//! be a pure scheduler (DESIGN.md §14). Sharing frozen function tiers
//! and the run memo across tenants may only remove recomputation —
//! never change an answer. For a mixed job list over catalog circuits,
//! policies, and both targets, every engine completion must reproduce a
//! standalone cold session bit-for-bit, regardless of
//!
//! * worker thread count (1, 2, 8);
//! * submission order (identity and LCG shuffles);
//! * how the stream is split into cache generations (one wave vs many);
//! * whether the frozen tier is enabled at all (`cache: Some(false)`).
//!
//! The frozen tiers themselves must also be thread-count-invariant: at
//! a fixed submission order, the per-tier fingerprints after draining
//! are identical at 1, 2, and 8 threads, because deltas are absorbed in
//! dispatch order, not completion-race order.

use slap_cell::asap7_mini;
use slap_circuits::{table2_benchmarks, Scale};
use slap_map::{LutMapper, MapOptions, MapPolicy, MappedNetlist, Mapper};
use slap_serve::{CircuitSpec, Engine, EngineConfig, EngineTarget, MapRequest};

/// Serializes tests that mutate the process-global worker count (same
/// pattern as the golden and LUT suites — tests within this binary must
/// not race each other on `slap_par::set_threads`).
static THREAD_AXIS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const LUT_K: usize = 6;

/// One request of the golden job list, with its standalone reference.
struct Job {
    circuit: &'static str,
    target: usize,
    k: usize,
    policy: MapPolicy,
    tenant: &'static str,
}

/// Everything an engine completion must reproduce bit-for-bit from the
/// standalone cold baseline (cache-traffic counters excluded: the
/// frozen tier exists precisely to change cache traffic).
fn assert_same_mapping(got: &MappedNetlist, base: &MappedNetlist, label: &str) {
    assert_eq!(got.instances(), base.instances(), "{label}: instances");
    assert_eq!(got.pos(), base.pos(), "{label}: po sources");
    assert_eq!(got.cover_cuts(), base.cover_cuts(), "{label}: cover cuts");
    assert_eq!(got.area().to_bits(), base.area().to_bits(), "{label}: area");
    assert_eq!(
        got.delay().to_bits(),
        base.delay().to_bits(),
        "{label}: delay"
    );
    assert_eq!(
        got.stats().dp_delay.to_bits(),
        base.stats().dp_delay.to_bits(),
        "{label}: dp delay"
    );
    assert_eq!(
        got.stats().match_stats.without_cache_counters(),
        base.stats().match_stats.without_cache_counters(),
        "{label}: match stats"
    );
}

/// Builds an engine over the first three Quick-scale catalog circuits
/// with both targets registered, plus the golden job list: every
/// circuit × {default, unlimited, shuffled} × {asic, lut:6}, tenants
/// assigned round-robin so fair queuing actually interleaves.
fn engine_and_jobs(library: &slap_cell::Library, cache: Option<bool>) -> (Engine<'_>, Vec<Job>) {
    let mut engine = Engine::new(EngineConfig {
        queue_capacity: 64,
        quantum: 1,
        batch: 8,
        cache,
    });
    let asic = engine.add_target(EngineTarget::Asic(Mapper::new(
        library,
        MapOptions::default(),
    )));
    let lut = engine.add_target(EngineTarget::Lut(LutMapper::lut(
        LUT_K,
        MapOptions::default(),
    )));
    let benches = table2_benchmarks();
    let picks = &benches[..3];
    for bench in picks {
        engine.register_circuit(bench.name, bench.build(Scale::Quick));
    }
    let policies = [
        MapPolicy::Default,
        MapPolicy::Unlimited { cap: 48 },
        MapPolicy::Shuffled { seed: 7, keep: 8 },
    ];
    let tenants = ["alpha", "beta", "gamma"];
    let mut jobs = Vec::new();
    for bench in picks {
        for policy in policies {
            for (target, k) in [(asic, 5usize), (lut, LUT_K)] {
                jobs.push(Job {
                    circuit: bench.name,
                    target,
                    k,
                    policy,
                    tenant: tenants[jobs.len() % tenants.len()],
                });
            }
        }
    }
    (engine, jobs)
}

fn submit(engine: &mut Engine<'_>, job: &Job) {
    engine
        .submit(MapRequest {
            tenant: job.tenant.to_string(),
            circuit: CircuitSpec::Named(job.circuit.to_string()),
            target: job.target,
            k: job.k,
            policy: job.policy,
            kernel: "f32".to_string(),
            passes: String::new(),
        })
        .expect("admitted");
}

/// Key uniquely identifying a job within the golden list, used to match
/// completions (which arrive in dispatch order) back to references.
fn key(circuit: &str, target: &str, policy: MapPolicy) -> String {
    format!("{circuit}/{target}/{policy:?}")
}

/// Standalone cold references for every job, keyed by request identity.
fn references(
    engine: &Engine<'_>,
    jobs: &[Job],
) -> std::collections::HashMap<String, MappedNetlist> {
    let target_names = ["asic".to_string(), format!("lut:{LUT_K}")];
    jobs.iter()
        .map(|job| {
            let netlist = engine
                .map_standalone(circuit_id(job.circuit), job.target, job.k, job.policy)
                .expect("maps");
            (
                key(job.circuit, &target_names[job.target], job.policy),
                netlist,
            )
        })
        .collect()
}

/// Resolves a circuit name to its engine id: circuits were registered
/// in catalog order, so the catalog position is the id.
fn circuit_id(name: &str) -> usize {
    table2_benchmarks()
        .iter()
        .position(|b| b.name == name)
        .expect("catalog circuit")
}

/// A tiny deterministic LCG-driven Fisher–Yates, so submission orders
/// differ across cases without pulling in an RNG dependency.
fn shuffled_order(len: usize, mut state: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

/// Drains the engine and asserts every completion bit-identical to its
/// standalone reference.
fn drain_and_check(
    engine: &mut Engine<'_>,
    refs: &std::collections::HashMap<String, MappedNetlist>,
    expected: usize,
    label: &str,
) {
    let done = engine.drain();
    assert_eq!(done.len(), expected, "{label}: completion count");
    for done in &done {
        let k = key(&done.circuit, &done.target, done.policy);
        let reference = refs.get(&k).expect("reference for completion");
        assert_same_mapping(
            done.result.as_ref().expect("maps"),
            reference,
            &format!("{label} {k}"),
        );
    }
}

/// The tentpole contract: every job through the engine is bit-identical
/// to a standalone cold session at every thread count, shuffled
/// submission order, and generation split.
#[test]
fn engine_matches_standalone_across_threads_orders_and_generations() {
    let _lock = THREAD_AXIS_LOCK.lock().expect("thread-axis lock");
    let library = asap7_mini();
    let refs = {
        let (engine, jobs) = engine_and_jobs(&library, Some(true));
        references(&engine, &jobs)
    };

    for &threads in &[1usize, 2, 8] {
        slap_par::set_threads(threads);
        for (case, order) in [
            ("identity", (0..18).collect::<Vec<_>>()),
            ("shuffle-a", shuffled_order(18, 0x5eed)),
            ("shuffle-b", shuffled_order(18, 0xdead_beef)),
        ] {
            let (mut engine, jobs) = engine_and_jobs(&library, Some(true));
            assert_eq!(jobs.len(), order.len(), "golden list size");
            // Split the stream into two waves with a drain between, so
            // the second wave probes tiers the first wave populated —
            // jobs must not care which generation served them.
            let (front, back) = order.split_at(order.len() / 2);
            for &ix in front {
                submit(&mut engine, &jobs[ix]);
            }
            drain_and_check(
                &mut engine,
                &refs,
                front.len(),
                &format!("{threads}t {case} wave1"),
            );
            for &ix in back {
                submit(&mut engine, &jobs[ix]);
            }
            drain_and_check(
                &mut engine,
                &refs,
                back.len(),
                &format!("{threads}t {case} wave2"),
            );
        }
    }
    slap_par::reset_threads();
}

/// Frozen-tier contents are thread-count-invariant: at a fixed
/// submission order, the engine absorbs worker deltas in dispatch
/// order, so the resulting tier fingerprints cannot depend on how many
/// workers raced to produce them.
#[test]
fn tier_fingerprints_are_thread_count_invariant() {
    let _lock = THREAD_AXIS_LOCK.lock().expect("thread-axis lock");
    let library = asap7_mini();
    let mut baseline: Option<Vec<(String, String, u64)>> = None;
    for &threads in &[1usize, 2, 8] {
        slap_par::set_threads(threads);
        let (mut engine, jobs) = engine_and_jobs(&library, Some(true));
        for job in &jobs {
            submit(&mut engine, job);
        }
        let done = engine.drain();
        assert_eq!(done.len(), jobs.len());
        let prints = engine.tier_fingerprints();
        assert!(
            engine.tier_generations() > 0,
            "tiers advanced at {threads} threads"
        );
        match &baseline {
            None => baseline = Some(prints),
            Some(base) => assert_eq!(
                &prints, base,
                "tier fingerprints diverged at {threads} threads"
            ),
        }
    }
    slap_par::reset_threads();
}

/// `cache: Some(false)` (the `SLAP_CACHE=0` path) disables the frozen
/// tier without changing any answer: the engine still passes the full
/// equivalence check, tiers never advance, and repeat submissions are
/// still served (via the run memo, which is independent of the cache).
#[test]
fn disabled_cache_engine_is_still_equivalent() {
    let _lock = THREAD_AXIS_LOCK.lock().expect("thread-axis lock");
    slap_par::set_threads(2);
    let library = asap7_mini();
    let refs = {
        let (engine, jobs) = engine_and_jobs(&library, Some(true));
        references(&engine, &jobs)
    };
    let (mut engine, jobs) = engine_and_jobs(&library, Some(false));
    assert!(!engine.cache_enabled(), "cache override honored");
    for job in &jobs {
        submit(&mut engine, job);
    }
    drain_and_check(&mut engine, &refs, jobs.len(), "cache-off");
    assert_eq!(
        engine.tier_generations(),
        0,
        "disabled tiers must never advance"
    );
    // Resubmit the whole list: with caching off the run memo is off
    // too, so every repeat maps cold again — and still bit-identically.
    for job in &jobs {
        submit(&mut engine, job);
    }
    drain_and_check(&mut engine, &refs, jobs.len(), "cache-off repeat");
    assert_eq!(
        engine.stats().replayed,
        0,
        "disabled cache disables the run memo as well"
    );
    slap_par::reset_threads();
}
