//! Cross-crate integration tests: circuits → cuts → matching → mapping →
//! SLAP, all through the public facade.

use slap::cell::asap7_mini;
use slap::circuits::arith::{carry_lookahead_adder, max4, ripple_carry_adder};
use slap::circuits::catalog::{table2_benchmarks, Scale};
use slap::core::{train_slap_model, PipelineConfig, SampleConfig, SlapConfig, SlapMapper};
use slap::cuts::CutConfig;
use slap::map::{MapOptions, Mapper};
use slap::ml::{CnnConfig, TrainConfig};

#[test]
fn all_three_modes_preserve_function_on_an_adder() {
    let aig = carry_lookahead_adder(16);
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let cfg = CutConfig::default();
    let d = mapper.map_default(&aig, &cfg).expect("default");
    let u = mapper.map_unlimited(&aig, &cfg, 1000).expect("unlimited");
    let s = mapper.map_shuffled(&aig, &cfg, 3, 6).expect("shuffled");
    for (name, nl) in [("default", &d), ("unlimited", &u), ("shuffled", &s)] {
        assert!(nl.verify_against(&aig, 16, 9), "{name} broke equivalence");
        assert!(
            nl.area() > 0.0 && nl.delay() > 0.0,
            "{name} has degenerate QoR"
        );
    }
    // Unlimited exposes at least as many cuts; the shuffled subset fewer.
    assert!(u.stats().cuts_considered >= d.stats().cuts_considered);
    assert!(s.stats().cuts_considered <= u.stats().cuts_considered);
}

#[test]
fn unlimited_dp_delay_is_a_lower_bound() {
    // More exposed cuts can only improve the covering DP's objective.
    let aig = max4(16);
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let cfg = CutConfig::default();
    let d = mapper.map_default(&aig, &cfg).expect("default");
    let u = mapper.map_unlimited(&aig, &cfg, 1000).expect("unlimited");
    assert!(u.stats().dp_delay <= d.stats().dp_delay + 1e-2);
}

#[test]
fn slap_end_to_end_on_unseen_circuit() {
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let train_set = vec![ripple_carry_adder(16)];
    let config = PipelineConfig {
        sample: SampleConfig {
            maps: 20,
            ..SampleConfig::default()
        },
        train: TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        },
        model: CnnConfig {
            filters: 16,
            ..CnnConfig::paper()
        },
        model_seed: 2,
    };
    let (model, report) = train_slap_model(&train_set, &mapper, &config);
    assert!(report.val_samples > 0);
    let slap = SlapMapper::new(&mapper, model, SlapConfig::default());
    // An architecture the model never saw.
    let target = max4(16);
    let (nl, stats) = slap.map(&target).expect("slap maps");
    assert!(nl.verify_against(&target, 16, 5));
    assert!(
        stats.cuts_kept < stats.cuts_scored,
        "policy should prune something"
    );
    let unl = mapper
        .map_unlimited(&target, &CutConfig::default(), 1000)
        .expect("unlimited");
    assert!(nl.stats().cuts_considered <= unl.stats().cuts_considered);
}

#[test]
fn every_table2_benchmark_maps_and_verifies_quickly() {
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let cfg = CutConfig::default();
    for bench in table2_benchmarks() {
        // Smallest faithful structures only — this is a correctness sweep,
        // not a QoR run.
        let aig = bench.build(Scale::Quick);
        if aig.num_ands() > 8000 {
            continue; // the big ones are covered by the harness itself
        }
        let nl = mapper
            .map_default(&aig, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(
            nl.verify_against(&aig, 4, 11),
            "{} mapping not equivalent",
            bench.name
        );
    }
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time check that the facade exposes the whole stack.
    let _ = slap::aig::Aig::new();
    let _ = slap::cuts::CutConfig::default();
    let _ = asap7_mini();
    let _ = slap::ml::CnnConfig::paper();
    let _ = slap::core::BandPolicy::paper();
}
