//! Allocation budget for the arena-backed pipeline (CI guard).
//!
//! The shared `slap_obs::alloc::CountingAllocator` (the same one the
//! bench binaries install for their `alloc.count` gauges) wraps the
//! system allocator; the test runs
//! one full enumerate + map pass over the AES-core circuit (after a
//! warm-up pass so lazily initialised global state is excluded) and
//! asserts the allocation count stays within budget. Before the flat
//! `CutArena`/`MatchArena` refactor the same pass performed ~4.22M
//! allocations (per-cut `Vec`s in enumeration plus per-cut cone/support
//! buffers in matching); the arena pipeline performs a few thousand.

#[global_allocator]
static A: slap_obs::alloc::CountingAllocator = slap_obs::alloc::CountingAllocator;

/// Shorthand for the shared counting allocator's cumulative call count.
fn allocs() -> u64 {
    slap_obs::alloc::allocations().count
}

/// Serializes the budget tests: they read the same global allocation
/// counter, so concurrent runs would attribute each other's allocations.
static BUDGET_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn enumeration_and_mapping_allocation_count() {
    use slap_cell::asap7_mini;
    use slap_circuits::aes::aes_mini;
    use slap_cuts::{enumerate_cuts, CutConfig, DefaultPolicy};
    use slap_map::{MapOptions, Mapper};

    let _guard = BUDGET_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let aig = aes_mini();
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let cfg = CutConfig::default();
    // Warm up once so lazy global state (obs registry etc.) is excluded.
    let cuts = enumerate_cuts(&aig, &cfg, &mut DefaultPolicy::default());
    mapper.map_with_cuts(&aig, &cuts).expect("maps");
    drop(cuts);

    let before = allocs();
    let cuts = enumerate_cuts(&aig, &cfg, &mut DefaultPolicy::default());
    let nl = mapper.map_with_cuts(&aig, &cuts).expect("maps");
    let after = allocs();
    assert!(nl.area() > 0.0);
    let count = after - before;
    let threads = slap_par::threads() as u64;
    eprintln!("allocations on enumerate+map(aes_mini) at {threads} threads: {count}");
    // Pre-refactor baseline: ~4,220,000 allocations; the sequential arena
    // pipeline measures ~6,000. Parallel runs add a per-worker constant:
    // each level of the level-synchronized enumerator spawns scoped worker
    // threads carrying their own scratch/output buffers and obs shards
    // (measured ~12,600 total at 4 threads, i.e. ~2,200 per extra worker).
    // Budget = base + c·threads with c at roughly double the measured
    // per-worker cost, so the guard keeps catching any per-cut O(n)
    // regression at every SLAP_THREADS setting CI runs.
    let budget = 50_000 + 4_000 * threads;
    assert!(
        count < budget,
        "allocation budget exceeded: {count} >= {budget} at {threads} threads \
         (pre-arena baseline was ~4.22M; arena pipeline should stay in \
         the low thousands plus a small per-worker constant)"
    );
}

/// The batched-inference guard: steady-state cut scoring must not
/// allocate per cut. After one warm-up call (scratch growth, lazy obs
/// registry entries), every `predict_batch_into` call costs a small
/// constant number of allocations (the obs span's path strings) no
/// matter how many samples the batch holds — zero allocations per cut —
/// and the caller-owned-scratch per-sample path (`predict_with`) costs
/// none at all.
#[test]
fn steady_state_scoring_allocation_count() {
    use slap_ml::{CnnConfig, CutCnn, InferenceScratch};

    let _guard = BUDGET_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let model = CutCnn::new(
        &CnnConfig {
            filters: 32,
            ..CnnConfig::paper()
        },
        9,
    );
    let dim = model.config().input_dim();
    let batch = 256usize;
    let xs: Vec<f32> = (0..batch * dim)
        .map(|i| (i % 17) as f32 * 0.25 - 2.0)
        .collect();
    let mut scratch = InferenceScratch::new();
    let mut out: Vec<u8> = Vec::with_capacity(batch);
    // Warm up: scratch buffers grow to the batch shape, the obs registry
    // creates its counter/histogram/timer entries.
    model.predict_batch_into(&xs, &mut scratch, &mut out);
    out.clear();
    model.predict_with(&xs[..dim], &mut scratch);

    let calls = 16u64;
    let before = allocs();
    for _ in 0..calls {
        out.clear();
        model.predict_batch_into(&xs, &mut scratch, &mut out);
    }
    let after = allocs();
    assert_eq!(out.len(), batch);
    let batched = after - before;
    // The obs span allocates its path strings per call; everything else
    // must be reused. The bound is per call, not per sample: 16 calls
    // scored 4096 cuts, so any per-cut allocation blows through it.
    let budget = calls * 8;
    eprintln!("allocations for {calls} warm batched-scoring calls: {batched}");
    assert!(
        batched < budget,
        "steady-state batched scoring allocated {batched} times in {calls} calls \
         (budget {budget}); scoring must not allocate per cut"
    );

    // The caller-owned-scratch per-sample path is allocation-free.
    let before = allocs();
    for sample in xs.chunks_exact(dim) {
        std::hint::black_box(model.predict_with(sample, &mut scratch));
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "predict_with must be allocation-free with a warm scratch"
    );
}

/// The memoization guard: re-mapping the same cut arena through a warm
/// [`slap_map::MapSession`] must allocate strictly less than the first
/// (cache-filling) map of that session — the second run replays interned
/// truth tables and prepared bindings instead of rebuilding them, and
/// reuses the session's DP columns. A pinned absolute ceiling keeps the
/// warm path from regressing toward per-cut allocation.
#[test]
fn warm_session_remap_allocation_count() {
    use slap_cell::asap7_mini;
    use slap_circuits::aes::aes_mini;
    use slap_cuts::{enumerate_cuts, CutConfig, DefaultPolicy};
    use slap_map::{MapOptions, Mapper};

    let _guard = BUDGET_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let aig = aes_mini();
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let cfg = CutConfig::default();
    // Warm up lazy global state outside the measured windows.
    let cuts = enumerate_cuts(&aig, &cfg, &mut DefaultPolicy::default());
    mapper.map_with_cuts(&aig, &cuts).expect("maps");

    let mut session = mapper.session_cached(&aig, true);
    let before = allocs();
    session.map_with_cuts(&cuts).expect("maps");
    let mid = allocs();
    let nl = session.map_with_cuts(&cuts).expect("maps");
    let after = allocs();
    assert!(nl.area() > 0.0);
    let first = mid - before;
    let second = after - mid;
    let threads = slap_par::threads() as u64;
    eprintln!(
        "allocations on session map(aes_mini) at {threads} threads: \
         first {first}, second {second}"
    );
    assert!(
        second < first,
        "warm re-map must allocate less than the cache-filling map: \
         {second} >= {first} at {threads} threads"
    );
    // Absolute ceiling, same shape as the cold budget above: measured
    // ~2,000 sequential and a per-worker constant for the scoped-thread
    // scratch on parallel runs; budget leaves ~2× headroom.
    let budget = 25_000 + 4_000 * threads;
    assert!(
        second < budget,
        "warm re-map allocation budget exceeded: {second} >= {budget} \
         at {threads} threads"
    );
}

/// The pass-pipeline guard: a warm [`slap_opt::PassPipeline`] reuses
/// its scratch buffers across `optimize` calls, so the steady-state
/// cost of optimizing a circuit is the output graphs themselves (each
/// pass emits a fresh `Aig`, a constant number of containers) plus a
/// bounded number of working containers — not a per-node stream of
/// small allocations. The budget is far below one-allocation-per-AND
/// on the AES core, so any pass that starts boxing per node (or
/// dropping and regrowing its scratch) fails it.
#[test]
fn warm_pass_pipeline_allocation_count() {
    use slap_circuits::aes::aes_mini;
    use slap_opt::PassPipeline;

    let _guard = BUDGET_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let aig = aes_mini();
    let mut pipeline = PassPipeline::parse("full").expect("valid spec");
    // Warm up: scratch buffers grow to the circuit's shape, lazy obs
    // counter/span entries are created.
    let (out, _) = pipeline.optimize(aig.clone());
    assert!(out.num_ands() < aig.num_ands());

    let calls = 4u64;
    let before = allocs();
    for _ in 0..calls {
        let (out, report) = pipeline.optimize(aig.clone());
        assert!(out.num_ands() < aig.num_ands());
        assert_eq!(report.ands_out, out.num_ands());
    }
    let after = allocs();
    let per_call = (after - before) / calls;
    let ands = aig.num_ands() as u64;
    eprintln!("allocations per warm pipeline.optimize(aes_mini): {per_call} ({ands} ands)");
    // Measured ~3,200 per call on the 6,916-AND AES core (tree
    // rebuilds and the extraction heap allocate per *tree*, not per
    // node; the debug sim-equivalence checks add a small constant).
    // Budget = one allocation per AND, ~2× the measurement: a pass
    // that allocates per node adds at least `ands` and blows through.
    let budget = ands;
    assert!(
        per_call < budget,
        "pass-pipeline allocation budget exceeded: {per_call} >= {budget} \
         for a {ands}-AND circuit; passes must reuse scratch, not allocate per node"
    );
}

/// The serve-engine steady-state guard: once the frozen tier and run
/// memo are warm, a repeated request costs a small constant number of
/// allocations (request strings, the memoized netlist clone, one obs
/// record) — independent of how many times it repeats — and a novel
/// request against the warm tier stays within the warm-session budget
/// above plus the engine's own per-request bookkeeping.
#[test]
fn warm_engine_request_allocation_count() {
    use slap_circuits::arith::ripple_carry_adder;
    use slap_map::{LutMapper, MapOptions, MapPolicy};
    use slap_serve::{CircuitSpec, Engine, EngineConfig, EngineTarget, MapRequest};

    let _guard = BUDGET_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut engine = Engine::new(EngineConfig {
        cache: Some(true),
        ..EngineConfig::default()
    });
    let lut = engine.add_target(EngineTarget::Lut(LutMapper::lut(6, MapOptions::default())));
    engine.register_circuit("rc16", ripple_carry_adder(16));
    let request = |policy: MapPolicy| MapRequest {
        tenant: "t".to_string(),
        circuit: CircuitSpec::Named("rc16".to_string()),
        target: lut,
        k: 6,
        policy,
        kernel: "f32".to_string(),
        passes: String::new(),
    };
    let repeat = MapPolicy::Shuffled { seed: 11, keep: 6 };
    // Warm up: first submission fills the tier and the run memo, the
    // second exercises the replay path once (lazy obs entries, record
    // buffers) so the measured window sees only steady-state cost.
    for _ in 0..2 {
        engine.submit(request(repeat)).expect("admitted");
        let done = engine.drain();
        assert!(done[0].result.is_ok());
    }
    engine.take_records();

    let calls = 16u64;
    let before = allocs();
    for _ in 0..calls {
        engine.submit(request(repeat)).expect("admitted");
        let done = engine.drain();
        assert!(done[0].replayed, "warm repeat must replay the run memo");
    }
    let after = allocs();
    let per_request = (after - before) / calls;
    eprintln!("allocations per warm repeated serve request: {per_request}");
    // Measured ~160 (request strings, the netlist clone, the completion
    // record); the bound is per request with ~3× headroom, so any
    // re-mapping or per-cut work sneaking into the replay path fails it.
    assert!(
        per_request < 500,
        "warm repeated request allocated {per_request} times (budget 500); \
         the replay path must not re-map"
    );

    // A novel request (fresh seed) maps against the warm frozen tier:
    // the cut functions replay from the shared tier, so the cost stays
    // within the warm-session shape above plus engine bookkeeping.
    engine.take_records();
    let before = allocs();
    engine
        .submit(request(MapPolicy::Shuffled { seed: 12, keep: 6 }))
        .expect("admitted");
    let done = engine.drain();
    let after = allocs();
    assert!(!done[0].replayed && done[0].result.is_ok());
    let novel = after - before;
    let threads = slap_par::threads() as u64;
    eprintln!("allocations for a novel request on a warm engine: {novel}");
    let budget = 25_000 + 4_000 * threads;
    assert!(
        novel < budget,
        "novel warm-tier request allocated {novel} times \
         (budget {budget} at {threads} threads)"
    );
}
