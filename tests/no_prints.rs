//! Library code must report through `slap-obs` (or return data), never
//! print: this test walks every crate's `src/` tree and fails on
//! `println!`/`eprintln!` outside binaries and tests.

use std::path::{Path, PathBuf};

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            // Binaries may print; that is their job.
            if path.file_name().map(|n| n == "bin").unwrap_or(false) {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
}

#[test]
fn library_code_does_not_print() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    rust_sources(&root.join("src"), &mut files);
    for entry in std::fs::read_dir(root.join("crates")).expect("crates dir") {
        let dir = entry.expect("dir entry").path().join("src");
        if dir.is_dir() {
            rust_sources(&dir, &mut files);
        }
    }
    assert!(
        files.len() > 20,
        "walker found too few files ({})",
        files.len()
    );

    let mut offenders = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).expect("readable source");
        for (i, line) in text.lines().enumerate() {
            let trimmed = line.trim_start();
            // Everything below the test module is test-only code.
            if trimmed.starts_with("#[cfg(test)]") {
                break;
            }
            if trimmed.starts_with("//") {
                continue;
            }
            if trimmed.contains("println!") || trimmed.contains("eprintln!") {
                offenders.push(format!("{}:{}: {}", file.display(), i + 1, trimmed));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "library code must use slap-obs instead of printing:\n{}",
        offenders.join("\n")
    );
}

/// The runtime counterpart for tracing: when `SLAP_TRACE` is unset the
/// span macro-path must record **no** trace events — spans still feed
/// the registry timers, but the per-thread trace buffers stay empty, so
/// the disabled path costs one relaxed atomic load per span.
#[test]
fn disabled_tracing_spans_record_no_events() {
    assert!(
        !slap_obs::trace::enabled(),
        "SLAP_TRACE must stay unset in the test environment \
         (tracing is opt-in; this test pins the default-off contract)"
    );
    for _ in 0..100 {
        let _outer = slap_obs::span("no_prints_outer");
        let _inner = slap_obs::span("no_prints_inner");
    }
    slap_obs::trace::flush_thread();
    let events = slap_obs::trace::drain();
    assert!(
        events.is_empty(),
        "disabled tracing still buffered {} events",
        events.len()
    );
}
