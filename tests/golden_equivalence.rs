//! Golden equivalence of the flat cut arena against the pre-refactor
//! pipeline.
//!
//! The arena refactor must be a pure storage change: for every catalog
//! circuit and every cut policy, the arena-backed [`enumerate_cuts`] must
//! produce bit-identical per-node cut lists to the original nested
//! `Vec<Vec<Cut>>` algorithm (transcribed below as the reference), and
//! mapping through an arena rebuilt from those reference lists must yield
//! identical area and delay.

use slap_aig::{Aig, NodeId};
use slap_cell::asap7_mini;
use slap_circuits::{table2_benchmarks, Scale};
use slap_cuts::{
    enumerate_cuts, Cut, CutArena, CutConfig, CutPolicy, DefaultPolicy, ShufflePolicy,
    UnlimitedPolicy,
};
use slap_map::{MapOptions, MapSession, MappedNetlist, Mapper};

/// The seed implementation's canonical cut order: fewer leaves first,
/// then lexicographic on the leaf ids (the arena keeps the same order).
fn reference_cut_cmp(a: &Cut, b: &Cut) -> std::cmp::Ordering {
    a.len()
        .cmp(&b.len())
        .then_with(|| a.leaf_indices().cmp(b.leaf_indices()))
}

/// Transcription of the pre-refactor enumerator: per-node `Vec` lists,
/// each AND node merging its fanin lists extended by the trivial cuts
/// (trivial first — the order the arena enumerator preserves), then
/// sort + dedup + policy refinement.
fn reference_enumerate(aig: &Aig, k: usize, policy: &mut dyn CutPolicy) -> Vec<Vec<Cut>> {
    let mut sets: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
    for n in aig.and_ids() {
        let (f0, f1) = aig.fanins(n);
        let with_trivial = |node: NodeId, stored: &[Cut]| -> Vec<Cut> {
            let mut v = Vec::with_capacity(stored.len() + 1);
            v.push(Cut::trivial(node));
            v.extend_from_slice(stored);
            v
        };
        let set0 = with_trivial(f0.node(), &sets[f0.node().index()]);
        let set1 = with_trivial(f1.node(), &sets[f1.node().index()]);
        let mut merged = Vec::new();
        for c0 in &set0 {
            for c1 in &set1 {
                if let Some(m) = c0.merge(c1, k) {
                    merged.push(m);
                }
            }
        }
        merged.sort_by(reference_cut_cmp);
        merged.dedup();
        policy.refine(aig, n, &mut merged);
        sets[n.index()] = merged;
    }
    sets
}

fn assert_identical_cut_sets(aig: &Aig, arena: &CutArena, reference: &[Vec<Cut>], label: &str) {
    for n in aig.and_ids() {
        assert_eq!(
            arena.cuts_of(n),
            reference[n.index()].as_slice(),
            "{label}: node {n} cut list diverged from the reference"
        );
    }
    let total: usize = reference.iter().map(Vec::len).sum();
    assert_eq!(arena.total_cuts(), total, "{label}: total cut count");
}

/// Runs one policy mode over every Quick-scale catalog circuit and checks
/// both the cut sets and the mapped QoR. The policy is built fresh for
/// each enumeration so stateful policies (shuffle) replay identically.
fn check_mode(label: &str, make_policy: &dyn Fn() -> Box<dyn CutPolicy>) {
    let config = CutConfig::default();
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    for bench in table2_benchmarks() {
        let aig = bench.build(Scale::Quick);
        let arena = enumerate_cuts(&aig, &config, &mut *make_policy());
        let reference = reference_enumerate(&aig, config.k, &mut *make_policy());
        assert_identical_cut_sets(&aig, &arena, &reference, &format!("{label}/{}", bench.name));
        // Mapping through an arena rebuilt from the reference lists must
        // give the same QoR as the enumerated arena.
        let via_arena = mapper.map_with_cuts(&aig, &arena).expect("arena maps");
        let rebuilt = CutArena::from_lists(&reference, config.k);
        let via_lists = mapper.map_with_cuts(&aig, &rebuilt).expect("rebuilt maps");
        assert_eq!(
            via_arena.area(),
            via_lists.area(),
            "{label}/{}: area diverged",
            bench.name
        );
        assert_eq!(
            via_arena.delay(),
            via_lists.delay(),
            "{label}/{}: delay diverged",
            bench.name
        );
        assert!(
            via_arena.area() > 0.0,
            "{label}/{}: degenerate mapping",
            bench.name
        );
    }
}

#[test]
fn default_policy_matches_reference() {
    check_mode("default", &|| Box::new(DefaultPolicy::default()));
}

#[test]
fn unlimited_policy_matches_reference() {
    check_mode("unlimited", &|| Box::new(UnlimitedPolicy::new()));
}

#[test]
fn shuffle_policy_matches_reference() {
    check_mode("shuffle", &|| Box::new(ShufflePolicy::with_keep(7, 8)));
}

/// Serializes the thread-axis tests below: they mutate the process-global
/// worker count, so they must not observe each other's settings.
static THREAD_AXIS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The worker count must never change any output: for every catalog
/// circuit and policy, enumeration at 2 and 8 threads must reproduce the
/// 1-thread cut lists and stats bit-for-bit, and (on a subset, to bound
/// runtime) the mapped QoR must match to the last float bit too.
#[test]
fn enumeration_is_thread_count_invariant() {
    let _guard = THREAD_AXIS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = slap_par::threads();
    let config = CutConfig::default();
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    type PolicyFactory<'a> = &'a dyn Fn() -> Box<dyn CutPolicy>;
    let policies: [(&str, PolicyFactory); 4] = [
        ("default", &|| Box::new(DefaultPolicy::default())),
        ("unlimited", &|| Box::new(UnlimitedPolicy::new())),
        ("shuffle-7-8", &|| Box::new(ShufflePolicy::with_keep(7, 8))),
        ("shuffle-3-4", &|| Box::new(ShufflePolicy::with_keep(3, 4))),
    ];
    for (bi, bench) in table2_benchmarks().iter().enumerate() {
        let aig = bench.build(Scale::Quick);
        for (label, make_policy) in &policies {
            slap_par::set_threads(1);
            let base = enumerate_cuts(&aig, &config, &mut *make_policy());
            // Mapping every circuit × policy × thread count would dominate
            // the suite's runtime; QoR is checked on the first circuits.
            let check_qor = bi < 3;
            let base_map =
                check_qor.then(|| mapper.map_with_cuts(&aig, &base).expect("baseline maps"));
            for t in [2usize, 8] {
                slap_par::set_threads(t);
                let arena = enumerate_cuts(&aig, &config, &mut *make_policy());
                for n in aig.and_ids() {
                    assert_eq!(
                        arena.cuts_of(n),
                        base.cuts_of(n),
                        "{label}/{}: node {n} cut list diverged at {t} threads",
                        bench.name
                    );
                }
                assert_eq!(
                    arena.stats(),
                    base.stats(),
                    "{label}/{}: enumeration stats diverged at {t} threads",
                    bench.name
                );
                if let Some(base_map) = &base_map {
                    let mapped = mapper.map_with_cuts(&aig, &arena).expect("maps");
                    assert_eq!(
                        mapped.area().to_bits(),
                        base_map.area().to_bits(),
                        "{label}/{}: area diverged at {t} threads",
                        bench.name
                    );
                    assert_eq!(
                        mapped.delay().to_bits(),
                        base_map.delay().to_bits(),
                        "{label}/{}: delay diverged at {t} threads",
                        bench.name
                    );
                }
            }
        }
    }
    slap_par::set_threads(prev);
}

/// Dataset generation and training must also be thread-count invariant:
/// the same circuit and seeds must hash to the same dataset and converge
/// to the same final weights at 1, 2, and 8 threads.
#[test]
fn datagen_and_training_are_thread_count_invariant() {
    use slap_core::{generate_dataset, SampleConfig, CUT_EMBED_COLS, CUT_EMBED_ROWS};
    use slap_ml::{CnnConfig, CutCnn, Dataset, TrainConfig};

    let _guard = THREAD_AXIS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = slap_par::threads();
    let aig = table2_benchmarks()[0].build(Scale::Quick);
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let sample_cfg = SampleConfig {
        maps: 8,
        ..SampleConfig::default()
    };
    let cnn_cfg = CnnConfig {
        filters: 8,
        ..CnnConfig::paper()
    };
    let train_cfg = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    let run = |t: usize| {
        slap_par::set_threads(t);
        let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        let samples = generate_dataset(&aig, &mapper, &sample_cfg, &mut ds).expect("maps");
        let mut model = CutCnn::new(&cnn_cfg, 7);
        let report = model.train(&ds, &train_cfg);
        (samples, ds.content_hash(), model.to_text(), report)
    };
    let base = run(1);
    for t in [2usize, 8] {
        let got = run(t);
        assert_eq!(got.0, base.0, "map samples diverged at {t} threads");
        assert_eq!(got.1, base.1, "dataset hash diverged at {t} threads");
        assert_eq!(got.2, base.2, "final weights diverged at {t} threads");
        assert_eq!(got.3, base.3, "train report diverged at {t} threads");
    }
    slap_par::set_threads(prev);
}

/// Everything a warm-session map must reproduce bit-for-bit from the
/// cold map of the same circuit and policy. The session-cache traffic
/// counters are excluded deliberately: they describe cache history (and
/// legitimately differ between a first and a second warm run), while the
/// mapped output may not.
fn assert_same_mapping(warm: &MappedNetlist, cold: &MappedNetlist, label: &str) {
    assert_eq!(warm.instances(), cold.instances(), "{label}: instances");
    assert_eq!(warm.pos(), cold.pos(), "{label}: po sources");
    assert_eq!(warm.cover_cuts(), cold.cover_cuts(), "{label}: cover cuts");
    assert_eq!(
        warm.area().to_bits(),
        cold.area().to_bits(),
        "{label}: area"
    );
    assert_eq!(
        warm.delay().to_bits(),
        cold.delay().to_bits(),
        "{label}: delay"
    );
    assert_eq!(
        warm.stats().dp_delay.to_bits(),
        cold.stats().dp_delay.to_bits(),
        "{label}: dp delay"
    );
    assert_eq!(
        warm.stats().match_stats.without_cache_counters(),
        cold.stats().match_stats.without_cache_counters(),
        "{label}: match stats"
    );
    assert_eq!(
        warm.stats().matches_tried,
        cold.stats().matches_tried,
        "{label}: matches tried"
    );
}

/// The four policy modes the memoization suite exercises, as function
/// pointers over (cold mapper, warm session).
type ColdMap = fn(&Mapper, &Aig) -> MappedNetlist;
type WarmMap = fn(&mut MapSession) -> MappedNetlist;

fn session_modes() -> Vec<(&'static str, ColdMap, WarmMap)> {
    vec![
        (
            "default",
            |m, aig| {
                m.map_default(aig, &CutConfig::default())
                    .expect("cold maps")
            },
            |s| s.map_default(&CutConfig::default()).expect("warm maps"),
        ),
        (
            "unlimited-1000",
            |m, aig| {
                m.map_unlimited(aig, &CutConfig::default(), 1000)
                    .expect("cold maps")
            },
            |s| {
                s.map_unlimited(&CutConfig::default(), 1000)
                    .expect("warm maps")
            },
        ),
        (
            "shuffle-7-8",
            |m, aig| {
                m.map_shuffled(aig, &CutConfig::default(), 7, 8)
                    .expect("cold maps")
            },
            |s| {
                s.map_shuffled(&CutConfig::default(), 7, 8)
                    .expect("warm maps")
            },
        ),
        (
            "shuffle-3-4",
            |m, aig| {
                m.map_shuffled(aig, &CutConfig::default(), 3, 4)
                    .expect("cold maps")
            },
            |s| {
                s.map_shuffled(&CutConfig::default(), 3, 4)
                    .expect("warm maps")
            },
        ),
    ]
}

/// The memoization tentpole's golden contract: for every catalog circuit
/// and policy, a warm [`MapSession`] — first map (cache filling) and
/// second map (cache replaying) alike — produces bit-identical netlists,
/// QoR, cover cuts, and (cache counters aside) stats to the cold
/// one-shot map.
#[test]
fn warm_sessions_are_bit_identical_to_cold_maps() {
    let _guard = THREAD_AXIS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = slap_par::threads();
    slap_par::set_threads(1);
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let modes = session_modes();
    for bench in table2_benchmarks() {
        let aig = bench.build(Scale::Quick);
        // One session spans all policies of the circuit, like the bench
        // harness uses it: cut functions memoized under one policy must
        // replay correctly under every other.
        let mut session = mapper.session_cached(&aig, true);
        for (mode, cold_map, warm_map) in &modes {
            let cold = cold_map(&mapper, &aig);
            let warm1 = warm_map(&mut session);
            let warm2 = warm_map(&mut session);
            let label = format!("{}/{mode}", bench.name);
            assert_same_mapping(&warm1, &cold, &format!("{label}/first"));
            assert_same_mapping(&warm2, &cold, &format!("{label}/second"));
            assert_eq!(
                warm2.stats().match_stats.fn_cache_misses,
                0,
                "{label}: repeat of an identical map must replay fully from cache"
            );
        }
        assert!(session.num_cached_functions() > 0, "{}", bench.name);
    }
    slap_par::set_threads(prev);
}

/// The thread axis of the same contract: warm sessions at 2 and 8
/// workers (frozen cache + delta absorption under the hood) reproduce
/// the 1-thread warm and cold outputs bit-for-bit. Subset of circuits to
/// bound runtime, matching `enumeration_is_thread_count_invariant`.
#[test]
fn warm_sessions_are_thread_count_invariant() {
    let _guard = THREAD_AXIS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = slap_par::threads();
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let modes = session_modes();
    for bench in &table2_benchmarks()[..3] {
        let aig = bench.build(Scale::Quick);
        slap_par::set_threads(1);
        let mut base_session = mapper.session_cached(&aig, true);
        let baselines: Vec<(&str, MappedNetlist, MappedNetlist)> = modes
            .iter()
            .map(|(mode, cold_map, warm_map)| {
                (*mode, cold_map(&mapper, &aig), warm_map(&mut base_session))
            })
            .collect();
        for t in [2usize, 8] {
            slap_par::set_threads(t);
            let mut session = mapper.session_cached(&aig, true);
            for (warm_map, (mode, cold, warm_seq)) in
                modes.iter().map(|(_, _, w)| w).zip(&baselines)
            {
                let warm1 = warm_map(&mut session);
                let warm2 = warm_map(&mut session);
                let label = format!("{}/{mode}/t={t}", bench.name);
                assert_same_mapping(&warm1, cold, &format!("{label}/first"));
                assert_same_mapping(&warm2, warm_seq, &format!("{label}/second"));
            }
            assert_eq!(
                session.num_cached_functions(),
                base_session.num_cached_functions(),
                "{}/t={t}: cache contents depend on thread count",
                bench.name
            );
            assert_eq!(
                session.num_interned_tts(),
                base_session.num_interned_tts(),
                "{}/t={t}: interner contents depend on thread count",
                bench.name
            );
        }
    }
    slap_par::set_threads(prev);
}

/// The external-selection (`read_cuts`) path: the same deterministic
/// selection applied through `retain_selected` and directly to the
/// reference lists must agree, including the structural-cut fallback.
#[test]
fn external_selection_matches_reference() {
    let config = CutConfig::default();
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    // Keep roughly half the cuts, deterministically, by a leaf-sum parity
    // rule that is oblivious to storage layout.
    let keep = |cut: &Cut| -> bool { cut.leaf_indices().iter().sum::<u32>() % 2 == 0 };
    for bench in table2_benchmarks() {
        let aig = bench.build(Scale::Quick);
        let mut arena = enumerate_cuts(&aig, &config, &mut UnlimitedPolicy::new());
        let mut reference = reference_enumerate(&aig, config.k, &mut UnlimitedPolicy::new());
        arena.retain_selected(&aig, |_, c| keep(c), true);
        for n in aig.and_ids() {
            let list = &mut reference[n.index()];
            list.retain(keep);
            if list.is_empty() {
                let (f0, f1) = aig.fanins(n);
                list.push(Cut::from_leaves(&[f0.node(), f1.node()]));
            }
        }
        assert_identical_cut_sets(
            &aig,
            &arena,
            &reference,
            &format!("external/{}", bench.name),
        );
        let via_arena = mapper.map_with_cuts(&aig, &arena).expect("arena maps");
        let rebuilt = CutArena::from_lists(&reference, config.k);
        let via_lists = mapper.map_with_cuts(&aig, &rebuilt).expect("rebuilt maps");
        assert_eq!(via_arena.area(), via_lists.area());
        assert_eq!(via_arena.delay(), via_lists.delay());
    }
}
