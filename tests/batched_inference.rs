//! Golden equivalence of the batched two-pass inference against the
//! seed per-sample scoring path.
//!
//! The batched rewrite of [`SlapMapper::classify_cuts`] must be a pure
//! restructuring: for every catalog circuit, the keep mask and stats it
//! produces — and the full SLAP-mapped QoR downstream of them — must be
//! bit-identical to scoring every cut alone in node order (transcribed
//! below as the reference), at every worker count and in both session
//! cache modes.

use std::sync::OnceLock;

use slap_aig::Aig;
use slap_cell::asap7_mini;
use slap_circuits::arith::ripple_carry_adder;
use slap_circuits::{table2_benchmarks, Scale};
use slap_core::{
    train_slap_model, BandPolicy, EmbeddingContext, PipelineConfig, SampleConfig, SlapConfig,
    SlapMapper, SlapStats, CUT_EMBED_DIM,
};
use slap_cuts::{cut_features, enumerate_cuts, CutArena, UnlimitedPolicy};
use slap_map::{MapOptions, Mapper};
use slap_ml::{CnnConfig, CutCnn, TrainConfig};

/// Serializes the tests: they mutate the process-global worker count.
static THREAD_AXIS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The SLAP configuration the suite runs: the default flow with a
/// reduced per-node enumeration cap. The batched/per-sample contract is
/// independent of the cut count, and tier-1 runs this binary unoptimized
/// — the default cap of 1000 would score ~10× the cuts for no extra
/// coverage.
fn suite_config() -> SlapConfig {
    SlapConfig {
        unlimited_cap: 12,
        ..SlapConfig::default()
    }
}

/// One quick-trained model shared by every test in this binary (training
/// is the expensive part; the suite only needs fixed, non-degenerate
/// weights so the band policy sees a spread of predicted classes).
fn shared_model() -> &'static CutCnn {
    static MODEL: OnceLock<CutCnn> = OnceLock::new();
    MODEL.get_or_init(|| {
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let config = PipelineConfig {
            sample: SampleConfig {
                maps: 16,
                ..SampleConfig::default()
            },
            train: TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
            model: CnnConfig {
                filters: 8,
                ..CnnConfig::paper()
            },
            model_seed: 5,
        };
        let (model, report) = train_slap_model(&[ripple_carry_adder(8)], &mapper, &config);
        assert!(report.train_samples > 0);
        model
    })
}

/// Transcription of the seed inference loop: node by node, one embedding
/// buffer, one `predict` call per cut, one `select` per node. (The
/// per-sample `predict` itself is pinned to the seed's scalar forward
/// pass bit-for-bit by the `slap-ml` kernel unit tests.)
fn reference_classify(
    model: &CutCnn,
    policy: &BandPolicy,
    aig: &Aig,
    cuts: &CutArena,
) -> (Vec<bool>, SlapStats) {
    let ctx = EmbeddingContext::new(aig);
    let mut stats = SlapStats {
        class_histogram: vec![0; model.config().classes],
        ..SlapStats::default()
    };
    let mut keep: Vec<bool> = vec![false; cuts.total_cuts()];
    let mut embedding = [0f32; CUT_EMBED_DIM];
    let mut classes: Vec<u8> = Vec::new();
    for n in aig.and_ids() {
        let span = cuts.span_of(n);
        if span.is_empty() {
            continue;
        }
        classes.clear();
        for (_, cut) in cuts.ids_of(n) {
            let features = cut_features(aig, n, cut, ctx.compl_flags());
            ctx.cut_embedding_into(n, cut, &features, &mut embedding);
            let class = model.predict(&embedding);
            stats.class_histogram[class as usize] += 1;
            classes.push(class);
        }
        stats.cuts_scored += classes.len();
        let mask = policy.select(&classes);
        if mask.iter().all(|&k| !k) {
            stats.nodes_all_bad += 1;
        }
        stats.cuts_kept += mask.iter().filter(|&&k| k).count();
        for (offset, &kept) in (span.start as usize..).zip(&mask) {
            keep[offset] = kept;
        }
    }
    (keep, stats)
}

/// The per-node keep masks: for every catalog circuit, the batched
/// two-pass classification must reproduce the per-sample reference mask
/// and stats bit-for-bit at 1, 2, and 8 worker threads.
#[test]
fn batched_keep_masks_match_per_sample_reference_across_threads() {
    let _guard = THREAD_AXIS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = slap_par::threads();
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let config = suite_config();
    let slap = SlapMapper::new(&mapper, shared_model().clone(), config.clone());
    for bench in table2_benchmarks() {
        let aig = bench.build(Scale::Quick);
        let cuts = enumerate_cuts(
            &aig,
            &config.cut_config,
            &mut UnlimitedPolicy::with_cap(config.unlimited_cap),
        );
        slap_par::set_threads(1);
        let (ref_keep, ref_stats) = reference_classify(slap.model(), &config.policy, &aig, &cuts);
        assert!(ref_stats.cuts_scored > 0, "{}", bench.name);
        for t in [1usize, 2, 8] {
            slap_par::set_threads(t);
            let (keep, stats) = slap.classify_cuts(&aig, &cuts);
            assert_eq!(
                keep, ref_keep,
                "{}: keep mask diverged from the per-sample reference at {t} threads",
                bench.name
            );
            assert_eq!(
                stats, ref_stats,
                "{}: stats diverged from the per-sample reference at {t} threads",
                bench.name
            );
        }
    }
    slap_par::set_threads(prev);
}

/// The QoR axis of the same contract: the full `SlapMapper::map` of every
/// catalog circuit — cold one-shot maps (the `SLAP_CACHE=0` path) and
/// warm memoizing sessions alike — must be bit-identical across worker
/// counts, and the warm sessions bit-identical to the cold maps.
#[test]
fn slap_map_qor_is_identical_across_threads_and_cache_modes() {
    let _guard = THREAD_AXIS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = slap_par::threads();
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let slap = SlapMapper::new(&mapper, shared_model().clone(), suite_config());
    for bench in table2_benchmarks() {
        let aig = bench.build(Scale::Quick);
        slap_par::set_threads(1);
        let (cold_nl, cold_stats) = slap.map(&aig).expect("maps");
        assert!(cold_nl.area() > 0.0, "{}", bench.name);
        for t in [1usize, 2, 8] {
            slap_par::set_threads(t);
            // Cold axis: `SlapMapper::map` always runs a cache-disabled
            // session (what `SLAP_CACHE=0` forces everywhere).
            let (nl, stats) = slap.map(&aig).expect("maps");
            // Warm axis: repeated maps through one memoizing session,
            // first (cache-filling) and second (cache-replaying) alike.
            let mut session = mapper.session_cached(&aig, true);
            let (warm1_nl, warm1_stats) = slap.map_with_session(&mut session).expect("maps");
            let (warm2_nl, warm2_stats) = slap.map_with_session(&mut session).expect("maps");
            for (mode, got_nl, got_stats) in [
                ("cold", &nl, &stats),
                ("warm-first", &warm1_nl, &warm1_stats),
                ("warm-second", &warm2_nl, &warm2_stats),
            ] {
                let label = format!("{}/{mode}/t={t}", bench.name);
                assert_eq!(
                    got_nl.instances(),
                    cold_nl.instances(),
                    "{label}: instances"
                );
                assert_eq!(got_nl.pos(), cold_nl.pos(), "{label}: po sources");
                assert_eq!(
                    got_nl.area().to_bits(),
                    cold_nl.area().to_bits(),
                    "{label}: area"
                );
                assert_eq!(
                    got_nl.delay().to_bits(),
                    cold_nl.delay().to_bits(),
                    "{label}: delay"
                );
                assert_eq!(got_stats, &cold_stats, "{label}: slap stats");
            }
        }
    }
    slap_par::set_threads(prev);
}
