//! Golden bound on the int8 quantized scoring tier.
//!
//! The int8 tier (`SlapConfig { kernel: KernelTier::Int8, .. }`) is
//! *not* held to bit-identity with the f32 kernels — quantization
//! rounds weights and activations to 8 bits by design. Its contract is:
//!
//! 1. **Bounded keep-mask divergence**: on every catalog circuit, the
//!    fraction of cuts whose keep/drop decision differs from the f32
//!    tier stays under [`INT8_KEEP_DIVERGENCE_BOUND`]. A quantization
//!    regression (wrong scale, clipped accumulator, broken requant)
//!    shows up here as a jump from the committed sub-percent levels.
//! 2. **Determinism**: the int8 mask and stats are bit-identical across
//!    worker counts (integer accumulation is associative, and the fixed
//!    chunk grid of `classify_cuts` removes batching effects), and
//!    identical between repeated runs.
//! 3. **Same work**: the int8 tier scores exactly the cuts the f32 tier
//!    scores — divergence is confined to the predicted classes.
//!
//! The bound here is the same constant the `bench_inference` harness
//! asserts on its untrained paper-size model; keep the two in lockstep.

use std::sync::OnceLock;

use slap_cell::asap7_mini;
use slap_circuits::arith::ripple_carry_adder;
use slap_circuits::{table2_benchmarks, Scale};
use slap_core::{KernelTier, PipelineConfig, SampleConfig, SlapConfig, SlapMapper};
use slap_cuts::{enumerate_cuts, UnlimitedPolicy};
use slap_map::{MapOptions, Mapper};
use slap_ml::{CnnConfig, CutCnn, TrainConfig};

/// Serializes the tests: they mutate the process-global worker count.
static THREAD_AXIS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Committed per-circuit ceiling on the keep-mask divergence between the
/// int8 and f32 tiers, as a fraction of all cuts in the arena. Measured
/// head-room: the trained suite model stays well under 1% on every
/// catalog circuit; 5% absorbs model-to-model variation without letting
/// a real quantization bug through.
const INT8_KEEP_DIVERGENCE_BOUND: f64 = 0.05;

/// The suite flow config: default flow, reduced enumeration cap (the
/// divergence contract is independent of the cut count, and tier-1 runs
/// this binary unoptimized).
fn suite_config() -> SlapConfig {
    SlapConfig {
        unlimited_cap: 12,
        ..SlapConfig::default()
    }
}

/// One quick-trained model shared by every test in this binary. Trained
/// weights matter here more than in the bit-identity suite: quantization
/// error is relative to real scale spreads, not He-init noise.
fn shared_model() -> &'static CutCnn {
    static MODEL: OnceLock<CutCnn> = OnceLock::new();
    MODEL.get_or_init(|| {
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let config = PipelineConfig {
            sample: SampleConfig {
                maps: 16,
                ..SampleConfig::default()
            },
            train: TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
            model: CnnConfig {
                filters: 8,
                ..CnnConfig::paper()
            },
            model_seed: 5,
        };
        let (model, report) =
            slap_core::train_slap_model(&[ripple_carry_adder(8)], &mapper, &config);
        assert!(report.train_samples > 0);
        model
    })
}

/// Divergence + determinism + same-work, on every catalog circuit at
/// 1, 2, and 8 worker threads.
#[test]
fn int8_keep_masks_stay_within_the_golden_bound_across_threads() {
    let _guard = THREAD_AXIS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = slap_par::threads();
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let config = suite_config();
    let slap_f32 = SlapMapper::new(&mapper, shared_model().clone(), config.clone());
    let slap_int8 = SlapMapper::new(
        &mapper,
        shared_model().clone(),
        SlapConfig {
            kernel: KernelTier::Int8,
            ..config.clone()
        },
    );
    for bench in table2_benchmarks() {
        let aig = bench.build(Scale::Quick);
        let cuts = enumerate_cuts(
            &aig,
            &config.cut_config,
            &mut UnlimitedPolicy::with_cap(config.unlimited_cap),
        );
        slap_par::set_threads(1);
        let (f32_keep, f32_stats) = slap_f32.classify_cuts(&aig, &cuts);
        let (ref_keep, ref_stats) = slap_int8.classify_cuts(&aig, &cuts);
        assert!(f32_stats.cuts_scored > 0, "{}", bench.name);
        // Same work: divergence lives in the classes, never the cut set.
        assert_eq!(
            ref_stats.cuts_scored, f32_stats.cuts_scored,
            "{}: int8 tier scored a different cut set",
            bench.name
        );
        // Golden bound: per-circuit keep-mask divergence fraction.
        let divergent = f32_keep
            .iter()
            .zip(&ref_keep)
            .filter(|(a, b)| a != b)
            .count();
        let frac = divergent as f64 / f32_keep.len().max(1) as f64;
        eprintln!(
            "{}: int8 keep divergence {divergent}/{} ({:.4}%)",
            bench.name,
            f32_keep.len(),
            frac * 100.0
        );
        assert!(
            frac <= INT8_KEEP_DIVERGENCE_BOUND,
            "{}: int8 keep-mask divergence {frac:.4} exceeds the committed bound {INT8_KEEP_DIVERGENCE_BOUND}",
            bench.name
        );
        // Determinism: bit-identical mask and stats at every worker count.
        for t in [1usize, 2, 8] {
            slap_par::set_threads(t);
            let (keep, stats) = slap_int8.classify_cuts(&aig, &cuts);
            assert_eq!(
                keep, ref_keep,
                "{}: int8 keep mask not deterministic at {t} threads",
                bench.name
            );
            assert_eq!(
                stats, ref_stats,
                "{}: int8 stats not deterministic at {t} threads",
                bench.name
            );
        }
    }
    slap_par::set_threads(prev);
}

/// The downstream axis: the int8 tier must still drive `SlapMapper::map`
/// to a valid netlist on every catalog circuit, with the same stats the
/// classification pass reported (QoR-equivalence, not bit-identity, is
/// the contract — the netlist may legitimately differ from f32's).
#[test]
fn int8_tier_maps_every_catalog_circuit() {
    let _guard = THREAD_AXIS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = slap_par::threads();
    slap_par::set_threads(2);
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let slap_int8 = SlapMapper::new(
        &mapper,
        shared_model().clone(),
        SlapConfig {
            kernel: KernelTier::Int8,
            ..suite_config()
        },
    );
    for bench in table2_benchmarks() {
        let aig = bench.build(Scale::Quick);
        let (nl, stats) = slap_int8.map(&aig).expect("int8 map");
        assert!(nl.area() > 0.0, "{}", bench.name);
        assert!(stats.cuts_scored > 0, "{}", bench.name);
        assert!(
            nl.verify_against(&aig, 64, 11),
            "{}: int8-mapped netlist failed simulation cross-check",
            bench.name
        );
    }
    slap_par::set_threads(prev);
}
