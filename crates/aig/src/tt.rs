//! Truth tables for functions of up to six variables, packed in a `u64`.
//!
//! Bit `i` of the table is the function value on the input assignment whose
//! binary encoding is `i` (variable 0 is the least-significant input).
//! These tables are what cut functions are computed into and what library
//! gates are matched against.

/// A truth table over `num_vars` ≤ 6 variables.
///
/// # Example
///
/// ```
/// use slap_aig::Tt;
///
/// let a = Tt::var(0, 2);
/// let b = Tt::var(1, 2);
/// let and = a.and(b);
/// assert_eq!(and.bits(), 0x8); // only assignment 11 is true
/// assert!(and.support().contains(&0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tt {
    bits: u64,
    num_vars: u8,
}

/// Projection masks: `VAR_MASKS[i]` is the truth table of variable `i`
/// over 6 variables.
const VAR_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

impl Tt {
    /// Maximum supported variable count.
    pub const MAX_VARS: usize = 6;

    /// The constant-false table over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 6`.
    pub fn zero(num_vars: usize) -> Tt {
        assert!(num_vars <= Tt::MAX_VARS, "at most 6 variables supported");
        Tt {
            bits: 0,
            num_vars: num_vars as u8,
        }
    }

    /// The constant-true table over `num_vars` variables.
    pub fn one(num_vars: usize) -> Tt {
        Tt::zero(num_vars).not()
    }

    /// The projection of variable `var` over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars` or `num_vars > 6`.
    pub fn var(var: usize, num_vars: usize) -> Tt {
        assert!(num_vars <= Tt::MAX_VARS);
        assert!(var < num_vars, "variable index out of range");
        Tt {
            bits: VAR_MASKS[var] & mask(num_vars),
            num_vars: num_vars as u8,
        }
    }

    /// Builds a table from raw bits (excess bits are masked off).
    pub fn from_bits(bits: u64, num_vars: usize) -> Tt {
        assert!(num_vars <= Tt::MAX_VARS);
        Tt {
            bits: bits & mask(num_vars),
            num_vars: num_vars as u8,
        }
    }

    /// The raw bits, valid in the low `2^num_vars` positions.
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// The number of variables of this table.
    #[inline]
    pub fn num_vars(self) -> usize {
        self.num_vars as usize
    }

    /// Complement.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Tt {
        Tt {
            bits: !self.bits & mask(self.num_vars as usize),
            num_vars: self.num_vars,
        }
    }

    /// Conjunction. Both tables must have the same variable count.
    #[inline]
    pub fn and(self, other: Tt) -> Tt {
        debug_assert_eq!(self.num_vars, other.num_vars);
        Tt {
            bits: self.bits & other.bits,
            num_vars: self.num_vars,
        }
    }

    /// Disjunction.
    #[inline]
    pub fn or(self, other: Tt) -> Tt {
        debug_assert_eq!(self.num_vars, other.num_vars);
        Tt {
            bits: self.bits | other.bits,
            num_vars: self.num_vars,
        }
    }

    /// Exclusive or.
    #[inline]
    pub fn xor(self, other: Tt) -> Tt {
        debug_assert_eq!(self.num_vars, other.num_vars);
        Tt {
            bits: self.bits ^ other.bits,
            num_vars: self.num_vars,
        }
    }

    /// True if the function is constant (all-0 or all-1).
    pub fn is_const(self) -> bool {
        self.bits == 0 || self.bits == mask(self.num_vars as usize)
    }

    /// The variables in the functional support, ascending.
    pub fn support(self) -> Vec<usize> {
        (0..self.num_vars as usize)
            .filter(|&v| self.influenced_by(v))
            .collect()
    }

    /// Whether flipping variable `var` can change the output.
    pub fn influenced_by(self, var: usize) -> bool {
        let m = VAR_MASKS[var];
        let shift = 1u64 << var;
        let pos = (self.bits & m) >> shift; // cofactor var=1, aligned to var=0 positions
        let neg = self.bits & !m;
        (pos ^ neg) & !m & mask(self.num_vars as usize) != 0
    }

    /// Removes variables outside the support, compacting the remaining
    /// variables downwards. Returns the shrunk table and, for each new
    /// variable position, the original variable it came from.
    pub fn shrink_to_support(self) -> (Tt, Vec<usize>) {
        let mut vars = [0usize; Tt::MAX_VARS];
        let (tt, n) = self.shrink_to_support_into(&mut vars);
        (tt, vars[..n].to_vec())
    }

    /// Allocation-free [`shrink_to_support`]: writes the original variable
    /// of each surviving position into `vars` and returns the shrunk table
    /// plus the support size (the filled prefix of `vars`).
    pub fn shrink_to_support_into(self, vars: &mut [usize; Tt::MAX_VARS]) -> (Tt, usize) {
        let mut n = 0usize;
        for v in 0..self.num_vars as usize {
            if self.influenced_by(v) {
                vars[n] = v;
                n += 1;
            }
        }
        if n == self.num_vars as usize {
            return (self, n);
        }
        let mut tt = self;
        // Swap each support variable down into consecutive low positions.
        for (new_pos, &old_pos) in vars[..n].iter().enumerate() {
            if new_pos != old_pos {
                tt = tt.swap_vars(new_pos, old_pos);
            }
        }
        (Tt::from_bits(tt.bits, n), n)
    }

    /// Swaps two variables of the table.
    pub fn swap_vars(self, a: usize, b: usize) -> Tt {
        if a == b {
            return self;
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        let step_a = 1u64 << a;
        let step_b = 1u64 << b;
        let mut out = 0u64;
        for i in 0..(1u64 << self.num_vars) {
            let bit = (self.bits >> i) & 1;
            let va = (i >> a) & 1;
            let vb = (i >> b) & 1;
            let j = (i & !(step_a | step_b)) | (vb << a) | (va << b);
            out |= bit << j;
        }
        Tt {
            bits: out,
            num_vars: self.num_vars,
        }
    }

    /// Applies a permutation: new variable `i` takes the role of old
    /// variable `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_vars`.
    pub fn permute(self, perm: &[usize]) -> Tt {
        assert_eq!(perm.len(), self.num_vars as usize);
        let mut out = 0u64;
        for i in 0..(1u64 << self.num_vars) {
            // Build the old-space assignment from the new-space assignment i.
            let mut old = 0u64;
            for (new_var, &old_var) in perm.iter().enumerate() {
                old |= ((i >> new_var) & 1) << old_var;
            }
            out |= ((self.bits >> old) & 1) << i;
        }
        Tt {
            bits: out,
            num_vars: self.num_vars,
        }
    }

    /// Complements the inputs selected by `phase_mask` (bit `i` set means
    /// variable `i` is complemented).
    pub fn flip_inputs(self, phase_mask: u32) -> Tt {
        let mut tt = self;
        for v in 0..self.num_vars as usize {
            if phase_mask & (1 << v) != 0 {
                tt = tt.flip_input(v);
            }
        }
        tt
    }

    /// Complements a single input variable.
    pub fn flip_input(self, var: usize) -> Tt {
        let m = VAR_MASKS[var];
        let shift = 1u64 << var;
        let hi = self.bits & m;
        let lo = self.bits & !m;
        Tt {
            bits: ((hi >> shift) | (lo << shift)) & mask(self.num_vars as usize),
            num_vars: self.num_vars,
        }
    }

    /// Number of input assignments on which the function is true.
    pub fn count_ones(self) -> u32 {
        self.bits.count_ones()
    }
}

#[inline]
fn mask(num_vars: usize) -> u64 {
    if num_vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << num_vars)) - 1
    }
}

impl std::fmt::Debug for Tt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tt({}v:{:0width$x})",
            self.num_vars,
            self.bits,
            width = (1 << self.num_vars) / 4
        )
    }
}

impl std::fmt::Display for Tt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self, f)
    }
}

/// All permutations of `0..n`, for NPN enumeration (n ≤ 6).
pub fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut result = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    heap_permute(&mut items, n, &mut result);
    result
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_projections_match_bit_patterns() {
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let c = Tt::var(2, 3);
        assert_eq!(a.bits(), 0xAA);
        assert_eq!(b.bits(), 0xCC);
        assert_eq!(c.bits(), 0xF0);
    }

    #[test]
    fn boolean_ops() {
        let a = Tt::var(0, 2);
        let b = Tt::var(1, 2);
        assert_eq!(a.and(b).bits(), 0b1000);
        assert_eq!(a.or(b).bits(), 0b1110);
        assert_eq!(a.xor(b).bits(), 0b0110);
        assert_eq!(a.not().bits(), 0b0101);
    }

    #[test]
    fn constants() {
        assert!(Tt::zero(3).is_const());
        assert!(Tt::one(3).is_const());
        assert!(!Tt::var(0, 3).is_const());
        assert_eq!(Tt::one(2).bits(), 0xF);
    }

    #[test]
    fn support_detection() {
        let a = Tt::var(0, 4);
        let c = Tt::var(2, 4);
        let f = a.and(c);
        assert_eq!(f.support(), vec![0, 2]);
        assert!(f.influenced_by(0));
        assert!(!f.influenced_by(1));
        assert!(f.influenced_by(2));
        assert!(!f.influenced_by(3));
    }

    #[test]
    fn shrink_to_support_compacts_variables() {
        let a = Tt::var(0, 5);
        let d = Tt::var(3, 5);
        let f = a.xor(d);
        let (g, map) = f.shrink_to_support();
        assert_eq!(g.num_vars(), 2);
        assert_eq!(map, vec![0, 3]);
        assert_eq!(g.bits(), Tt::var(0, 2).xor(Tt::var(1, 2)).bits());
    }

    #[test]
    fn swap_vars_roundtrip() {
        let f = Tt::var(0, 3).and(Tt::var(1, 3)).or(Tt::var(2, 3));
        let g = f.swap_vars(0, 2);
        assert_eq!(g.swap_vars(0, 2), f);
        // After swapping 0 and 2, the function is (c & b) | a.
        let expect = Tt::var(2, 3).and(Tt::var(1, 3)).or(Tt::var(0, 3));
        assert_eq!(g, expect);
    }

    #[test]
    fn permute_identity_and_rotation() {
        let f = Tt::var(0, 3).and(Tt::var(1, 3));
        assert_eq!(f.permute(&[0, 1, 2]), f);
        // perm[i] = old var for new var i: rotate 0<-1, 1<-2, 2<-0.
        let g = f.permute(&[1, 2, 0]);
        // New var 0 plays old var 1's role, new var 2 plays old var 0's.
        let expect = Tt::var(2, 3).and(Tt::var(0, 3));
        assert_eq!(g, expect);
    }

    #[test]
    fn flip_input_matches_cofactor_exchange() {
        let f = Tt::var(0, 2); // f = a
        let g = f.flip_input(0); // g = !a
        assert_eq!(g.bits(), Tt::var(0, 2).not().bits());
        let h = Tt::var(1, 3).flip_input(0); // independent variable: unchanged
        assert_eq!(h, Tt::var(1, 3));
    }

    #[test]
    fn flip_inputs_mask() {
        let f = Tt::var(0, 2).and(Tt::var(1, 2));
        let g = f.flip_inputs(0b11); // !a & !b = NOR
        assert_eq!(g.bits(), 0b0001);
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(5).len(), 120);
        // All distinct.
        let mut p4 = permutations(4);
        p4.sort();
        p4.dedup();
        assert_eq!(p4.len(), 24);
    }

    #[test]
    fn six_var_mask_is_full() {
        assert_eq!(Tt::one(6).bits(), u64::MAX);
        assert!(Tt::var(5, 6).influenced_by(5));
    }
}
