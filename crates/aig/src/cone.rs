//! Cut-cone utilities: the nodes covered by a cut, and the cut's local
//! function.
//!
//! A cut `(n, L)` covers the nodes on the paths from the root `n` down to
//! (excluding) the leaves `L`. The number of covered nodes is the cut's
//! *volume* (`vol(c)` in the paper); the local function over the leaves is
//! what Boolean matching binds to library gates.

use crate::graph::{Aig, NodeId};
use crate::tt::Tt;

/// Reusable buffers for cone traversal and simulation, so the hot
/// matching loop can evaluate hundreds of thousands of cut functions
/// without touching the allocator (see [`cut_function_with`]).
#[derive(Debug, Default)]
pub struct ConeScratch {
    cone: Vec<NodeId>,
    stack: Vec<NodeId>,
    values: Vec<(NodeId, Tt)>,
}

/// Collects the nodes covered by the cut `(root, leaves)` in topological
/// (ascending id) order. The root is included, leaves are excluded.
///
/// Returns `None` if the cone is not closed under the leaves — i.e. some
/// path from the root escapes past a non-leaf PI or the traversal reaches
/// the constant node without it being a leaf (an invalid cut).
pub fn collect_cone(aig: &Aig, root: NodeId, leaves: &[NodeId]) -> Option<Vec<NodeId>> {
    let mut scratch = ConeScratch::default();
    if collect_cone_into(aig, root, leaves, &mut scratch) {
        Some(std::mem::take(&mut scratch.cone))
    } else {
        None
    }
}

/// Allocation-free core of [`collect_cone`]: leaves the sorted cone in
/// `scratch.cone` and returns whether the cut is valid.
fn collect_cone_into(
    aig: &Aig,
    root: NodeId,
    leaves: &[NodeId],
    scratch: &mut ConeScratch,
) -> bool {
    let cone = &mut scratch.cone;
    let stack = &mut scratch.stack;
    cone.clear();
    stack.clear();
    if leaves.contains(&root) {
        // Trivial cut: covers nothing.
        return true;
    }
    stack.push(root);
    while let Some(n) = stack.pop() {
        if cone.contains(&n) || leaves.contains(&n) {
            continue;
        }
        if !aig.is_and(n) {
            // Reached a PI or the constant that is not a leaf: invalid cut.
            return false;
        }
        cone.push(n);
        let (f0, f1) = aig.fanins(n);
        stack.push(f0.node());
        stack.push(f1.node());
    }
    cone.sort_unstable();
    true
}

/// The volume of a cut: number of covered nodes. Returns `None` for
/// invalid cuts (see [`collect_cone`]).
pub fn cut_volume(aig: &Aig, root: NodeId, leaves: &[NodeId]) -> Option<usize> {
    collect_cone(aig, root, leaves).map(|c| c.len())
}

/// Computes the local function of the cut `(root, leaves)` as a truth
/// table over the leaves (leaf `i` is variable `i`), along with the cut
/// volume.
///
/// Works by simulating the cone with projection tables at the leaves.
/// Supports up to [`Tt::MAX_VARS`] leaves.
///
/// Returns `None` for invalid cuts.
///
/// # Panics
///
/// Panics if `leaves.len() > 6`.
pub fn cut_function(aig: &Aig, root: NodeId, leaves: &[NodeId]) -> Option<(Tt, usize)> {
    cut_function_with(aig, root, leaves, &mut ConeScratch::default())
}

/// [`cut_function`] with caller-provided scratch buffers: after warm-up,
/// evaluating a cut allocates nothing. This is the matcher's hot path.
///
/// # Panics
///
/// Panics if `leaves.len() > 6`.
pub fn cut_function_with(
    aig: &Aig,
    root: NodeId,
    leaves: &[NodeId],
    scratch: &mut ConeScratch,
) -> Option<(Tt, usize)> {
    assert!(leaves.len() <= Tt::MAX_VARS, "at most 6 leaves supported");
    let nv = leaves.len();
    if let Some(pos) = leaves.iter().position(|&l| l == root) {
        // Trivial cut: identity on that leaf.
        return Some((Tt::var(pos, nv.max(1)), 0));
    }
    if !collect_cone_into(aig, root, leaves, scratch) {
        return None;
    }
    // Local simulation over the cone only, using a tiny map from node to tt.
    let cone = &scratch.cone;
    let values = &mut scratch.values;
    values.clear();
    values.push((NodeId::CONST0, Tt::zero(nv)));
    for (i, &l) in leaves.iter().enumerate() {
        values.push((l, Tt::var(i, nv)));
    }
    let lookup = |values: &[(NodeId, Tt)], n: NodeId| -> Tt {
        values
            .iter()
            .rev()
            .find(|(id, _)| *id == n)
            .map(|(_, t)| *t)
            .expect("cone node evaluated before its fanins")
    };
    for &n in cone {
        let (f0, f1) = aig.fanins(n);
        let mut t0 = lookup(values, f0.node());
        let mut t1 = lookup(values, f1.node());
        if f0.is_complement() {
            t0 = t0.not();
        }
        if f1.is_complement() {
            t1 = t1.not();
        }
        values.push((n, t0.and(t1)));
    }
    let volume = cone.len();
    Some((lookup(values, root), volume))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Aig;

    /// Builds the paper's Fig. 2-style graph fragment:
    /// node13 = and(node10, !node12) etc. We just exercise a 3-level cone.
    fn sample() -> (Aig, NodeId, Vec<NodeId>) {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let ab = aig.and(a, b);
        let bc = aig.and(b, c);
        let root = aig.and(ab, !bc);
        aig.add_po(root);
        (aig, root.node(), vec![a.node(), b.node(), c.node()])
    }

    #[test]
    fn cone_collection_and_volume() {
        let (aig, root, leaves) = sample();
        let cone = collect_cone(&aig, root, &leaves).expect("valid cut");
        assert_eq!(cone.len(), 3);
        assert_eq!(cut_volume(&aig, root, &leaves), Some(3));
    }

    #[test]
    fn trivial_cut_volume_is_zero() {
        let (aig, root, _) = sample();
        assert_eq!(cut_volume(&aig, root, &[root]), Some(0));
    }

    #[test]
    fn invalid_cut_detected() {
        let (aig, root, leaves) = sample();
        // Omitting leaf c: path from root escapes to a non-leaf PI.
        assert!(collect_cone(&aig, root, &leaves[..2]).is_none());
    }

    #[test]
    fn cut_function_matches_semantics() {
        let (aig, root, leaves) = sample();
        let (tt, vol) = cut_function(&aig, root, &leaves).expect("valid cut");
        assert_eq!(vol, 3);
        // f = (a&b) & !(b&c)
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let c = Tt::var(2, 3);
        let expect = a.and(b).and(b.and(c).not());
        assert_eq!(tt, expect);
    }

    #[test]
    fn cut_function_with_intermediate_leaf() {
        let (aig, root, leaves) = sample();
        // Use the inner node ab as a leaf along with b, c.
        let mut aig2 = aig.clone();
        let _ = &mut aig2;
        let ab = {
            // ab is the first AND created: id = num_pis + 1.
            NodeId::new(4)
        };
        let cut = vec![ab, leaves[1], leaves[2]];
        let (tt, vol) = cut_function(&aig, root, &cut).expect("valid cut");
        assert_eq!(vol, 2);
        // f = ab & !(b & c) with variables (ab, b, c).
        let v0 = Tt::var(0, 3);
        let v1 = Tt::var(1, 3);
        let v2 = Tt::var(2, 3);
        assert_eq!(tt, v0.and(v1.and(v2).not()));
    }

    #[test]
    fn trivial_cut_function_is_identity() {
        let (aig, root, _) = sample();
        let (tt, vol) = cut_function(&aig, root, &[root]).expect("trivial cut");
        assert_eq!(vol, 0);
        assert_eq!(tt, Tt::var(0, 1));
    }
}
