//! Error type for AIG parsing and validation.

use std::error::Error;
use std::fmt;

/// Errors produced by this crate's fallible operations (chiefly AIGER
/// parsing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AigError {
    /// The AIGER header line is malformed or unsupported.
    BadHeader(String),
    /// A literal or line in the body is malformed.
    BadBody(String),
    /// The file references sequential elements (latches), which this
    /// combinational reproduction does not support.
    Sequential,
    /// Underlying I/O problem, carried as a message (keeps the error `Eq`).
    Io(String),
}

impl fmt::Display for AigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigError::BadHeader(s) => write!(f, "invalid AIGER header: {s}"),
            AigError::BadBody(s) => write!(f, "invalid AIGER body: {s}"),
            AigError::Sequential => write!(f, "sequential AIGER files are not supported"),
            AigError::Io(s) => write!(f, "i/o error: {s}"),
        }
    }
}

impl Error for AigError {}

impl From<std::io::Error> for AigError {
    fn from(e: std::io::Error) -> AigError {
        AigError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AigError::BadHeader("x".into())
            .to_string()
            .contains("header"));
        assert!(AigError::Sequential.to_string().contains("sequential"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AigError>();
    }
}
