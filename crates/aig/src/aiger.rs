//! AIGER format reader and writer (combinational subset).
//!
//! Supports both the ASCII (`aag`) and binary (`aig`) formats of the
//! AIGER 1.9 specification, restricted to combinational circuits
//! (no latches). Binary files use the delta-encoded AND representation.

use std::io::{BufRead, Read, Write};

use crate::error::AigError;
use crate::graph::Aig;
use crate::lit::Lit;

/// Parses an AIGER file (ASCII `aag` or binary `aig`) from a reader.
///
/// Note that a `&mut` reader works too, per the usual `Read` blanket impl.
///
/// # Errors
///
/// Returns [`AigError`] if the header or body is malformed, or if the file
/// contains latches.
pub fn read_aiger<R: Read>(mut reader: R) -> Result<Aig, AigError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    if data.starts_with(b"aag") {
        read_ascii(&data)
    } else if data.starts_with(b"aig") {
        read_binary(&data)
    } else {
        Err(AigError::BadHeader(
            "file does not start with 'aag' or 'aig'".into(),
        ))
    }
}

/// Parses an AIGER file from a string (convenience for tests/docs).
///
/// # Errors
///
/// Same as [`read_aiger`].
pub fn read_aiger_str(s: &str) -> Result<Aig, AigError> {
    read_aiger(s.as_bytes())
}

fn parse_header(line: &str) -> Result<(usize, usize, usize, usize, usize), AigError> {
    let mut it = line.split_whitespace();
    let magic = it
        .next()
        .ok_or_else(|| AigError::BadHeader("empty header".into()))?;
    if magic != "aag" && magic != "aig" {
        return Err(AigError::BadHeader(format!("bad magic '{magic}'")));
    }
    let mut nums = [0usize; 5];
    for slot in &mut nums {
        *slot = it
            .next()
            .ok_or_else(|| AigError::BadHeader("missing M I L O A field".into()))?
            .parse()
            .map_err(|_| AigError::BadHeader("non-numeric header field".into()))?;
    }
    Ok((nums[0], nums[1], nums[2], nums[3], nums[4]))
}

fn read_ascii(data: &[u8]) -> Result<Aig, AigError> {
    let text =
        std::str::from_utf8(data).map_err(|_| AigError::BadBody("non-UTF8 ascii file".into()))?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| AigError::BadHeader("empty file".into()))?;
    let (m, i, l, o, a) = parse_header(header)?;
    if l != 0 {
        return Err(AigError::Sequential);
    }
    let mut aig = Aig::new();
    // AIGER var v corresponds to our node. We require the conventional
    // numbering: inputs 1..=i, ands i+1..=i+a; remap defensively otherwise.
    let mut lit_map = vec![Lit::NONE; 2 * (m + 1)];
    lit_map[0] = Lit::FALSE;
    lit_map[1] = Lit::TRUE;
    let set = |map: &mut Vec<Lit>, aiger_lit: usize, l: Lit| {
        map[aiger_lit] = l;
        map[aiger_lit ^ 1] = !l;
    };
    let mut input_lits = Vec::with_capacity(i);
    for _ in 0..i {
        let line = lines
            .next()
            .ok_or_else(|| AigError::BadBody("missing input line".into()))?;
        let lit: usize = line
            .trim()
            .parse()
            .map_err(|_| AigError::BadBody(format!("bad input literal '{line}'")))?;
        if !lit.is_multiple_of(2) || lit == 0 || lit > 2 * m {
            return Err(AigError::BadBody(format!("invalid input literal {lit}")));
        }
        let pi = aig.add_pi();
        set(&mut lit_map, lit, pi);
        input_lits.push(lit);
    }
    let mut output_lits = Vec::with_capacity(o);
    for _ in 0..o {
        let line = lines
            .next()
            .ok_or_else(|| AigError::BadBody("missing output line".into()))?;
        let lit: usize = line
            .trim()
            .parse()
            .map_err(|_| AigError::BadBody(format!("bad output literal '{line}'")))?;
        output_lits.push(lit);
    }
    let mut pending: Vec<(usize, usize, usize)> = Vec::with_capacity(a);
    for _ in 0..a {
        let line = lines
            .next()
            .ok_or_else(|| AigError::BadBody("missing and line".into()))?;
        let mut it = line.split_whitespace();
        let mut next = || -> Result<usize, AigError> {
            it.next()
                .ok_or_else(|| AigError::BadBody("short and line".into()))?
                .parse()
                .map_err(|_| AigError::BadBody("bad and literal".into()))
        };
        let lhs = next()?;
        let r0 = next()?;
        let r1 = next()?;
        if lhs % 2 != 0 || lhs == 0 {
            return Err(AigError::BadBody(format!("invalid and lhs {lhs}")));
        }
        pending.push((lhs, r0, r1));
    }
    // ASCII files may list ANDs out of topological order; iterate to fixpoint.
    let mut remaining = pending;
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|&(lhs, r0, r1)| {
            let a0 = lit_map.get(r0).copied().unwrap_or(Lit::NONE);
            let a1 = lit_map.get(r1).copied().unwrap_or(Lit::NONE);
            if a0 == Lit::NONE || a1 == Lit::NONE {
                return true; // fanins not ready yet
            }
            let l = aig.and(a0, a1);
            lit_map[lhs] = l;
            lit_map[lhs ^ 1] = !l;
            false
        });
        if remaining.len() == before {
            return Err(AigError::BadBody("cyclic or undefined and fanins".into()));
        }
    }
    for lit in output_lits {
        let l = lit_map.get(lit).copied().unwrap_or(Lit::NONE);
        if l == Lit::NONE {
            return Err(AigError::BadBody(format!(
                "output references undefined literal {lit}"
            )));
        }
        aig.add_po(l);
    }
    Ok(aig)
}

fn read_binary(data: &[u8]) -> Result<Aig, AigError> {
    // Header line is ASCII up to the first newline.
    let nl = data
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| AigError::BadHeader("no header line".into()))?;
    let header = std::str::from_utf8(&data[..nl])
        .map_err(|_| AigError::BadHeader("non-UTF8 header".into()))?;
    let (m, i, l, o, a) = parse_header(header)?;
    if l != 0 {
        return Err(AigError::Sequential);
    }
    if m != i + a {
        return Err(AigError::BadHeader(format!(
            "binary aig requires M = I + A (got M={m}, I={i}, A={a})"
        )));
    }
    let mut pos = nl + 1;
    let read_line = |pos: &mut usize| -> Result<String, AigError> {
        let start = *pos;
        while *pos < data.len() && data[*pos] != b'\n' {
            *pos += 1;
        }
        let s = std::str::from_utf8(&data[start..*pos])
            .map_err(|_| AigError::BadBody("non-UTF8 output line".into()))?
            .to_string();
        *pos += 1;
        Ok(s)
    };
    let mut output_lits = Vec::with_capacity(o);
    for _ in 0..o {
        let line = read_line(&mut pos)?;
        let lit: usize = line
            .trim()
            .parse()
            .map_err(|_| AigError::BadBody(format!("bad output literal '{line}'")))?;
        output_lits.push(lit);
    }
    let mut aig = Aig::new();
    let mut lits = vec![Lit::FALSE; m + 1];
    for lit in lits.iter_mut().take(i + 1).skip(1) {
        *lit = aig.add_pi();
    }
    let read_delta = |pos: &mut usize| -> Result<u64, AigError> {
        let mut x = 0u64;
        let mut shift = 0u32;
        loop {
            if *pos >= data.len() {
                return Err(AigError::BadBody("truncated binary delta".into()));
            }
            let b = data[*pos];
            *pos += 1;
            x |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(x);
            }
            shift += 7;
        }
    };
    for v in (i + 1)..=(i + a) {
        let lhs = 2 * v as u64;
        let d0 = read_delta(&mut pos)?;
        let d1 = read_delta(&mut pos)?;
        let r0 = lhs - d0;
        let r1 = r0 - d1;
        let to_lit = |aiger: u64, lits: &[Lit]| -> Result<Lit, AigError> {
            let var = (aiger / 2) as usize;
            if var >= lits.len() {
                return Err(AigError::BadBody(format!("and fanin {aiger} out of range")));
            }
            Ok(lits[var].xor_complement(aiger % 2 == 1))
        };
        let a0 = to_lit(r0, &lits)?;
        let a1 = to_lit(r1, &lits)?;
        lits[v] = aig.and(a0, a1);
    }
    for lit in output_lits {
        let var = lit / 2;
        if var >= lits.len() {
            return Err(AigError::BadBody(format!(
                "output literal {lit} out of range"
            )));
        }
        aig.add_po(lits[var].xor_complement(lit % 2 == 1));
    }
    Ok(aig)
}

/// Writes the AIG in ASCII AIGER (`aag`) format.
///
/// A `&mut` writer works too.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_ascii<W: Write>(aig: &Aig, mut w: W) -> Result<(), AigError> {
    let m = aig.num_pis() + aig.num_ands();
    // Assign AIGER vars: inputs first, then ANDs in topological order.
    let mut var_of = vec![0usize; aig.num_nodes()];
    for (k, pi) in aig.pis().iter().enumerate() {
        var_of[pi.index()] = k + 1;
    }
    for (next, n) in (aig.num_pis() + 1..).zip(aig.and_ids()) {
        var_of[n.index()] = next;
    }
    let lit_of = |l: Lit| -> usize { 2 * var_of[l.node().index()] + l.is_complement() as usize };
    writeln!(
        w,
        "aag {} {} 0 {} {}",
        m,
        aig.num_pis(),
        aig.num_pos(),
        aig.num_ands()
    )?;
    for pi in aig.pis() {
        writeln!(w, "{}", 2 * var_of[pi.index()])?;
    }
    for &po in aig.pos() {
        writeln!(w, "{}", lit_of(po))?;
    }
    for n in aig.and_ids() {
        let (f0, f1) = aig.fanins(n);
        writeln!(w, "{} {} {}", 2 * var_of[n.index()], lit_of(f0), lit_of(f1))?;
    }
    if !aig.name().is_empty() {
        writeln!(w, "c")?;
        writeln!(w, "{}", aig.name())?;
    }
    Ok(())
}

/// Writes the AIG in binary AIGER (`aig`) format.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_binary<W: Write>(aig: &Aig, mut w: W) -> Result<(), AigError> {
    let m = aig.num_pis() + aig.num_ands();
    let mut var_of = vec![0usize; aig.num_nodes()];
    for (k, pi) in aig.pis().iter().enumerate() {
        var_of[pi.index()] = k + 1;
    }
    for (next, n) in (aig.num_pis() + 1..).zip(aig.and_ids()) {
        var_of[n.index()] = next;
    }
    let lit_of = |l: Lit| -> u64 { 2 * var_of[l.node().index()] as u64 + l.is_complement() as u64 };
    writeln!(
        w,
        "aig {} {} 0 {} {}",
        m,
        aig.num_pis(),
        aig.num_pos(),
        aig.num_ands()
    )?;
    for &po in aig.pos() {
        writeln!(w, "{}", lit_of(po))?;
    }
    for n in aig.and_ids() {
        let (f0, f1) = aig.fanins(n);
        let lhs = 2 * var_of[n.index()] as u64;
        let (mut l0, mut l1) = (lit_of(f0), lit_of(f1));
        if l0 < l1 {
            std::mem::swap(&mut l0, &mut l1);
        }
        debug_assert!(
            lhs > l0 && l0 >= l1,
            "binary AIGER requires lhs > rhs0 >= rhs1"
        );
        write_delta(&mut w, lhs - l0)?;
        write_delta(&mut w, l0 - l1)?;
    }
    Ok(())
}

fn write_delta<W: Write>(w: &mut W, mut x: u64) -> std::io::Result<()> {
    loop {
        let b = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            return w.write_all(&[b]);
        }
        w.write_all(&[b | 0x80])?;
    }
}

/// Reads an AIGER file from a buffered reader line source — convenience
/// wrapper so callers holding a `BufRead` don't need to slurp manually.
///
/// # Errors
///
/// Same as [`read_aiger`].
pub fn read_aiger_buf<R: BufRead>(reader: R) -> Result<Aig, AigError> {
    read_aiger(reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::random_equiv_check;

    fn sample_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let x = aig.xor(a, b);
        let y = aig.mux(c, x, !a);
        aig.add_po(y);
        aig.add_po(!x);
        aig
    }

    #[test]
    fn ascii_round_trip_preserves_function() {
        let aig = sample_aig();
        let mut buf = Vec::new();
        write_ascii(&aig, &mut buf).expect("write");
        let back = read_aiger(&buf[..]).expect("parse");
        assert_eq!(back.num_pis(), 3);
        assert_eq!(back.num_pos(), 2);
        assert!(random_equiv_check(&aig, &back, 8, 9));
    }

    #[test]
    fn binary_round_trip_preserves_function() {
        let aig = sample_aig();
        let mut buf = Vec::new();
        write_binary(&aig, &mut buf).expect("write");
        let back = read_aiger(&buf[..]).expect("parse");
        assert!(random_equiv_check(&aig, &back, 8, 10));
    }

    #[test]
    fn parses_known_ascii_example() {
        // Half adder from the AIGER spec family: sum and carry of a, b.
        let text = "aag 7 2 0 2 3\n2\n4\n12\n14\n6 2 4\n12 6 6\n14 3 5\n";
        // lhs 14 = !a & !b (nor); 12 = a&b; outputs: 12 (carry), 14.
        let aig = read_aiger_str(text).expect("parse");
        assert_eq!(aig.num_pis(), 2);
        assert_eq!(aig.num_pos(), 2);
        let out = crate::sim::simulate_bits(&aig, &[true, true]);
        assert!(out[0]); // a&b
        assert!(!out[1]); // !a & !b
    }

    #[test]
    fn rejects_sequential() {
        let text = "aag 1 0 1 0 0\n2 3\n";
        assert!(matches!(read_aiger_str(text), Err(AigError::Sequential)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_aiger_str("hello world").is_err());
        assert!(read_aiger_str("aag x y z").is_err());
        assert!(read_aiger_str("aag 1 1 0 0 1\n2\n").is_err());
    }

    #[test]
    fn round_trip_larger_graph() {
        let mut aig = Aig::new();
        let xs = aig.add_pis(8);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            let t = aig.xor(acc, x);
            acc = aig.mux(x, t, acc);
        }
        aig.add_po(acc);
        let mut buf = Vec::new();
        write_binary(&aig, &mut buf).expect("write");
        let back = read_aiger(&buf[..]).expect("parse");
        assert!(random_equiv_check(&aig, &back, 16, 11));
    }
}
