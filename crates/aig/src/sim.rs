//! 64-bit parallel simulation of an [`Aig`].
//!
//! Each node carries one `u64` word per simulation step, evaluating 64
//! input patterns at once. Used throughout the workspace to verify circuit
//! generators against software reference models and to check that mapping
//! preserves functionality.

use crate::graph::{Aig, NodeId};
use crate::lit::Lit;
use crate::rng::Rng64;

/// Simulates the whole AIG on one 64-pattern word per PI.
///
/// `pi_values[i]` is the pattern word for the i-th primary input (in
/// [`Aig::pis`] order). Returns one word per node, indexed by node id.
///
/// # Panics
///
/// Panics if `pi_values.len() != aig.num_pis()`.
pub fn simulate_nodes(aig: &Aig, pi_values: &[u64]) -> Vec<u64> {
    assert_eq!(
        pi_values.len(),
        aig.num_pis(),
        "one pattern word per PI required"
    );
    let mut values = vec![0u64; aig.num_nodes()];
    for (pi, &v) in aig.pis().iter().zip(pi_values) {
        values[pi.index()] = v;
    }
    for n in aig.and_ids() {
        let (f0, f1) = aig.fanins(n);
        values[n.index()] = eval_lit(&values, f0) & eval_lit(&values, f1);
    }
    values
}

/// Simulates the AIG and returns one word per primary output.
pub fn simulate(aig: &Aig, pi_values: &[u64]) -> Vec<u64> {
    let values = simulate_nodes(aig, pi_values);
    aig.pos().iter().map(|&po| eval_lit(&values, po)).collect()
}

#[inline]
fn eval_lit(values: &[u64], l: Lit) -> u64 {
    let v = values[l.node().index()];
    if l.is_complement() {
        !v
    } else {
        v
    }
}

/// Evaluates one literal given per-node words.
pub fn lit_value(values: &[u64], l: Lit) -> u64 {
    eval_lit(values, l)
}

/// Convenience: simulate on single-bit input assignments (bit 0 of each word).
pub fn simulate_bits(aig: &Aig, pi_bits: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = pi_bits
        .iter()
        .map(|&b| if b { u64::MAX } else { 0 })
        .collect();
    simulate(aig, &words)
        .into_iter()
        .map(|w| w & 1 != 0)
        .collect()
}

/// Checks combinational equivalence of two AIGs with `rounds` rounds of
/// 64-pattern random simulation (a probabilistic check, suitable for tests).
///
/// Returns `false` as soon as any output word differs. Both AIGs must have
/// the same PI/PO counts.
///
/// # Panics
///
/// Panics if the interfaces differ.
pub fn random_equiv_check(a: &Aig, b: &Aig, rounds: usize, seed: u64) -> bool {
    assert_eq!(a.num_pis(), b.num_pis(), "PI counts differ");
    assert_eq!(a.num_pos(), b.num_pos(), "PO counts differ");
    let mut rng = Rng64::seed_from(seed);
    for _ in 0..rounds {
        let pi: Vec<u64> = (0..a.num_pis()).map(|_| rng.next_u64()).collect();
        if simulate(a, &pi) != simulate(b, &pi) {
            return false;
        }
    }
    true
}

/// A node's global function cannot be stored for large graphs, but for
/// graphs with at most 6 PIs this computes the full truth table of every
/// node — handy for exhaustive checks in tests.
///
/// # Panics
///
/// Panics if the AIG has more than 6 PIs.
pub fn exhaustive_node_tables(aig: &Aig) -> Vec<u64> {
    assert!(
        aig.num_pis() <= 6,
        "exhaustive simulation supports at most 6 PIs"
    );
    let n = aig.num_pis();
    let pi: Vec<u64> = (0..n)
        .map(|v| crate::tt::Tt::var(v, n.max(1)).bits())
        .collect();
    let mut values = simulate_nodes(aig, &pi);
    let m = if n == 0 { 1 } else { (1u128 << (1 << n)) - 1 } as u64;
    let m = if n >= 6 { u64::MAX } else { m };
    for v in &mut values {
        *v &= m;
    }
    values
}

/// Helper for tests: the PO truth tables of a ≤6-PI AIG.
pub fn exhaustive_po_tables(aig: &Aig) -> Vec<u64> {
    let values = exhaustive_node_tables(aig);
    let n = aig.num_pis();
    let m = if n >= 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << n)) - 1
    };
    aig.pos()
        .iter()
        .map(|&po| eval_lit(&values, po) & m)
        .collect()
}

/// Counts how many nodes lie in the transitive fanin cone of `root`
/// (including `root`, excluding PIs and the constant).
pub fn cone_size(aig: &Aig, root: NodeId) -> usize {
    let mut seen = vec![false; aig.num_nodes()];
    let mut stack = vec![root];
    let mut count = 0;
    while let Some(n) = stack.pop() {
        if seen[n.index()] || !aig.is_and(n) {
            continue;
        }
        seen[n.index()] = true;
        count += 1;
        let (f0, f1) = aig.fanins(n);
        stack.push(f0.node());
        stack.push(f1.node());
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Aig;

    fn xor_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let x = aig.xor(a, b);
        aig.add_po(x);
        aig
    }

    #[test]
    fn xor_simulates_correctly() {
        let aig = xor_aig();
        let out = simulate(&aig, &[0b1010, 0b1100]);
        assert_eq!(out[0] & 0xF, 0b0110);
    }

    #[test]
    fn simulate_bits_single_assignment() {
        let aig = xor_aig();
        assert_eq!(simulate_bits(&aig, &[true, false]), vec![true]);
        assert_eq!(simulate_bits(&aig, &[true, true]), vec![false]);
    }

    #[test]
    fn equivalent_graphs_pass_random_check() {
        let a = xor_aig();
        // Same function, different structure: a^b = (a|b) & !(a&b).
        let mut b = Aig::new();
        let x = b.add_pi();
        let y = b.add_pi();
        let o = b.or(x, y);
        let n = b.and(x, y);
        let f = b.and(o, !n);
        b.add_po(f);
        assert!(random_equiv_check(&a, &b, 16, 1));
    }

    #[test]
    fn inequivalent_graphs_fail_random_check() {
        let a = xor_aig();
        let mut b = Aig::new();
        let x = b.add_pi();
        let y = b.add_pi();
        let f = b.and(x, y);
        b.add_po(f);
        assert!(!random_equiv_check(&a, &b, 16, 1));
    }

    #[test]
    fn exhaustive_tables_match_tt() {
        let aig = xor_aig();
        let tts = exhaustive_po_tables(&aig);
        assert_eq!(tts[0], 0b0110);
    }

    #[test]
    fn cone_size_counts_ands_only() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let x = aig.xor(a, b); // three ANDs
        assert_eq!(cone_size(&aig, x.node()), 3);
        assert_eq!(cone_size(&aig, a.node()), 0);
    }
}
