//! Structural statistics and Graphviz export for AIGs.

use std::io::Write;

use crate::graph::{Aig, NodeId};

/// A structural summary of an AIG.
#[derive(Clone, Debug, PartialEq)]
pub struct AigStats {
    /// Primary inputs.
    pub num_pis: usize,
    /// Primary outputs.
    pub num_pos: usize,
    /// AND nodes.
    pub num_ands: usize,
    /// Longest PI→PO path (levels).
    pub depth: u32,
    /// Complemented edges (including PO edges).
    pub complemented_edges: usize,
    /// Maximum fanout over all nodes.
    pub max_fanout: u32,
    /// Mean fanout over driven nodes.
    pub mean_fanout: f64,
    /// Nodes with zero fanout (dangling).
    pub dangling: usize,
}

impl AigStats {
    /// Computes the summary in one pass.
    pub fn of(aig: &Aig) -> AigStats {
        let mut complemented = 0usize;
        for n in aig.and_ids() {
            let (f0, f1) = aig.fanins(n);
            complemented += f0.is_complement() as usize + f1.is_complement() as usize;
        }
        complemented += aig.pos().iter().filter(|p| p.is_complement()).count();
        let mut max_fo = 0u32;
        let mut sum_fo = 0u64;
        let mut driven = 0usize;
        let mut dangling = 0usize;
        for n in aig.node_ids() {
            if aig.is_const0(n) {
                continue;
            }
            let fo = aig.fanout_of(n);
            max_fo = max_fo.max(fo);
            if fo > 0 {
                sum_fo += fo as u64;
                driven += 1;
            } else {
                dangling += 1;
            }
        }
        AigStats {
            num_pis: aig.num_pis(),
            num_pos: aig.num_pos(),
            num_ands: aig.num_ands(),
            depth: aig.depth(),
            complemented_edges: complemented,
            max_fanout: max_fo,
            mean_fanout: sum_fo as f64 / driven.max(1) as f64,
            dangling,
        }
    }
}

impl AigStats {
    /// One JSONL line with every field.
    pub fn to_json_line(&self) -> String {
        let mut r = slap_obs::Record::new();
        r.push("num_pis", self.num_pis);
        r.push("num_pos", self.num_pos);
        r.push("num_ands", self.num_ands);
        r.push("depth", self.depth);
        r.push("complemented_edges", self.complemented_edges);
        r.push("max_fanout", self.max_fanout);
        r.push("mean_fanout", self.mean_fanout);
        r.push("dangling", self.dangling);
        r.to_json_line()
    }
}

impl std::fmt::Display for AigStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pi={} po={} and={} depth={} compl-edges={} max-fo={} mean-fo={:.2} dangling={}",
            self.num_pis,
            self.num_pos,
            self.num_ands,
            self.depth,
            self.complemented_edges,
            self.max_fanout,
            self.mean_fanout,
            self.dangling
        )
    }
}

/// Writes the AIG in Graphviz DOT format: boxes for PIs, circles for AND
/// nodes, dashed edges for complemented fanins, double circles for POs.
///
/// Intended for small graphs (debugging); a `&mut` writer works too.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_dot<W: Write>(aig: &Aig, mut w: W) -> std::io::Result<()> {
    writeln!(w, "digraph aig {{")?;
    writeln!(w, "  rankdir=BT;")?;
    for (k, pi) in aig.pis().iter().enumerate() {
        writeln!(w, "  n{} [shape=box,label=\"pi{}\"];", pi.index(), k)?;
    }
    for n in aig.and_ids() {
        writeln!(
            w,
            "  n{} [shape=circle,label=\"{}\"];",
            n.index(),
            n.index()
        )?;
        let (f0, f1) = aig.fanins(n);
        for f in [f0, f1] {
            writeln!(
                w,
                "  n{} -> n{}{};",
                f.node().index(),
                n.index(),
                if f.is_complement() {
                    " [style=dashed]"
                } else {
                    ""
                }
            )?;
        }
    }
    for (k, po) in aig.pos().iter().enumerate() {
        writeln!(w, "  po{k} [shape=doublecircle,label=\"po{k}\"];")?;
        writeln!(
            w,
            "  n{} -> po{}{};",
            po.node().index(),
            k,
            if po.is_complement() {
                " [style=dashed]"
            } else {
                ""
            }
        )?;
    }
    writeln!(w, "}}")?;
    Ok(())
}

/// True when every AND node lies in the transitive fanin of some PO —
/// i.e. the graph has no dead logic.
pub fn is_fully_used(aig: &Aig) -> bool {
    let mut used = vec![false; aig.num_nodes()];
    let mut stack: Vec<NodeId> = aig.pos().iter().map(|p| p.node()).collect();
    while let Some(n) = stack.pop() {
        if used[n.index()] {
            continue;
        }
        used[n.index()] = true;
        if aig.is_and(n) {
            let (f0, f1) = aig.fanins(n);
            stack.push(f0.node());
            stack.push(f1.node());
        }
    }
    aig.and_ids().all(|n| used[n.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Aig;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let x = aig.and(a, !b);
        let y = aig.and(x, b);
        aig.add_po(!y);
        aig
    }

    #[test]
    fn stats_counts() {
        let aig = sample();
        let s = AigStats::of(&aig);
        assert_eq!(s.num_pis, 2);
        assert_eq!(s.num_ands, 2);
        assert_eq!(s.depth, 2);
        assert_eq!(s.complemented_edges, 2); // !b fanin and !y PO
        assert_eq!(s.dangling, 0);
        assert!(s.mean_fanout >= 1.0);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn stats_json_line_round_trips() {
        let s = AigStats::of(&sample());
        let line = s.to_json_line();
        let fields = slap_obs::parse_object(line.trim()).expect("valid json");
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("num_pis").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(get("num_ands").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(get("depth").and_then(|v| v.as_u64()), Some(2));
        assert!(get("mean_fanout").and_then(|v| v.as_f64()).is_some());
    }

    #[test]
    fn dangling_detected() {
        let mut aig = sample();
        let c = aig.add_pi(); // never used
        let _ = c;
        let s = AigStats::of(&aig);
        assert_eq!(s.dangling, 1);
        assert!(is_fully_used(&aig)); // dead PI but no dead ANDs
    }

    #[test]
    fn dead_and_detected() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let _dead = aig.and(a, b);
        let live = aig.and(a, !b);
        aig.add_po(live);
        assert!(!is_fully_used(&aig));
    }

    #[test]
    fn dot_output_shape() {
        let aig = sample();
        let mut buf = Vec::new();
        write_dot(&aig, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("digraph aig {"));
        assert!(text.contains("style=dashed"));
        assert!(text.contains("doublecircle"));
        assert!(text.trim_end().ends_with('}'));
    }
}
