//! And-Inverter Graph (AIG) substrate for the SLAP reproduction.
//!
//! This crate provides the Boolean-network layer that every other crate in
//! the workspace builds on: a structurally hashed [`Aig`] with constant-time
//! access to the structural attributes used by the paper (levels, reverse
//! levels, fanout counts, edge polarities), 64-bit parallel simulation,
//! small-function truth-table utilities ([`tt`]), a deterministic PRNG
//! ([`rng`]) so every experiment is reproducible from a seed, and AIGER
//! reader/writers ([`aiger`]).
//!
//! # Example
//!
//! ```
//! use slap_aig::Aig;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let c = aig.add_pi();
//! // f = (a & b) | c, built from AND and inverters only.
//! let ab = aig.and(a, b);
//! let f = aig.or(ab, c);
//! aig.add_po(f);
//! assert_eq!(aig.num_ands(), 2);
//! assert_eq!(aig.level_of(f.node()), 2);
//! ```

pub mod aiger;
pub mod cone;
pub mod error;
pub mod graph;
pub mod lit;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod tt;

pub use error::AigError;
pub use graph::{Aig, NodeId};
pub use lit::Lit;
pub use rng::Rng64;
pub use stats::AigStats;
pub use tt::Tt;
