//! The structurally hashed And-Inverter Graph.

use std::collections::HashMap;
use std::fmt;

use crate::lit::Lit;

/// Index of a node inside an [`Aig`].
///
/// Node 0 is always the constant-false node. Nodes are stored in
/// topological order: every AND node appears after both of its fanins.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant-false node present in every AIG.
    pub const CONST0: NodeId = NodeId(0);

    /// Creates a node id from a raw index.
    #[inline]
    pub fn new(index: usize) -> NodeId {
        NodeId(index as u32)
    }

    /// The raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct Node {
    f0: Lit,
    f1: Lit,
    level: u32,
    fanout: u32,
}

/// A combinational And-Inverter Graph.
///
/// The graph is append-only: primary inputs and AND nodes are added and
/// never removed, which keeps node ids stable and the node array in
/// topological order. Structural hashing folds constants, idempotence
/// (`a & a`), and contradiction (`a & !a`) on the fly, so [`Aig::and`] may
/// return an existing literal instead of creating a node.
///
/// # Example
///
/// ```
/// use slap_aig::Aig;
///
/// let mut aig = Aig::new();
/// let a = aig.add_pi();
/// let b = aig.add_pi();
/// let f = aig.and(a, b);
/// // Structural hashing: the same AND is not duplicated.
/// assert_eq!(aig.and(b, a), f);
/// // Folding: a & !a == false.
/// assert_eq!(aig.and(a, !a), slap_aig::Lit::FALSE);
/// ```
#[derive(Clone)]
pub struct Aig {
    nodes: Vec<Node>,
    pis: Vec<NodeId>,
    pos: Vec<Lit>,
    strash: HashMap<(Lit, Lit), NodeId>,
    num_ands: usize,
    name: String,
}

impl Aig {
    /// Creates an empty AIG containing only the constant-false node.
    pub fn new() -> Aig {
        Aig {
            nodes: vec![Node {
                f0: Lit::NONE,
                f1: Lit::NONE,
                level: 0,
                fanout: 0,
            }],
            pis: Vec::new(),
            pos: Vec::new(),
            strash: HashMap::new(),
            num_ands: 0,
            name: String::new(),
        }
    }

    /// Creates an empty AIG with capacity reserved for `nodes` total
    /// nodes, `pis` primary inputs, and `pos` primary outputs — used by
    /// rebuild-style consumers (e.g. optimization passes) to avoid
    /// incremental growth allocations.
    pub fn with_capacity(nodes: usize, pis: usize, pos: usize) -> Aig {
        let mut aig = Aig::new();
        aig.nodes.reserve(nodes);
        aig.pis.reserve(pis);
        aig.pos.reserve(pos);
        aig.strash.reserve(nodes);
        aig
    }

    /// Sets a human-readable design name (used by reports and AIGER output).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The design name, empty if never set.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input and returns its (plain) literal.
    pub fn add_pi(&mut self) -> Lit {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node {
            f0: Lit::NONE,
            f1: Lit::NONE,
            level: 0,
            fanout: 0,
        });
        self.pis.push(id);
        Lit::new(id, false)
    }

    /// Adds `n` primary inputs, returning their literals in order.
    pub fn add_pis(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.add_pi()).collect()
    }

    /// Registers `l` as a primary output. PO edges count towards the
    /// fanout of the driving node (`FO(n)` in the paper).
    pub fn add_po(&mut self, l: Lit) {
        debug_assert!(l.node().index() < self.nodes.len(), "literal out of range");
        self.nodes[l.node().index()].fanout += 1;
        self.pos.push(l);
    }

    /// The AND of two literals, with structural hashing and constant folding.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        debug_assert!(a.node().index() < self.nodes.len());
        debug_assert!(b.node().index() < self.nodes.len());
        // Constant folding.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        // Normalize fanin order for hashing.
        let (f0, f1) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(f0, f1)) {
            return Lit::new(id, false);
        }
        let level = 1 + self.level_of(f0.node()).max(self.level_of(f1.node()));
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node {
            f0,
            f1,
            level,
            fanout: 0,
        });
        self.nodes[f0.node().index()].fanout += 1;
        self.nodes[f1.node().index()].fanout += 1;
        self.strash.insert((f0, f1), id);
        self.num_ands += 1;
        Lit::new(id, false)
    }

    /// The OR of two literals (`!( !a & !b )`).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// The XOR of two literals, built from three ANDs.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n0 = self.and(a, !b);
        let n1 = self.and(!a, b);
        self.or(n0, n1)
    }

    /// The XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Multiplexer: `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let a = self.and(sel, t);
        let b = self.and(!sel, e);
        self.or(a, b)
    }

    /// Majority-of-three, the full-adder carry function.
    pub fn maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// N-ary AND over an iterator of literals (balanced tree).
    pub fn and_all<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        self.reduce_balanced(lits.into_iter().collect(), Lit::TRUE, Aig::and)
    }

    /// N-ary OR over an iterator of literals (balanced tree).
    pub fn or_all<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        self.reduce_balanced(lits.into_iter().collect(), Lit::FALSE, Aig::or)
    }

    /// N-ary XOR over an iterator of literals (balanced tree).
    pub fn xor_all<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        self.reduce_balanced(lits.into_iter().collect(), Lit::FALSE, Aig::xor)
    }

    fn reduce_balanced(
        &mut self,
        mut lits: Vec<Lit>,
        empty: Lit,
        op: fn(&mut Aig, Lit, Lit) -> Lit,
    ) -> Lit {
        if lits.is_empty() {
            return empty;
        }
        while lits.len() > 1 {
            let mut next = Vec::with_capacity(lits.len().div_ceil(2));
            for pair in lits.chunks(2) {
                next.push(if pair.len() == 2 {
                    op(self, pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            lits = next;
        }
        lits[0]
    }

    /// Number of nodes including the constant node, PIs, and ANDs.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.num_ands
    }

    /// Number of primary inputs.
    pub fn num_pis(&self) -> usize {
        self.pis.len()
    }

    /// Number of primary outputs.
    pub fn num_pos(&self) -> usize {
        self.pos.len()
    }

    /// Primary-input node ids, in creation order.
    pub fn pis(&self) -> &[NodeId] {
        &self.pis
    }

    /// Primary-output literals, in creation order.
    pub fn pos(&self) -> &[Lit] {
        &self.pos
    }

    /// True for the constant node.
    pub fn is_const0(&self, n: NodeId) -> bool {
        n == NodeId::CONST0
    }

    /// True for primary inputs.
    pub fn is_pi(&self, n: NodeId) -> bool {
        n != NodeId::CONST0 && self.nodes[n.index()].f0 == Lit::NONE
    }

    /// True for AND nodes.
    pub fn is_and(&self, n: NodeId) -> bool {
        n != NodeId::CONST0 && self.nodes[n.index()].f0 != Lit::NONE
    }

    /// The two fanin literals of an AND node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an AND node.
    pub fn fanins(&self, n: NodeId) -> (Lit, Lit) {
        let node = &self.nodes[n.index()];
        assert!(node.f0 != Lit::NONE, "{n} is not an AND node");
        (node.f0, node.f1)
    }

    /// Structural level of a node (`lvl(n)`): the longest path from any PI,
    /// with PIs and the constant node at level 0.
    #[inline]
    pub fn level_of(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].level
    }

    /// Fanout count of a node (`FO(n)`), including PO edges.
    #[inline]
    pub fn fanout_of(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].fanout
    }

    /// The maximum level over all nodes (the AIG depth).
    pub fn depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// AND nodes bucketed by structural level: `levels()[l]` holds every
    /// AND node of level `l + 1`, in ascending id order (PIs and the
    /// constant, all level 0, are omitted). Nodes within one bucket have
    /// no structural dependency on each other — both fanins sit at
    /// strictly lower levels — which is what makes level-ordered parallel
    /// cut enumeration safe. Note that node ids are topological but *not*
    /// level-monotone, so level order differs from id order.
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut levels: Vec<Vec<NodeId>> = Vec::new();
        for n in self.and_ids() {
            let l = self.level_of(n) as usize;
            debug_assert!(l >= 1, "AND nodes sit above level 0");
            if levels.len() < l {
                levels.resize_with(l, Vec::new);
            }
            levels[l - 1].push(n);
        }
        levels
    }

    /// Reverse levels (`rLvl(n)`): the longest path from each node to any
    /// PO. Nodes not in any PO cone get reverse level 0.
    pub fn reverse_levels(&self) -> Vec<u32> {
        let mut rlvl = vec![0u32; self.nodes.len()];
        // Process in reverse topological order (ids descend).
        for idx in (0..self.nodes.len()).rev() {
            let node = &self.nodes[idx];
            if node.f0 == Lit::NONE {
                continue;
            }
            let r = rlvl[idx] + 1;
            let i0 = node.f0.node().index();
            let i1 = node.f1.node().index();
            if rlvl[i0] < r {
                rlvl[i0] = r;
            }
            if rlvl[i1] < r {
                rlvl[i1] = r;
            }
        }
        rlvl
    }

    /// Whether any outgoing edge of `n` is complemented: true if some AND
    /// fanin edge or PO edge from `n` is inverted. This is feature (i) of
    /// the paper's cut features and `inv(e0)` of the node embedding.
    ///
    /// Computed in O(|AIG|); batch queries should use
    /// [`Aig::complemented_fanout_flags`].
    pub fn has_complemented_fanout(&self, n: NodeId) -> bool {
        self.complemented_fanout_flags()[n.index()]
    }

    /// For every node, whether it drives at least one complemented edge.
    pub fn complemented_fanout_flags(&self) -> Vec<bool> {
        let mut flags = vec![false; self.nodes.len()];
        for node in &self.nodes {
            if node.f0 == Lit::NONE {
                continue;
            }
            if node.f0.is_complement() {
                flags[node.f0.node().index()] = true;
            }
            if node.f1.is_complement() {
                flags[node.f1.node().index()] = true;
            }
        }
        for po in &self.pos {
            if po.is_complement() {
                flags[po.node().index()] = true;
            }
        }
        flags
    }

    /// Iterator over the ids of all AND nodes in topological order.
    pub fn and_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len())
            .map(NodeId::new)
            .filter(move |&n| self.is_and(n))
    }

    /// Iterator over all node ids (constant, PIs, ANDs) in topological order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::new)
    }
}

impl Default for Aig {
    fn default() -> Aig {
        Aig::new()
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig {{ name: {:?}, pis: {}, pos: {}, ands: {}, depth: {} }}",
            self.name,
            self.num_pis(),
            self.num_pos(),
            self.num_ands(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_constant_node() {
        let aig = Aig::new();
        assert_eq!(aig.num_nodes(), 1);
        assert!(aig.is_const0(NodeId::CONST0));
        assert!(!aig.is_pi(NodeId::CONST0));
        assert!(!aig.is_and(NodeId::CONST0));
    }

    #[test]
    fn strashing_dedups_commutative_ands() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn constant_folding_rules() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::TRUE, a), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn levels_track_longest_path() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        assert_eq!(aig.level_of(a.node()), 0);
        assert_eq!(aig.level_of(ab.node()), 1);
        assert_eq!(aig.level_of(abc.node()), 2);
        assert_eq!(aig.depth(), 2);
    }

    #[test]
    fn fanout_counts_include_pos() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let x = aig.and(a, b);
        let y = aig.and(a, !b);
        aig.add_po(x);
        aig.add_po(x);
        assert_eq!(aig.fanout_of(a.node()), 2);
        assert_eq!(aig.fanout_of(b.node()), 2);
        assert_eq!(aig.fanout_of(x.node()), 2);
        assert_eq!(aig.fanout_of(y.node()), 0);
    }

    #[test]
    fn reverse_levels_from_pos() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.add_po(abc);
        let rlvl = aig.reverse_levels();
        assert_eq!(rlvl[abc.node().index()], 0);
        assert_eq!(rlvl[ab.node().index()], 1);
        assert_eq!(rlvl[a.node().index()], 2);
        assert_eq!(rlvl[c.node().index()], 1);
    }

    #[test]
    fn complemented_fanout_flags_cover_and_and_po_edges() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let x = aig.and(!a, b);
        aig.add_po(!x);
        let flags = aig.complemented_fanout_flags();
        assert!(flags[a.node().index()]);
        assert!(!flags[b.node().index()]);
        assert!(flags[x.node().index()]);
    }

    #[test]
    fn xor_and_mux_semantics_via_two_input_truth_table() {
        // Check all 4 input combinations by building separate constant graphs.
        for va in [false, true] {
            for vb in [false, true] {
                let mut aig = Aig::new();
                let a = Lit::FALSE.xor_complement(va);
                let b = Lit::FALSE.xor_complement(vb);
                assert_eq!(aig.xor(a, b) == Lit::TRUE, va ^ vb);
                assert_eq!(aig.or(a, b) == Lit::TRUE, va | vb);
                assert_eq!(aig.mux(a, b, !b) == Lit::TRUE, if va { vb } else { !vb });
            }
        }
    }

    #[test]
    fn nary_reductions() {
        let mut aig = Aig::new();
        let xs = aig.add_pis(5);
        let all = aig.and_all(xs.iter().copied());
        assert!(aig.is_and(all.node()));
        assert_eq!(aig.and_all(std::iter::empty()), Lit::TRUE);
        assert_eq!(aig.or_all(std::iter::empty()), Lit::FALSE);
        assert_eq!(aig.xor_all([xs[0]]), xs[0]);
    }

    #[test]
    fn levels_bucket_every_and_once_by_level() {
        let mut aig = Aig::new();
        let xs = aig.add_pis(4);
        let ab = aig.and(xs[0], xs[1]); // level 1
        let cd = aig.and(xs[2], xs[3]); // level 1
        let f = aig.and(ab, cd); // level 2
        aig.add_po(f);
        let levels = aig.levels();
        assert_eq!(levels.len(), aig.depth() as usize);
        assert_eq!(levels[0], vec![ab.node(), cd.node()]);
        assert_eq!(levels[1], vec![f.node()]);
        let total: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(total, aig.num_ands());
        for (li, bucket) in levels.iter().enumerate() {
            assert!(bucket.windows(2).all(|w| w[0] < w[1]));
            for &n in bucket {
                assert_eq!(aig.level_of(n) as usize, li + 1);
            }
        }
    }

    #[test]
    fn maj_matches_majority() {
        for bits in 0u32..8 {
            let mut aig = Aig::new();
            let vals = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let lits: Vec<Lit> = vals.iter().map(|&v| Lit::FALSE.xor_complement(v)).collect();
            let m = aig.maj(lits[0], lits[1], lits[2]);
            let expect = vals.iter().filter(|&&v| v).count() >= 2;
            assert_eq!(m == Lit::TRUE, expect, "bits={bits:03b}");
        }
    }
}
