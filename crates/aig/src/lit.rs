//! AIG literals: a node index plus a complement bit.

use std::fmt;

use crate::graph::NodeId;

/// A literal is an edge into a node: the node index shifted left by one,
/// with the least-significant bit recording whether the edge is inverted
/// (the `inv(e)` function of the paper).
///
/// `Lit::FALSE` (the constant-0 node, non-inverted) and `Lit::TRUE`
/// (the same node, inverted) are always available.
///
/// # Example
///
/// ```
/// use slap_aig::Lit;
///
/// let l = Lit::new(slap_aig::NodeId::new(3), false);
/// assert_eq!(l.node().index(), 3);
/// assert!(!l.is_complement());
/// assert!((!l).is_complement());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal (node 0, plain edge).
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal (node 0, inverted edge).
    pub const TRUE: Lit = Lit(1);
    /// Sentinel for "no literal": used for PI fanins inside the graph
    /// and by rebuild-style consumers (e.g. optimization passes) for
    /// not-yet-mapped nodes. Never a valid edge.
    pub const NONE: Lit = Lit(u32::MAX);

    /// Creates a literal from a node and a complement flag.
    #[inline]
    pub fn new(node: NodeId, complement: bool) -> Lit {
        Lit(node.index() as u32 * 2 + complement as u32)
    }

    /// Creates a literal from its raw AIGER-style encoding (`2*var + c`).
    #[inline]
    pub fn from_raw(raw: u32) -> Lit {
        Lit(raw)
    }

    /// The raw AIGER-style encoding of this literal.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The node this literal points at.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId::new((self.0 >> 1) as usize)
    }

    /// Whether the edge is inverted (`inv(e) = 1` in the paper).
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 != 0
    }

    /// The same literal with the requested complement flag.
    #[inline]
    pub fn with_complement(self, complement: bool) -> Lit {
        Lit((self.0 & !1) | complement as u32)
    }

    /// True if this is one of the two constant literals.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 < 2
    }

    /// XORs the complement bit with `c` — a conditional inversion.
    #[inline]
    pub fn xor_complement(self, c: bool) -> Lit {
        Lit(self.0 ^ c as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Lit::NONE {
            return write!(f, "Lit(NONE)");
        }
        write!(
            f,
            "{}n{}",
            if self.is_complement() { "!" } else { "" },
            self.node().index()
        )
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Lit::FALSE.raw(), 0);
        assert_eq!(Lit::TRUE.raw(), 1);
        assert_eq!(!Lit::FALSE, Lit::TRUE);
        assert!(Lit::FALSE.is_const());
        assert!(Lit::TRUE.is_const());
    }

    #[test]
    fn round_trip_node_and_complement() {
        for idx in [0usize, 1, 5, 1000] {
            for c in [false, true] {
                let l = Lit::new(NodeId::new(idx), c);
                assert_eq!(l.node().index(), idx);
                assert_eq!(l.is_complement(), c);
                assert_eq!(Lit::from_raw(l.raw()), l);
            }
        }
    }

    #[test]
    fn not_flips_only_complement() {
        let l = Lit::new(NodeId::new(7), false);
        assert_eq!((!l).node(), l.node());
        assert!((!l).is_complement());
        assert_eq!(!!l, l);
    }

    #[test]
    fn xor_complement_matches_not() {
        let l = Lit::new(NodeId::new(9), true);
        assert_eq!(l.xor_complement(true), !l);
        assert_eq!(l.xor_complement(false), l);
    }

    #[test]
    fn with_complement_is_idempotent() {
        let l = Lit::new(NodeId::new(4), true);
        assert_eq!(
            l.with_complement(false).with_complement(false),
            l.with_complement(false)
        );
        assert_eq!(l.with_complement(true), l);
    }

    #[test]
    fn display_formats() {
        let l = Lit::new(NodeId::new(3), true);
        assert_eq!(format!("{l}"), "!n3");
        assert_eq!(format!("{}", !l), "n3");
    }
}
