//! Deterministic pseudo-random number generation.
//!
//! Every experiment in this reproduction must replay bit-for-bit from a
//! seed, so instead of pulling in an external RNG crate we ship a small
//! xoshiro256** generator seeded through SplitMix64 — the standard,
//! well-tested construction recommended by the xoshiro authors.

/// A deterministic xoshiro256** PRNG.
///
/// # Example
///
/// ```
/// use slap_aig::Rng64;
///
/// let mut a = Rng64::seed_from(42);
/// let mut b = Rng64::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Rng64 {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        Rng64 { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free-enough: widening multiply.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `usize` in `0..bound`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)`.
    pub fn f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniform `f32` in `[-scale, scale)`, used for weight initialization.
    pub fn f32_symmetric(&mut self, scale: f32) -> f32 {
        (self.f32() * 2.0 - 1.0) * scale
    }

    /// A random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 != 0
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Splits off an independent generator (for per-thread streams).
    pub fn split(&mut self) -> Rng64 {
        Rng64::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng64::seed_from(7);
        let mut b = Rng64::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from(1);
        let mut b = Rng64::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::seed_from(3);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_hits_every_small_value() {
        let mut r = Rng64::seed_from(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from(5);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::seed_from(6);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements the identity permutation is astronomically unlikely.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_independent() {
        let mut r = Rng64::seed_from(8);
        let mut s1 = r.split();
        let mut s2 = r.split();
        assert_ne!(s1.next_u64(), s2.next_u64());
    }
}
