//! Property-based tests for truth tables, simulation, and strashing.

use proptest::prelude::*;
use slap_aig::tt::permutations;
use slap_aig::{Aig, Lit, Tt};

fn tt3() -> impl Strategy<Value = Tt> {
    (0u64..256).prop_map(|b| Tt::from_bits(b, 3))
}

proptest! {
    #[test]
    fn de_morgan(a in tt3(), b in tt3()) {
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }

    #[test]
    fn xor_is_its_own_inverse(a in tt3(), b in tt3()) {
        prop_assert_eq!(a.xor(b).xor(b), a);
    }

    #[test]
    fn double_flip_is_identity(a in tt3(), v in 0usize..3) {
        prop_assert_eq!(a.flip_input(v).flip_input(v), a);
        prop_assert_eq!(a.not().not(), a);
    }

    #[test]
    fn swap_is_an_involution(a in tt3(), i in 0usize..3, j in 0usize..3) {
        prop_assert_eq!(a.swap_vars(i, j).swap_vars(i, j), a);
        prop_assert_eq!(a.swap_vars(i, j), a.swap_vars(j, i));
    }

    #[test]
    fn permute_composes(a in tt3(), pi in 0usize..6, pj in 0usize..6) {
        let perms = permutations(3);
        let p = &perms[pi % perms.len()];
        let q = &perms[pj % perms.len()];
        // Applying p then q equals applying the composition directly.
        let step = a.permute(p).permute(q);
        let composed: Vec<usize> = (0..3).map(|i| p[q[i]]).collect();
        prop_assert_eq!(step, a.permute(&composed));
    }

    #[test]
    fn shrink_preserves_semantics(bits in 0u64..256) {
        let f = Tt::from_bits(bits, 3);
        let (g, support) = f.shrink_to_support();
        // Evaluate both on all assignments: g over compacted vars must
        // agree with f.
        for x in 0u64..8 {
            let fx = (f.bits() >> x) & 1;
            let mut y = 0u64;
            for (new, &old) in support.iter().enumerate() {
                y |= ((x >> old) & 1) << new;
            }
            let gy = (g.bits() >> y) & 1;
            prop_assert_eq!(fx, gy, "assignment {:03b}", x);
        }
    }

    #[test]
    fn flip_inputs_mask_equals_sequential_flips(a in tt3(), mask in 0u32..8) {
        let mut expect = a;
        for v in 0..3 {
            if mask & (1 << v) != 0 {
                expect = expect.flip_input(v);
            }
        }
        prop_assert_eq!(a.flip_inputs(mask), expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strashing_never_changes_semantics(
        steps in prop::collection::vec((0usize..50, 0usize..50, any::<bool>(), any::<bool>()), 1..25)
    ) {
        // Build the same function twice: once with strashing (Aig::and),
        // once tracked as exhaustive truth tables; they must agree.
        let mut aig = Aig::new();
        let pis = aig.add_pis(4);
        let mut lits: Vec<Lit> = pis.clone();
        let mut tts: Vec<Tt> = (0..4).map(|i| Tt::var(i, 4)).collect();
        for &(i, j, ci, cj) in &steps {
            let a = lits[i % lits.len()].xor_complement(ci);
            let b = lits[j % lits.len()].xor_complement(cj);
            let ta = if ci { tts[i % tts.len()].not() } else { tts[i % tts.len()] };
            let tb = if cj { tts[j % tts.len()].not() } else { tts[j % tts.len()] };
            lits.push(aig.and(a, b));
            tts.push(ta.and(tb));
        }
        let last = *lits.last().expect("nonempty");
        aig.add_po(last);
        let got = slap_aig::sim::exhaustive_po_tables(&aig)[0];
        prop_assert_eq!(got, tts.last().expect("nonempty").bits());
    }

    #[test]
    fn levels_are_consistent_with_fanins(
        steps in prop::collection::vec((0usize..50, 0usize..50, any::<bool>(), any::<bool>()), 1..25)
    ) {
        let mut aig = Aig::new();
        let mut lits = aig.add_pis(4);
        for &(i, j, ci, cj) in &steps {
            let a = lits[i % lits.len()].xor_complement(ci);
            let b = lits[j % lits.len()].xor_complement(cj);
            lits.push(aig.and(a, b));
        }
        for n in aig.and_ids() {
            let (f0, f1) = aig.fanins(n);
            let expect = 1 + aig.level_of(f0.node()).max(aig.level_of(f1.node()));
            prop_assert_eq!(aig.level_of(n), expect);
        }
    }
}
