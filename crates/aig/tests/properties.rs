//! Randomized property tests for truth tables, simulation, and strashing.
//!
//! Driven by the workspace's own deterministic [`Rng64`] instead of an
//! external property-testing crate (workspace policy: zero external
//! dependencies). Every run replays the same cases from a fixed seed.

use slap_aig::tt::permutations;
use slap_aig::{Aig, Lit, Rng64, Tt};

fn tt3(rng: &mut Rng64) -> Tt {
    Tt::from_bits(rng.below(256), 3)
}

#[test]
fn de_morgan() {
    let mut rng = Rng64::seed_from(0xA16_0001);
    for _ in 0..256 {
        let (a, b) = (tt3(&mut rng), tt3(&mut rng));
        assert_eq!(a.and(b).not(), a.not().or(b.not()));
        assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }
}

#[test]
fn xor_is_its_own_inverse() {
    let mut rng = Rng64::seed_from(0xA16_0002);
    for _ in 0..256 {
        let (a, b) = (tt3(&mut rng), tt3(&mut rng));
        assert_eq!(a.xor(b).xor(b), a);
    }
}

#[test]
fn double_flip_is_identity() {
    let mut rng = Rng64::seed_from(0xA16_0003);
    for _ in 0..256 {
        let a = tt3(&mut rng);
        let v = rng.index(3);
        assert_eq!(a.flip_input(v).flip_input(v), a);
        assert_eq!(a.not().not(), a);
    }
}

#[test]
fn swap_is_an_involution() {
    let mut rng = Rng64::seed_from(0xA16_0004);
    for _ in 0..256 {
        let a = tt3(&mut rng);
        let (i, j) = (rng.index(3), rng.index(3));
        assert_eq!(a.swap_vars(i, j).swap_vars(i, j), a);
        assert_eq!(a.swap_vars(i, j), a.swap_vars(j, i));
    }
}

#[test]
fn permute_composes() {
    let mut rng = Rng64::seed_from(0xA16_0005);
    let perms = permutations(3);
    for _ in 0..256 {
        let a = tt3(&mut rng);
        let p = &perms[rng.index(perms.len())];
        let q = &perms[rng.index(perms.len())];
        // Applying p then q equals applying the composition directly.
        let step = a.permute(p).permute(q);
        let composed: Vec<usize> = (0..3).map(|i| p[q[i]]).collect();
        assert_eq!(step, a.permute(&composed));
    }
}

#[test]
fn shrink_preserves_semantics() {
    // Exhaustive over every 3-input function — stronger than sampling.
    for bits in 0u64..256 {
        let f = Tt::from_bits(bits, 3);
        let (g, support) = f.shrink_to_support();
        // Evaluate both on all assignments: g over compacted vars must
        // agree with f.
        for x in 0u64..8 {
            let fx = (f.bits() >> x) & 1;
            let mut y = 0u64;
            for (new, &old) in support.iter().enumerate() {
                y |= ((x >> old) & 1) << new;
            }
            let gy = (g.bits() >> y) & 1;
            assert_eq!(fx, gy, "function {bits:08b}, assignment {x:03b}");
        }
    }
}

#[test]
fn flip_inputs_mask_equals_sequential_flips() {
    let mut rng = Rng64::seed_from(0xA16_0006);
    for _ in 0..64 {
        let a = tt3(&mut rng);
        for mask in 0u32..8 {
            let mut expect = a;
            for v in 0..3 {
                if mask & (1 << v) != 0 {
                    expect = expect.flip_input(v);
                }
            }
            assert_eq!(a.flip_inputs(mask), expect);
        }
    }
}

/// Random `(i, j, ci, cj)` AND-step sequences for DAG construction.
fn random_steps(rng: &mut Rng64, max_len: usize, bound: usize) -> Vec<(usize, usize, bool, bool)> {
    let len = 1 + rng.index(max_len);
    (0..len)
        .map(|_| (rng.index(bound), rng.index(bound), rng.bool(), rng.bool()))
        .collect()
}

#[test]
fn strashing_never_changes_semantics() {
    let mut rng = Rng64::seed_from(0xA16_0007);
    for _ in 0..64 {
        let steps = random_steps(&mut rng, 24, 50);
        // Build the same function twice: once with strashing (Aig::and),
        // once tracked as exhaustive truth tables; they must agree.
        let mut aig = Aig::new();
        let pis = aig.add_pis(4);
        let mut lits: Vec<Lit> = pis.clone();
        let mut tts: Vec<Tt> = (0..4).map(|i| Tt::var(i, 4)).collect();
        for &(i, j, ci, cj) in &steps {
            let a = lits[i % lits.len()].xor_complement(ci);
            let b = lits[j % lits.len()].xor_complement(cj);
            let ta = if ci {
                tts[i % tts.len()].not()
            } else {
                tts[i % tts.len()]
            };
            let tb = if cj {
                tts[j % tts.len()].not()
            } else {
                tts[j % tts.len()]
            };
            lits.push(aig.and(a, b));
            tts.push(ta.and(tb));
        }
        let last = *lits.last().expect("nonempty");
        aig.add_po(last);
        let got = slap_aig::sim::exhaustive_po_tables(&aig)[0];
        assert_eq!(got, tts.last().expect("nonempty").bits());
    }
}

#[test]
fn levels_are_consistent_with_fanins() {
    let mut rng = Rng64::seed_from(0xA16_0008);
    for _ in 0..64 {
        let steps = random_steps(&mut rng, 24, 50);
        let mut aig = Aig::new();
        let mut lits = aig.add_pis(4);
        for &(i, j, ci, cj) in &steps {
            let a = lits[i % lits.len()].xor_complement(ci);
            let b = lits[j % lits.len()].xor_complement(cj);
            lits.push(aig.and(a, b));
        }
        for n in aig.and_ids() {
            let (f0, f1) = aig.fanins(n);
            let expect = 1 + aig.level_of(f0.node()).max(aig.level_of(f1.node()));
            assert_eq!(aig.level_of(n), expect);
        }
    }
}
