//! The nine structural cut features of §IV-A of the paper.

use slap_aig::cone::cut_volume;
use slap_aig::{Aig, NodeId};

use crate::cut::Cut;

/// Number of structural cut features (paper §IV-A defines nine).
pub const NUM_CUT_FEATURES: usize = 9;

/// The nine structural features of a cut, in the paper's order:
///
/// 1. root drives at least one complemented edge,
/// 2. number of leaves,
/// 3. volume (nodes covered),
/// 4. minimum leaf level,
/// 5. maximum leaf level,
/// 6. sum of leaf levels,
/// 7. minimum leaf fanout,
/// 8. maximum leaf fanout,
/// 9. sum of leaf fanouts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CutFeatures {
    /// Feature (i): whether the root has a complemented outgoing edge.
    pub root_complemented: bool,
    /// Feature (ii): number of leaves.
    pub num_leaves: u32,
    /// Feature (iii): `vol(c)`.
    pub volume: u32,
    /// Feature (iv).
    pub min_leaf_level: u32,
    /// Feature (v).
    pub max_leaf_level: u32,
    /// Feature (vi).
    pub sum_leaf_levels: u32,
    /// Feature (vii).
    pub min_leaf_fanout: u32,
    /// Feature (viii).
    pub max_leaf_fanout: u32,
    /// Feature (ix).
    pub sum_leaf_fanouts: u32,
}

impl CutFeatures {
    /// The features as an `f32` vector in the paper's order.
    pub fn to_vec(self) -> [f32; NUM_CUT_FEATURES] {
        [
            self.root_complemented as u32 as f32,
            self.num_leaves as f32,
            self.volume as f32,
            self.min_leaf_level as f32,
            self.max_leaf_level as f32,
            self.sum_leaf_levels as f32,
            self.min_leaf_fanout as f32,
            self.max_leaf_fanout as f32,
            self.sum_leaf_fanouts as f32,
        ]
    }

    /// Human-readable feature names, aligned with [`CutFeatures::to_vec`].
    pub fn names() -> [&'static str; NUM_CUT_FEATURES] {
        [
            "rootCompl",
            "numLeaves",
            "volume",
            "minLeafLvl",
            "maxLeafLvl",
            "sumLeafLvl",
            "minLeafFO",
            "maxLeafFO",
            "sumLeafFO",
        ]
    }
}

/// Computes the nine features of `cut` rooted at `root`.
///
/// `compl_flags` must come from [`Aig::complemented_fanout_flags`] (passed
/// in so bulk feature extraction is O(1) per cut for that feature).
///
/// # Panics
///
/// Panics if the cut is not a valid cut of `root` (its cone is not closed
/// under the leaves).
pub fn cut_features(aig: &Aig, root: NodeId, cut: &Cut, compl_flags: &[bool]) -> CutFeatures {
    let mut buf = [NodeId::CONST0; crate::MAX_CUT_SIZE];
    for (slot, leaf) in buf.iter_mut().zip(cut.leaves()) {
        *slot = leaf;
    }
    let leaves = &buf[..cut.len()];
    let volume = cut_volume(aig, root, leaves)
        .expect("cut_features requires a valid cut: cone not closed under the leaves")
        as u32;
    let mut min_lvl = u32::MAX;
    let mut max_lvl = 0u32;
    let mut sum_lvl = 0u32;
    let mut min_fo = u32::MAX;
    let mut max_fo = 0u32;
    let mut sum_fo = 0u32;
    for &l in leaves {
        let lvl = aig.level_of(l);
        let fo = aig.fanout_of(l);
        min_lvl = min_lvl.min(lvl);
        max_lvl = max_lvl.max(lvl);
        sum_lvl += lvl;
        min_fo = min_fo.min(fo);
        max_fo = max_fo.max(fo);
        sum_fo += fo;
    }
    CutFeatures {
        root_complemented: compl_flags[root.index()],
        num_leaves: leaves.len() as u32,
        volume,
        min_leaf_level: min_lvl,
        max_leaf_level: max_lvl,
        sum_leaf_levels: sum_lvl,
        min_leaf_fanout: min_fo,
        max_leaf_fanout: max_fo,
        sum_leaf_fanouts: sum_fo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_aig::Aig;

    #[test]
    fn features_of_three_input_cone() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let ab = aig.and(a, b);
        let f = aig.and(ab, !c);
        aig.add_po(!f);
        let flags = aig.complemented_fanout_flags();
        let cut = Cut::from_leaves(&[a.node(), b.node(), c.node()]);
        let feat = cut_features(&aig, f.node(), &cut, &flags);
        assert!(feat.root_complemented); // PO edge is inverted
        assert_eq!(feat.num_leaves, 3);
        assert_eq!(feat.volume, 2);
        assert_eq!(feat.min_leaf_level, 0);
        assert_eq!(feat.max_leaf_level, 0);
        assert_eq!(feat.sum_leaf_levels, 0);
        // a,b feed only ab; c feeds only f.
        assert_eq!(feat.min_leaf_fanout, 1);
        assert_eq!(feat.max_leaf_fanout, 1);
        assert_eq!(feat.sum_leaf_fanouts, 3);
    }

    #[test]
    fn features_with_internal_leaf() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let ab = aig.and(a, b);
        let f = aig.and(ab, c);
        aig.add_po(f);
        let flags = aig.complemented_fanout_flags();
        let cut = Cut::from_leaves(&[ab.node(), c.node()]);
        let feat = cut_features(&aig, f.node(), &cut, &flags);
        assert!(!feat.root_complemented);
        assert_eq!(feat.num_leaves, 2);
        assert_eq!(feat.volume, 1);
        assert_eq!(feat.min_leaf_level, 0);
        assert_eq!(feat.max_leaf_level, 1);
        assert_eq!(feat.sum_leaf_levels, 1);
    }

    #[test]
    fn vector_and_names_align() {
        assert_eq!(CutFeatures::names().len(), NUM_CUT_FEATURES);
        let f = CutFeatures {
            root_complemented: true,
            num_leaves: 2,
            volume: 3,
            min_leaf_level: 4,
            max_leaf_level: 5,
            sum_leaf_levels: 9,
            min_leaf_fanout: 1,
            max_leaf_fanout: 2,
            sum_leaf_fanouts: 3,
        };
        let v = f.to_vec();
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[5], 9.0);
        assert_eq!(v[8], 3.0);
    }
}
