//! Aggregate statistics over enumerated cut sets — the numbers behind
//! the paper's memory-footprint discussion.

use slap_aig::Aig;

use crate::enumerate::CutArena;

/// Distribution summary of a [`CutArena`].
#[derive(Clone, Debug, PartialEq)]
pub struct CutStats {
    /// Total non-trivial cuts (the footprint metric).
    pub total: usize,
    /// AND nodes with at least one stored cut.
    pub nodes: usize,
    /// Mean cuts per AND node.
    pub mean_per_node: f64,
    /// Maximum cuts on any node.
    pub max_per_node: usize,
    /// Histogram of cut sizes `1..=k` (index 0 = 1-leaf cuts).
    pub size_histogram: Vec<usize>,
    /// Mean leaves per cut.
    pub mean_leaves: f64,
}

impl CutStats {
    /// Computes the summary for `sets` over `aig`.
    pub fn of(aig: &Aig, sets: &CutArena) -> CutStats {
        let mut total = 0usize;
        let mut nodes = 0usize;
        let mut max_per_node = 0usize;
        let mut size_histogram = vec![0usize; sets.k()];
        let mut leaves_sum = 0usize;
        for n in aig.and_ids() {
            let cuts = sets.cuts_of(n);
            if cuts.is_empty() {
                continue;
            }
            nodes += 1;
            total += cuts.len();
            max_per_node = max_per_node.max(cuts.len());
            for c in cuts {
                size_histogram[c.len() - 1] += 1;
                leaves_sum += c.len();
            }
        }
        CutStats {
            total,
            nodes,
            mean_per_node: total as f64 / nodes.max(1) as f64,
            max_per_node,
            size_histogram,
            mean_leaves: leaves_sum as f64 / total.max(1) as f64,
        }
    }
}

impl std::fmt::Display for CutStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cuts={} nodes={} mean/node={:.1} max/node={} mean-leaves={:.2} sizes={:?}",
            self.total,
            self.nodes,
            self.mean_per_node,
            self.max_per_node,
            self.mean_leaves,
            self.size_histogram
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_cuts, CutConfig};
    use crate::policy::{DefaultPolicy, UnlimitedPolicy};

    fn chain(n: usize) -> Aig {
        let mut aig = Aig::new();
        let pis = aig.add_pis(n + 1);
        let mut acc = pis[0];
        for &x in &pis[1..] {
            acc = aig.and(acc, x);
        }
        aig.add_po(acc);
        aig
    }

    #[test]
    fn totals_match_cutsets() {
        let aig = chain(6);
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let stats = CutStats::of(&aig, &sets);
        assert_eq!(stats.total, sets.total_cuts());
        assert_eq!(stats.nodes, aig.num_ands());
        let histo_sum: usize = stats.size_histogram.iter().sum();
        assert_eq!(histo_sum, stats.total);
    }

    #[test]
    fn mean_leaves_within_k() {
        let aig = chain(8);
        let sets = enumerate_cuts(&aig, &CutConfig::with_k(4), &mut UnlimitedPolicy::new());
        let stats = CutStats::of(&aig, &sets);
        assert!(
            stats.mean_leaves >= 2.0 && stats.mean_leaves <= 4.0,
            "{}",
            stats.mean_leaves
        );
        assert_eq!(stats.size_histogram.len(), 4);
        // A pure AND chain has no 1-leaf non-trivial cuts.
        assert_eq!(stats.size_histogram[0], 0);
    }

    #[test]
    fn unlimited_mean_per_node_at_least_default() {
        let aig = chain(10);
        let d = CutStats::of(
            &aig,
            &enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default()),
        );
        let u = CutStats::of(
            &aig,
            &enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new()),
        );
        assert!(u.mean_per_node >= d.mean_per_node);
        assert!(!format!("{u}").is_empty());
    }
}
