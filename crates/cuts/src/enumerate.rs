//! Bottom-up cut enumeration (Eq. 1 of the paper) into a flat cut arena.

use std::ops::Range;

use slap_aig::{Aig, NodeId};

use crate::cut::{cut_cmp, Cut, MAX_CUT_SIZE};
use crate::policy::{CutPolicy, PolicyStats};

/// Work and pruning counters from one [`enumerate_cuts`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CutEnumStats {
    /// AND nodes processed.
    pub nodes_processed: u64,
    /// Cuts produced by fanin-set merging (before dedup and pruning).
    pub cuts_merged: u64,
    /// Duplicate cuts removed after merging.
    pub dedup_removed: u64,
    /// Cuts stored across all nodes after policy refinement.
    pub cuts_enumerated: u64,
    /// Cuts the policy removed as dominated.
    pub dominance_kills: u64,
    /// Nodes where the policy's per-node cap dropped cuts.
    pub cap_truncations: u64,
    /// Cuts dropped by those caps.
    pub cuts_dropped_by_cap: u64,
}

impl CutEnumStats {
    /// Adds the merge/dedup work counters of `other` (the pruning fields
    /// are owned by the policy and filled in from its stats delta).
    fn add_work(&mut self, other: &CutEnumStats) {
        self.nodes_processed += other.nodes_processed;
        self.cuts_merged += other.cuts_merged;
        self.dedup_removed += other.dedup_removed;
        self.cuts_enumerated += other.cuts_enumerated;
    }
}

/// Parameters of cut enumeration shared by all policies.
#[derive(Clone, Debug)]
pub struct CutConfig {
    /// Maximum number of leaves per cut (the paper uses k = 5).
    pub k: usize,
}

impl CutConfig {
    /// The paper's configuration: 5-feasible cuts.
    pub fn new() -> CutConfig {
        CutConfig { k: 5 }
    }

    /// Custom `k` (at most [`MAX_CUT_SIZE`]).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds [`MAX_CUT_SIZE`].
    pub fn with_k(k: usize) -> CutConfig {
        assert!(
            (1..=MAX_CUT_SIZE).contains(&k),
            "k must be in 1..={MAX_CUT_SIZE}"
        );
        CutConfig { k }
    }
}

impl Default for CutConfig {
    fn default() -> CutConfig {
        CutConfig::new()
    }
}

/// Identifier of a stored cut: its offset in the owning [`CutArena`].
///
/// A `CutId` is only meaningful with respect to the arena it came from and
/// is invalidated by any operation that rebuilds the arena (such as
/// [`CutArena::retain_selected`]). The sentinel [`CutId::STRUCTURAL`]
/// denotes a structural cut `{fanin0, fanin1}` that was never stored —
/// consumers resolve it from the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CutId(u32);

impl CutId {
    /// Sentinel for the implicit structural cut of a node (not stored in
    /// the arena; reconstruct it from the node's fanins).
    pub const STRUCTURAL: CutId = CutId(u32::MAX);

    /// Wraps an arena offset.
    #[inline]
    pub fn new(index: usize) -> CutId {
        CutId(index as u32)
    }

    /// The arena offset.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Memory-footprint summary of a [`CutArena`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Cuts stored in the flat buffer.
    pub cuts: usize,
    /// Bytes held by the cut buffer and the span table.
    pub bytes: usize,
    /// Per-node spans tracked (one per graph node, empty ones included).
    pub spans: usize,
}

/// Per-node cut lists produced by [`enumerate_cuts`], stored as one
/// contiguous `Vec<Cut>` with per-node [`Range<u32>`] spans.
///
/// The trivial cut of each node is stored implicitly (it always exists and
/// is never exposed to matching); `cuts_of` returns only the non-trivial
/// cuts, in the order the policy left them. Every stored cut is addressed
/// by a [`CutId`] — its offset in the flat buffer — which downstream
/// layers (matching, the SLAP flow) carry instead of cloning leaf lists.
///
/// Invariant: spans are laid out in ascending node order (the enumeration
/// order), so `starts` is monotone and `CutId` ranges of distinct nodes
/// never overlap.
#[derive(Clone, Debug)]
pub struct CutArena {
    cuts: Vec<Cut>,
    /// `starts[i]..starts[i + 1]` is node `i`'s span; length `num_nodes + 1`.
    starts: Vec<u32>,
    /// Next `starts` entry to finalize (nodes are pushed in ascending order).
    filled: usize,
    k: usize,
    stats: CutEnumStats,
}

/// The previous name of [`CutArena`], kept so external callers written
/// against the nested-`Vec` era keep compiling.
pub type CutSets = CutArena;

impl CutArena {
    /// An empty arena over `num_nodes` graph nodes.
    pub fn with_nodes(num_nodes: usize, k: usize) -> CutArena {
        CutArena {
            cuts: Vec::new(),
            starts: vec![0; num_nodes + 1],
            filled: 1,
            k,
            stats: CutEnumStats::default(),
        }
    }

    /// Builds an arena from explicit per-node cut lists (golden tests and
    /// external tooling). `lists[i]` becomes node `i`'s span.
    pub fn from_lists(lists: &[Vec<Cut>], k: usize) -> CutArena {
        let mut arena = CutArena::with_nodes(lists.len(), k);
        for (i, list) in lists.iter().enumerate() {
            arena.push_node(NodeId::new(i), list);
        }
        arena.seal();
        arena
    }

    /// Appends `list` as the span of `node`. Nodes must be pushed in
    /// ascending index order; skipped nodes get empty spans.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or not after every pushed node.
    pub fn push_node(&mut self, node: NodeId, list: &[Cut]) {
        let idx = node.index();
        assert!(
            idx + 1 < self.starts.len(),
            "node {idx} outside arena of {} nodes",
            self.starts.len() - 1
        );
        assert!(
            idx + 1 >= self.filled,
            "nodes must be pushed in ascending order (got {idx} after {})",
            self.filled - 1
        );
        let start = self.cuts.len() as u32;
        for s in &mut self.starts[self.filled..=idx] {
            *s = start;
        }
        self.cuts.extend_from_slice(list);
        self.starts[idx + 1] = self.cuts.len() as u32;
        self.filled = idx + 2;
    }

    /// Finalizes the span table: every node not pushed gets an empty span.
    pub fn seal(&mut self) {
        let end = self.cuts.len() as u32;
        for s in &mut self.starts[self.filled..] {
            *s = end;
        }
        self.filled = self.starts.len();
    }

    /// Counters recorded while enumerating these sets.
    pub fn stats(&self) -> &CutEnumStats {
        &self.stats
    }

    /// The non-trivial cuts stored for `node`.
    #[inline]
    pub fn cuts_of(&self, node: NodeId) -> &[Cut] {
        let r = self.span_of(node);
        &self.cuts[r.start as usize..r.end as usize]
    }

    /// The arena offsets of `node`'s span: `span.start..span.end` are the
    /// [`CutId`] indices of its cuts.
    #[inline]
    pub fn span_of(&self, node: NodeId) -> Range<u32> {
        let i = node.index();
        if i + 1 >= self.filled {
            // Mid-enumeration lookup of a node not pushed yet — e.g. a PI
            // whose id interleaves between AND ids, so no later push has
            // sealed its slot. Its span is empty by definition.
            return 0..0;
        }
        self.starts[i]..self.starts[i + 1]
    }

    /// The `(id, cut)` pairs of `node`'s span.
    pub fn ids_of(&self, node: NodeId) -> impl ExactSizeIterator<Item = (CutId, &Cut)> + '_ {
        let r = self.span_of(node);
        self.cuts[r.start as usize..r.end as usize]
            .iter()
            .enumerate()
            .map(move |(i, c)| (CutId(r.start + i as u32), c))
    }

    /// The cut stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the [`CutId::STRUCTURAL`] sentinel or out of
    /// bounds for this arena.
    #[inline]
    pub fn cut(&self, id: CutId) -> &Cut {
        &self.cuts[id.index()]
    }

    /// The `k` the sets were enumerated with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of non-trivial cuts across all nodes — the paper's
    /// "cuts considered / memory footprint" metric.
    pub fn total_cuts(&self) -> usize {
        self.cuts.len()
    }

    /// Number of nodes with at least one stored cut.
    pub fn num_nodes_with_cuts(&self) -> usize {
        self.starts.windows(2).filter(|w| w[0] < w[1]).count()
    }

    /// Memory-footprint summary (cuts stored, bytes, spans).
    pub fn arena_stats(&self) -> ArenaStats {
        ArenaStats {
            cuts: self.cuts.len(),
            bytes: self.cuts.len() * std::mem::size_of::<Cut>()
                + self.starts.len() * std::mem::size_of::<u32>(),
            spans: self.starts.len().saturating_sub(1),
        }
    }

    /// Applies an external selection: for every AND node, keeps only cuts
    /// for which `select` returns true. This is the `read_cuts` step of
    /// the SLAP flow. The arena is compacted in place, so all previously
    /// issued [`CutId`]s are invalidated.
    ///
    /// If `ensure_structural` is set, the structural cut `{fanin0, fanin1}`
    /// of each AND node is re-added when the selection removed every cut,
    /// so the node stays mappable (the paper's "only the trivial cut"
    /// case — the node then costs one 2-input gate if the cover needs it).
    pub fn retain_selected<F>(&mut self, aig: &Aig, mut select: F, ensure_structural: bool)
    where
        F: FnMut(NodeId, &Cut) -> bool,
    {
        self.retain_with_ids(aig, |n, _, c| select(n, c), ensure_structural)
    }

    /// [`CutArena::retain_selected`] with the [`CutId`] of each candidate
    /// exposed, so callers holding flat id-keyed masks (the SLAP flow)
    /// select in O(1) without per-node cursors.
    pub fn retain_with_ids<F>(&mut self, aig: &Aig, mut select: F, ensure_structural: bool)
    where
        F: FnMut(NodeId, CutId, &Cut) -> bool,
    {
        // Rebuild into fresh buffers (two allocations for the whole pass,
        // regardless of node count). Ids passed to `select` are the
        // pre-compaction ids, offered in ascending order.
        let mut new_cuts: Vec<Cut> = Vec::with_capacity(self.cuts.len());
        let mut new_starts: Vec<u32> = vec![0; self.starts.len()];
        let num_spans = self.starts.len() - 1;
        for (i, new_start) in new_starts.iter_mut().enumerate().take(num_spans) {
            *new_start = new_cuts.len() as u32;
            let n = NodeId::new(i);
            if !aig.is_and(n) {
                continue;
            }
            let (start, end) = (self.starts[i] as usize, self.starts[i + 1] as usize);
            let before = new_cuts.len();
            for r in start..end {
                let c = self.cuts[r];
                if select(n, CutId(r as u32), &c) {
                    new_cuts.push(c);
                }
            }
            if ensure_structural && new_cuts.len() == before {
                let (f0, f1) = aig.fanins(n);
                new_cuts.push(Cut::from_leaves(&[f0.node(), f1.node()]));
            }
        }
        if let Some(last) = new_starts.last_mut() {
            *last = new_cuts.len() as u32;
        }
        self.cuts = new_cuts;
        self.starts = new_starts;
        self.filled = self.starts.len();
    }
}

/// Enumerates k-feasible cuts for every AND node bottom-up, applying
/// `policy` to each node's merged list before storing it.
///
/// The stored (policy-refined) list is what propagates to fanout merges,
/// matching ABC's priority-cuts behaviour where pruning shapes the whole
/// downstream cut space.
///
/// When the process-wide thread count ([`slap_par::threads`]) is above 1
/// and the policy supports forking ([`CutPolicy::fork`]), enumeration
/// runs level-parallel: nodes of one topological level are independent
/// given the (frozen) results of strictly lower levels, so each level is
/// mapped across workers and the refined lists are spliced into the
/// arena in node order afterwards. The result is bit-identical to the
/// sequential path for every thread count — refinement of a forkable
/// policy is a pure per-node function and the merged list is
/// canonicalized (sorted + deduped) before refinement, so neither
/// schedule nor worker assignment can leak into the output. Policies
/// whose refinement consumes state in node order (e.g.
/// [`crate::ShufflePolicy`]'s RNG) return `None` from `fork` and keep
/// the sequential path.
///
/// Allocation discipline (sequential path): one scratch buffer is reused
/// for every node's merge + refine, and the refined list is appended to
/// the arena's flat buffer — no per-node `Vec` is ever created. The
/// parallel path adds O(levels × threads) worker-local buffers; the
/// allocation-budget test accounts for them as `base + c · threads`.
pub fn enumerate_cuts(aig: &Aig, config: &CutConfig, policy: &mut dyn CutPolicy) -> CutArena {
    let _span = slap_obs::span("enumerate");
    if slap_par::threads() > 1 && !slap_par::in_worker() && aig.num_ands() > 0 {
        if let Some(prototype) = policy.fork() {
            return enumerate_cuts_parallel(aig, config, policy, prototype);
        }
    }
    enumerate_cuts_sequential(aig, config, policy)
}

fn enumerate_cuts_sequential(
    aig: &Aig,
    config: &CutConfig,
    policy: &mut dyn CutPolicy,
) -> CutArena {
    let policy_before = policy.stats();
    let k = config.k;
    let mut stats = CutEnumStats::default();
    let mut arena = CutArena::with_nodes(aig.num_nodes(), k);
    let mut scratch: Vec<Cut> = Vec::new();
    let per_node = slap_obs::Registry::global().histogram("cuts.per_node");
    for n in aig.and_ids() {
        let (f0, f1) = aig.fanins(n);
        merge_fanin_sets(
            aig,
            k,
            n,
            arena.cuts_of(f0.node()),
            arena.cuts_of(f1.node()),
            &mut scratch,
            &mut stats,
            policy,
        );
        per_node.observe(scratch.len() as u64);
        arena.push_node(n, &scratch);
    }
    arena.seal();
    finish_stats(&mut stats, policy, &policy_before);
    publish_arena(arena, stats)
}

/// One node's merge + canonicalize + refine step, shared by the
/// sequential and parallel paths (determinism depends on both running
/// byte-for-byte the same per-node computation). Leaves the refined list
/// in `scratch`.
#[allow(clippy::too_many_arguments)]
fn merge_fanin_sets(
    aig: &Aig,
    k: usize,
    n: NodeId,
    set0: &[Cut],
    set1: &[Cut],
    scratch: &mut Vec<Cut>,
    stats: &mut CutEnumStats,
    policy: &mut dyn CutPolicy,
) {
    let (f0, f1) = aig.fanins(n);
    scratch.clear();
    // Eq. (1): the fanin sets each extended by their trivial cut.
    let t0 = Cut::trivial(f0.node());
    let t1 = Cut::trivial(f1.node());
    for c0 in std::iter::once(&t0).chain(set0.iter()) {
        for c1 in std::iter::once(&t1).chain(set1.iter()) {
            if let Some(m) = c0.merge(c1, k) {
                scratch.push(m);
            }
        }
    }
    stats.nodes_processed += 1;
    stats.cuts_merged += scratch.len() as u64;
    // Canonical order + dedup (different merge paths can produce the
    // same leaf set); the policy then reorders/prunes as it likes.
    scratch.sort_by(cut_cmp);
    let before_dedup = scratch.len();
    scratch.dedup();
    stats.dedup_removed += (before_dedup - scratch.len()) as u64;
    // The trivial cut of n can never be produced by merging (leaves
    // precede n topologically), so no need to remove it.
    policy.refine(aig, n, scratch);
    stats.cuts_enumerated += scratch.len() as u64;
}

/// Fills the pruning fields of `stats` from the policy's delta since
/// `before` (parallel forks have already been absorbed at this point).
fn finish_stats(stats: &mut CutEnumStats, policy: &dyn CutPolicy, before: &PolicyStats) {
    let pruned = policy.stats().delta(before);
    stats.dominance_kills = pruned.dominance_kills;
    stats.cap_truncations = pruned.cap_truncations;
    stats.cuts_dropped_by_cap = pruned.cuts_dropped_by_cap;
}

/// Stamps `stats` onto the arena and publishes the run's counters to the
/// global registry.
fn publish_arena(mut arena: CutArena, stats: CutEnumStats) -> CutArena {
    arena.stats = stats;
    let arena_stats = arena.arena_stats();
    let reg = slap_obs::Registry::global();
    reg.counter("cuts.enumerated").add(stats.cuts_enumerated);
    reg.counter("cuts.merged").add(stats.cuts_merged);
    reg.counter("cuts.dominance_kills")
        .add(stats.dominance_kills);
    reg.counter("cuts.cap_truncations")
        .add(stats.cap_truncations);
    reg.counter("cuts.arena_bytes")
        .add(arena_stats.bytes as u64);
    arena
}

/// Where a node's refined cut list lives during level-parallel
/// enumeration: `bufs[buf][start..start + len]`. Buffers are frozen once
/// their level completes, so later levels read them without
/// synchronization.
#[derive(Clone, Copy)]
struct Slot {
    buf: u32,
    start: u32,
    len: u32,
}

const NO_SLOT: Slot = Slot {
    buf: u32::MAX,
    start: 0,
    len: 0,
};

/// Shared read-only context for one level: the slot table and the frozen
/// buffers of all completed levels.
struct LevelCtx {
    slots: Vec<Slot>,
    bufs: Vec<Vec<Cut>>,
    stats: CutEnumStats,
}

impl LevelCtx {
    fn cuts_of(&self, n: NodeId) -> &[Cut] {
        let s = self.slots[n.index()];
        if s.buf == u32::MAX {
            &[]
        } else {
            &self.bufs[s.buf as usize][s.start as usize..(s.start + s.len) as usize]
        }
    }
}

/// Per-worker state for one level of parallel enumeration. Results stay
/// in `out` (with `spans` recording each node's slice) and are only
/// registered in the shared slot table — on the driver thread — after
/// the level's barrier.
struct LevelWorker {
    policy: Box<dyn CutPolicy + Send + Sync>,
    scratch: Vec<Cut>,
    out: Vec<Cut>,
    spans: Vec<(u32, u32, u32)>,
    stats: CutEnumStats,
    per_node: slap_obs::HistogramShard,
}

/// Level-synchronized parallel enumeration (see [`enumerate_cuts`]).
///
/// Node ids are topological but *not* level-monotone, so results cannot
/// be pushed into the arena as they are produced; they are buffered per
/// worker and spliced in ascending node order at the end.
fn enumerate_cuts_parallel(
    aig: &Aig,
    config: &CutConfig,
    policy: &mut dyn CutPolicy,
    prototype: Box<dyn CutPolicy + Send + Sync>,
) -> CutArena {
    let policy_before = policy.stats();
    let k = config.k;
    let levels = aig.levels();
    let per_node_hist = slap_obs::Registry::global().histogram("cuts.per_node");
    let ctx = LevelCtx {
        slots: vec![NO_SLOT; aig.num_nodes()],
        bufs: Vec::new(),
        stats: CutEnumStats::default(),
    };
    let mut fork_stats: Vec<PolicyStats> = Vec::new();
    let ctx = slap_par::par_levels(
        &levels,
        ctx,
        |_w| LevelWorker {
            policy: prototype
                .fork()
                .expect("a forkable policy's forks must fork"),
            scratch: Vec::new(),
            out: Vec::new(),
            spans: Vec::new(),
            stats: CutEnumStats::default(),
            per_node: slap_obs::HistogramShard::new(per_node_hist.clone()),
        },
        |ctx, worker, _i, &n| {
            let (f0, f1) = aig.fanins(n);
            merge_fanin_sets(
                aig,
                k,
                n,
                ctx.cuts_of(f0.node()),
                ctx.cuts_of(f1.node()),
                &mut worker.scratch,
                &mut worker.stats,
                worker.policy.as_mut(),
            );
            worker.per_node.observe(worker.scratch.len() as u64);
            let start = worker.out.len() as u32;
            worker.out.extend_from_slice(&worker.scratch);
            worker
                .spans
                .push((n.index() as u32, start, worker.scratch.len() as u32));
        },
        |ctx, _level, _results, workers| {
            // Barrier: register every worker's freshly written spans in
            // the slot table, freeze its buffer, and fold its counters.
            // Worker order is fixed, and sums are commutative anyway.
            for worker in workers {
                let buf_idx = ctx.bufs.len() as u32;
                for &(node, start, len) in &worker.spans {
                    ctx.slots[node as usize] = Slot {
                        buf: buf_idx,
                        start,
                        len,
                    };
                }
                ctx.bufs.push(worker.out);
                ctx.stats.add_work(&worker.stats);
                fork_stats.push(worker.policy.stats());
                // Dropping the worker flushes its histogram shard.
            }
        },
    );
    let LevelCtx {
        slots,
        bufs,
        mut stats,
    } = ctx;
    for s in fork_stats {
        policy.absorb_stats(s);
    }
    // Splice the per-worker buffers into the arena in ascending node
    // order — the exact layout the sequential path produces.
    let mut arena = CutArena::with_nodes(aig.num_nodes(), k);
    for n in aig.and_ids() {
        let s = slots[n.index()];
        if s.buf == u32::MAX {
            arena.push_node(n, &[]);
        } else {
            arena.push_node(
                n,
                &bufs[s.buf as usize][s.start as usize..(s.start + s.len) as usize],
            );
        }
    }
    arena.seal();
    finish_stats(&mut stats, policy, &policy_before);
    publish_arena(arena, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DefaultPolicy, ShufflePolicy, UnlimitedPolicy};
    use slap_aig::Lit;

    /// A small 2-level circuit: f = (a&b) & (c&d).
    fn two_level() -> (Aig, Lit, Lit, Lit) {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let d = aig.add_pi();
        let ab = aig.and(a, b);
        let cd = aig.and(c, d);
        let f = aig.and(ab, cd);
        aig.add_po(f);
        (aig, ab, cd, f)
    }

    #[test]
    fn enumerates_expected_cut_sets() {
        let (aig, ab, cd, f) = two_level();
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        // ab has exactly the structural cut {a,b}.
        assert_eq!(sets.cuts_of(ab.node()).len(), 1);
        // f has {ab,cd}, {ab,c,d}, {a,b,cd}, {a,b,c,d}.
        let cuts = sets.cuts_of(f.node());
        assert_eq!(cuts.len(), 4);
        assert!(cuts.iter().any(|c| c.len() == 4));
        let _ = cd;
    }

    #[test]
    fn k_limits_cut_width() {
        let mut aig = Aig::new();
        let xs = aig.add_pis(6);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.and(acc, x);
        }
        aig.add_po(acc);
        let sets3 = enumerate_cuts(&aig, &CutConfig::with_k(3), &mut UnlimitedPolicy::new());
        for n in aig.and_ids() {
            for c in sets3.cuts_of(n) {
                assert!(c.len() <= 3);
            }
        }
    }

    #[test]
    fn total_cuts_counts_all_nodes() {
        let (aig, _, _, _) = two_level();
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        assert_eq!(sets.total_cuts(), 1 + 1 + 4);
    }

    #[test]
    fn unlimited_supersets_default() {
        // Default filters dominated cuts; unlimited must keep at least as many.
        let mut aig = Aig::new();
        let xs = aig.add_pis(5);
        let ab = aig.and(xs[0], xs[1]);
        let abc = aig.and(ab, xs[2]);
        let abcd = aig.and(abc, xs[3]);
        let f = aig.and(abcd, xs[4]);
        aig.add_po(f);
        let d = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let u = enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new());
        assert!(u.total_cuts() >= d.total_cuts());
    }

    #[test]
    fn retain_selected_filters_and_restores_structural() {
        let (aig, _, _, f) = two_level();
        let mut sets = enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new());
        // Drop everything.
        sets.retain_selected(&aig, |_, _| false, true);
        let cuts = sets.cuts_of(f.node());
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].len(), 2); // structural cut restored
    }

    #[test]
    fn retain_selected_keeps_matching() {
        let (aig, _, _, f) = two_level();
        let mut sets = enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new());
        sets.retain_selected(&aig, |_, c| c.len() == 4, true);
        let cuts = sets.cuts_of(f.node());
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].len(), 4);
    }

    #[test]
    fn retain_with_ids_passes_stable_span_offsets() {
        let (aig, _, _, f) = two_level();
        let mut sets = enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new());
        let span = sets.span_of(f.node());
        let keep_id = CutId(span.start + 1);
        let expected = *sets.cut(keep_id);
        let mut seen = Vec::new();
        sets.retain_with_ids(
            &aig,
            |_, id, _| {
                seen.push(id);
                id == keep_id
            },
            false,
        );
        // Every stored cut was offered exactly once, ids ascending.
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(sets.cuts_of(f.node()), &[expected]);
        // Ids were reissued for the compacted arena.
        assert_eq!(sets.span_of(f.node()).len(), 1);
    }

    #[test]
    fn arena_ids_resolve_to_their_cuts() {
        let (aig, _, _, f) = two_level();
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        for n in aig.and_ids() {
            for (id, cut) in sets.ids_of(n) {
                assert_eq!(sets.cut(id), cut);
            }
        }
        let span = sets.span_of(f.node());
        assert_eq!(span.len(), sets.cuts_of(f.node()).len());
        let stats = sets.arena_stats();
        assert_eq!(stats.cuts, sets.total_cuts());
        assert_eq!(stats.spans, aig.num_nodes());
        assert!(stats.bytes >= stats.cuts * std::mem::size_of::<Cut>());
    }

    #[test]
    fn from_lists_round_trips() {
        let (aig, _, _, _) = two_level();
        let enumerated = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let lists: Vec<Vec<Cut>> = (0..aig.num_nodes())
            .map(|i| enumerated.cuts_of(NodeId::new(i)).to_vec())
            .collect();
        let rebuilt = CutArena::from_lists(&lists, enumerated.k());
        assert_eq!(rebuilt.total_cuts(), enumerated.total_cuts());
        for n in aig.and_ids() {
            assert_eq!(rebuilt.cuts_of(n), enumerated.cuts_of(n));
        }
    }

    #[test]
    fn shuffle_policy_reduces_cut_counts() {
        let mut aig = Aig::new();
        let xs = aig.add_pis(8);
        // A denser structure with many cuts per node.
        let mut layer: Vec<Lit> = xs.clone();
        while layer.len() > 1 {
            let mut next = Vec::new();
            for w in layer.windows(2) {
                next.push(aig.and(w[0], w[1]));
            }
            layer = next;
        }
        aig.add_po(layer[0]);
        let full = enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new());
        let some = enumerate_cuts(
            &aig,
            &CutConfig::default(),
            &mut ShufflePolicy::with_keep(1, 2),
        );
        assert!(some.total_cuts() < full.total_cuts());
        for n in aig.and_ids() {
            assert!(some.cuts_of(n).len() <= 2);
        }
    }

    #[test]
    fn enum_stats_track_work_and_pruning() {
        let (aig, _, _, _) = two_level();
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let s = sets.stats();
        assert_eq!(s.nodes_processed, aig.num_ands() as u64);
        assert_eq!(s.cuts_enumerated, sets.total_cuts() as u64);
        assert!(s.cuts_merged >= s.cuts_enumerated);

        // A limit of 1 must truncate at the output node (4 candidate cuts).
        let t = enumerate_cuts(
            &aig,
            &CutConfig::default(),
            &mut DefaultPolicy::with_limit(1),
        );
        assert!(t.stats().cap_truncations >= 1);
        assert!(t.stats().cuts_dropped_by_cap >= 1);

        // Reconvergence produces dominated cuts (e.g. {ab,c} ⊆ {a,b,ab,c}
        // at g) that the default policy kills and unlimited keeps.
        let mut recon = Aig::new();
        let xs = recon.add_pis(3);
        let ab = recon.and(xs[0], xs[1]);
        let abc = recon.and(ab, xs[2]);
        let g = recon.and(ab, abc);
        recon.add_po(g);
        let d = enumerate_cuts(&recon, &CutConfig::default(), &mut DefaultPolicy::default());
        let u = enumerate_cuts(&recon, &CutConfig::default(), &mut UnlimitedPolicy::new());
        assert!(d.stats().dominance_kills > 0);
        assert_eq!(u.stats().dominance_kills, 0);
    }

    /// A dense multi-level circuit (several nodes per level) so the
    /// parallel path actually fans out.
    fn layered_aig() -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_pis(10);
        let mut layer: Vec<Lit> = xs;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for w in layer.windows(2) {
                next.push(aig.and(w[0], w[1]));
            }
            layer = next;
        }
        aig.add_po(layer[0]);
        aig
    }

    #[test]
    fn parallel_enumeration_is_bit_identical_to_sequential() {
        let aig = layered_aig();
        let config = CutConfig::default();
        slap_par::set_threads(1);
        let seq_default = enumerate_cuts(&aig, &config, &mut DefaultPolicy::default());
        let seq_unlimited = enumerate_cuts(&aig, &config, &mut UnlimitedPolicy::new());
        let seq_shuffle = enumerate_cuts(&aig, &config, &mut ShufflePolicy::with_keep(3, 4));
        for t in [2, 4, 8] {
            slap_par::set_threads(t);
            let par_default = enumerate_cuts(&aig, &config, &mut DefaultPolicy::default());
            let par_unlimited = enumerate_cuts(&aig, &config, &mut UnlimitedPolicy::new());
            // Shuffle cannot fork; it must still be identical (sequential).
            let par_shuffle = enumerate_cuts(&aig, &config, &mut ShufflePolicy::with_keep(3, 4));
            for n in aig.and_ids() {
                assert_eq!(par_default.cuts_of(n), seq_default.cuts_of(n), "t={t}");
                assert_eq!(par_unlimited.cuts_of(n), seq_unlimited.cuts_of(n), "t={t}");
                assert_eq!(par_shuffle.cuts_of(n), seq_shuffle.cuts_of(n), "t={t}");
            }
            assert_eq!(par_default.stats(), seq_default.stats(), "t={t}");
            assert_eq!(par_unlimited.stats(), seq_unlimited.stats(), "t={t}");
            assert_eq!(
                par_default
                    .span_of(aig.and_ids().last().expect("ands"))
                    .len(),
                seq_default
                    .cuts_of(aig.and_ids().last().expect("ands"))
                    .len()
            );
        }
        slap_par::set_threads(1);
    }

    #[test]
    fn pi_and_const_have_no_stored_cuts() {
        let (aig, _, _, _) = two_level();
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        for pi in aig.pis() {
            assert!(sets.cuts_of(*pi).is_empty());
        }
        assert!(sets.cuts_of(NodeId::CONST0).is_empty());
    }
}
