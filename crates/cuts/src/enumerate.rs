//! Bottom-up cut enumeration (Eq. 1 of the paper).

use slap_aig::{Aig, NodeId};

use crate::cut::{cut_cmp, Cut, MAX_CUT_SIZE};
use crate::policy::CutPolicy;

/// Work and pruning counters from one [`enumerate_cuts`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CutEnumStats {
    /// AND nodes processed.
    pub nodes_processed: u64,
    /// Cuts produced by fanin-set merging (before dedup and pruning).
    pub cuts_merged: u64,
    /// Duplicate cuts removed after merging.
    pub dedup_removed: u64,
    /// Cuts stored across all nodes after policy refinement.
    pub cuts_enumerated: u64,
    /// Cuts the policy removed as dominated.
    pub dominance_kills: u64,
    /// Nodes where the policy's per-node cap dropped cuts.
    pub cap_truncations: u64,
    /// Cuts dropped by those caps.
    pub cuts_dropped_by_cap: u64,
}

/// Parameters of cut enumeration shared by all policies.
#[derive(Clone, Debug)]
pub struct CutConfig {
    /// Maximum number of leaves per cut (the paper uses k = 5).
    pub k: usize,
}

impl CutConfig {
    /// The paper's configuration: 5-feasible cuts.
    pub fn new() -> CutConfig {
        CutConfig { k: 5 }
    }

    /// Custom `k` (at most [`MAX_CUT_SIZE`]).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds [`MAX_CUT_SIZE`].
    pub fn with_k(k: usize) -> CutConfig {
        assert!(
            (1..=MAX_CUT_SIZE).contains(&k),
            "k must be in 1..={MAX_CUT_SIZE}"
        );
        CutConfig { k }
    }
}

impl Default for CutConfig {
    fn default() -> CutConfig {
        CutConfig::new()
    }
}

/// Per-node cut lists produced by [`enumerate_cuts`].
///
/// The trivial cut of each node is stored implicitly (it always exists and
/// is never exposed to matching); `cuts_of` returns only the non-trivial
/// cuts, in the order the policy left them.
#[derive(Clone, Debug)]
pub struct CutSets {
    sets: Vec<Vec<Cut>>,
    k: usize,
    stats: CutEnumStats,
}

impl CutSets {
    /// Counters recorded while enumerating these sets.
    pub fn stats(&self) -> &CutEnumStats {
        &self.stats
    }

    /// The non-trivial cuts stored for `node`.
    pub fn cuts_of(&self, node: NodeId) -> &[Cut] {
        &self.sets[node.index()]
    }

    /// Mutable access, for external selection passes.
    pub fn cuts_of_mut(&mut self, node: NodeId) -> &mut Vec<Cut> {
        &mut self.sets[node.index()]
    }

    /// The `k` the sets were enumerated with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of non-trivial cuts across all nodes — the paper's
    /// "cuts considered / memory footprint" metric.
    pub fn total_cuts(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Number of nodes with at least one stored cut.
    pub fn num_nodes_with_cuts(&self) -> usize {
        self.sets.iter().filter(|s| !s.is_empty()).count()
    }

    /// Applies an external selection: for every AND node, keeps only cuts
    /// for which `select` returns true. This is the `read_cuts` step of
    /// the SLAP flow.
    ///
    /// If `ensure_structural` is set, the structural cut `{fanin0, fanin1}`
    /// of each AND node is re-added when the selection removed every cut,
    /// so the node stays mappable (the paper's "only the trivial cut"
    /// case — the node then costs one 2-input gate if the cover needs it).
    pub fn retain_selected<F>(&mut self, aig: &Aig, mut select: F, ensure_structural: bool)
    where
        F: FnMut(NodeId, &Cut) -> bool,
    {
        for n in aig.and_ids() {
            let list = &mut self.sets[n.index()];
            list.retain(|c| select(n, c));
            if ensure_structural && list.is_empty() {
                let (f0, f1) = aig.fanins(n);
                list.push(Cut::from_leaves(&[f0.node(), f1.node()]));
            }
        }
    }
}

/// Enumerates k-feasible cuts for every AND node bottom-up, applying
/// `policy` to each node's merged list before storing it.
///
/// The stored (policy-refined) list is what propagates to fanout merges,
/// matching ABC's priority-cuts behaviour where pruning shapes the whole
/// downstream cut space.
pub fn enumerate_cuts(aig: &Aig, config: &CutConfig, policy: &mut dyn CutPolicy) -> CutSets {
    let _span = slap_obs::span("enumerate");
    let policy_before = policy.stats();
    let k = config.k;
    let mut stats = CutEnumStats::default();
    let mut sets: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
    let mut scratch: Vec<Cut> = Vec::new();
    let per_node = slap_obs::Registry::global().histogram("cuts.per_node");
    for n in aig.and_ids() {
        let (f0, f1) = aig.fanins(n);
        scratch.clear();
        {
            let set0 = with_trivial(&sets[f0.node().index()], f0.node());
            let set1 = with_trivial(&sets[f1.node().index()], f1.node());
            for c0 in set0.iter() {
                for c1 in set1.iter() {
                    if let Some(m) = c0.merge(c1, k) {
                        scratch.push(m);
                    }
                }
            }
        }
        stats.nodes_processed += 1;
        stats.cuts_merged += scratch.len() as u64;
        // Canonical order + dedup (different merge paths can produce the
        // same leaf set); the policy then reorders/prunes as it likes.
        scratch.sort_by(cut_cmp);
        let before_dedup = scratch.len();
        scratch.dedup();
        stats.dedup_removed += (before_dedup - scratch.len()) as u64;
        // The trivial cut of n can never be produced by merging (leaves
        // precede n topologically), so no need to remove it.
        policy.refine(aig, n, &mut scratch);
        stats.cuts_enumerated += scratch.len() as u64;
        per_node.observe(scratch.len() as u64);
        sets[n.index()] = scratch.clone();
    }
    let pruned = policy.stats().delta(&policy_before);
    stats.dominance_kills = pruned.dominance_kills;
    stats.cap_truncations = pruned.cap_truncations;
    stats.cuts_dropped_by_cap = pruned.cuts_dropped_by_cap;
    let reg = slap_obs::Registry::global();
    reg.counter("cuts.enumerated").add(stats.cuts_enumerated);
    reg.counter("cuts.merged").add(stats.cuts_merged);
    reg.counter("cuts.dominance_kills")
        .add(stats.dominance_kills);
    reg.counter("cuts.cap_truncations")
        .add(stats.cap_truncations);
    CutSets { sets, k, stats }
}

/// The fanin cut set plus its trivial cut, as Eq. (1) requires.
fn with_trivial(set: &[Cut], n: NodeId) -> Vec<Cut> {
    let mut v = Vec::with_capacity(set.len() + 1);
    v.push(Cut::trivial(n));
    v.extend_from_slice(set);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DefaultPolicy, ShufflePolicy, UnlimitedPolicy};
    use slap_aig::Lit;

    /// A small 2-level circuit: f = (a&b) & (c&d).
    fn two_level() -> (Aig, Lit, Lit, Lit) {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let d = aig.add_pi();
        let ab = aig.and(a, b);
        let cd = aig.and(c, d);
        let f = aig.and(ab, cd);
        aig.add_po(f);
        (aig, ab, cd, f)
    }

    #[test]
    fn enumerates_expected_cut_sets() {
        let (aig, ab, cd, f) = two_level();
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        // ab has exactly the structural cut {a,b}.
        assert_eq!(sets.cuts_of(ab.node()).len(), 1);
        // f has {ab,cd}, {ab,c,d}, {a,b,cd}, {a,b,c,d}.
        let cuts = sets.cuts_of(f.node());
        assert_eq!(cuts.len(), 4);
        assert!(cuts.iter().any(|c| c.len() == 4));
        let _ = cd;
    }

    #[test]
    fn k_limits_cut_width() {
        let mut aig = Aig::new();
        let xs = aig.add_pis(6);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.and(acc, x);
        }
        aig.add_po(acc);
        let sets3 = enumerate_cuts(&aig, &CutConfig::with_k(3), &mut UnlimitedPolicy::new());
        for n in aig.and_ids() {
            for c in sets3.cuts_of(n) {
                assert!(c.len() <= 3);
            }
        }
    }

    #[test]
    fn total_cuts_counts_all_nodes() {
        let (aig, _, _, _) = two_level();
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        assert_eq!(sets.total_cuts(), 1 + 1 + 4);
    }

    #[test]
    fn unlimited_supersets_default() {
        // Default filters dominated cuts; unlimited must keep at least as many.
        let mut aig = Aig::new();
        let xs = aig.add_pis(5);
        let ab = aig.and(xs[0], xs[1]);
        let abc = aig.and(ab, xs[2]);
        let abcd = aig.and(abc, xs[3]);
        let f = aig.and(abcd, xs[4]);
        aig.add_po(f);
        let d = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let u = enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new());
        assert!(u.total_cuts() >= d.total_cuts());
    }

    #[test]
    fn retain_selected_filters_and_restores_structural() {
        let (aig, _, _, f) = two_level();
        let mut sets = enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new());
        // Drop everything.
        sets.retain_selected(&aig, |_, _| false, true);
        let cuts = sets.cuts_of(f.node());
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].len(), 2); // structural cut restored
    }

    #[test]
    fn retain_selected_keeps_matching() {
        let (aig, _, _, f) = two_level();
        let mut sets = enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new());
        sets.retain_selected(&aig, |_, c| c.len() == 4, true);
        let cuts = sets.cuts_of(f.node());
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].len(), 4);
    }

    #[test]
    fn shuffle_policy_reduces_cut_counts() {
        let mut aig = Aig::new();
        let xs = aig.add_pis(8);
        // A denser structure with many cuts per node.
        let mut layer: Vec<Lit> = xs.clone();
        while layer.len() > 1 {
            let mut next = Vec::new();
            for w in layer.windows(2) {
                next.push(aig.and(w[0], w[1]));
            }
            layer = next;
        }
        aig.add_po(layer[0]);
        let full = enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new());
        let some = enumerate_cuts(
            &aig,
            &CutConfig::default(),
            &mut ShufflePolicy::with_keep(1, 2),
        );
        assert!(some.total_cuts() < full.total_cuts());
        for n in aig.and_ids() {
            assert!(some.cuts_of(n).len() <= 2);
        }
    }

    #[test]
    fn enum_stats_track_work_and_pruning() {
        let (aig, _, _, _) = two_level();
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let s = sets.stats();
        assert_eq!(s.nodes_processed, aig.num_ands() as u64);
        assert_eq!(s.cuts_enumerated, sets.total_cuts() as u64);
        assert!(s.cuts_merged >= s.cuts_enumerated);

        // A limit of 1 must truncate at the output node (4 candidate cuts).
        let t = enumerate_cuts(
            &aig,
            &CutConfig::default(),
            &mut DefaultPolicy::with_limit(1),
        );
        assert!(t.stats().cap_truncations >= 1);
        assert!(t.stats().cuts_dropped_by_cap >= 1);

        // Reconvergence produces dominated cuts (e.g. {ab,c} ⊆ {a,b,ab,c}
        // at g) that the default policy kills and unlimited keeps.
        let mut recon = Aig::new();
        let xs = recon.add_pis(3);
        let ab = recon.and(xs[0], xs[1]);
        let abc = recon.and(ab, xs[2]);
        let g = recon.and(ab, abc);
        recon.add_po(g);
        let d = enumerate_cuts(&recon, &CutConfig::default(), &mut DefaultPolicy::default());
        let u = enumerate_cuts(&recon, &CutConfig::default(), &mut UnlimitedPolicy::new());
        assert!(d.stats().dominance_kills > 0);
        assert_eq!(u.stats().dominance_kills, 0);
    }

    #[test]
    fn pi_and_const_have_no_stored_cuts() {
        let (aig, _, _, _) = two_level();
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        for pi in aig.pis() {
            assert!(sets.cuts_of(*pi).is_empty());
        }
        assert!(sets.cuts_of(NodeId::CONST0).is_empty());
    }
}
