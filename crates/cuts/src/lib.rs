//! k-feasible cut enumeration for the SLAP reproduction.
//!
//! Implements Eq. (1) of the paper: starting from trivial cuts at the
//! primary inputs, the cut set of an AND node is the pairwise union of its
//! fanin cut sets, bounded by `k` leaves. What distinguishes the paper's
//! three experimental modes is the *policy* applied to each node's cut
//! list before it is stored (and therefore both propagated to fanouts and
//! exposed to Boolean matching):
//!
//! * [`DefaultPolicy`] — ABC's behaviour: sort by number of leaves, filter
//!   dominated cuts, keep at most 250.
//! * [`UnlimitedPolicy`] — the paper's *ABC Unlimited*: no sorting, no
//!   dominance filtering (a hard safety cap bounds memory).
//! * [`ShufflePolicy`] — the paper's design-space-exploration mode:
//!   randomly shuffle the list and keep a random subset, producing the
//!   QoR diversity of Fig. 1 and the training data of §IV-B.
//! * External selection ([`CutArena::retain_selected`]) — the `read_cuts`
//!   command: keep exactly the cuts an oracle (the CNN) chose.
//!
//! Cuts live in a flat [`CutArena`]: one contiguous buffer of [`Cut`]s
//! with per-node spans, addressed by typed [`CutId`]s that downstream
//! layers carry instead of cloning leaf lists.
//!
//! # Example
//!
//! ```
//! use slap_aig::Aig;
//! use slap_cuts::{enumerate_cuts, CutConfig, DefaultPolicy};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let c = aig.add_pi();
//! let ab = aig.and(a, b);
//! let f = aig.and(ab, c);
//! aig.add_po(f);
//!
//! let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
//! // f has the structural cut {ab, c} and the expanded cut {a, b, c}.
//! assert_eq!(sets.cuts_of(f.node()).len(), 2);
//! ```

mod cut;
mod enumerate;
mod features;
mod policy;
mod stats;

pub use cut::{Cut, MAX_CUT_SIZE};
pub use enumerate::{
    enumerate_cuts, ArenaStats, CutArena, CutConfig, CutEnumStats, CutId, CutSets,
};
pub use features::{cut_features, CutFeatures, NUM_CUT_FEATURES};
pub use policy::{CutPolicy, DefaultPolicy, PolicyStats, ShufflePolicy, UnlimitedPolicy};
pub use stats::CutStats;
