//! The cut data structure: a bounded, sorted leaf set with a signature.

use slap_aig::NodeId;

/// Maximum number of leaves a cut may have. The paper uses k = 5; we allow
/// up to 6 so the data structure also serves 6-input experiments.
pub const MAX_CUT_SIZE: usize = 6;

/// A cut `(n, L)`: the set of leaf node ids, stored inline and sorted
/// ascending, plus a 64-bit Bloom-style signature for O(1) subset
/// rejection.
///
/// The root is *not* stored in the cut — cuts live in per-root lists
/// inside [`crate::CutSets`].
///
/// # Example
///
/// ```
/// use slap_cuts::Cut;
/// use slap_aig::NodeId;
///
/// let c = Cut::from_leaves(&[NodeId::new(4), NodeId::new(2)]);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.leaves().next(), Some(NodeId::new(2))); // sorted
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cut {
    leaves: [u32; MAX_CUT_SIZE],
    len: u8,
    sig: u64,
}

impl Cut {
    /// The trivial cut `{n}`.
    pub fn trivial(n: NodeId) -> Cut {
        Cut::from_leaves(&[n])
    }

    /// Builds a cut from an arbitrary leaf list (sorted and deduplicated).
    /// Allocation-free: the sort/dedup runs on an inline
    /// `[u32; MAX_CUT_SIZE]` buffer (insertion into a sorted prefix, which
    /// is optimal at these sizes).
    ///
    /// # Panics
    ///
    /// Panics if there are more than [`MAX_CUT_SIZE`] distinct leaves.
    pub fn from_leaves(leaves: &[NodeId]) -> Cut {
        let mut arr = [0u32; MAX_CUT_SIZE];
        let mut len = 0usize;
        for l in leaves {
            let id = l.index() as u32;
            // Find the insertion point in the sorted prefix arr[..len].
            let mut pos = len;
            for (i, &v) in arr[..len].iter().enumerate() {
                if v >= id {
                    pos = i;
                    break;
                }
            }
            if pos < len && arr[pos] == id {
                continue; // duplicate
            }
            assert!(
                len < MAX_CUT_SIZE,
                "cut with more than {MAX_CUT_SIZE} leaves"
            );
            arr.copy_within(pos..len, pos + 1);
            arr[pos] = id;
            len += 1;
        }
        let mut sig = 0u64;
        for &id in &arr[..len] {
            sig |= 1u64 << (id % 64);
        }
        Cut {
            leaves: arr,
            len: len as u8,
            sig,
        }
    }

    /// Number of leaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the (impossible in practice) empty cut.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The leaf ids, ascending.
    #[inline]
    pub fn leaves(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.leaves[..self.len as usize]
            .iter()
            .map(|&id| NodeId::new(id as usize))
    }

    /// The raw sorted leaf indices.
    #[inline]
    pub fn leaf_indices(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }

    /// Whether this cut is the trivial cut of `n`.
    pub fn is_trivial_of(&self, n: NodeId) -> bool {
        self.len == 1 && self.leaves[0] as usize == n.index()
    }

    /// Whether `leaf` is one of this cut's leaves.
    pub fn contains(&self, leaf: NodeId) -> bool {
        self.leaf_indices()
            .binary_search(&(leaf.index() as u32))
            .is_ok()
    }

    /// The Bloom signature (union of `1 << (id mod 64)` per leaf).
    #[inline]
    pub fn signature(&self) -> u64 {
        self.sig
    }

    /// Merges two cuts (set union), returning `None` if the union exceeds
    /// `k` leaves. This is the core operation of Eq. (1).
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        debug_assert!(k <= MAX_CUT_SIZE);
        // Quick reject: a union of two sets has at least popcount(sig-union)
        // distinct residues; if that already exceeds k, bail out early.
        if (self.sig | other.sig).count_ones() as usize > k {
            return None;
        }
        let a = self.leaf_indices();
        let b = other.leaf_indices();
        let mut out = [0u32; MAX_CUT_SIZE];
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            if n == k {
                return None;
            }
            let v = if a[i] < b[j] {
                let v = a[i];
                i += 1;
                v
            } else if b[j] < a[i] {
                let v = b[j];
                j += 1;
                v
            } else {
                let v = a[i];
                i += 1;
                j += 1;
                v
            };
            out[n] = v;
            n += 1;
        }
        for &v in &a[i..] {
            if n == k {
                return None;
            }
            out[n] = v;
            n += 1;
        }
        for &v in &b[j..] {
            if n == k {
                return None;
            }
            out[n] = v;
            n += 1;
        }
        Some(Cut {
            leaves: out,
            len: n as u8,
            sig: self.sig | other.sig,
        })
    }

    /// True if `self`'s leaves are a subset of `other`'s (i.e. `self`
    /// *dominates* `other`, making `other` redundant).
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.len > other.len {
            return false;
        }
        if self.sig & !other.sig != 0 {
            return false;
        }
        let a = self.leaf_indices();
        let b = other.leaf_indices();
        let mut j = 0usize;
        'outer: for &x in a {
            while j < b.len() {
                if b[j] == x {
                    j += 1;
                    continue 'outer;
                }
                if b[j] > x {
                    return false;
                }
                j += 1;
            }
            return false;
        }
        true
    }
}

impl std::fmt::Debug for Cut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cut{{")?;
        for (i, l) in self.leaf_indices().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

/// Total order used for canonical sorting: by size, then lexicographically
/// by leaves. (Not `Ord` on the type itself: domination, not lexicographic
/// order, is the semantically meaningful relation between cuts.)
pub(crate) fn cut_cmp(a: &Cut, b: &Cut) -> std::cmp::Ordering {
    a.len()
        .cmp(&b.len())
        .then_with(|| a.leaf_indices().cmp(b.leaf_indices()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut(ids: &[usize]) -> Cut {
        Cut::from_leaves(&ids.iter().map(|&i| NodeId::new(i)).collect::<Vec<_>>())
    }

    #[test]
    fn from_leaves_sorts_and_dedups() {
        let c = cut(&[5, 2, 5, 9]);
        assert_eq!(c.leaf_indices(), &[2, 5, 9]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn trivial_cut() {
        let c = Cut::trivial(NodeId::new(7));
        assert!(c.is_trivial_of(NodeId::new(7)));
        assert!(!c.is_trivial_of(NodeId::new(8)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn merge_unions_leaves() {
        let a = cut(&[1, 2, 3]);
        let b = cut(&[3, 4]);
        let m = a.merge(&b, 5).expect("fits in k=5");
        assert_eq!(m.leaf_indices(), &[1, 2, 3, 4]);
        assert_eq!(m.signature(), a.signature() | b.signature());
    }

    #[test]
    fn merge_respects_k() {
        let a = cut(&[1, 2, 3]);
        let b = cut(&[4, 5, 6]);
        assert!(a.merge(&b, 5).is_none());
        assert!(a.merge(&b, 6).is_some());
    }

    #[test]
    fn merge_with_overlap_exactly_k() {
        let a = cut(&[1, 2, 3, 4]);
        let b = cut(&[3, 4, 5, 6]);
        let m = a.merge(&b, 6).expect("union has 6 leaves");
        assert_eq!(m.len(), 6);
        assert!(a.merge(&b, 5).is_none());
    }

    #[test]
    fn dominance() {
        let small = cut(&[2, 5]);
        let big = cut(&[2, 5, 9]);
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
        assert!(small.dominates(&small));
        let other = cut(&[2, 6]);
        assert!(!small.dominates(&other));
        assert!(!other.dominates(&big));
    }

    #[test]
    fn dominance_signature_collision_resistant() {
        // Leaves 1 and 65 share the signature bit; subset test must still
        // be exact.
        let a = cut(&[1]);
        let b = cut(&[65, 70]);
        assert!(!a.dominates(&b));
    }

    #[test]
    fn contains_checks_membership() {
        let c = cut(&[3, 8, 12]);
        assert!(c.contains(NodeId::new(8)));
        assert!(!c.contains(NodeId::new(9)));
    }

    #[test]
    fn cmp_orders_by_size_then_lex() {
        let a = cut(&[9]);
        let b = cut(&[1, 2]);
        let c = cut(&[1, 3]);
        assert_eq!(cut_cmp(&a, &b), std::cmp::Ordering::Less);
        assert_eq!(cut_cmp(&b, &c), std::cmp::Ordering::Less);
        assert_eq!(cut_cmp(&c, &c), std::cmp::Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn too_many_leaves_panics() {
        let _ = cut(&[1, 2, 3, 4, 5, 6, 7]);
    }
}
