//! Cut sorting and filtering policies — the knob the paper turns.

use slap_aig::{Aig, NodeId, Rng64};

use crate::cut::{cut_cmp, Cut};

/// Pruning statistics a policy accumulates across its `refine` calls.
///
/// Counters are cumulative over the policy's lifetime; callers that want
/// per-run numbers (e.g. [`crate::enumerate_cuts`]) snapshot before and
/// after and take [`PolicyStats::delta`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Cuts removed because another kept cut dominated them.
    pub dominance_kills: u64,
    /// Nodes where the per-node cap/limit/keep truncation dropped cuts.
    pub cap_truncations: u64,
    /// Cuts dropped by those truncations.
    pub cuts_dropped_by_cap: u64,
}

impl PolicyStats {
    /// The change since `earlier` (saturating).
    pub fn delta(&self, earlier: &PolicyStats) -> PolicyStats {
        PolicyStats {
            dominance_kills: self.dominance_kills.saturating_sub(earlier.dominance_kills),
            cap_truncations: self.cap_truncations.saturating_sub(earlier.cap_truncations),
            cuts_dropped_by_cap: self
                .cuts_dropped_by_cap
                .saturating_sub(earlier.cuts_dropped_by_cap),
        }
    }

    /// Records a truncation from `before` cuts down to `after`.
    fn record_truncation(&mut self, before: usize, after: usize) {
        if before > after {
            self.cap_truncations += 1;
            self.cuts_dropped_by_cap += (before - after) as u64;
        }
    }
}

/// A policy refines the freshly merged, deduplicated cut list of a node
/// before the list is stored (and thus both propagated to fanout merges
/// and exposed to Boolean matching).
///
/// The trivial cut is handled outside the policy: it is always stored
/// first and never counted as "considered".
pub trait CutPolicy {
    /// Reorders and/or prunes `cuts` in place. `cuts` contains only
    /// non-trivial cuts, deduplicated, in canonical (size, lex) order.
    ///
    /// Scratch-buffer contract: `cuts` is the enumerator's single reusable
    /// scratch buffer, not a per-node list the policy gets to keep — after
    /// `refine` returns, the enumerator copies the surviving cuts into the
    /// flat [`crate::CutArena`] and reuses the buffer for the next node. A
    /// policy must therefore never stash the `Vec` (it cannot: it only
    /// borrows it) and should avoid allocating per call; truncate, swap,
    /// and sort in place instead.
    fn refine(&mut self, aig: &Aig, node: NodeId, cuts: &mut Vec<Cut>);

    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// Cumulative pruning statistics. The default implementation reports
    /// zeros so external policies keep compiling unchanged.
    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }

    /// A fresh, independently usable copy for a parallel worker, with
    /// zeroed stats, or `None` when refinement is order-dependent (e.g. a
    /// stateful RNG consumed in node order) and enumeration must stay
    /// sequential to keep outputs thread-count-invariant. A policy may
    /// only return `Some` when `refine` is a pure per-node function of
    /// `(aig, node, cuts)`. The default is `None`: external policies are
    /// conservatively sequential until they opt in.
    fn fork(&self) -> Option<Box<dyn CutPolicy + Send + Sync>> {
        None
    }

    /// Folds a fork's accumulated [`PolicyStats`] back into this policy's
    /// counters at join. Sums are commutative, so the merged totals are
    /// schedule-independent. The default is a no-op (matching the
    /// zero-stats default of [`CutPolicy::stats`]).
    fn absorb_stats(&mut self, _stats: PolicyStats) {}
}

/// ABC's default heuristic: sort by number of leaves, remove dominated
/// cuts, keep at most `limit` (ABC stores up to 250 cuts per node).
#[derive(Clone, Debug)]
pub struct DefaultPolicy {
    /// Maximum number of cuts kept per node.
    pub limit: usize,
    stats: PolicyStats,
}

impl DefaultPolicy {
    /// The ABC default limit of 250 cuts per node.
    pub fn new() -> DefaultPolicy {
        DefaultPolicy {
            limit: 250,
            stats: PolicyStats::default(),
        }
    }

    /// A policy with a custom per-node limit.
    pub fn with_limit(limit: usize) -> DefaultPolicy {
        DefaultPolicy {
            limit,
            stats: PolicyStats::default(),
        }
    }
}

impl Default for DefaultPolicy {
    fn default() -> DefaultPolicy {
        DefaultPolicy::new()
    }
}

impl CutPolicy for DefaultPolicy {
    fn refine(&mut self, _aig: &Aig, _node: NodeId, cuts: &mut Vec<Cut>) {
        cuts.sort_by(cut_cmp);
        let before_filter = cuts.len();
        filter_dominated_sorted(cuts);
        self.stats.dominance_kills += (before_filter - cuts.len()) as u64;
        let before_cap = cuts.len();
        cuts.truncate(self.limit);
        self.stats.record_truncation(before_cap, cuts.len());
    }

    fn name(&self) -> &'static str {
        "abc-default"
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn fork(&self) -> Option<Box<dyn CutPolicy + Send + Sync>> {
        Some(Box::new(DefaultPolicy::with_limit(self.limit)))
    }

    fn absorb_stats(&mut self, stats: PolicyStats) {
        self.stats.dominance_kills += stats.dominance_kills;
        self.stats.cap_truncations += stats.cap_truncations;
        self.stats.cuts_dropped_by_cap += stats.cuts_dropped_by_cap;
    }
}

/// The paper's *ABC Unlimited* mode: no sorting, no dominance filtering —
/// every enumerated cut is exposed to the matcher.
///
/// A hard per-node `cap` (default 1000) bounds memory; the paper's own
/// Table II shows only ~1.5–2× growth over the default mode, consistent
/// with this cap almost never binding.
#[derive(Clone, Debug)]
pub struct UnlimitedPolicy {
    /// Safety cap on cuts per node.
    pub cap: usize,
    stats: PolicyStats,
}

impl UnlimitedPolicy {
    /// Unlimited mode with the default safety cap of 1000.
    pub fn new() -> UnlimitedPolicy {
        UnlimitedPolicy {
            cap: 1000,
            stats: PolicyStats::default(),
        }
    }

    /// Unlimited mode with a custom safety cap.
    pub fn with_cap(cap: usize) -> UnlimitedPolicy {
        UnlimitedPolicy {
            cap,
            stats: PolicyStats::default(),
        }
    }
}

impl Default for UnlimitedPolicy {
    fn default() -> UnlimitedPolicy {
        UnlimitedPolicy::new()
    }
}

impl CutPolicy for UnlimitedPolicy {
    fn refine(&mut self, _aig: &Aig, _node: NodeId, cuts: &mut Vec<Cut>) {
        let before = cuts.len();
        cuts.truncate(self.cap);
        self.stats.record_truncation(before, cuts.len());
    }

    fn name(&self) -> &'static str {
        "abc-unlimited"
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn fork(&self) -> Option<Box<dyn CutPolicy + Send + Sync>> {
        Some(Box::new(UnlimitedPolicy::with_cap(self.cap)))
    }

    fn absorb_stats(&mut self, stats: PolicyStats) {
        self.stats.dominance_kills += stats.dominance_kills;
        self.stats.cap_truncations += stats.cap_truncations;
        self.stats.cuts_dropped_by_cap += stats.cuts_dropped_by_cap;
    }
}

/// The paper's design-space-exploration mode (§III): the cut list is
/// randomly shuffled with dominance filtering disabled, and a random
/// subset of `keep` cuts survives.
///
/// Note on fidelity: in ABC, list *order* biases the mapper through
/// tie-breaking and the 250-cut cap; our mapper minimizes over every
/// exposed cut, so order alone would be inert. Keeping a random subset is
/// the order-sensitive equivalent that produces the QoR diversity of
/// Fig. 1 — the knob that actually changes which matches exist.
#[derive(Clone, Debug)]
pub struct ShufflePolicy {
    /// Number of cuts kept per node after shuffling.
    pub keep: usize,
    rng: Rng64,
    stats: PolicyStats,
}

impl ShufflePolicy {
    /// Creates a shuffling policy with a seed; `keep` defaults to 8,
    /// which empirically produces a Fig. 1-like QoR spread.
    pub fn new(seed: u64) -> ShufflePolicy {
        ShufflePolicy {
            keep: 8,
            rng: Rng64::seed_from(seed),
            stats: PolicyStats::default(),
        }
    }

    /// Creates a shuffling policy with an explicit keep count.
    pub fn with_keep(seed: u64, keep: usize) -> ShufflePolicy {
        ShufflePolicy {
            keep,
            rng: Rng64::seed_from(seed),
            stats: PolicyStats::default(),
        }
    }
}

impl CutPolicy for ShufflePolicy {
    fn refine(&mut self, _aig: &Aig, _node: NodeId, cuts: &mut Vec<Cut>) {
        self.rng.shuffle(cuts);
        let before = cuts.len();
        cuts.truncate(self.keep);
        self.stats.record_truncation(before, cuts.len());
    }

    fn name(&self) -> &'static str {
        "random-shuffle"
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

/// Removes dominated cuts from a list sorted by (size, lex). Because any
/// dominating cut is no larger than the cut it dominates, a single forward
/// pass that checks each cut against the kept prefix is exact. Runs in
/// place with a write cursor — no allocation.
pub(crate) fn filter_dominated_sorted(cuts: &mut Vec<Cut>) {
    let mut kept = 0usize;
    'next: for i in 0..cuts.len() {
        let c = cuts[i];
        for k in &cuts[..kept] {
            if k.dominates(&c) && *k != c {
                continue 'next;
            }
        }
        cuts[kept] = c;
        kept += 1;
    }
    cuts.truncate(kept);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut(ids: &[usize]) -> Cut {
        Cut::from_leaves(&ids.iter().map(|&i| NodeId::new(i)).collect::<Vec<_>>())
    }

    fn tiny_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let f = aig.and(a, b);
        aig.add_po(f);
        aig
    }

    #[test]
    fn default_policy_sorts_filters_limits() {
        let aig = tiny_aig();
        let mut cuts = vec![cut(&[1, 2, 3]), cut(&[1, 2]), cut(&[4, 5]), cut(&[4, 5, 6])];
        let mut p = DefaultPolicy::with_limit(2);
        p.refine(&aig, NodeId::new(3), &mut cuts);
        // {1,2} dominates {1,2,3}; {4,5} dominates {4,5,6}; limit keeps 2.
        assert_eq!(cuts, vec![cut(&[1, 2]), cut(&[4, 5])]);
    }

    #[test]
    fn unlimited_policy_keeps_dominated_cuts() {
        let aig = tiny_aig();
        let mut cuts = vec![cut(&[1, 2]), cut(&[1, 2, 3])];
        let mut p = UnlimitedPolicy::new();
        p.refine(&aig, NodeId::new(3), &mut cuts);
        assert_eq!(cuts.len(), 2);
    }

    #[test]
    fn unlimited_cap_binds() {
        let aig = tiny_aig();
        let mut cuts: Vec<Cut> = (0..20).map(|i| cut(&[i, i + 1])).collect();
        let mut p = UnlimitedPolicy::with_cap(5);
        p.refine(&aig, NodeId::new(3), &mut cuts);
        assert_eq!(cuts.len(), 5);
    }

    #[test]
    fn shuffle_policy_is_deterministic_per_seed() {
        let aig = tiny_aig();
        let base: Vec<Cut> = (0..30).map(|i| cut(&[i, i + 1])).collect();
        let mut c1 = base.clone();
        let mut c2 = base.clone();
        ShufflePolicy::with_keep(9, 4).refine(&aig, NodeId::new(3), &mut c1);
        ShufflePolicy::with_keep(9, 4).refine(&aig, NodeId::new(3), &mut c2);
        assert_eq!(c1, c2);
        assert_eq!(c1.len(), 4);
        let mut c3 = base;
        ShufflePolicy::with_keep(10, 4).refine(&aig, NodeId::new(3), &mut c3);
        assert_ne!(c1, c3);
    }

    #[test]
    fn filter_dominated_keeps_incomparable_cuts() {
        let mut cuts = vec![cut(&[1]), cut(&[2, 3]), cut(&[1, 4])];
        cuts.sort_by(super::cut_cmp);
        filter_dominated_sorted(&mut cuts);
        assert_eq!(cuts, vec![cut(&[1]), cut(&[2, 3])]);
    }

    #[test]
    fn policy_names() {
        assert_eq!(DefaultPolicy::new().name(), "abc-default");
        assert_eq!(UnlimitedPolicy::new().name(), "abc-unlimited");
        assert_eq!(ShufflePolicy::new(0).name(), "random-shuffle");
    }
}
