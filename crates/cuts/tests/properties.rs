//! Property-based tests for the cut data structure and enumeration.

use proptest::prelude::*;
use slap_aig::{Aig, NodeId};
use slap_cuts::{enumerate_cuts, Cut, CutConfig, DefaultPolicy, UnlimitedPolicy};

fn leaf_set() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::btree_set(0usize..64, 1..=6).prop_map(|s| s.into_iter().collect())
}

fn to_cut(ids: &[usize]) -> Cut {
    Cut::from_leaves(&ids.iter().map(|&i| NodeId::new(i)).collect::<Vec<_>>())
}

proptest! {
    #[test]
    fn merge_is_set_union(a in leaf_set(), b in leaf_set()) {
        let ca = to_cut(&a);
        let cb = to_cut(&b);
        let mut union: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        union.sort_unstable();
        union.dedup();
        match ca.merge(&cb, 6) {
            Some(m) => {
                prop_assert!(union.len() <= 6);
                let leaves: Vec<usize> = m.leaves().map(|n| n.index()).collect();
                prop_assert_eq!(leaves, union);
            }
            None => prop_assert!(union.len() > 6),
        }
    }

    #[test]
    fn merge_is_commutative(a in leaf_set(), b in leaf_set()) {
        let ca = to_cut(&a);
        let cb = to_cut(&b);
        prop_assert_eq!(ca.merge(&cb, 5), cb.merge(&ca, 5));
    }

    #[test]
    fn dominates_iff_subset(a in leaf_set(), b in leaf_set()) {
        let ca = to_cut(&a);
        let cb = to_cut(&b);
        let subset = a.iter().all(|x| b.contains(x));
        prop_assert_eq!(ca.dominates(&cb), subset);
    }

    #[test]
    fn dominance_is_transitive(a in leaf_set(), b in leaf_set(), c in leaf_set()) {
        let (ca, cb, cc) = (to_cut(&a), to_cut(&b), to_cut(&c));
        if ca.dominates(&cb) && cb.dominates(&cc) {
            prop_assert!(ca.dominates(&cc));
        }
    }
}

/// Builds a random DAG from a sequence of (i, j) fanin choices.
fn random_aig(num_pis: usize, pairs: &[(usize, usize, bool, bool)]) -> Aig {
    let mut aig = Aig::new();
    let mut lits = aig.add_pis(num_pis);
    for &(i, j, c0, c1) in pairs {
        let a = lits[i % lits.len()].xor_complement(c0);
        let b = lits[j % lits.len()].xor_complement(c1);
        let f = aig.and(a, b);
        lits.push(f);
    }
    let last = *lits.last().expect("nonempty");
    aig.add_po(last);
    aig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn enumerated_cuts_are_valid_cuts(
        pairs in prop::collection::vec((0usize..100, 0usize..100, any::<bool>(), any::<bool>()), 1..40)
    ) {
        let aig = random_aig(4, &pairs);
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new());
        for n in aig.and_ids() {
            for cut in sets.cuts_of(n) {
                let leaves: Vec<NodeId> = cut.leaves().collect();
                // Every enumerated cut must have a closed cone.
                prop_assert!(
                    slap_aig::cone::collect_cone(&aig, n, &leaves).is_some(),
                    "invalid cut {:?} at {:?}", cut, n
                );
            }
        }
    }

    #[test]
    fn default_sets_have_no_dominated_pairs(
        pairs in prop::collection::vec((0usize..60, 0usize..60, any::<bool>(), any::<bool>()), 1..30)
    ) {
        let aig = random_aig(4, &pairs);
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        for n in aig.and_ids() {
            let cuts = sets.cuts_of(n);
            for (i, a) in cuts.iter().enumerate() {
                for (j, b) in cuts.iter().enumerate() {
                    if i != j {
                        prop_assert!(!a.dominates(b), "dominated pair survived at {:?}", n);
                    }
                }
            }
        }
    }

    #[test]
    fn default_cut_count_never_exceeds_unlimited(
        pairs in prop::collection::vec((0usize..60, 0usize..60, any::<bool>(), any::<bool>()), 1..30)
    ) {
        let aig = random_aig(4, &pairs);
        let d = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let u = enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new());
        prop_assert!(d.total_cuts() <= u.total_cuts());
    }
}
