//! Randomized property tests for the cut data structure and enumeration.
//!
//! Driven by the workspace's own deterministic [`Rng64`] instead of an
//! external property-testing crate (workspace policy: zero external
//! dependencies). Every run replays the same cases from a fixed seed.

use slap_aig::{Aig, NodeId, Rng64};
use slap_cuts::{enumerate_cuts, Cut, CutConfig, DefaultPolicy, UnlimitedPolicy};

/// A random sorted, deduplicated leaf id set of size 1..=`max` from 0..64.
fn leaf_set_sized(rng: &mut Rng64, max: usize) -> Vec<usize> {
    let size = 1 + rng.index(max);
    let mut ids: Vec<usize> = (0..size).map(|_| rng.index(64)).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// A random sorted, deduplicated leaf id set of size 1..=6 from 0..64.
fn leaf_set(rng: &mut Rng64) -> Vec<usize> {
    leaf_set_sized(rng, 6)
}

/// `base` plus up to `extra` more random ids (still within the 6-leaf
/// cut capacity if the caller budgets sizes).
fn superset_of(rng: &mut Rng64, base: &[usize], extra: usize) -> Vec<usize> {
    let mut out = base.to_vec();
    out.extend(leaf_set_sized(rng, extra));
    out.sort_unstable();
    out.dedup();
    out
}

fn to_cut(ids: &[usize]) -> Cut {
    Cut::from_leaves(&ids.iter().map(|&i| NodeId::new(i)).collect::<Vec<_>>())
}

#[test]
fn merge_is_set_union() {
    let mut rng = Rng64::seed_from(0xC07_0001);
    for _ in 0..256 {
        let (a, b) = (leaf_set(&mut rng), leaf_set(&mut rng));
        let ca = to_cut(&a);
        let cb = to_cut(&b);
        let mut union: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        union.sort_unstable();
        union.dedup();
        match ca.merge(&cb, 6) {
            Some(m) => {
                assert!(union.len() <= 6);
                let leaves: Vec<usize> = m.leaves().map(|n| n.index()).collect();
                assert_eq!(leaves, union);
            }
            None => assert!(union.len() > 6),
        }
    }
}

#[test]
fn merge_is_commutative() {
    let mut rng = Rng64::seed_from(0xC07_0002);
    for _ in 0..256 {
        let ca = to_cut(&leaf_set(&mut rng));
        let cb = to_cut(&leaf_set(&mut rng));
        assert_eq!(ca.merge(&cb, 5), cb.merge(&ca, 5));
    }
}

#[test]
fn dominates_iff_subset() {
    let mut rng = Rng64::seed_from(0xC07_0003);
    for step in 0..256 {
        // Bias half the cases toward genuine supersets so the positive
        // direction of the iff is actually exercised.
        let (a, b) = if step % 2 == 0 {
            let a = leaf_set_sized(&mut rng, 3);
            let b = superset_of(&mut rng, &a, 3);
            (a, b)
        } else {
            (leaf_set(&mut rng), leaf_set(&mut rng))
        };
        let ca = to_cut(&a);
        let cb = to_cut(&b);
        let subset = a.iter().all(|x| b.contains(x));
        assert_eq!(ca.dominates(&cb), subset, "a={a:?} b={b:?}");
    }
}

#[test]
fn dominance_is_transitive() {
    let mut rng = Rng64::seed_from(0xC07_0004);
    for _ in 0..256 {
        // Build a ⊆ b ⊆ c by construction (sizes budgeted to stay within
        // the 6-leaf cut capacity), then check transitivity.
        let a = leaf_set_sized(&mut rng, 2);
        let b = superset_of(&mut rng, &a, 2);
        let c = superset_of(&mut rng, &b, 2);
        let (ca, cb, cc) = (to_cut(&a), to_cut(&b), to_cut(&c));
        assert!(ca.dominates(&cb));
        assert!(cb.dominates(&cc));
        assert!(ca.dominates(&cc));
    }
}

/// Builds a random DAG from a sequence of (i, j) fanin choices.
fn random_aig(num_pis: usize, pairs: &[(usize, usize, bool, bool)]) -> Aig {
    let mut aig = Aig::new();
    let mut lits = aig.add_pis(num_pis);
    for &(i, j, c0, c1) in pairs {
        let a = lits[i % lits.len()].xor_complement(c0);
        let b = lits[j % lits.len()].xor_complement(c1);
        let f = aig.and(a, b);
        lits.push(f);
    }
    let last = *lits.last().expect("nonempty");
    aig.add_po(last);
    aig
}

fn random_pairs(rng: &mut Rng64, max_len: usize, bound: usize) -> Vec<(usize, usize, bool, bool)> {
    let len = 1 + rng.index(max_len);
    (0..len)
        .map(|_| (rng.index(bound), rng.index(bound), rng.bool(), rng.bool()))
        .collect()
}

#[test]
fn enumerated_cuts_are_valid_cuts() {
    let mut rng = Rng64::seed_from(0xC07_0005);
    for _ in 0..64 {
        let pairs = random_pairs(&mut rng, 39, 100);
        let aig = random_aig(4, &pairs);
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new());
        for n in aig.and_ids() {
            for cut in sets.cuts_of(n) {
                let leaves: Vec<NodeId> = cut.leaves().collect();
                // Every enumerated cut must have a closed cone.
                assert!(
                    slap_aig::cone::collect_cone(&aig, n, &leaves).is_some(),
                    "invalid cut {cut:?} at {n:?}"
                );
            }
        }
    }
}

#[test]
fn default_sets_have_no_dominated_pairs() {
    let mut rng = Rng64::seed_from(0xC07_0006);
    for _ in 0..64 {
        let pairs = random_pairs(&mut rng, 29, 60);
        let aig = random_aig(4, &pairs);
        let sets = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        for n in aig.and_ids() {
            let cuts = sets.cuts_of(n);
            for (i, a) in cuts.iter().enumerate() {
                for (j, b) in cuts.iter().enumerate() {
                    if i != j {
                        assert!(!a.dominates(b), "dominated pair survived at {n:?}");
                    }
                }
            }
        }
    }
}

#[test]
fn default_cut_count_never_exceeds_unlimited() {
    let mut rng = Rng64::seed_from(0xC07_0007);
    for _ in 0..64 {
        let pairs = random_pairs(&mut rng, 29, 60);
        let aig = random_aig(4, &pairs);
        let d = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let u = enumerate_cuts(&aig, &CutConfig::default(), &mut UnlimitedPolicy::new());
        assert!(d.total_cuts() <= u.total_cuts());
    }
}
