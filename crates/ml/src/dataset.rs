//! In-memory datasets of cut embeddings (replaces the paper's pandas
//! pipeline, which the authors single out as their bottleneck).

use slap_aig::Rng64;

/// A labelled dataset of row-major `rows × cols` feature matrices.
///
/// Features are stored in one contiguous buffer (`len × rows × cols`
/// floats) rather than a `Vec` per sample, so training epochs stream
/// through memory and adding a sample never allocates beyond the shared
/// buffer's amortized growth.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    rows: usize,
    cols: usize,
    classes: usize,
    x: Vec<f32>,
    y: Vec<u8>,
}

impl Dataset {
    /// Creates an empty dataset of `rows × cols` samples over `classes`
    /// labels.
    pub fn new(rows: usize, cols: usize, classes: usize) -> Dataset {
        Dataset {
            rows,
            cols,
            classes,
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Feature floats per sample.
    #[inline]
    fn dim(&self) -> usize {
        self.rows * self.cols
    }

    /// Adds a sample by copying `features` into the flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if the feature length is not `rows × cols` or the label is
    /// out of range.
    pub fn push(&mut self, features: &[f32], label: u8) {
        assert_eq!(features.len(), self.dim(), "feature length mismatch");
        assert!((label as usize) < self.classes, "label out of range");
        self.x.extend_from_slice(features);
        self.y.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature matrix rows per sample.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature matrix columns per sample.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Borrow a sample.
    pub fn sample(&self, i: usize) -> (&[f32], u8) {
        let d = self.dim();
        (&self.x[i * d..(i + 1) * d], self.y[i])
    }

    /// Mutable feature access (used by permutation importance).
    pub fn sample_mut(&mut self, i: usize) -> &mut [f32] {
        let d = self.dim();
        &mut self.x[i * d..(i + 1) * d]
    }

    /// Borrow the contiguous features of samples `range.start..range.end`
    /// — samples are stored back to back in one flat buffer, so a range
    /// of samples is directly a batch for
    /// [`CutCnn::predict_batch_into`](crate::CutCnn::predict_batch_into).
    pub fn features_of(&self, range: std::ops::Range<usize>) -> &[f32] {
        let d = self.dim();
        &self.x[range.start * d..range.end * d]
    }

    /// The label of sample `i`.
    pub fn label(&self, i: usize) -> u8 {
        self.y[i]
    }

    /// Label histogram.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &y in &self.y {
            counts[y as usize] += 1;
        }
        counts
    }

    /// Splits into (train, validation) with the given validation fraction,
    /// after a deterministic shuffle.
    pub fn split(&self, val_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = Rng64::seed_from(seed);
        rng.shuffle(&mut order);
        let val_len = ((self.len() as f64) * val_fraction).round() as usize;
        let mut val = Dataset::new(self.rows, self.cols, self.classes);
        let mut train = Dataset::new(self.rows, self.cols, self.classes);
        for (k, &i) in order.iter().enumerate() {
            let (x, y) = self.sample(i);
            if k < val_len {
                val.push(x, y);
            } else {
                train.push(x, y);
            }
        }
        (train, val)
    }

    /// Appends every sample of `other` in order.
    ///
    /// # Panics
    ///
    /// Panics if the shapes (rows, cols, classes) differ.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(
            (self.rows, self.cols, self.classes),
            (other.rows, other.cols, other.classes),
            "dataset shape mismatch"
        );
        self.x.extend_from_slice(&other.x);
        self.y.extend_from_slice(&other.y);
    }

    /// FNV-1a hash over the raw feature bits and labels — a cheap, exact
    /// fingerprint for determinism checks (bit-identical datasets and only
    /// those hash equal).
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        };
        for &v in &self.x {
            for b in v.to_bits().to_le_bytes() {
                eat(b);
            }
        }
        for &y in &self.y {
            eat(y);
        }
        h
    }

    /// Per-dimension mean and standard deviation (for standardization).
    pub fn feature_stats(&self) -> (Vec<f32>, Vec<f32>) {
        let d = self.dim();
        let n = self.len().max(1) as f64;
        let mut mean = vec![0f64; d];
        for x in self.x.chunks_exact(d) {
            for (m, &v) in mean.iter_mut().zip(x) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0f64; d];
        for x in self.x.chunks_exact(d) {
            for ((v, &xv), &m) in var.iter_mut().zip(x).zip(&mean) {
                let dlt = xv as f64 - m;
                *v += dlt * dlt;
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|&v| ((v / n).sqrt() as f32).max(1e-6))
            .collect();
        (mean.iter().map(|&m| m as f32).collect(), std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut ds = Dataset::new(2, 3, 4);
        for i in 0..20 {
            ds.push(&[i as f32; 6], (i % 4) as u8);
        }
        ds
    }

    #[test]
    fn push_and_access() {
        let ds = toy();
        assert_eq!(ds.len(), 20);
        let (x, y) = ds.sample(5);
        assert_eq!(x.len(), 6);
        assert_eq!(x[0], 5.0);
        assert_eq!(y, 1);
    }

    #[test]
    fn sample_mut_edits_in_place() {
        let mut ds = toy();
        ds.sample_mut(3)[2] = 99.0;
        assert_eq!(ds.sample(3).0[2], 99.0);
        // Neighbouring samples are untouched in the flat buffer.
        assert_eq!(ds.sample(2).0[2], 2.0);
        assert_eq!(ds.sample(4).0[2], 4.0);
    }

    #[test]
    fn class_counts_balance() {
        let ds = toy();
        assert_eq!(ds.class_counts(), vec![5, 5, 5, 5]);
    }

    #[test]
    fn split_partitions_all_samples() {
        let ds = toy();
        let (train, val) = ds.split(0.25, 42);
        assert_eq!(train.len() + val.len(), 20);
        assert_eq!(val.len(), 5);
        // Deterministic per seed.
        let (t2, _) = ds.split(0.25, 42);
        assert_eq!(train.sample(0).0, t2.sample(0).0);
    }

    #[test]
    fn feature_stats_reasonable() {
        let ds = toy();
        let (mean, std) = ds.feature_stats();
        assert!((mean[0] - 9.5).abs() < 1e-4);
        assert!(std[0] > 5.0);
    }

    #[test]
    fn extend_from_appends_in_order() {
        let mut a = toy();
        let b = toy();
        a.extend_from(&b);
        assert_eq!(a.len(), 40);
        assert_eq!(a.sample(20), b.sample(0));
        assert_eq!(a.sample(39), b.sample(19));
    }

    #[test]
    #[should_panic(expected = "dataset shape mismatch")]
    fn extend_from_rejects_shape_mismatch() {
        let mut a = toy();
        let b = Dataset::new(3, 2, 4);
        a.extend_from(&b);
    }

    #[test]
    fn content_hash_detects_any_change() {
        let a = toy();
        let mut b = toy();
        assert_eq!(a.content_hash(), b.content_hash());
        b.sample_mut(7)[1] += 1.0;
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn wrong_length_panics() {
        let mut ds = Dataset::new(2, 3, 4);
        ds.push(&[0.0; 5], 0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        let mut ds = Dataset::new(2, 3, 4);
        ds.push(&[0.0; 6], 4);
    }
}
