//! Permutation feature importance (Fig. 5 of the paper).
//!
//! A feature (group)'s importance is the accuracy drop when its values
//! are randomly permuted across the evaluation set, averaged over
//! several rounds — a model-agnostic measure, exactly as the paper uses.

use slap_aig::Rng64;

use crate::dataset::Dataset;
use crate::model::CutCnn;

/// A named group of input dimensions permuted together.
#[derive(Clone, Debug)]
pub struct FeatureGroup {
    /// Display name (e.g. `numLeaves` or `rootEmb`).
    pub name: String,
    /// The flat input indices belonging to the group.
    pub indices: Vec<usize>,
}

impl FeatureGroup {
    /// Creates a group.
    pub fn new(name: impl Into<String>, indices: Vec<usize>) -> FeatureGroup {
        FeatureGroup {
            name: name.into(),
            indices,
        }
    }
}

/// Computes permutation importance for each group: the mean accuracy drop
/// over `rounds` random permutations (paper: 10 rounds).
///
/// Returns `(group name, importance)` pairs in input order.
pub fn permutation_importance(
    model: &CutCnn,
    data: &Dataset,
    groups: &[FeatureGroup],
    rounds: usize,
    seed: u64,
) -> Vec<(String, f64)> {
    let baseline = model.accuracy(data);
    let mut rng = Rng64::seed_from(seed);
    groups
        .iter()
        .map(|g| {
            let mut drop_sum = 0.0f64;
            for _ in 0..rounds {
                let mut permuted = data.clone();
                // One shared permutation of sample indices per round keeps
                // the group's joint distribution intact while breaking its
                // relation to the labels.
                let mut order: Vec<usize> = (0..data.len()).collect();
                rng.shuffle(&mut order);
                for (i, &src) in order.iter().enumerate() {
                    for &dim in &g.indices {
                        let v = data.sample(src).0[dim];
                        permuted.sample_mut(i)[dim] = v;
                    }
                }
                drop_sum += baseline - model.accuracy(&permuted);
            }
            (g.name.clone(), drop_sum / rounds.max(1) as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CnnConfig;
    use crate::train::TrainConfig;

    #[test]
    fn informative_feature_dominates() {
        // Label depends only on dimension 0.
        let mut ds = Dataset::new(15, 10, 2);
        let mut rng = Rng64::seed_from(31);
        for _ in 0..400 {
            let mut x = vec![0.0f32; 150];
            let a = rng.f32() * 2.0 - 1.0;
            x[0] = a;
            x[1] = rng.f32(); // uninformative
            ds.push(&x, (a > 0.0) as u8);
        }
        let mut model = CutCnn::new(
            &CnnConfig {
                filters: 8,
                ..CnnConfig::default_with_classes(2)
            },
            2,
        );
        model.train(
            &ds,
            &TrainConfig {
                epochs: 15,
                ..TrainConfig::default()
            },
        );
        let groups = vec![
            FeatureGroup::new("informative", vec![0]),
            FeatureGroup::new("noise", vec![1]),
        ];
        let imp = permutation_importance(&model, &ds, &groups, 5, 7);
        assert!(imp[0].1 > 0.2, "informative importance {}", imp[0].1);
        assert!(imp[0].1 > imp[1].1 * 3.0, "{imp:?}");
        assert!(imp[1].1.abs() < 0.1, "noise importance {}", imp[1].1);
    }

    #[test]
    fn importance_count_matches_groups() {
        let ds = {
            let mut d = Dataset::new(15, 10, 2);
            let mut rng = Rng64::seed_from(32);
            for i in 0..50 {
                let x: Vec<f32> = (0..150).map(|_| rng.f32()).collect();
                d.push(&x, (i % 2) as u8);
            }
            d
        };
        let model = CutCnn::new(
            &CnnConfig {
                filters: 4,
                ..CnnConfig::default_with_classes(2)
            },
            3,
        );
        let groups: Vec<FeatureGroup> = (0..5)
            .map(|i| FeatureGroup::new(format!("g{i}"), vec![i]))
            .collect();
        let imp = permutation_importance(&model, &ds, &groups, 2, 8);
        assert_eq!(imp.len(), 5);
    }
}
