//! From-scratch neural network substrate for the SLAP reproduction.
//!
//! The paper's model (Fig. 3) is small: one convolution layer (128
//! filters of shape 15×1, stride 1, sliding across the 10 columns of the
//! 15×10 cut embedding), a flatten to 1280 units, a dense layer to 10
//! classes, and a softmax trained with sparse categorical cross-entropy
//! under Adam. Rust's ML crate ecosystem is thin, so this crate
//! implements forward, backward, and the optimizer by hand with
//! deterministic seeding — every training run replays exactly.
//!
//! # Example
//!
//! ```
//! use slap_ml::{CnnConfig, CutCnn, Dataset, TrainConfig};
//!
//! // A toy dataset: class 0 iff the first feature is positive.
//! let mut ds = Dataset::new(15, 10, 2);
//! for i in 0..200 {
//!     let mut x = vec![0.0f32; 150];
//!     x[0] = if i % 2 == 0 { 1.0 } else { -1.0 };
//!     ds.push(&x, (i % 2) as u8);
//! }
//! let mut model = CutCnn::new(&CnnConfig { filters: 8, ..CnnConfig::default_with_classes(2) }, 1);
//! let report = model.train(&ds, &TrainConfig { epochs: 12, ..TrainConfig::default() });
//! assert!(report.val_accuracy > 0.9);
//! ```

pub mod dataset;
pub mod importance;
pub mod kernel;
pub mod metrics;
pub mod model;
pub mod quant;
pub mod serialize;
pub mod train;

pub use dataset::Dataset;
pub use importance::{permutation_importance, FeatureGroup};
pub use metrics::ConfusionMatrix;
pub use model::{CnnConfig, CutCnn, InferenceScratch};
pub use quant::{QuantScratch, QuantizedCnn};
pub use train::{EpochProgress, ProgressSink, StderrProgress, TrainConfig, TrainReport};

/// Which inference kernel tier scores cuts (DESIGN.md §13).
///
/// `F32` is the default: lane-blocked f32 kernels, bit-identical to the
/// seed scalar path. `Int8` is the opt-in quantized tier: a
/// [`QuantizedCnn`] with exact i32 accumulation — deterministic and
/// thread-count invariant, but QoR-equivalent rather than bit-identical
/// to f32, so run manifests record the tier and `slap-report --check`
/// refuses cross-tier comparisons.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// Lane-blocked f32 kernels (the seed-bit-identical default).
    #[default]
    F32,
    /// Post-training int8 quantization with i32 accumulation.
    Int8,
}

impl KernelTier {
    /// Parses `"f32"` or `"int8"`.
    ///
    /// # Errors
    ///
    /// Returns a usage message on anything else.
    pub fn parse(s: &str) -> Result<KernelTier, String> {
        match s {
            "f32" => Ok(KernelTier::F32),
            "int8" => Ok(KernelTier::Int8),
            other => Err(format!("unknown kernel tier {other:?} (want f32 or int8)")),
        }
    }

    /// The canonical name carried by run manifests.
    pub fn name(&self) -> &'static str {
        match self {
            KernelTier::F32 => "f32",
            KernelTier::Int8 => "int8",
        }
    }
}

#[cfg(test)]
mod tier_tests {
    use super::KernelTier;

    #[test]
    fn kernel_tier_parses_and_names() {
        assert_eq!(KernelTier::parse("f32"), Ok(KernelTier::F32));
        assert_eq!(KernelTier::parse("int8"), Ok(KernelTier::Int8));
        assert!(KernelTier::parse("fp16").is_err());
        assert_eq!(KernelTier::F32.name(), "f32");
        assert_eq!(KernelTier::Int8.name(), "int8");
        assert_eq!(KernelTier::default(), KernelTier::F32);
    }
}
