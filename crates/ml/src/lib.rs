//! From-scratch neural network substrate for the SLAP reproduction.
//!
//! The paper's model (Fig. 3) is small: one convolution layer (128
//! filters of shape 15×1, stride 1, sliding across the 10 columns of the
//! 15×10 cut embedding), a flatten to 1280 units, a dense layer to 10
//! classes, and a softmax trained with sparse categorical cross-entropy
//! under Adam. Rust's ML crate ecosystem is thin, so this crate
//! implements forward, backward, and the optimizer by hand with
//! deterministic seeding — every training run replays exactly.
//!
//! # Example
//!
//! ```
//! use slap_ml::{CnnConfig, CutCnn, Dataset, TrainConfig};
//!
//! // A toy dataset: class 0 iff the first feature is positive.
//! let mut ds = Dataset::new(15, 10, 2);
//! for i in 0..200 {
//!     let mut x = vec![0.0f32; 150];
//!     x[0] = if i % 2 == 0 { 1.0 } else { -1.0 };
//!     ds.push(&x, (i % 2) as u8);
//! }
//! let mut model = CutCnn::new(&CnnConfig { filters: 8, ..CnnConfig::default_with_classes(2) }, 1);
//! let report = model.train(&ds, &TrainConfig { epochs: 12, ..TrainConfig::default() });
//! assert!(report.val_accuracy > 0.9);
//! ```

pub mod dataset;
pub mod importance;
pub mod kernel;
pub mod metrics;
pub mod model;
pub mod serialize;
pub mod train;

pub use dataset::Dataset;
pub use importance::{permutation_importance, FeatureGroup};
pub use metrics::ConfusionMatrix;
pub use model::{CnnConfig, CutCnn, InferenceScratch};
pub use train::{EpochProgress, ProgressSink, StderrProgress, TrainConfig, TrainReport};
