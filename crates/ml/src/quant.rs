//! The int8 inference tier: a [`QuantizedCnn`] post-training-quantized
//! from a trained [`CutCnn`], scoring cuts with exact i32 integer
//! accumulation (DESIGN.md §13).
//!
//! # Quantization scheme
//!
//! Symmetric, power-free, and fully deterministic — every scale is a
//! plain f32 and every rounding is IEEE `round` (half away from zero):
//!
//! 1. **Inputs.** Standardized activations are already clamped to ±6
//!    z-scores by [`kernel::standardize_clamped`], so one global input
//!    scale `s_x = 6 / 127` maps them onto the full ±127 int8 range.
//! 2. **Conv weights.** Per-filter symmetric scales `s_w[f] =
//!    max_r |w[f,r]| / 127`; the bias folds into the integer domain as
//!    `bq[f] = round(b[f] / (s_w[f] · s_x))`, so one i32 accumulator
//!    carries the whole pre-activation: `acc = bq[f] + Σ_r wq[f,r] ·
//!    xq[r]`, worth `acc · s_w[f] · s_x` in real units.
//! 3. **Requantization.** The hidden layer goes back to int8 through a
//!    per-filter multiplier sized from the *worst-case* accumulator
//!    `A[f] = bq[f] + 127 · Σ_r |wq[f,r]|` (the largest value any ±127
//!    input can produce): `m[f] = 127 / A[f]`, so `hq = round(max(0,
//!    acc) · m[f])` spans the full int8 range with no saturation — the
//!    `min(127)` in the kernel is a safety net, not a lossy clamp. One
//!    int8 hidden unit is worth `s_h[f] = s_w[f] · s_x / m[f]` real
//!    units.
//! 4. **Dense weights.** The per-filter hidden scales fold into the
//!    dense weights (`v[k,j] = w[k,j] · s_h[j / cols]`), which are then
//!    quantized with per-class (per-row) symmetric scales `s_d[k] =
//!    max_j |v[k,j]| / 127`. The logit dequantizes with one f32
//!    multiply-add: `logit[k] = b[k] + s_d[k] · Σ_j wq[k,j] · hq[j]`.
//!
//! Classes come from [`kernel::argmax`] over the dequantized logits —
//! softmax is monotonic, so the int8 tier skips it entirely.
//!
//! # Overflow headroom
//!
//! Accumulation is exact in i32 by construction: the conv worst case is
//! `|bq| + rows · 127²` and the dense worst case `hidden_dim · 127²`
//! (the paper shape: `1280 · 127² ≈ 2.06 × 10⁷`, under 1% of `i32::MAX`).
//! [`QuantizedCnn::from_model`] asserts both bounds, and the kernel
//! property tests pin the adversarial all-saturated case (which would
//! panic in debug builds on wrap).
//!
//! # Contract vs the f32 tier
//!
//! Integer addition is associative, so the tier is bit-deterministic
//! and thread-count invariant with no accumulation-order contract to
//! maintain. Against the f32 tier the contract is deliberately weaker:
//! QoR equivalence with a golden-bounded keep-mask divergence
//! (`tests/int8_divergence.rs`), **not** bit-identity.

use crate::kernel;
use crate::model::{CnnConfig, CutCnn};

/// The ±6-z-score clamp range divided by the int8 range: what one input
/// quantization step is worth.
const INPUT_SCALE: f32 = 6.0 / 127.0;

/// A [`CutCnn`] post-training-quantized to int8 weights and activations
/// with i32 accumulation. Build with [`QuantizedCnn::from_model`]; score
/// with [`QuantizedCnn::predict_batch_into`].
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedCnn {
    pub(crate) config: CnnConfig,
    /// Standardization constants, copied from the source model (the
    /// standardize + clamp stage stays in f32).
    pub(crate) feat_mean: Vec<f32>,
    pub(crate) feat_std: Vec<f32>,
    /// `conv_w[f * rows + r]`, quantized per filter.
    pub(crate) conv_w: Vec<i8>,
    /// Conv bias folded into the i32 accumulator domain.
    pub(crate) conv_b: Vec<i32>,
    /// Per-filter requantization multiplier (i32 accumulator → int8
    /// hidden); 0 for filters that can never activate.
    pub(crate) requant: Vec<f32>,
    /// `dense_w[k * hidden + j]`, hidden scales folded in, quantized per
    /// class row.
    pub(crate) dense_w: Vec<i8>,
    /// Per-class dequantization scale for the dense accumulator.
    pub(crate) dense_scale: Vec<f32>,
    /// Dense bias, kept in f32 (applied at dequantization).
    pub(crate) dense_b: Vec<f32>,
}

/// Caller-owned scratch for the int8 path, mirroring
/// [`InferenceScratch`](crate::InferenceScratch): grow-only buffers, so
/// steady-state scoring allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct QuantScratch {
    xf: Vec<f32>,     // batch × rows × cols, standardized (sample-major)
    xt: Vec<f32>,     // rows × cols × batch (sample-minor, the GEMM layout)
    xq: Vec<i8>,      // sample-minor batch, quantized
    acc: Vec<i32>,    // conv accumulators (filters × cols × batch)
    hq: Vec<i8>,      // hidden, requantized (sample-minor)
    logits: Vec<f32>, // batch × classes, dequantized (sample-major)
}

impl QuantScratch {
    /// An empty scratch; buffers grow to the model's shape on first use.
    pub fn new() -> QuantScratch {
        QuantScratch::default()
    }

    fn ensure(&mut self, c: &CnnConfig, batch: usize) {
        // resize() never shrinks capacity, so a larger earlier batch keeps
        // its buffers and smaller batches reuse them allocation-free.
        self.xf.resize(batch * c.input_dim(), 0.0);
        self.xt.resize(batch * c.input_dim(), 0.0);
        self.xq.resize(batch * c.input_dim(), 0);
        self.acc.resize(batch * c.hidden_dim(), 0);
        self.hq.resize(batch * c.hidden_dim(), 0);
        self.logits.resize(batch * c.classes, 0.0);
    }
}

impl QuantizedCnn {
    /// Quantizes a trained model. Pure function of the weights — the
    /// same model always produces the same `QuantizedCnn`.
    ///
    /// # Panics
    ///
    /// Panics if any worst-case i32 accumulator would overflow (cannot
    /// happen for paper-shaped models; guards absurd configurations).
    pub fn from_model(model: &CutCnn) -> QuantizedCnn {
        let c = model.config().clone();
        let (rows, cols, filters, classes) = (c.rows, c.cols, c.filters, c.classes);
        let hidden = c.hidden_dim();

        // Conv: per-filter symmetric weight scales, bias folded to i32.
        let mut conv_w = vec![0i8; filters * rows];
        let mut conv_b = vec![0i32; filters];
        let mut requant = vec![0.0f32; filters];
        // Real value of one int8 hidden unit, per filter (folded into
        // the dense weights below).
        let mut hidden_scale = vec![0.0f32; filters];
        for f in 0..filters {
            let wf = &model.conv_w[f * rows..(f + 1) * rows];
            let w_max = wf.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let s_w = if w_max > 0.0 { w_max / 127.0 } else { 1.0 };
            let qf = &mut conv_w[f * rows..(f + 1) * rows];
            for (q, &v) in qf.iter_mut().zip(wf) {
                *q = ((v / s_w).round() as i32).clamp(-127, 127) as i8;
            }
            // One accumulator unit is worth s_w · s_x real units.
            let acc_scale = s_w * INPUT_SCALE;
            let bq = (f64::from(model.conv_b[f]) / f64::from(acc_scale)).round();
            assert!(
                bq.abs() < f64::from(i32::MAX) / 2.0,
                "conv bias {bq} overflows the i32 accumulator domain"
            );
            conv_b[f] = bq as i32;
            // Worst-case positive accumulator over ±127 inputs.
            let wq_abs: i64 = qf.iter().map(|&q| i64::from(q).abs()).sum();
            let worst = i64::from(conv_b[f]) + 127 * wq_abs;
            assert!(
                worst < i64::from(i32::MAX),
                "conv accumulator worst case {worst} overflows i32"
            );
            if worst > 0 {
                requant[f] = 127.0 / worst as f32;
                hidden_scale[f] = acc_scale / requant[f];
            }
            // worst ≤ 0: the filter can never pass ReLU — requant 0
            // maps every accumulator to hidden 0, scale irrelevant.
        }

        // Dense: fold the per-filter hidden scales in, then quantize
        // with per-class symmetric scales.
        let mut dense_w = vec![0i8; classes * hidden];
        let mut dense_scale = vec![0.0f32; classes];
        for k in 0..classes {
            let wk = &model.dense_w[k * hidden..(k + 1) * hidden];
            let mut v_max = 0.0f32;
            for (j, &w) in wk.iter().enumerate() {
                v_max = v_max.max((w * hidden_scale[j / cols]).abs());
            }
            let s_d = if v_max > 0.0 { v_max / 127.0 } else { 1.0 };
            dense_scale[k] = s_d;
            let qk = &mut dense_w[k * hidden..(k + 1) * hidden];
            for (j, (q, &w)) in qk.iter_mut().zip(wk).enumerate() {
                let v = w * hidden_scale[j / cols];
                *q = ((v / s_d).round() as i32).clamp(-127, 127) as i8;
            }
        }
        // Dense worst case: hidden · 127² must fit i32 (hq ∈ [0, 127]).
        assert!(
            (hidden as i64) * 127 * 127 < i64::from(i32::MAX),
            "dense accumulator worst case overflows i32"
        );

        QuantizedCnn {
            config: c,
            feat_mean: model.feat_mean.clone(),
            feat_std: model.feat_std.clone(),
            conv_w,
            conv_b,
            requant,
            dense_w,
            dense_scale,
            dense_b: model.dense_b.clone(),
        }
    }

    /// The architecture (same shape as the source model).
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// Classifies a batch of raw (unstandardized) samples packed
    /// row-major into `xs`, appending one predicted class per sample to
    /// `out` — the int8 twin of
    /// [`CutCnn::predict_batch_into`](crate::CutCnn::predict_batch_into).
    ///
    /// Bit-deterministic and thread-count invariant by construction
    /// (exact i32 accumulation); allocation-free once `scratch` is warm.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is not a whole number of samples.
    pub fn predict_batch_into(&self, xs: &[f32], scratch: &mut QuantScratch, out: &mut Vec<u8>) {
        let _span = slap_obs::span("ml.predict_batch_i8");
        let c = &self.config;
        let dim = c.input_dim();
        assert_eq!(
            xs.len() % dim,
            0,
            "batch length must be a multiple of rows × cols"
        );
        let batch = xs.len() / dim;
        scratch.ensure(c, batch);
        let inv_scale = 1.0 / INPUT_SCALE;
        for (raw, x) in xs.chunks_exact(dim).zip(scratch.xf.chunks_exact_mut(dim)) {
            kernel::standardize_clamped(raw, &self.feat_mean, &self.feat_std, x);
        }
        // Same GEMM batching as the f32 tier: the chunk is re-laid
        // sample-minor so conv and dense sweep `cols · batch`-wide rows.
        // Integer accumulation is exact, so the layout cannot change a
        // single prediction — batching here is pure speed.
        kernel::transpose(&scratch.xf, batch, dim, &mut scratch.xt);
        kernel::quantize_i8(&scratch.xt, inv_scale, &mut scratch.xq);
        kernel::conv_rows_i8(
            &scratch.xq,
            &self.conv_w,
            &self.conv_b,
            c.filters,
            c.rows,
            c.cols * batch,
            &mut scratch.acc,
        );
        kernel::relu_requant_i8(
            &scratch.acc,
            &self.requant,
            c.filters,
            c.cols * batch,
            &mut scratch.hq,
        );
        kernel::dense_batch_i8(
            &scratch.hq,
            &self.dense_w,
            &self.dense_scale,
            &self.dense_b,
            batch,
            &mut scratch.logits,
        );
        for row in scratch.logits.chunks_exact(c.classes) {
            out.push(kernel::argmax(row) as u8);
        }
        let reg = slap_obs::Registry::global();
        reg.counter("ml.samples_scored").add(batch as u64);
        reg.histogram("ml.batch_size").observe(batch as u64);
    }

    /// The most likely class of one raw sample (convenience wrapper;
    /// batched callers use [`QuantizedCnn::predict_batch_into`]).
    pub fn predict_with(&self, raw: &[f32], scratch: &mut QuantScratch) -> u8 {
        let mut out = Vec::with_capacity(1);
        self.predict_batch_into(raw, scratch, &mut out);
        out[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InferenceScratch;
    use slap_aig::Rng64;

    fn test_model(seed: u64) -> CutCnn {
        let mut m = CutCnn::new(&CnnConfig::paper(), seed);
        m.set_standardization(vec![0.25; 150], vec![1.5; 150]);
        m
    }

    #[test]
    fn quantization_is_a_pure_function_of_the_model() {
        let m = test_model(9);
        assert_eq!(QuantizedCnn::from_model(&m), QuantizedCnn::from_model(&m));
    }

    #[test]
    fn batched_chunked_and_per_sample_predictions_agree() {
        let m = test_model(10);
        let q = QuantizedCnn::from_model(&m);
        let mut rng = Rng64::seed_from(77);
        let n = 33;
        let xs: Vec<f32> = (0..n * 150).map(|_| rng.f32_symmetric(4.0)).collect();
        let mut scratch = QuantScratch::new();
        let mut whole = Vec::new();
        q.predict_batch_into(&xs, &mut scratch, &mut whole);
        assert_eq!(whole.len(), n);
        // Chunked arbitrarily and reassembled in order: identical.
        let mut chunked = Vec::new();
        for chunk in xs.chunks(7 * 150) {
            q.predict_batch_into(chunk, &mut scratch, &mut chunked);
        }
        assert_eq!(chunked, whole);
        // Per-sample: identical.
        for (i, sample) in xs.chunks_exact(150).enumerate() {
            assert_eq!(q.predict_with(sample, &mut scratch), whole[i], "sample {i}");
        }
        // A fresh scratch changes nothing (no hidden state).
        let mut again = Vec::new();
        q.predict_batch_into(&xs, &mut QuantScratch::new(), &mut again);
        assert_eq!(again, whole);
    }

    #[test]
    fn quantized_logits_track_f32_logits() {
        // Property: the dequantized int8 logits stay close to the f32
        // logits — the accumulated quantization noise over conv +
        // requant + dense stays well under the He-init logit scale.
        let m = test_model(11);
        let q = QuantizedCnn::from_model(&m);
        let mut rng = Rng64::seed_from(78);
        let mut worst = 0.0f32;
        let mut f32_scratch = InferenceScratch::new();
        let mut i8_scratch = QuantScratch::new();
        for _ in 0..40 {
            let raw: Vec<f32> = (0..150).map(|_| rng.f32_symmetric(4.0)).collect();
            // f32 logits, recomputed through the public probs API is
            // post-softmax; recompute logits via the quant pipeline's
            // f32 twin instead: standardize → conv → relu → dense.
            let c = m.config().clone();
            let mut x = vec![0.0f32; c.input_dim()];
            kernel::standardize_clamped(&raw, &m.feat_mean, &m.feat_std, &mut x);
            let mut conv = vec![0.0f32; c.hidden_dim()];
            kernel::conv_rows(
                &x, &m.conv_w, &m.conv_b, c.filters, c.rows, c.cols, &mut conv,
            );
            kernel::relu_inplace(&mut conv);
            let mut logits = vec![0.0f32; c.classes];
            kernel::dense(&conv, &m.dense_w, &m.dense_b, &mut logits);
            // int8 logits via the scratch (predict_with fills it).
            let _ = q.predict_with(&raw, &mut i8_scratch);
            for (k, (&lf, &li)) in logits.iter().zip(&i8_scratch.logits).enumerate() {
                worst = worst.max((lf - li).abs());
                assert!(
                    (lf - li).abs() < 0.25,
                    "class {k}: f32 logit {lf} vs int8 {li}"
                );
            }
            let _ = m.predict_with(&raw, &mut f32_scratch);
        }
        // The bound above is loose; typical error should be far smaller.
        assert!(worst < 0.25, "worst logit error {worst}");
    }

    #[test]
    fn adversarial_extremes_run_without_overflow() {
        // Worst-case ±6-clamped inputs against a model with large,
        // sign-aligned weights: debug builds would panic on any i32
        // wrap; the construction asserts guarantee they cannot.
        let c = CnnConfig::paper();
        let mut m = CutCnn::new(&c, 12);
        for (i, w) in m.conv_w.iter_mut().enumerate() {
            *w = if i % 2 == 0 { 50.0 } else { -50.0 };
        }
        for b in m.conv_b.iter_mut() {
            *b = 1000.0;
        }
        for (i, w) in m.dense_w.iter_mut().enumerate() {
            *w = if i % 3 == 0 { -30.0 } else { 30.0 };
        }
        m.set_standardization(vec![0.0; 150], vec![1.0; 150]);
        let q = QuantizedCnn::from_model(&m);
        let raw: Vec<f32> = (0..150)
            .map(|i| if i % 2 == 0 { 1e9 } else { -1e9 })
            .collect();
        let mut scratch = QuantScratch::new();
        let _ = q.predict_with(&raw, &mut scratch);
        // And the all-positive-extreme case.
        let raw = vec![1e9f32; 150];
        let _ = q.predict_with(&raw, &mut scratch);
    }

    #[test]
    fn dead_filters_and_dead_classes_are_harmless() {
        let c = CnnConfig {
            rows: 3,
            cols: 2,
            filters: 2,
            classes: 3,
        };
        let mut m = CutCnn::new(&c, 13);
        // Filter 0: zero weights, large negative bias — can never
        // activate. Class 2: zero weights — logit is pure bias.
        for w in &mut m.conv_w[0..3] {
            *w = 0.0;
        }
        m.conv_b[0] = -100.0;
        for w in &mut m.dense_w[2 * 4..3 * 4] {
            *w = 0.0;
        }
        m.dense_b[2] = 0.5;
        let q = QuantizedCnn::from_model(&m);
        assert_eq!(q.requant[0], 0.0);
        let mut scratch = QuantScratch::new();
        let raw = vec![0.7f32, -0.3, 0.1, 0.9, -0.5, 0.2];
        let _ = q.predict_with(&raw, &mut scratch);
        assert_eq!(scratch.logits[2].to_bits(), 0.5f32.to_bits());
    }

    #[test]
    #[should_panic(expected = "multiple of rows")]
    fn ragged_batch_panics() {
        let q = QuantizedCnn::from_model(&test_model(14));
        let mut out = Vec::new();
        q.predict_batch_into(&[0.0; 151], &mut QuantScratch::new(), &mut out);
    }
}
