//! The cut-classification CNN of Fig. 3, with hand-written
//! forward/backward passes and an Adam optimizer, built on the shared
//! [`kernel`](crate::kernel) layer so per-sample and batched inference
//! are bit-identical.

use std::cell::RefCell;

use slap_aig::Rng64;

use crate::kernel;

/// Architecture parameters. The paper's model is the default: 128 filters
/// of shape `rows × 1` over a 15×10 input, 10 classes.
#[derive(Clone, Debug, PartialEq)]
pub struct CnnConfig {
    /// Input rows (15: root + 5 leaf embeddings + 9 cut-feature rows).
    pub rows: usize,
    /// Input columns (10: the node-embedding width).
    pub cols: usize,
    /// Convolution filters (paper: 128, each `rows × 1`, stride 1).
    pub filters: usize,
    /// Output classes (paper: 10 QoR classes).
    pub classes: usize,
}

impl CnnConfig {
    /// The paper's configuration.
    pub fn paper() -> CnnConfig {
        CnnConfig {
            rows: 15,
            cols: 10,
            filters: 128,
            classes: 10,
        }
    }

    /// The paper's shape with a custom class count (useful in tests).
    pub fn default_with_classes(classes: usize) -> CnnConfig {
        CnnConfig {
            classes,
            ..CnnConfig::paper()
        }
    }

    /// Feature floats per sample (`rows × cols`).
    pub fn input_dim(&self) -> usize {
        self.rows * self.cols
    }

    /// Flattened hidden width (`filters × cols`).
    pub fn hidden_dim(&self) -> usize {
        self.filters * self.cols
    }
}

impl Default for CnnConfig {
    fn default() -> CnnConfig {
        CnnConfig::paper()
    }
}

/// The model: conv (`filters × rows`) → ReLU → flatten (`filters × cols`)
/// → dense (`classes`) → softmax.
///
/// Feature standardization constants learned from the training set are
/// stored inside the model so inference applies the identical transform.
#[derive(Clone, Debug)]
pub struct CutCnn {
    pub(crate) config: CnnConfig,
    /// `conv_w[f * rows + r]`: filter `f`, row `r`.
    pub(crate) conv_w: Vec<f32>,
    pub(crate) conv_b: Vec<f32>,
    /// `dense_w[k * filters * cols + j]`.
    pub(crate) dense_w: Vec<f32>,
    pub(crate) dense_b: Vec<f32>,
    /// Standardization: (x - mean) / std per input dimension.
    pub(crate) feat_mean: Vec<f32>,
    pub(crate) feat_std: Vec<f32>,
    // Adam state.
    pub(crate) adam_m: Vec<f32>,
    pub(crate) adam_v: Vec<f32>,
    pub(crate) adam_t: u64,
}

/// Reusable per-sample forward scratch (exposed to the trainer). The
/// buffers are grown on first use and reused on every subsequent
/// [`CutCnn::forward_into`] call, so the steady-state training loop never
/// allocates per sample.
#[derive(Default)]
pub(crate) struct Forward {
    pub x: Vec<f32>,        // standardized input, rows × cols
    pub conv_out: Vec<f32>, // filters × cols, pre-ReLU
    pub hidden: Vec<f32>,   // filters × cols, post-ReLU
    pub probs: Vec<f32>,    // classes
}

impl Forward {
    fn ensure(&mut self, c: &CnnConfig) {
        self.x.resize(c.input_dim(), 0.0);
        self.conv_out.resize(c.hidden_dim(), 0.0);
        self.hidden.resize(c.hidden_dim(), 0.0);
        self.probs.resize(c.classes, 0.0);
    }
}

/// Reusable backward-pass scratch (the seed implementation allocated
/// both buffers on every call).
#[derive(Default)]
pub(crate) struct BackwardScratch {
    dlogits: Vec<f32>, // classes
    dhidden: Vec<f32>, // filters × cols
}

impl BackwardScratch {
    fn ensure(&mut self, c: &CnnConfig) {
        self.dlogits.resize(c.classes, 0.0);
        self.dhidden.resize(c.hidden_dim(), 0.0);
    }
}

/// Caller-owned scratch for (batched) inference: standardized inputs,
/// hidden activations, and probability rows for up to the largest batch
/// seen so far. Create once, pass to every
/// [`CutCnn::predict_batch_into`] / [`CutCnn::predict_with`] call; after
/// the first (growing) call, scoring allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct InferenceScratch {
    x: Vec<f32>,      // batch × rows × cols (sample-major)
    xt: Vec<f32>,     // rows × cols × batch (sample-minor, the GEMM layout)
    hidden: Vec<f32>, // filters × cols × batch (ReLU applied in place)
    probs: Vec<f32>,  // batch × classes
}

impl InferenceScratch {
    /// An empty scratch; buffers grow to the model's shape on first use.
    pub fn new() -> InferenceScratch {
        InferenceScratch::default()
    }

    fn ensure(&mut self, c: &CnnConfig, batch: usize) {
        // resize() never shrinks capacity, so a larger earlier batch keeps
        // its buffers and smaller batches reuse them allocation-free.
        self.x.resize(batch * c.input_dim(), 0.0);
        self.xt.resize(batch * c.input_dim(), 0.0);
        self.hidden.resize(batch * c.hidden_dim(), 0.0);
        self.probs.resize(batch * c.classes, 0.0);
    }
}

thread_local! {
    /// Scratch backing the one-shot [`CutCnn::predict`] /
    /// [`CutCnn::predict_probs`] API, so even callers without their own
    /// [`InferenceScratch`] stop paying per-call allocations after the
    /// first prediction on a thread.
    static ONE_SHOT_SCRATCH: RefCell<InferenceScratch> = RefCell::new(InferenceScratch::new());
}

impl CutCnn {
    /// Initializes a model with He-style uniform weights.
    pub fn new(config: &CnnConfig, seed: u64) -> CutCnn {
        let mut rng = Rng64::seed_from(seed);
        let conv_len = config.filters * config.rows;
        let hidden = config.filters * config.cols;
        let dense_len = config.classes * hidden;
        let conv_scale = (2.0 / config.rows as f32).sqrt();
        let dense_scale = (2.0 / hidden as f32).sqrt();
        let conv_w: Vec<f32> = (0..conv_len)
            .map(|_| rng.f32_symmetric(conv_scale))
            .collect();
        let dense_w: Vec<f32> = (0..dense_len)
            .map(|_| rng.f32_symmetric(dense_scale))
            .collect();
        let num_params = conv_len + config.filters + dense_len + config.classes;
        CutCnn {
            config: config.clone(),
            conv_w,
            conv_b: vec![0.0; config.filters],
            dense_w,
            dense_b: vec![0.0; config.classes],
            feat_mean: vec![0.0; config.rows * config.cols],
            feat_std: vec![1.0; config.rows * config.cols],
            adam_m: vec![0.0; num_params],
            adam_v: vec![0.0; num_params],
            adam_t: 0,
        }
    }

    /// The architecture.
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.conv_w.len() + self.conv_b.len() + self.dense_w.len() + self.dense_b.len()
    }

    /// Sets the standardization constants (done by the trainer from the
    /// training split).
    pub fn set_standardization(&mut self, mean: Vec<f32>, std: Vec<f32>) {
        assert_eq!(mean.len(), self.config.rows * self.config.cols);
        assert_eq!(std.len(), mean.len());
        self.feat_mean = mean;
        self.feat_std = std;
    }

    /// Training-path forward pass into a reusable scratch (keeps the
    /// pre-ReLU activations the backward pass needs).
    pub(crate) fn forward_into(&self, raw: &[f32], fwd: &mut Forward) {
        let c = &self.config;
        debug_assert_eq!(raw.len(), c.input_dim());
        fwd.ensure(c);
        kernel::standardize_clamped(raw, &self.feat_mean, &self.feat_std, &mut fwd.x);
        kernel::conv_rows(
            &fwd.x,
            &self.conv_w,
            &self.conv_b,
            c.filters,
            c.rows,
            c.cols,
            &mut fwd.conv_out,
        );
        kernel::relu(&fwd.conv_out, &mut fwd.hidden);
        kernel::dense(&fwd.hidden, &self.dense_w, &self.dense_b, &mut fwd.probs);
        kernel::softmax_inplace(&mut fwd.probs);
    }

    /// Convenience wrapper allocating a fresh scratch (tests; hot paths
    /// use [`CutCnn::forward_into`]).
    #[cfg(test)]
    pub(crate) fn forward(&self, raw: &[f32]) -> Forward {
        let mut fwd = Forward::default();
        self.forward_into(raw, &mut fwd);
        fwd
    }

    /// The batched inference sweep shared by every predict entry point:
    /// standardize → conv → ReLU → dense → softmax, stage by stage over
    /// the whole batch. Returns the batch size; probability rows land in
    /// `scratch.probs`. Bit-identical per sample to the per-sample path
    /// by the kernel accumulation-order contract.
    fn forward_batch(&self, xs: &[f32], scratch: &mut InferenceScratch) -> usize {
        let c = &self.config;
        let dim = c.input_dim();
        assert_eq!(
            xs.len() % dim,
            0,
            "batch length must be a multiple of rows × cols"
        );
        let batch = xs.len() / dim;
        scratch.ensure(c, batch);
        let hid = c.hidden_dim();
        for (raw, x) in xs.chunks_exact(dim).zip(scratch.x.chunks_exact_mut(dim)) {
            kernel::standardize_clamped(raw, &self.feat_mean, &self.feat_std, x);
        }
        // Re-lay the standardized chunk sample-minor (`xt[d · batch + s]`)
        // so conv and dense run as one GEMM each over the whole batch:
        // the conv sees `cols · batch` output columns per filter and the
        // dense vectorizes across samples — full-width contiguous vector
        // work instead of 10-column rows. Per-output accumulation order
        // is untouched (each output still sums its own inputs in
        // ascending index order), so every sample's result stays
        // bit-identical to the per-sample path.
        kernel::transpose(
            &scratch.x[..batch * dim],
            batch,
            dim,
            &mut scratch.xt[..batch * dim],
        );
        kernel::conv_rows(
            &scratch.xt[..batch * dim],
            &self.conv_w,
            &self.conv_b,
            c.filters,
            c.rows,
            c.cols * batch,
            &mut scratch.hidden[..batch * hid],
        );
        kernel::relu_inplace(&mut scratch.hidden[..batch * hid]);
        kernel::dense_batch(
            &scratch.hidden[..batch * hid],
            &self.dense_w,
            &self.dense_b,
            batch,
            &mut scratch.probs[..batch * c.classes],
        );
        for probs in scratch.probs[..batch * c.classes].chunks_exact_mut(c.classes) {
            kernel::softmax_inplace(probs);
        }
        batch
    }

    /// Classifies a batch of raw (unstandardized) samples packed
    /// row-major into `xs` (`batch × rows × cols` floats), appending one
    /// predicted class per sample to `out`.
    ///
    /// One stage-blocked sweep over the whole batch; with a warm
    /// `scratch` and pre-reserved `out` the call performs **zero**
    /// allocations. Per-sample results are bit-identical to
    /// [`CutCnn::predict`] (see [`kernel`](crate::kernel) for the
    /// accumulation-order contract), so callers may chunk a workload
    /// arbitrarily — e.g. across `slap-par` workers — and reassemble in
    /// order without changing a single bit.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is not a whole number of samples.
    pub fn predict_batch_into(
        &self,
        xs: &[f32],
        scratch: &mut InferenceScratch,
        out: &mut Vec<u8>,
    ) {
        let _span = slap_obs::span("ml.predict_batch");
        let batch = self.forward_batch(xs, scratch);
        let reg = slap_obs::Registry::global();
        reg.counter("ml.samples_scored").add(batch as u64);
        reg.histogram("ml.batch_size").observe(batch as u64);
        for probs in scratch.probs[..batch * self.config.classes].chunks_exact(self.config.classes)
        {
            out.push(kernel::argmax(probs) as u8);
        }
    }

    /// Batched [`CutCnn::predict_probs`]: appends `batch × classes`
    /// probabilities (row-major) to `out`. Same contract as
    /// [`CutCnn::predict_batch_into`].
    pub fn predict_probs_batch_into(
        &self,
        xs: &[f32],
        scratch: &mut InferenceScratch,
        out: &mut Vec<f32>,
    ) {
        let _span = slap_obs::span("ml.predict_batch");
        let batch = self.forward_batch(xs, scratch);
        let reg = slap_obs::Registry::global();
        reg.counter("ml.samples_scored").add(batch as u64);
        reg.histogram("ml.batch_size").observe(batch as u64);
        out.extend_from_slice(&scratch.probs[..batch * self.config.classes]);
    }

    /// The most likely class of one raw sample, using a caller-owned
    /// scratch (allocation-free once the scratch is warm).
    pub fn predict_with(&self, raw: &[f32], scratch: &mut InferenceScratch) -> u8 {
        debug_assert_eq!(raw.len(), self.config.input_dim());
        self.forward_batch(raw, scratch);
        kernel::argmax(&scratch.probs[..self.config.classes]) as u8
    }

    /// Class probabilities for a raw (unstandardized) sample.
    ///
    /// Runs on a reusable thread-local scratch: only the returned `Vec`
    /// is allocated. Batched callers should prefer
    /// [`CutCnn::predict_probs_batch_into`].
    pub fn predict_probs(&self, raw: &[f32]) -> Vec<f32> {
        ONE_SHOT_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            self.forward_batch(raw, scratch);
            scratch.probs[..self.config.classes].to_vec()
        })
    }

    /// The most likely class (exact probability ties resolve to the
    /// **lowest** class index — the pinned first-wins rule of
    /// [`kernel::argmax`], shared by the f32 and int8 tiers).
    ///
    /// Runs allocation-free on a reusable thread-local scratch. Batched
    /// callers should prefer [`CutCnn::predict_batch_into`].
    pub fn predict(&self, raw: &[f32]) -> u8 {
        ONE_SHOT_SCRATCH.with(|cell| self.predict_with(raw, &mut cell.borrow_mut()))
    }

    /// Accumulates gradients for one sample into `grad` (same layout as
    /// the Adam state) and returns the cross-entropy loss. `scratch`
    /// holds the intermediate gradient buffers (reused across samples).
    pub(crate) fn backward(
        &self,
        fwd: &Forward,
        scratch: &mut BackwardScratch,
        label: u8,
        grad: &mut [f32],
    ) -> f32 {
        let c = &self.config;
        let h = c.hidden_dim();
        scratch.ensure(c);
        let loss = -(fwd.probs[label as usize].max(1e-12)).ln();
        // dL/dlogit_k = p_k - [k == label]
        scratch.dlogits.copy_from_slice(&fwd.probs);
        scratch.dlogits[label as usize] -= 1.0;
        scratch.dhidden.fill(0.0);
        let (g_conv_w, rest) = grad.split_at_mut(c.filters * c.rows);
        let (g_conv_b, rest) = rest.split_at_mut(c.filters);
        let (g_dense_w, g_dense_b) = rest.split_at_mut(c.classes * h);
        kernel::dense_backward(
            &scratch.dlogits,
            &fwd.hidden,
            &self.dense_w,
            g_dense_w,
            g_dense_b,
            &mut scratch.dhidden,
        );
        kernel::conv_backward_rows(
            &fwd.x,
            &fwd.conv_out,
            &scratch.dhidden,
            c.filters,
            c.rows,
            c.cols,
            g_conv_w,
            g_conv_b,
        );
        loss
    }

    /// Applies one Adam step given summed gradients over a batch.
    pub(crate) fn adam_step(&mut self, grad: &[f32], batch: usize, lr: f32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        self.adam_t += 1;
        let t = self.adam_t as f32;
        let scale = 1.0 / batch.max(1) as f32;
        let bias1 = 1.0 - B1.powf(t);
        let bias2 = 1.0 - B2.powf(t);
        let conv_len = self.conv_w.len();
        let conv_b_len = self.conv_b.len();
        let dense_len = self.dense_w.len();
        for (i, g) in grad.iter().enumerate() {
            let g = g * scale;
            let m = &mut self.adam_m[i];
            let v = &mut self.adam_v[i];
            *m = B1 * *m + (1.0 - B1) * g;
            *v = B2 * *v + (1.0 - B2) * g * g;
            let update = lr * (*m / bias1) / ((*v / bias2).sqrt() + EPS);
            let p = if i < conv_len {
                &mut self.conv_w[i]
            } else if i < conv_len + conv_b_len {
                &mut self.conv_b[i - conv_len]
            } else if i < conv_len + conv_b_len + dense_len {
                &mut self.dense_w[i - conv_len - conv_b_len]
            } else {
                &mut self.dense_b[i - conv_len - conv_b_len - dense_len]
            };
            *p -= update;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_dimensions() {
        let c = CnnConfig::paper();
        let m = CutCnn::new(&c, 1);
        // 128 filters × 15 rows + 128 + 10 × 1280 + 10.
        assert_eq!(m.num_params(), 128 * 15 + 128 + 10 * 1280 + 10);
        assert_eq!(c.input_dim(), 150);
        assert_eq!(c.hidden_dim(), 1280);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let m = CutCnn::new(&CnnConfig::paper(), 2);
        let x = vec![0.5f32; 150];
        let p = m.predict_probs(&x);
        assert_eq!(p.len(), 10);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn deterministic_initialization() {
        let a = CutCnn::new(&CnnConfig::paper(), 7);
        let b = CutCnn::new(&CnnConfig::paper(), 7);
        assert_eq!(a.conv_w, b.conv_w);
        let c = CutCnn::new(&CnnConfig::paper(), 8);
        assert_ne!(a.conv_w, c.conv_w);
    }

    /// Transcription of the pre-kernel (seed) scalar forward pass; the
    /// kernel-based model must reproduce it bit for bit.
    fn seed_forward_probs(m: &CutCnn, raw: &[f32]) -> Vec<f32> {
        let c = &m.config;
        let x: Vec<f32> = raw
            .iter()
            .zip(m.feat_mean.iter().zip(&m.feat_std))
            .map(|(&v, (&mean, &s))| ((v - mean) / s).clamp(-6.0, 6.0))
            .collect();
        let mut conv_out = vec![0.0f32; c.filters * c.cols];
        for f in 0..c.filters {
            let w = &m.conv_w[f * c.rows..(f + 1) * c.rows];
            let b = m.conv_b[f];
            let out = &mut conv_out[f * c.cols..(f + 1) * c.cols];
            for (col, o) in out.iter_mut().enumerate() {
                let mut acc = b;
                for (r, &wr) in w.iter().enumerate() {
                    acc += wr * x[r * c.cols + col];
                }
                *o = acc;
            }
        }
        let hidden: Vec<f32> = conv_out.iter().map(|&v| v.max(0.0)).collect();
        let h = c.filters * c.cols;
        let mut logits = vec![0.0f32; c.classes];
        for (k, logit) in logits.iter_mut().enumerate() {
            let w = &m.dense_w[k * h..(k + 1) * h];
            let mut acc = m.dense_b[k];
            for (wj, hj) in w.iter().zip(&hidden) {
                acc += wj * hj;
            }
            *logit = acc;
        }
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut probs: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
        let sum: f32 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        probs
    }

    #[test]
    fn kernel_forward_is_bit_identical_to_seed_scalar() {
        let mut m = CutCnn::new(&CnnConfig::paper(), 21);
        m.set_standardization(vec![0.3; 150], vec![1.7; 150]);
        let mut rng = Rng64::seed_from(99);
        for _ in 0..20 {
            let raw: Vec<f32> = (0..150).map(|_| rng.f32_symmetric(30.0)).collect();
            let seed_probs = seed_forward_probs(&m, &raw);
            let new_probs = m.predict_probs(&raw);
            for (k, (a, b)) in new_probs.iter().zip(&seed_probs).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "class {k}");
            }
        }
    }

    #[test]
    fn batched_predictions_match_per_sample_bitwise() {
        let mut m = CutCnn::new(&CnnConfig::paper(), 3);
        m.set_standardization(vec![0.1; 150], vec![2.0; 150]);
        let mut rng = Rng64::seed_from(42);
        let n = 37; // deliberately not a multiple of any block size
        let xs: Vec<f32> = (0..n * 150).map(|_| rng.f32_symmetric(20.0)).collect();
        let mut scratch = InferenceScratch::new();
        let mut classes = Vec::with_capacity(n);
        m.predict_batch_into(&xs, &mut scratch, &mut classes);
        assert_eq!(classes.len(), n);
        let mut probs = Vec::new();
        m.predict_probs_batch_into(&xs, &mut scratch, &mut probs);
        assert_eq!(probs.len(), n * 10);
        for (i, sample) in xs.chunks_exact(150).enumerate() {
            assert_eq!(classes[i], m.predict(sample), "sample {i} class");
            let one = m.predict_probs(sample);
            for (k, (a, b)) in probs[i * 10..(i + 1) * 10].iter().zip(&one).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "sample {i} class {k}");
            }
        }
        // Chunked scoring reassembled in order equals the single sweep.
        let mut chunked = Vec::with_capacity(n);
        for chunk in xs.chunks(5 * 150) {
            m.predict_batch_into(chunk, &mut scratch, &mut chunked);
        }
        assert_eq!(chunked, classes);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let m = CutCnn::new(&CnnConfig::paper(), 4);
        let mut scratch = InferenceScratch::new();
        let mut out = Vec::new();
        m.predict_batch_into(&[], &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of rows")]
    fn ragged_batch_panics() {
        let m = CutCnn::new(&CnnConfig::paper(), 4);
        let mut scratch = InferenceScratch::new();
        let mut out = Vec::new();
        m.predict_batch_into(&[0.0; 151], &mut scratch, &mut out);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Numerical check of a few parameters on a tiny model.
        let cfg = CnnConfig {
            rows: 3,
            cols: 2,
            filters: 2,
            classes: 3,
        };
        let model = CutCnn::new(&cfg, 3);
        let x: Vec<f32> = (0..6).map(|i| (i as f32) / 3.0 - 0.8).collect();
        let label = 1u8;
        let n = model.num_params();
        let mut grad = vec![0.0f32; n];
        let fwd = model.forward(&x);
        let mut scratch = BackwardScratch::default();
        let _ = model.backward(&fwd, &mut scratch, label, &mut grad);
        let loss_at = |m: &CutCnn| -> f32 {
            let f = m.forward(&x);
            -(f.probs[label as usize].max(1e-12)).ln()
        };
        let eps = 1e-3;
        // Check a conv weight, a conv bias, a dense weight, a dense bias.
        let checks = [
            0usize,
            cfg.filters * cfg.rows,
            cfg.filters * cfg.rows + cfg.filters + 1,
            n - 1,
        ];
        for &i in &checks {
            let mut bumped = model.clone();
            let conv_len = bumped.conv_w.len();
            let conv_b_len = bumped.conv_b.len();
            let dense_len = bumped.dense_w.len();
            {
                let p = if i < conv_len {
                    &mut bumped.conv_w[i]
                } else if i < conv_len + conv_b_len {
                    &mut bumped.conv_b[i - conv_len]
                } else if i < conv_len + conv_b_len + dense_len {
                    &mut bumped.dense_w[i - conv_len - conv_b_len]
                } else {
                    &mut bumped.dense_b[i - conv_len - conv_b_len - dense_len]
                };
                *p += eps;
            }
            let numeric = (loss_at(&bumped) - loss_at(&model)) / eps;
            assert!(
                (numeric - grad[i]).abs() < 2e-2,
                "param {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn adam_reduces_loss_on_one_sample() {
        let cfg = CnnConfig {
            rows: 4,
            cols: 3,
            filters: 4,
            classes: 5,
        };
        let mut model = CutCnn::new(&cfg, 4);
        let x: Vec<f32> = (0..12).map(|i| (i % 5) as f32 * 0.3 - 0.5).collect();
        let label = 2u8;
        let loss0 = {
            let f = model.forward(&x);
            -(f.probs[label as usize].max(1e-12)).ln()
        };
        let mut fwd = Forward::default();
        let mut scratch = BackwardScratch::default();
        for _ in 0..50 {
            let mut grad = vec![0.0f32; model.num_params()];
            model.forward_into(&x, &mut fwd);
            model.backward(&fwd, &mut scratch, label, &mut grad);
            model.adam_step(&grad, 1, 1e-2);
        }
        let loss1 = {
            let f = model.forward(&x);
            -(f.probs[label as usize].max(1e-12)).ln()
        };
        assert!(loss1 < loss0 * 0.5, "loss {loss0} -> {loss1}");
        assert_eq!(model.predict(&x), label);
    }

    #[test]
    fn standardization_changes_prediction_input() {
        let cfg = CnnConfig {
            rows: 2,
            cols: 2,
            filters: 2,
            classes: 2,
        };
        let mut m = CutCnn::new(&cfg, 5);
        let x = vec![10.0f32, 20.0, 30.0, 40.0];
        let p0 = m.predict_probs(&x);
        m.set_standardization(vec![25.0; 4], vec![10.0; 4]);
        let p1 = m.predict_probs(&x);
        assert_ne!(p0, p1);
    }
}
