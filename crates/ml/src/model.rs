//! The cut-classification CNN of Fig. 3, with hand-written
//! forward/backward passes and an Adam optimizer.

use slap_aig::Rng64;

/// Architecture parameters. The paper's model is the default: 128 filters
/// of shape `rows × 1` over a 15×10 input, 10 classes.
#[derive(Clone, Debug, PartialEq)]
pub struct CnnConfig {
    /// Input rows (15: root + 5 leaf embeddings + 9 cut-feature rows).
    pub rows: usize,
    /// Input columns (10: the node-embedding width).
    pub cols: usize,
    /// Convolution filters (paper: 128, each `rows × 1`, stride 1).
    pub filters: usize,
    /// Output classes (paper: 10 QoR classes).
    pub classes: usize,
}

impl CnnConfig {
    /// The paper's configuration.
    pub fn paper() -> CnnConfig {
        CnnConfig {
            rows: 15,
            cols: 10,
            filters: 128,
            classes: 10,
        }
    }

    /// The paper's shape with a custom class count (useful in tests).
    pub fn default_with_classes(classes: usize) -> CnnConfig {
        CnnConfig {
            classes,
            ..CnnConfig::paper()
        }
    }
}

impl Default for CnnConfig {
    fn default() -> CnnConfig {
        CnnConfig::paper()
    }
}

/// The model: conv (`filters × rows`) → ReLU → flatten (`filters × cols`)
/// → dense (`classes`) → softmax.
///
/// Feature standardization constants learned from the training set are
/// stored inside the model so inference applies the identical transform.
#[derive(Clone, Debug)]
pub struct CutCnn {
    pub(crate) config: CnnConfig,
    /// `conv_w[f * rows + r]`: filter `f`, row `r`.
    pub(crate) conv_w: Vec<f32>,
    pub(crate) conv_b: Vec<f32>,
    /// `dense_w[k * filters * cols + j]`.
    pub(crate) dense_w: Vec<f32>,
    pub(crate) dense_b: Vec<f32>,
    /// Standardization: (x - mean) / std per input dimension.
    pub(crate) feat_mean: Vec<f32>,
    pub(crate) feat_std: Vec<f32>,
    // Adam state.
    pub(crate) adam_m: Vec<f32>,
    pub(crate) adam_v: Vec<f32>,
    pub(crate) adam_t: u64,
}

/// Per-sample forward scratch (exposed to the trainer).
pub(crate) struct Forward {
    pub x: Vec<f32>,        // standardized input, rows × cols
    pub conv_out: Vec<f32>, // filters × cols, pre-ReLU
    pub hidden: Vec<f32>,   // filters × cols, post-ReLU
    pub probs: Vec<f32>,    // classes
}

impl CutCnn {
    /// Initializes a model with He-style uniform weights.
    pub fn new(config: &CnnConfig, seed: u64) -> CutCnn {
        let mut rng = Rng64::seed_from(seed);
        let conv_len = config.filters * config.rows;
        let hidden = config.filters * config.cols;
        let dense_len = config.classes * hidden;
        let conv_scale = (2.0 / config.rows as f32).sqrt();
        let dense_scale = (2.0 / hidden as f32).sqrt();
        let conv_w: Vec<f32> = (0..conv_len)
            .map(|_| rng.f32_symmetric(conv_scale))
            .collect();
        let dense_w: Vec<f32> = (0..dense_len)
            .map(|_| rng.f32_symmetric(dense_scale))
            .collect();
        let num_params = conv_len + config.filters + dense_len + config.classes;
        CutCnn {
            config: config.clone(),
            conv_w,
            conv_b: vec![0.0; config.filters],
            dense_w,
            dense_b: vec![0.0; config.classes],
            feat_mean: vec![0.0; config.rows * config.cols],
            feat_std: vec![1.0; config.rows * config.cols],
            adam_m: vec![0.0; num_params],
            adam_v: vec![0.0; num_params],
            adam_t: 0,
        }
    }

    /// The architecture.
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.conv_w.len() + self.conv_b.len() + self.dense_w.len() + self.dense_b.len()
    }

    /// Sets the standardization constants (done by the trainer from the
    /// training split).
    pub fn set_standardization(&mut self, mean: Vec<f32>, std: Vec<f32>) {
        assert_eq!(mean.len(), self.config.rows * self.config.cols);
        assert_eq!(std.len(), mean.len());
        self.feat_mean = mean;
        self.feat_std = std;
    }

    pub(crate) fn forward(&self, raw: &[f32]) -> Forward {
        let c = &self.config;
        debug_assert_eq!(raw.len(), c.rows * c.cols);
        // Standardize, clamping the z-scores: inference-time inputs from
        // circuits much larger than the training set would otherwise push
        // the network far outside the regime it was trained in.
        let x: Vec<f32> = raw
            .iter()
            .zip(self.feat_mean.iter().zip(&self.feat_std))
            .map(|(&v, (&m, &s))| ((v - m) / s).clamp(-6.0, 6.0))
            .collect();
        // Conv: out[f][col] = b[f] + Σ_r w[f][r] · x[r][col].
        let mut conv_out = vec![0.0f32; c.filters * c.cols];
        for f in 0..c.filters {
            let w = &self.conv_w[f * c.rows..(f + 1) * c.rows];
            let b = self.conv_b[f];
            let out = &mut conv_out[f * c.cols..(f + 1) * c.cols];
            for (col, o) in out.iter_mut().enumerate() {
                let mut acc = b;
                for (r, &wr) in w.iter().enumerate() {
                    acc += wr * x[r * c.cols + col];
                }
                *o = acc;
            }
        }
        let hidden: Vec<f32> = conv_out.iter().map(|&v| v.max(0.0)).collect();
        // Dense + softmax.
        let h = c.filters * c.cols;
        let mut logits = vec![0.0f32; c.classes];
        for (k, logit) in logits.iter_mut().enumerate() {
            let w = &self.dense_w[k * h..(k + 1) * h];
            let mut acc = self.dense_b[k];
            for (wj, hj) in w.iter().zip(&hidden) {
                acc += wj * hj;
            }
            *logit = acc;
        }
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut probs: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
        let sum: f32 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        Forward {
            x,
            conv_out,
            hidden,
            probs,
        }
    }

    /// Class probabilities for a raw (unstandardized) sample.
    pub fn predict_probs(&self, raw: &[f32]) -> Vec<f32> {
        self.forward(raw).probs
    }

    /// The most likely class.
    pub fn predict(&self, raw: &[f32]) -> u8 {
        let probs = self.predict_probs(raw);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(i, _)| i as u8)
            .expect("at least one class")
    }

    /// Accumulates gradients for one sample into `grad` (same layout as
    /// the Adam state) and returns the cross-entropy loss.
    pub(crate) fn backward(&self, fwd: &Forward, label: u8, grad: &mut [f32]) -> f32 {
        let c = &self.config;
        let h = c.filters * c.cols;
        let loss = -(fwd.probs[label as usize].max(1e-12)).ln();
        // dL/dlogit_k = p_k - [k == label]
        let mut dlogits = fwd.probs.clone();
        dlogits[label as usize] -= 1.0;
        let (g_conv_w, rest) = grad.split_at_mut(c.filters * c.rows);
        let (g_conv_b, rest) = rest.split_at_mut(c.filters);
        let (g_dense_w, g_dense_b) = rest.split_at_mut(c.classes * h);
        let mut dhidden = vec![0.0f32; h];
        for (k, &dl) in dlogits.iter().enumerate() {
            g_dense_b[k] += dl;
            let gw = &mut g_dense_w[k * h..(k + 1) * h];
            let w = &self.dense_w[k * h..(k + 1) * h];
            for j in 0..h {
                gw[j] += dl * fwd.hidden[j];
                dhidden[j] += dl * w[j];
            }
        }
        // Through ReLU into conv params.
        for f in 0..c.filters {
            let gw = &mut g_conv_w[f * c.rows..(f + 1) * c.rows];
            for col in 0..c.cols {
                let idx = f * c.cols + col;
                if fwd.conv_out[idx] <= 0.0 {
                    continue;
                }
                let d = dhidden[idx];
                g_conv_b[f] += d;
                for (r, g) in gw.iter_mut().enumerate() {
                    *g += d * fwd.x[r * c.cols + col];
                }
            }
        }
        loss
    }

    /// Applies one Adam step given summed gradients over a batch.
    pub(crate) fn adam_step(&mut self, grad: &[f32], batch: usize, lr: f32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        self.adam_t += 1;
        let t = self.adam_t as f32;
        let scale = 1.0 / batch.max(1) as f32;
        let bias1 = 1.0 - B1.powf(t);
        let bias2 = 1.0 - B2.powf(t);
        let conv_len = self.conv_w.len();
        let conv_b_len = self.conv_b.len();
        let dense_len = self.dense_w.len();
        for (i, g) in grad.iter().enumerate() {
            let g = g * scale;
            let m = &mut self.adam_m[i];
            let v = &mut self.adam_v[i];
            *m = B1 * *m + (1.0 - B1) * g;
            *v = B2 * *v + (1.0 - B2) * g * g;
            let update = lr * (*m / bias1) / ((*v / bias2).sqrt() + EPS);
            let p = if i < conv_len {
                &mut self.conv_w[i]
            } else if i < conv_len + conv_b_len {
                &mut self.conv_b[i - conv_len]
            } else if i < conv_len + conv_b_len + dense_len {
                &mut self.dense_w[i - conv_len - conv_b_len]
            } else {
                &mut self.dense_b[i - conv_len - conv_b_len - dense_len]
            };
            *p -= update;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_dimensions() {
        let c = CnnConfig::paper();
        let m = CutCnn::new(&c, 1);
        // 128 filters × 15 rows + 128 + 10 × 1280 + 10.
        assert_eq!(m.num_params(), 128 * 15 + 128 + 10 * 1280 + 10);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let m = CutCnn::new(&CnnConfig::paper(), 2);
        let x = vec![0.5f32; 150];
        let p = m.predict_probs(&x);
        assert_eq!(p.len(), 10);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn deterministic_initialization() {
        let a = CutCnn::new(&CnnConfig::paper(), 7);
        let b = CutCnn::new(&CnnConfig::paper(), 7);
        assert_eq!(a.conv_w, b.conv_w);
        let c = CutCnn::new(&CnnConfig::paper(), 8);
        assert_ne!(a.conv_w, c.conv_w);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Numerical check of a few parameters on a tiny model.
        let cfg = CnnConfig {
            rows: 3,
            cols: 2,
            filters: 2,
            classes: 3,
        };
        let model = CutCnn::new(&cfg, 3);
        let x: Vec<f32> = (0..6).map(|i| (i as f32) / 3.0 - 0.8).collect();
        let label = 1u8;
        let n = model.num_params();
        let mut grad = vec![0.0f32; n];
        let fwd = model.forward(&x);
        let _ = model.backward(&fwd, label, &mut grad);
        let loss_at = |m: &CutCnn| -> f32 {
            let f = m.forward(&x);
            -(f.probs[label as usize].max(1e-12)).ln()
        };
        let eps = 1e-3;
        // Check a conv weight, a conv bias, a dense weight, a dense bias.
        let checks = [
            0usize,
            cfg.filters * cfg.rows,
            cfg.filters * cfg.rows + cfg.filters + 1,
            n - 1,
        ];
        for &i in &checks {
            let mut bumped = model.clone();
            let conv_len = bumped.conv_w.len();
            let conv_b_len = bumped.conv_b.len();
            let dense_len = bumped.dense_w.len();
            {
                let p = if i < conv_len {
                    &mut bumped.conv_w[i]
                } else if i < conv_len + conv_b_len {
                    &mut bumped.conv_b[i - conv_len]
                } else if i < conv_len + conv_b_len + dense_len {
                    &mut bumped.dense_w[i - conv_len - conv_b_len]
                } else {
                    &mut bumped.dense_b[i - conv_len - conv_b_len - dense_len]
                };
                *p += eps;
            }
            let numeric = (loss_at(&bumped) - loss_at(&model)) / eps;
            assert!(
                (numeric - grad[i]).abs() < 2e-2,
                "param {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn adam_reduces_loss_on_one_sample() {
        let cfg = CnnConfig {
            rows: 4,
            cols: 3,
            filters: 4,
            classes: 5,
        };
        let mut model = CutCnn::new(&cfg, 4);
        let x: Vec<f32> = (0..12).map(|i| (i % 5) as f32 * 0.3 - 0.5).collect();
        let label = 2u8;
        let loss0 = {
            let f = model.forward(&x);
            -(f.probs[label as usize].max(1e-12)).ln()
        };
        for _ in 0..50 {
            let mut grad = vec![0.0f32; model.num_params()];
            let f = model.forward(&x);
            model.backward(&f, label, &mut grad);
            model.adam_step(&grad, 1, 1e-2);
        }
        let loss1 = {
            let f = model.forward(&x);
            -(f.probs[label as usize].max(1e-12)).ln()
        };
        assert!(loss1 < loss0 * 0.5, "loss {loss0} -> {loss1}");
        assert_eq!(model.predict(&x), label);
    }

    #[test]
    fn standardization_changes_prediction_input() {
        let cfg = CnnConfig {
            rows: 2,
            cols: 2,
            filters: 2,
            classes: 2,
        };
        let mut m = CutCnn::new(&cfg, 5);
        let x = vec![10.0f32, 20.0, 30.0, 40.0];
        let p0 = m.predict_probs(&x);
        m.set_standardization(vec![25.0; 4], vec![10.0; 4]);
        let p1 = m.predict_probs(&x);
        assert_ne!(p0, p1);
    }
}
