//! Lane-blocked, allocation-free kernels shared by the per-sample and
//! batched inference/training paths, in two tiers: the default f32 tier
//! (bit-identical to the seed scalar implementation) and an int8 tier
//! (exact integer accumulation for the opt-in quantized path — see
//! [`crate::quant`]).
//!
//! # The accumulation-order contract (f32 tier)
//!
//! Every output element is produced by **exactly the same sequence of
//! f32 operations** no matter how the call is batched, blocked, or
//! distributed across threads: an accumulator is initialized from the
//! bias and updated in ascending input-index order, one fused
//! multiply-free `acc += w * x` at a time. Lane blocking only changes
//! *which independent accumulators* advance together — kernels walk a
//! fixed-width `[f32; LANES]` block of outputs side by side (cascading
//! down to narrower blocks for the remainder), giving the compiler
//! clean, register-resident 8/4/2-lane bodies to vectorize — never the
//! order of additions *within* one accumulator.
//!
//! Consequences, relied on across the workspace:
//!
//! - `CutCnn::predict_batch_into` is bit-identical to per-sample
//!   [`CutCnn::predict`](crate::CutCnn::predict), which in turn is
//!   bit-identical to the pre-kernel scalar implementation;
//! - splitting a batch into `slap-par` chunks and reassembling in order
//!   cannot change a single bit, so the SLAP flow's scored classes are
//!   thread-count invariant;
//! - the training forward/backward passes built on these kernels keep the
//!   batch-order gradient reduction and hence the whole weight
//!   trajectory bit-identical for every thread count.
//!
//! # The int8 tier
//!
//! The `*_i8` kernels accumulate exclusively in `i32`: integer addition
//! is associative and exact, so the quantized tier is deterministic and
//! thread-count invariant *by construction* — there is no accumulation
//! order to pin. Its contract against the f32 tier is QoR equivalence
//! with a golden-bounded keep-mask divergence, not bit-identity
//! (DESIGN.md §13).
//!
//! None of the kernels allocate; callers own every buffer.

/// The widest lane block the kernels walk: eight independent
/// accumulators advance together, matching one AVX2 f32 / i32 vector.
/// Remainders cascade through 4-, 2-, and 1-wide blocks, so every
/// output is still produced by a fixed-width block body.
pub const LANES: usize = 8;

/// Standardizes `raw` into `out`: `(v - mean) / std`, clamped to ±6
/// z-scores (inference-time inputs from circuits much larger than the
/// training set would otherwise push the network far outside the regime
/// it was trained in). Lane-blocked elementwise sweep; per-element math
/// is unchanged from the seed.
///
/// # Panics
///
/// Debug-asserts that all four slices share one length.
#[inline]
pub fn standardize_clamped(raw: &[f32], mean: &[f32], std: &[f32], out: &mut [f32]) {
    debug_assert_eq!(raw.len(), mean.len());
    debug_assert_eq!(raw.len(), std.len());
    debug_assert_eq!(raw.len(), out.len());
    let mut o_blocks = out.chunks_exact_mut(LANES);
    let mut r_blocks = raw.chunks_exact(LANES);
    let mut m_blocks = mean.chunks_exact(LANES);
    let mut s_blocks = std.chunks_exact(LANES);
    for (((o, r), m), s) in (&mut o_blocks)
        .zip(&mut r_blocks)
        .zip(&mut m_blocks)
        .zip(&mut s_blocks)
    {
        let mut lane = [0.0f32; LANES];
        for l in 0..LANES {
            lane[l] = ((r[l] - m[l]) / s[l]).clamp(-6.0, 6.0);
        }
        o.copy_from_slice(&lane);
    }
    for (((o, &v), &m), &s) in o_blocks
        .into_remainder()
        .iter_mut()
        .zip(r_blocks.remainder())
        .zip(m_blocks.remainder())
        .zip(s_blocks.remainder())
    {
        *o = ((v - m) / s).clamp(-6.0, 6.0);
    }
}

/// One `L`-wide column block of the Fig. 3 convolution: `L` adjacent
/// output columns of filter-slice `wf` advance together in registers,
/// each seeded from the bias and swept through the rows in ascending
/// `r` order (the contract above). Keeping the accumulators in a local
/// `[f32; L]` for the whole row sweep — instead of re-loading and
/// re-storing the output row per row as the previous column-blocked
/// kernel did — is the lane-blocking win: `rows` loads and stores of
/// the output become one store.
#[inline(always)]
fn conv_col_block<const L: usize>(
    x: &[f32],
    wf: &[f32],
    bias: f32,
    cols: usize,
    col: usize,
    of: &mut [f32],
) {
    let mut acc = [bias; L];
    let mut base = col;
    for &wr in wf {
        // Fixed-size row block: one bounds check per row, and the exact
        // length lets the autovectorizer emit straight-line vector loads.
        let xr: &[f32; L] = x[base..base + L].try_into().expect("row block in bounds");
        for l in 0..L {
            acc[l] += wr * xr[l];
        }
        base += cols;
    }
    of[col..col + L].copy_from_slice(&acc);
}

/// The Fig. 3 convolution: `filters` filters of shape `rows × 1` slide
/// across the `cols` columns of the `rows × cols` input `x`, so
/// `out[f * cols + col] = b[f] + Σ_r w[f * rows + r] · x[r * cols + col]`.
///
/// Lane-blocked over columns: [`LANES`] independent column accumulators
/// live in registers across the whole row sweep, cascading down to
/// 4/2/1-wide blocks for the remainder. Each accumulator still sees its
/// additions in ascending `r` order, so outputs are bit-identical to
/// the seed scalar loop.
#[inline]
pub fn conv_rows(
    x: &[f32],
    w: &[f32],
    b: &[f32],
    filters: usize,
    rows: usize,
    cols: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(x.len(), rows * cols);
    debug_assert_eq!(w.len(), filters * rows);
    debug_assert_eq!(b.len(), filters);
    debug_assert_eq!(out.len(), filters * cols);
    for f in 0..filters {
        let wf = &w[f * rows..(f + 1) * rows];
        let bias = b[f];
        let of = &mut out[f * cols..(f + 1) * cols];
        let mut col = 0;
        while col + LANES <= cols {
            conv_col_block::<LANES>(x, wf, bias, cols, col, of);
            col += LANES;
        }
        if col + 4 <= cols {
            conv_col_block::<4>(x, wf, bias, cols, col, of);
            col += 4;
        }
        if col + 2 <= cols {
            conv_col_block::<2>(x, wf, bias, cols, col, of);
            col += 2;
        }
        if col < cols {
            conv_col_block::<1>(x, wf, bias, cols, col, of);
        }
    }
}

/// Elementwise `max(0, ·)` from `src` into `dst` (kept out of place so
/// the trainer retains the pre-activation values for the backward pass).
#[inline]
pub fn relu(src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    let mut d_blocks = dst.chunks_exact_mut(LANES);
    let mut s_blocks = src.chunks_exact(LANES);
    for (d, s) in (&mut d_blocks).zip(&mut s_blocks) {
        let mut lane = [0.0f32; LANES];
        for l in 0..LANES {
            lane[l] = s[l].max(0.0);
        }
        d.copy_from_slice(&lane);
    }
    for (d, &s) in d_blocks
        .into_remainder()
        .iter_mut()
        .zip(s_blocks.remainder())
    {
        *d = s.max(0.0);
    }
}

/// Elementwise `max(0, ·)` in place (the inference path, which never
/// needs the pre-activation values again).
#[inline]
pub fn relu_inplace(data: &mut [f32]) {
    let mut blocks = data.chunks_exact_mut(LANES);
    for block in &mut blocks {
        let mut lane = [0.0f32; LANES];
        for l in 0..LANES {
            lane[l] = block[l].max(0.0);
        }
        block.copy_from_slice(&lane);
    }
    for v in blocks.into_remainder() {
        *v = v.max(0.0);
    }
}

/// One `L`-wide class block of the dense layer: `L` output-class
/// accumulators form independent dependency chains sharing each `h[j]`
/// load, so the compiler can pipeline the multiply-adds instead of
/// serializing on one accumulator's add latency. Each accumulator still
/// sums in ascending `j` order.
#[inline(always)]
fn dense_class_block<const L: usize>(h: &[f32], w: &[f32], b: &[f32], k: usize, out: &mut [f32]) {
    let hl = h.len();
    let rows: [&[f32]; L] = std::array::from_fn(|l| &w[(k + l) * hl..(k + l + 1) * hl]);
    let mut acc = [0.0f32; L];
    acc.copy_from_slice(&b[k..k + L]);
    for (j, &hj) in h.iter().enumerate() {
        for l in 0..L {
            acc[l] += rows[l][j] * hj;
        }
    }
    out[k..k + L].copy_from_slice(&acc);
}

/// The dense layer: `out[k] = b[k] + Σ_j w[k * h.len() + j] · h[j]`.
///
/// Lane-blocked [`LANES`] output classes at a time (cascading 4/2/1 for
/// the remainder): the seed's single latency-bound chain per class
/// becomes up to eight independent chains. Each accumulator still sums
/// in ascending `j` order, so outputs are bit-identical to the seed.
#[inline]
pub fn dense(h: &[f32], w: &[f32], b: &[f32], out: &mut [f32]) {
    let hl = h.len();
    let classes = out.len();
    debug_assert_eq!(w.len(), classes * hl);
    debug_assert_eq!(b.len(), classes);
    let mut k = 0;
    while k + LANES <= classes {
        dense_class_block::<LANES>(h, w, b, k, out);
        k += LANES;
    }
    if k + 4 <= classes {
        dense_class_block::<4>(h, w, b, k, out);
        k += 4;
    }
    if k + 2 <= classes {
        dense_class_block::<2>(h, w, b, k, out);
        k += 2;
    }
    if k < classes {
        dense_class_block::<1>(h, w, b, k, out);
    }
}

/// Transposes a `rows × cols` row-major matrix into `dst` (`cols × rows`
/// row-major). The batched inference paths use it to re-lay a
/// sample-major chunk (`batch × dim`) sample-*minor* (`dim × batch`), so
/// the conv and dense GEMM kernels can vectorize across samples. Pure
/// data movement — no arithmetic, so no ordering contract.
#[inline]
pub fn transpose(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for (k, row) in src.chunks_exact(cols).enumerate() {
        for (j, &v) in row.iter().enumerate() {
            dst[j * rows + k] = v;
        }
    }
}

/// One `L`-wide sample block of [`dense_batch`]: for each class, `L`
/// adjacent samples' accumulators advance together — each seeded from
/// the class bias and swept through `j` in ascending order (the
/// contract), with the `L` activations of step `j` loading from one
/// contiguous `h_t[j · batch + s ..][..L]` slice. Identical
/// per-accumulator arithmetic to [`dense`], so bit-identical outputs.
#[inline(always)]
fn dense_sample_block<const L: usize>(
    h_t: &[f32],
    w: &[f32],
    b: &[f32],
    batch: usize,
    s: usize,
    out: &mut [f32],
) {
    let classes = b.len();
    let hl = w.len() / classes;
    for (k, (wk, &bk)) in w.chunks_exact(hl).zip(b).enumerate() {
        let mut acc = [bk; L];
        let mut base = s;
        for &wj in wk {
            let hv: &[f32; L] = h_t[base..base + L]
                .try_into()
                .expect("sample block in bounds");
            for l in 0..L {
                acc[l] += wj * hv[l];
            }
            base += batch;
        }
        for l in 0..L {
            out[(s + l) * classes + k] = acc[l];
        }
    }
}

/// The dense layer over a whole batch at once — a small GEMM. `h_t` is
/// the hidden activations laid out sample-minor (`h_t[j · batch + s]`,
/// exactly what [`conv_rows`] produces when fed a transposed batch, see
/// [`transpose`]); `w` keeps the model's `w[k · hl + j]` layout; `out`
/// receives sample-major logit rows (`out[s · classes + k]`), ready for
/// the per-sample softmax.
///
/// Lane-blocked [`LANES`] *samples* at a time (cascading 4/2/1): where
/// [`dense`] vectorizes a 10-class output row, this kernel vectorizes
/// across the batch — contiguous loads, full-width vectors, no tail
/// inside the hot loop. Every `(k, s)` accumulator is still seeded from
/// `b[k]` and sums in ascending `j` order, so each sample's logits are
/// bit-identical to per-sample [`dense`].
#[inline]
pub fn dense_batch(h_t: &[f32], w: &[f32], b: &[f32], batch: usize, out: &mut [f32]) {
    let classes = b.len();
    debug_assert!(classes > 0 && w.len().is_multiple_of(classes));
    debug_assert_eq!(h_t.len() * classes, w.len() * batch);
    debug_assert_eq!(out.len(), batch * classes);
    let mut s = 0;
    while s + LANES <= batch {
        dense_sample_block::<LANES>(h_t, w, b, batch, s, out);
        s += LANES;
    }
    if s + 4 <= batch {
        dense_sample_block::<4>(h_t, w, b, batch, s, out);
        s += 4;
    }
    if s + 2 <= batch {
        dense_sample_block::<2>(h_t, w, b, batch, s, out);
        s += 2;
    }
    if s < batch {
        dense_sample_block::<1>(h_t, w, b, batch, s, out);
    }
}

/// In-place numerically-stable softmax: subtracts the row maximum before
/// exponentiating (so extreme logits cannot overflow `exp`), then
/// normalizes by the sequential sum. The maximum entry exponentiates to
/// exactly 1, so the sum is always ≥ 1 and the division is safe.
#[inline]
pub fn softmax_inplace(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for v in row.iter_mut() {
        *v = (*v - max).exp();
    }
    let sum: f32 = row.iter().sum();
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// Index of the row maximum. **Ties break to the first maximal index**
/// — a deliberate, pinned contract: the int8 tier's exact integer
/// accumulation makes bit-equal logits genuinely reachable (two classes
/// with the same `i32` dot product dequantize to the same f32), and the
/// keep mask must not depend on iteration accident. First-wins is the
/// rule every scoring path shares, f32 and int8 alike.
///
/// (Float ties are only reachable through exact bit equality, which the
/// golden suites confirm never occurs on the catalog circuits — so the
/// f32 tier's seed bit-identity contract is unaffected by the rule.)
///
/// # Panics
///
/// Panics if `row` is empty; debug-asserts the values are not NaN.
#[inline]
pub fn argmax(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax of an empty row");
    debug_assert!(row.iter().all(|v| !v.is_nan()), "argmax over NaN");
    let mut best = 0;
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Backward through the dense layer for one sample, accumulating into the
/// caller's gradient slices (never overwriting — the trainer sums batches
/// in batch order):
///
/// - `g_b[k] += dlogits[k]`
/// - `g_w[k][j] += dlogits[k] · h[j]`
/// - `dhidden[j] += dlogits[k] · w[k][j]` (ascending `k`, the seed order)
///
/// The `j` sweep is lane-blocked: each `(k, j)` accumulator pair is
/// independent of its neighbours, and the order-sensitive direction
/// (ascending `k` for `dhidden[j]`) is the unchanged outer loop.
#[inline]
pub fn dense_backward(
    dlogits: &[f32],
    h: &[f32],
    w: &[f32],
    g_w: &mut [f32],
    g_b: &mut [f32],
    dhidden: &mut [f32],
) {
    let hl = h.len();
    debug_assert_eq!(dlogits.len(), g_b.len());
    debug_assert_eq!(w.len(), dlogits.len() * hl);
    debug_assert_eq!(g_w.len(), w.len());
    debug_assert_eq!(dhidden.len(), hl);
    for (k, &dl) in dlogits.iter().enumerate() {
        g_b[k] += dl;
        let gw = &mut g_w[k * hl..(k + 1) * hl];
        let wk = &w[k * hl..(k + 1) * hl];
        let mut gw_blocks = gw.chunks_exact_mut(LANES);
        let mut dh_blocks = dhidden.chunks_exact_mut(LANES);
        let mut h_blocks = h.chunks_exact(LANES);
        let mut wk_blocks = wk.chunks_exact(LANES);
        for (((gwc, dhc), hc), wkc) in (&mut gw_blocks)
            .zip(&mut dh_blocks)
            .zip(&mut h_blocks)
            .zip(&mut wk_blocks)
        {
            for l in 0..LANES {
                gwc[l] += dl * hc[l];
                dhc[l] += dl * wkc[l];
            }
        }
        for (((gwj, dhj), &hj), &wj) in gw_blocks
            .into_remainder()
            .iter_mut()
            .zip(dh_blocks.into_remainder().iter_mut())
            .zip(h_blocks.remainder())
            .zip(wk_blocks.remainder())
        {
            *gwj += dl * hj;
            *dhj += dl * wj;
        }
    }
}

/// Backward through ReLU and the convolution for one sample, accumulating
/// conv parameter gradients. `conv_out` carries the pre-activation
/// values; non-positive entries contribute nothing (a hard skip, not a
/// multiply by zero, matching the seed's float behaviour exactly).
///
/// The per-column row sweep is lane-blocked over the `g_w` rows (each
/// `g_w[f][r]` is an independent accumulator); the order-sensitive
/// direction (ascending `col` for both `g_b[f]` and every `g_w[f][r]`)
/// is the unchanged outer loop.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors conv_rows' shape triplet plus the gradient pair
pub fn conv_backward_rows(
    x: &[f32],
    conv_out: &[f32],
    dhidden: &[f32],
    filters: usize,
    rows: usize,
    cols: usize,
    g_w: &mut [f32],
    g_b: &mut [f32],
) {
    debug_assert_eq!(x.len(), rows * cols);
    debug_assert_eq!(conv_out.len(), filters * cols);
    debug_assert_eq!(dhidden.len(), filters * cols);
    debug_assert_eq!(g_w.len(), filters * rows);
    debug_assert_eq!(g_b.len(), filters);
    for f in 0..filters {
        let gw = &mut g_w[f * rows..(f + 1) * rows];
        for col in 0..cols {
            let idx = f * cols + col;
            if conv_out[idx] <= 0.0 {
                continue;
            }
            let d = dhidden[idx];
            g_b[f] += d;
            let mut r = 0;
            let mut blocks = gw.chunks_exact_mut(LANES);
            for gwc in &mut blocks {
                for l in 0..LANES {
                    gwc[l] += d * x[(r + l) * cols + col];
                }
                r += LANES;
            }
            for (l, g) in blocks.into_remainder().iter_mut().enumerate() {
                *g += d * x[(r + l) * cols + col];
            }
        }
    }
}

// ---------------------------------------------------------------------
// The int8 tier: exact i32 accumulation over int8 operands.
// ---------------------------------------------------------------------

/// Quantizes already-standardized (±6-clamped) activations to int8:
/// `q = round(v · inv_scale)`, clamped to ±127 (symmetric — −128 is
/// never produced, so negation is always exact). Rounding is
/// half-away-from-zero, computed as `trunc(v ± 0.5)` — one f32 add and
/// a saturating int cast, both of which vectorize, where `f32::round`
/// is a libm call per element. All ops are exact IEEE f32, so
/// quantization is fully deterministic.
#[inline]
pub fn quantize_i8(src: &[f32], inv_scale: f32, out: &mut [i8]) {
    debug_assert_eq!(src.len(), out.len());
    #[inline(always)]
    fn q(v: f32, inv_scale: f32) -> i8 {
        let v = v * inv_scale;
        ((v + 0.5f32.copysign(v)) as i32).clamp(-127, 127) as i8
    }
    let mut o_blocks = out.chunks_exact_mut(LANES);
    let mut s_blocks = src.chunks_exact(LANES);
    for (o, s) in (&mut o_blocks).zip(&mut s_blocks) {
        let mut lane = [0i8; LANES];
        for l in 0..LANES {
            lane[l] = q(s[l], inv_scale);
        }
        o.copy_from_slice(&lane);
    }
    for (o, &v) in o_blocks
        .into_remainder()
        .iter_mut()
        .zip(s_blocks.remainder())
    {
        *o = q(v, inv_scale);
    }
}

/// One `L`-wide column block of the int8 convolution (see
/// [`conv_rows_i8`]): i32 accumulators seeded from the integer bias.
#[inline(always)]
fn conv_col_block_i8<const L: usize>(
    x: &[i8],
    wf: &[i8],
    bias: i32,
    cols: usize,
    col: usize,
    of: &mut [i32],
) {
    let mut acc = [bias; L];
    let mut base = col;
    for &wr in wf {
        let wr = i16::from(wr);
        let xr: &[i8; L] = x[base..base + L].try_into().expect("row block in bounds");
        for l in 0..L {
            // The product of two values in [-127, 127] fits i16 (max
            // 16129 < 32767), so multiplying in i16 is exact — and maps
            // to the 8-wide `pmullw`-class instructions every x86-64
            // baseline has, where an i32 vector multiply does not.
            acc[l] += i32::from(wr * i16::from(xr[l]));
        }
        base += cols;
    }
    of[col..col + L].copy_from_slice(&acc);
}

/// The int8 convolution: identical shape contract to [`conv_rows`], but
/// over int8 operands with **exact** i32 accumulation — `out[f·cols+c] =
/// b[f] + Σ_r w[f·rows+r] · x[r·cols+c]` in integer arithmetic. Integer
/// addition is associative, so this kernel is deterministic and
/// thread-count invariant with no ordering contract to maintain.
/// Overflow headroom: `|b[f]| + 127² · rows` must stay below `i32::MAX`
/// — [`crate::quant::QuantizedCnn`] asserts it at construction and the
/// property tests pin the paper-sized worst case.
#[inline]
pub fn conv_rows_i8(
    x: &[i8],
    w: &[i8],
    b: &[i32],
    filters: usize,
    rows: usize,
    cols: usize,
    out: &mut [i32],
) {
    debug_assert_eq!(b.len(), filters);
    #[cfg(target_arch = "x86_64")]
    if cols >= 16 && rows <= 128 && std::arch::is_x86_feature_detected!("avx2") {
        // rows ≤ 128 keeps the AVX2 body's packed-weight scratch on the
        // stack; larger windows (never used by the paper shape) take the
        // portable path. Hard (release-mode) shape checks: the AVX2 body
        // does raw unaligned loads computed from these extents.
        assert_eq!(x.len(), rows * cols);
        assert_eq!(w.len(), filters * rows);
        assert_eq!(out.len(), filters * cols);
        // SAFETY: AVX2 presence verified at runtime just above; the
        // shape invariants the body's pointer arithmetic relies on are
        // asserted just above.
        unsafe { x86::conv_rows_i8(x, w, b, filters, rows, cols, out) };
        return;
    }
    conv_rows_i8_scalar(x, w, b, filters, rows, cols, out);
}

/// Portable body of [`conv_rows_i8`] (also the narrow-batch and
/// non-AVX2 path). Autovectorizes via `pmullw`-class i16 multiplies.
fn conv_rows_i8_scalar(
    x: &[i8],
    w: &[i8],
    b: &[i32],
    filters: usize,
    rows: usize,
    cols: usize,
    out: &mut [i32],
) {
    debug_assert_eq!(x.len(), rows * cols);
    debug_assert_eq!(w.len(), filters * rows);
    debug_assert_eq!(out.len(), filters * cols);
    for f in 0..filters {
        let wf = &w[f * rows..(f + 1) * rows];
        let bias = b[f];
        let of = &mut out[f * cols..(f + 1) * cols];
        let mut col = 0;
        while col + LANES <= cols {
            conv_col_block_i8::<LANES>(x, wf, bias, cols, col, of);
            col += LANES;
        }
        if col + 4 <= cols {
            conv_col_block_i8::<4>(x, wf, bias, cols, col, of);
            col += 4;
        }
        if col + 2 <= cols {
            conv_col_block_i8::<2>(x, wf, bias, cols, col, of);
            col += 2;
        }
        if col < cols {
            conv_col_block_i8::<1>(x, wf, bias, cols, col, of);
        }
    }
}

/// Fused ReLU + requantization of the int8 tier's hidden layer: each
/// filter's `cols` i32 conv accumulators are clamped at zero and mapped
/// to int8 with the filter's requantization multiplier —
/// `h = min(127, round(max(0, acc) · m[f]))`. The multiplier is sized so
/// the worst-case accumulator lands exactly at 127 (see
/// [`crate::quant`]), making the `min` a safety net rather than a lossy
/// saturation. Rounding is half-up via `trunc(v + 0.5)` — exact for the
/// non-negative post-ReLU range and identical to half-away-from-zero
/// there — because a single f32 add and a truncating cast vectorize
/// where `f32::round` is a libm call per element. Exact IEEE ops, so
/// the requantization is deterministic.
#[inline]
pub fn relu_requant_i8(acc: &[i32], m: &[f32], filters: usize, cols: usize, out: &mut [i8]) {
    debug_assert_eq!(m.len(), filters);
    #[cfg(target_arch = "x86_64")]
    if cols >= 32 && std::arch::is_x86_feature_detected!("avx2") {
        assert_eq!(acc.len(), filters * cols);
        assert_eq!(out.len(), filters * cols);
        // SAFETY: AVX2 verified at runtime; shapes asserted above. The
        // vector body performs the same IEEE f32 ops per element
        // (convert, multiply, add, truncate) as the scalar loop, so
        // outputs are identical.
        unsafe { x86::relu_requant_i8(acc, m, filters, cols, out) };
        return;
    }
    relu_requant_i8_scalar(acc, m, filters, cols, out);
}

/// Portable body of [`relu_requant_i8`].
fn relu_requant_i8_scalar(acc: &[i32], m: &[f32], filters: usize, cols: usize, out: &mut [i8]) {
    debug_assert_eq!(acc.len(), filters * cols);
    debug_assert_eq!(out.len(), filters * cols);
    for f in 0..filters {
        let mf = m[f];
        let af = &acc[f * cols..(f + 1) * cols];
        let of = &mut out[f * cols..(f + 1) * cols];
        for (o, &a) in of.iter_mut().zip(af) {
            let a = a.max(0);
            *o = ((a as f32 * mf + 0.5) as i32).min(127) as i8;
        }
    }
}

/// One `L`-wide sample block of [`dense_batch_i8`]: exact i16 products
/// (127² fits i16) widened into `L` i32 sample accumulators per class,
/// dequantized by one f32 multiply-add at the end.
#[inline(always)]
fn dense_sample_block_i8<const L: usize>(
    h_t: &[i8],
    w: &[i8],
    scale: &[f32],
    b: &[f32],
    batch: usize,
    s: usize,
    out: &mut [f32],
) {
    let classes = b.len();
    let hl = w.len() / classes;
    for (k, wk) in w.chunks_exact(hl).enumerate() {
        let mut acc = [0i32; L];
        let mut base = s;
        for &wj in wk {
            let wj = i16::from(wj);
            let hv: &[i8; L] = h_t[base..base + L]
                .try_into()
                .expect("sample block in bounds");
            for l in 0..L {
                // Exact in i16 (|w|, |h| ≤ 127 → |product| ≤ 16129 <
                // 32767), mapping to the 8-wide `pmullw`-class
                // instructions every x86-64 baseline has.
                acc[l] += i32::from(wj * i16::from(hv[l]));
            }
            base += batch;
        }
        for l in 0..L {
            out[(s + l) * classes + k] = b[k] + scale[k] * acc[l] as f32;
        }
    }
}

/// The int8 dense layer over a whole batch at once — the integer twin of
/// [`dense_batch`]. `h_t` is the requantized hidden layer sample-minor
/// (`h_t[j · batch + s]`, what [`conv_rows_i8`] + [`relu_requant_i8`]
/// produce from a transposed batch); `w` keeps the model's `w[k · hl +
/// j]` layout; `out` receives sample-major dequantized logit rows:
/// `out[s · classes + k] = b[k] + scale[k] · Σ_j w[k·hl+j] · h_t[j·batch+s]`,
/// the dot product accumulated **exactly** in i32. Integer associativity
/// makes the result independent of blocking and batch shape entirely.
/// Overflow headroom: `hl · 127²` must stay below `i32::MAX` (the
/// paper's 1280-wide hidden layer uses under 1% of the range — pinned by
/// the property tests). Lane-blocked [`LANES`] samples at a time
/// (cascading 4/2/1).
#[inline]
pub fn dense_batch_i8(
    h_t: &[i8],
    w: &[i8],
    scale: &[f32],
    b: &[f32],
    batch: usize,
    out: &mut [f32],
) {
    let classes = b.len();
    debug_assert!(classes > 0 && w.len().is_multiple_of(classes));
    debug_assert_eq!(scale.len(), classes);
    #[cfg(target_arch = "x86_64")]
    if batch >= 16 && std::arch::is_x86_feature_detected!("avx2") {
        assert_eq!(h_t.len() * classes, w.len() * batch);
        assert_eq!(out.len(), batch * classes);
        // SAFETY: AVX2 verified at runtime; shapes asserted above.
        // Integer accumulation is exact, so the vpmaddwd pairing inside
        // cannot change a result vs the scalar cascade.
        unsafe { x86::dense_batch_i8(h_t, w, scale, b, batch, out) };
        return;
    }
    debug_assert_eq!(h_t.len() * classes, w.len() * batch);
    debug_assert_eq!(out.len(), batch * classes);
    dense_batch_i8_cascade(h_t, w, scale, b, batch, 0, out);
}

/// Portable sample-block cascade of [`dense_batch_i8`], starting at
/// sample `s` (the AVX2 path reuses it for sub-16 batch tails).
fn dense_batch_i8_cascade(
    h_t: &[i8],
    w: &[i8],
    scale: &[f32],
    b: &[f32],
    batch: usize,
    mut s: usize,
    out: &mut [f32],
) {
    while s + LANES <= batch {
        dense_sample_block_i8::<LANES>(h_t, w, scale, b, batch, s, out);
        s += LANES;
    }
    if s + 4 <= batch {
        dense_sample_block_i8::<4>(h_t, w, scale, b, batch, s, out);
        s += 4;
    }
    if s + 2 <= batch {
        dense_sample_block_i8::<2>(h_t, w, scale, b, batch, s, out);
        s += 2;
    }
    if s < batch {
        dense_sample_block_i8::<1>(h_t, w, scale, b, batch, s, out);
    }
}

/// Runtime-dispatched AVX2 bodies for the int8 tier. Integer
/// accumulation is exact and the requantization performs the same IEEE
/// f32 ops per element, so these produce **identical** outputs to the
/// portable bodies — the dispatch can never change a prediction, only
/// its speed. The workhorse is `vpmaddwd`: adjacent `(j, j+1)` reduction
/// steps are interleaved into the i16 pairs of one i32 lane, so each
/// instruction retires 16 multiply-adds where the portable i16 path
/// needs separate multiply and widening steps.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// Packs two i8 weights into the `(low, high)` i16 halves of an i32,
    /// the operand shape `vpmaddwd` pairs against.
    #[inline(always)]
    fn pack_pair(w0: i8, w1: i8) -> i32 {
        (i32::from(w1) << 16) | (i32::from(w0) & 0xFFFF)
    }

    /// # Safety
    ///
    /// Caller must verify AVX2 at runtime and the [`super::conv_rows_i8`]
    /// shape contract (`x.len() == rows·cols`, `w.len() == filters·rows`,
    /// `out.len() == filters·cols`, `cols ≥ 16`, `rows ≤ 128`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn conv_rows_i8(
        x: &[i8],
        w: &[i8],
        b: &[i32],
        filters: usize,
        rows: usize,
        cols: usize,
        out: &mut [i32],
    ) {
        unsafe {
            let xp = x.as_ptr();
            let pairs = rows / 2;
            let odd = rows % 2;
            // Row-pair packed weights, hoisted out of the column sweep.
            let mut wp = [0i32; 65];
            for f in 0..filters {
                let wf = &w[f * rows..(f + 1) * rows];
                for (p, pair) in wf.chunks_exact(2).enumerate() {
                    wp[p] = pack_pair(pair[0], pair[1]);
                }
                if odd == 1 {
                    wp[pairs] = pack_pair(wf[rows - 1], 0);
                }
                let bias = b[f];
                let of = &mut out[f * cols..(f + 1) * cols];
                let mut col = 0;
                while col + 16 <= cols {
                    // 16 output columns advance together; `vpunpck` lanes
                    // hold columns [0..3, 8..11] / [4..7, 12..15] until
                    // the final `vperm2i128` restores memory order.
                    let mut acc_lo = _mm256_set1_epi32(bias);
                    let mut acc_hi = _mm256_set1_epi32(bias);
                    for (p, &wpp) in wp.iter().enumerate().take(pairs) {
                        let r = 2 * p;
                        let x0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                            xp.add(r * cols + col) as *const __m128i
                        ));
                        let x1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                            xp.add((r + 1) * cols + col) as *const __m128i,
                        ));
                        let lo = _mm256_unpacklo_epi16(x0, x1);
                        let hi = _mm256_unpackhi_epi16(x0, x1);
                        let wv = _mm256_set1_epi32(wpp);
                        acc_lo = _mm256_add_epi32(acc_lo, _mm256_madd_epi16(lo, wv));
                        acc_hi = _mm256_add_epi32(acc_hi, _mm256_madd_epi16(hi, wv));
                    }
                    if odd == 1 {
                        let x0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                            xp.add((rows - 1) * cols + col) as *const __m128i,
                        ));
                        let z = _mm256_setzero_si256();
                        let lo = _mm256_unpacklo_epi16(x0, z);
                        let hi = _mm256_unpackhi_epi16(x0, z);
                        let wv = _mm256_set1_epi32(wp[pairs]);
                        acc_lo = _mm256_add_epi32(acc_lo, _mm256_madd_epi16(lo, wv));
                        acc_hi = _mm256_add_epi32(acc_hi, _mm256_madd_epi16(hi, wv));
                    }
                    let a = _mm256_permute2x128_si256(acc_lo, acc_hi, 0x20);
                    let c2 = _mm256_permute2x128_si256(acc_lo, acc_hi, 0x31);
                    _mm256_storeu_si256(of.as_mut_ptr().add(col) as *mut __m256i, a);
                    _mm256_storeu_si256(of.as_mut_ptr().add(col + 8) as *mut __m256i, c2);
                    col += 16;
                }
                for c in col..cols {
                    let mut acc = bias;
                    for (r, &wr) in wf.iter().enumerate() {
                        acc += i32::from(wr) * i32::from(x[r * cols + c]);
                    }
                    of[c] = acc;
                }
            }
        }
    }

    /// # Safety
    ///
    /// Caller must verify AVX2 at runtime and the
    /// [`super::relu_requant_i8`] shape contract (`acc.len() == out.len()
    /// == filters·cols`, `m.len() == filters`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn relu_requant_i8(
        acc: &[i32],
        m: &[f32],
        filters: usize,
        cols: usize,
        out: &mut [i8],
    ) {
        unsafe {
            let half = _mm256_set1_ps(0.5);
            let cap = _mm256_set1_ps(127.0);
            let zero = _mm256_setzero_si256();
            // Restores byte order after the two saturating packs (which
            // interleave their operands' 128-bit lanes).
            let fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
            for f in 0..filters {
                let mf = _mm256_set1_ps(m[f]);
                let ap = acc.as_ptr().add(f * cols);
                let op = out.as_mut_ptr().add(f * cols);
                let mut c = 0;
                while c + 32 <= cols {
                    let mut q = [zero; 4];
                    for (i, qi) in q.iter_mut().enumerate() {
                        let v = _mm256_loadu_si256(ap.add(c + 8 * i) as *const __m256i);
                        let v = _mm256_max_epi32(v, zero);
                        let vf = _mm256_add_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(v), mf), half);
                        // min against 127.0 before truncation matches the
                        // scalar saturating cast + `.min(127)` for every
                        // non-negative input.
                        *qi = _mm256_cvttps_epi32(_mm256_min_ps(vf, cap));
                    }
                    let p01 = _mm256_packs_epi32(q[0], q[1]);
                    let p23 = _mm256_packs_epi32(q[2], q[3]);
                    let packed = _mm256_packs_epi16(p01, p23);
                    let packed = _mm256_permutevar8x32_epi32(packed, fix);
                    _mm256_storeu_si256(op.add(c) as *mut __m256i, packed);
                    c += 32;
                }
                let mfs = m[f];
                for cc in c..cols {
                    let a = acc[f * cols + cc].max(0);
                    out[f * cols + cc] = ((a as f32 * mfs + 0.5) as i32).min(127) as i8;
                }
            }
        }
    }

    /// One 16-sample block of [`dense_batch_i8`][super::dense_batch_i8]
    /// for one (`TWO` = false) or two adjacent classes: `vpmaddwd` over
    /// interleaved `(j, j+1)` activation pairs, sharing each pair's
    /// unpack across both classes.
    ///
    /// # Safety
    ///
    /// AVX2, and `hp` must point at `hl · batch` readable bytes with
    /// `s + 16 ≤ batch`.
    #[target_feature(enable = "avx2")]
    unsafe fn dense16<const TWO: bool>(
        hp: *const i8,
        w0: &[i8],
        w1: &[i8],
        hl: usize,
        batch: usize,
        s: usize,
    ) -> [__m256i; 4] {
        unsafe {
            let mut a0_lo = _mm256_setzero_si256();
            let mut a0_hi = _mm256_setzero_si256();
            let mut a1_lo = _mm256_setzero_si256();
            let mut a1_hi = _mm256_setzero_si256();
            let mut j = 0;
            while j + 2 <= hl {
                let h0 =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(hp.add(j * batch + s) as *const __m128i));
                let h1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    hp.add((j + 1) * batch + s) as *const __m128i
                ));
                let lo = _mm256_unpacklo_epi16(h0, h1);
                let hi = _mm256_unpackhi_epi16(h0, h1);
                let wv0 = _mm256_set1_epi32(pack_pair(w0[j], w0[j + 1]));
                a0_lo = _mm256_add_epi32(a0_lo, _mm256_madd_epi16(lo, wv0));
                a0_hi = _mm256_add_epi32(a0_hi, _mm256_madd_epi16(hi, wv0));
                if TWO {
                    let wv1 = _mm256_set1_epi32(pack_pair(w1[j], w1[j + 1]));
                    a1_lo = _mm256_add_epi32(a1_lo, _mm256_madd_epi16(lo, wv1));
                    a1_hi = _mm256_add_epi32(a1_hi, _mm256_madd_epi16(hi, wv1));
                }
                j += 2;
            }
            if j < hl {
                let h0 =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(hp.add(j * batch + s) as *const __m128i));
                let z = _mm256_setzero_si256();
                let lo = _mm256_unpacklo_epi16(h0, z);
                let hi = _mm256_unpackhi_epi16(h0, z);
                let wv0 = _mm256_set1_epi32(pack_pair(w0[j], 0));
                a0_lo = _mm256_add_epi32(a0_lo, _mm256_madd_epi16(lo, wv0));
                a0_hi = _mm256_add_epi32(a0_hi, _mm256_madd_epi16(hi, wv0));
                if TWO {
                    let wv1 = _mm256_set1_epi32(pack_pair(w1[j], 0));
                    a1_lo = _mm256_add_epi32(a1_lo, _mm256_madd_epi16(lo, wv1));
                    a1_hi = _mm256_add_epi32(a1_hi, _mm256_madd_epi16(hi, wv1));
                }
            }
            [a0_lo, a0_hi, a1_lo, a1_hi]
        }
    }

    /// # Safety
    ///
    /// Caller must verify AVX2 at runtime and the
    /// [`super::dense_batch_i8`] shape contract (`w.len() == classes·hl`,
    /// `h_t.len() == hl·batch`, `out.len() == batch·classes`,
    /// `batch ≥ 16`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn dense_batch_i8(
        h_t: &[i8],
        w: &[i8],
        scale: &[f32],
        b: &[f32],
        batch: usize,
        out: &mut [f32],
    ) {
        unsafe {
            let classes = b.len();
            let hl = w.len() / classes;
            let hp = h_t.as_ptr();
            // Dequantize + un-interleave one class's accumulators and
            // scatter them into the sample-major output rows.
            let store = |acc_lo: __m256i, acc_hi: __m256i, k: usize, s: usize, out: &mut [f32]| {
                let a = _mm256_permute2x128_si256(acc_lo, acc_hi, 0x20);
                let c2 = _mm256_permute2x128_si256(acc_lo, acc_hi, 0x31);
                let sc = _mm256_set1_ps(scale[k]);
                let bk = _mm256_set1_ps(b[k]);
                let va = _mm256_add_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(a), sc), bk);
                let vb = _mm256_add_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(c2), sc), bk);
                let mut tmp = [0.0f32; 16];
                _mm256_storeu_ps(tmp.as_mut_ptr(), va);
                _mm256_storeu_ps(tmp.as_mut_ptr().add(8), vb);
                for (l, &v) in tmp.iter().enumerate() {
                    out[(s + l) * classes + k] = v;
                }
            };
            let mut s = 0;
            while s + 16 <= batch {
                let mut k = 0;
                while k + 2 <= classes {
                    let w0 = &w[k * hl..(k + 1) * hl];
                    let w1 = &w[(k + 1) * hl..(k + 2) * hl];
                    let acc = dense16::<true>(hp, w0, w1, hl, batch, s);
                    store(acc[0], acc[1], k, s, out);
                    store(acc[2], acc[3], k + 1, s, out);
                    k += 2;
                }
                if k < classes {
                    let w0 = &w[k * hl..(k + 1) * hl];
                    let acc = dense16::<false>(hp, w0, w0, hl, batch, s);
                    store(acc[0], acc[1], k, s, out);
                }
                s += 16;
            }
            if s < batch {
                super::dense_batch_i8_cascade(h_t, w, scale, b, batch, s, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_aig::Rng64;

    fn random_vec(rng: &mut Rng64, n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|_| rng.f32_symmetric(scale)).collect()
    }

    /// The unblocked scalar reference every kernel must reproduce
    /// bit-for-bit: one accumulator per output, ascending-index adds.
    fn dense_reference(h: &[f32], w: &[f32], b: &[f32]) -> Vec<f32> {
        let hl = h.len();
        b.iter()
            .enumerate()
            .map(|(k, &bk)| {
                let mut acc = bk;
                for (j, &hj) in h.iter().enumerate() {
                    acc += w[k * hl + j] * hj;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn dense_blocking_is_bit_identical_to_scalar() {
        let mut rng = Rng64::seed_from(11);
        // Class counts straddling the 8/4/2-wide block cascade, including
        // remainder tails and an all-tail case.
        for classes in [1usize, 3, 4, 5, 8, 10, 11, 16, 17] {
            let h = random_vec(&mut rng, 257, 1.0);
            let w = random_vec(&mut rng, classes * h.len(), 0.5);
            let b = random_vec(&mut rng, classes, 0.1);
            let mut out = vec![0.0f32; classes];
            dense(&h, &w, &b, &mut out);
            let reference = dense_reference(&h, &w, &b);
            for (k, (&got, &want)) in out.iter().zip(&reference).enumerate() {
                assert_eq!(got.to_bits(), want.to_bits(), "class {k} of {classes}");
            }
        }
    }

    #[test]
    fn dense_batch_is_bit_identical_to_per_sample_dense() {
        let mut rng = Rng64::seed_from(14);
        // Batch sizes straddling the 8/4/2/1 sample-block cascade.
        for batch in [1usize, 2, 5, 8, 16, 37] {
            let (classes, hl) = (10usize, 64usize);
            let hs = random_vec(&mut rng, batch * hl, 1.0); // sample-major
            let w = random_vec(&mut rng, classes * hl, 0.5);
            let b = random_vec(&mut rng, classes, 0.1);
            let mut h_t = vec![0.0f32; hs.len()];
            transpose(&hs, batch, hl, &mut h_t);
            let mut out = vec![0.0f32; batch * classes];
            dense_batch(&h_t, &w, &b, batch, &mut out);
            for (s, h) in hs.chunks_exact(hl).enumerate() {
                let reference = dense_reference(h, &w, &b);
                for (k, &want) in reference.iter().enumerate() {
                    assert_eq!(
                        out[s * classes + k].to_bits(),
                        want.to_bits(),
                        "sample {s} class {k} of batch {batch}"
                    );
                }
            }
        }
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = Rng64::seed_from(15);
        let (rows, cols) = (7usize, 13usize);
        let src = random_vec(&mut rng, rows * cols, 1.0);
        let mut t = vec![0.0f32; src.len()];
        let mut back = vec![0.0f32; src.len()];
        transpose(&src, rows, cols, &mut t);
        assert_eq!(t[2 * rows + 3], src[3 * cols + 2]);
        transpose(&t, cols, rows, &mut back);
        assert_eq!(src, back);
    }

    #[test]
    fn conv_matches_scalar_reference() {
        // Column counts straddling the 8/4/2-wide block cascade (10 is
        // the paper shape: one 8-block plus a 2-block).
        for (filters, rows, cols) in [
            (7usize, 15usize, 10usize),
            (3, 15, 8),
            (2, 4, 3),
            (1, 5, 17),
        ] {
            let mut rng = Rng64::seed_from(12);
            let x = random_vec(&mut rng, rows * cols, 2.0);
            let w = random_vec(&mut rng, filters * rows, 0.5);
            let b = random_vec(&mut rng, filters, 0.1);
            let mut out = vec![0.0f32; filters * cols];
            conv_rows(&x, &w, &b, filters, rows, cols, &mut out);
            for f in 0..filters {
                for col in 0..cols {
                    let mut acc = b[f];
                    for r in 0..rows {
                        acc += w[f * rows + r] * x[r * cols + col];
                    }
                    assert_eq!(
                        out[f * cols + col].to_bits(),
                        acc.to_bits(),
                        "({f},{col}) of {cols}"
                    );
                }
            }
        }
    }

    #[test]
    fn standardize_clamps_extremes() {
        // 11 elements: one full 8-lane block plus a 3-element remainder.
        let raw = [
            1e9f32, -1e9, 0.5, 1.0, -1.0, 2.0, -2.0, 0.0, 1e9, -0.25, 0.75,
        ];
        let mean = [0.0f32; 11];
        let std = [1.0f32; 11];
        let mut out = [0.0f32; 11];
        standardize_clamped(&raw, &mean, &std, &mut out);
        assert_eq!(
            out,
            [6.0, -6.0, 0.5, 1.0, -1.0, 2.0, -2.0, 0.0, 6.0, -0.25, 0.75]
        );
    }

    #[test]
    fn relu_variants_agree() {
        // 9 elements: one 8-lane block plus a 1-element remainder.
        let src = [-1.5f32, 0.0, 2.5, -0.0, 7.0, -7.0, 0.25, -0.25, -3.0];
        let mut dst = [9.0f32; 9];
        relu(&src, &mut dst);
        let mut inplace = src;
        relu_inplace(&mut inplace);
        assert_eq!(dst, inplace);
        assert_eq!(dst, [0.0, 0.0, 2.5, 0.0, 7.0, 0.0, 0.25, 0.0, 0.0]);
    }

    #[test]
    fn softmax_is_finite_and_normalized_on_extreme_logits() {
        // The satellite property test: logits at ±1e4 must not overflow
        // (naive exp(1e4) = inf) and must still sum to one.
        let cases: [&[f32]; 5] = [
            &[1e4, -1e4, 0.0],
            &[-1e4, -1e4, -1e4],
            &[1e4, 1e4, 1e4],
            &[1e4],
            &[0.0, -2.5, 7.0, 1e4, -1e4],
        ];
        for logits in cases {
            let mut row = logits.to_vec();
            softmax_inplace(&mut row);
            assert!(
                row.iter().all(|v| v.is_finite() && *v >= 0.0),
                "non-finite probabilities for {logits:?}: {row:?}"
            );
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "sum {sum} for {logits:?}");
        }
    }

    #[test]
    fn softmax_subtracts_row_max() {
        // With the max subtracted, the largest entry exponentiates to
        // exactly 1 before normalization, so its probability is
        // 1 / Σ exp(l - max) — for one dominant logit, ≈ 1.
        let mut row = vec![1e4f32, 0.0, -3.0];
        softmax_inplace(&mut row);
        assert!((row[0] - 1.0).abs() < 1e-6);
        assert_eq!(row[1], 0.0);
        assert_eq!(row[2], 0.0);
    }

    /// The pinned tie rule (satellite contract): the **first** maximal
    /// index wins, on exact ties of any multiplicity, at any position.
    #[test]
    fn argmax_takes_first_of_equal_maxima() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
        assert_eq!(argmax(&[-1.0, -1.0]), 0);
        assert_eq!(argmax(&[2.0, 2.0, 2.0, 2.0]), 0);
        assert_eq!(argmax(&[0.0, 7.0, 6.0, 7.0, 7.0]), 1);
        // -0.0 and +0.0 compare equal: the first occurrence wins.
        assert_eq!(argmax(&[-0.0, 0.0]), 0);
        // On tie-free rows the rule agrees with Iterator::max_by.
        let mut rng = Rng64::seed_from(13);
        for _ in 0..50 {
            let row = random_vec(&mut rng, 10, 1.0);
            let reference = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty");
            assert_eq!(argmax(&row), reference, "{row:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty row")]
    fn argmax_rejects_empty() {
        argmax(&[]);
    }

    #[test]
    fn quantize_i8_round_trips_within_half_a_step() {
        // Property: dequantizing q = round(v/s) recovers v to within
        // s/2 for every in-range v (the classic uniform-quantizer bound).
        let scale = 6.0f32 / 127.0;
        let inv = 1.0 / scale;
        let mut rng = Rng64::seed_from(17);
        let src: Vec<f32> = (0..1000).map(|_| rng.f32_symmetric(6.0)).collect();
        let mut q = vec![0i8; src.len()];
        quantize_i8(&src, inv, &mut q);
        for (&v, &qi) in src.iter().zip(&q) {
            let back = f32::from(qi) * scale;
            assert!(
                (back - v).abs() <= scale / 2.0 + 1e-6,
                "v={v} q={qi} back={back}"
            );
            assert!((-127..=127).contains(&i32::from(qi)));
        }
        // The clamp boundary itself quantizes to exactly ±127.
        let mut edge = [0i8; 2];
        quantize_i8(&[6.0, -6.0], inv, &mut edge);
        assert_eq!(edge, [127, -127]);
    }

    #[test]
    fn conv_rows_i8_matches_integer_reference_and_blocking_is_exact() {
        // Shapes straddling both the scalar column cascade (cols < 16)
        // and the AVX2 16-column path with scalar tails (cols ≥ 16),
        // with even and odd row counts (the odd row pairs with zero in
        // the vpmaddwd path).
        let shapes = [
            (5usize, 15usize, 10usize),
            (3, 15, 160),
            (2, 4, 37),
            (1, 1, 16),
            (2, 5, 33),
        ];
        let mut rng = Rng64::seed_from(18);
        for (filters, rows, cols) in shapes {
            let x: Vec<i8> = (0..rows * cols)
                .map(|_| (rng.next_u64() % 255) as i32 - 127)
                .map(|v| v as i8)
                .collect();
            let w: Vec<i8> = (0..filters * rows)
                .map(|_| (rng.next_u64() % 255) as i32 - 127)
                .map(|v| v as i8)
                .collect();
            let b: Vec<i32> = (0..filters)
                .map(|_| (rng.next_u64() % 1000) as i32 - 500)
                .collect();
            let mut out = vec![0i32; filters * cols];
            conv_rows_i8(&x, &w, &b, filters, rows, cols, &mut out);
            for f in 0..filters {
                for col in 0..cols {
                    let mut acc = b[f];
                    for r in 0..rows {
                        acc += i32::from(w[f * rows + r]) * i32::from(x[r * cols + col]);
                    }
                    assert_eq!(out[f * cols + col], acc, "({f},{col}) cols={cols}");
                }
            }
        }
    }

    #[test]
    fn conv_i8_worst_case_stays_in_i32_headroom() {
        // Property: the adversarial worst case — every weight and input
        // saturated at ±127, paper-sized layer — accumulates without
        // i32 overflow (debug builds would panic on wrap). 15 rows of
        // 127·127 plus a large bias is ~0.01% of the i32 range.
        let (filters, rows, cols) = (128usize, 15usize, 10usize);
        let x = vec![127i8; rows * cols];
        let w = vec![-127i8; filters * rows];
        let b = vec![i32::MAX / 4; filters];
        let mut out = vec![0i32; filters * cols];
        conv_rows_i8(&x, &w, &b, filters, rows, cols, &mut out);
        let expect = i32::MAX / 4 - 15 * 127 * 127;
        assert!(out.iter().all(|&v| v == expect));
        let worst: i64 = 15 * 127 * 127;
        assert!(
            worst * 8 < i64::from(i32::MAX),
            "paper conv worst case must leave ≥8× headroom"
        );
    }

    #[test]
    fn dense_batch_i8_matches_integer_reference_and_headroom_holds() {
        let (classes, hl) = (10usize, 1280usize);
        let mut rng = Rng64::seed_from(19);
        let w: Vec<i8> = (0..classes * hl)
            .map(|_| ((rng.next_u64() % 255) as i32 - 127) as i8)
            .collect();
        let scale: Vec<f32> = (0..classes)
            .map(|_| rng.f32_symmetric(0.01).abs() + 1e-4)
            .collect();
        let b: Vec<f32> = (0..classes).map(|_| rng.f32_symmetric(0.5)).collect();
        // Batch sizes straddling the 8/4/2/1 sample-block cascade
        // (batch < 16) and the AVX2 16-sample blocks with cascade tails
        // (batch ≥ 16).
        for batch in [1usize, 3, 8, 11, 16, 19, 37, 64] {
            let h_t: Vec<i8> = (0..hl * batch)
                .map(|_| (rng.next_u64() % 128) as i8)
                .collect();
            let mut out = vec![0.0f32; batch * classes];
            dense_batch_i8(&h_t, &w, &scale, &b, batch, &mut out);
            for s in 0..batch {
                for k in 0..classes {
                    let mut acc = 0i32;
                    for j in 0..hl {
                        acc += i32::from(w[k * hl + j]) * i32::from(h_t[j * batch + s]);
                    }
                    let want = b[k] + scale[k] * acc as f32;
                    assert_eq!(
                        out[s * classes + k].to_bits(),
                        want.to_bits(),
                        "sample {s} class {k} of batch {batch}"
                    );
                }
            }
        }
        // Odd hidden length and odd class count exercise the zero-paired
        // vpmaddwd tail and the single-class remainder of the AVX2 path.
        {
            let (classes, hl) = (3usize, 7usize);
            let w: Vec<i8> = (0..classes * hl)
                .map(|_| ((rng.next_u64() % 255) as i32 - 127) as i8)
                .collect();
            let scale: Vec<f32> = (0..classes)
                .map(|_| rng.f32_symmetric(0.01).abs() + 1e-4)
                .collect();
            let b: Vec<f32> = (0..classes).map(|_| rng.f32_symmetric(0.5)).collect();
            for batch in [5usize, 16, 21] {
                let h_t: Vec<i8> = (0..hl * batch)
                    .map(|_| (rng.next_u64() % 128) as i8)
                    .collect();
                let mut out = vec![0.0f32; batch * classes];
                dense_batch_i8(&h_t, &w, &scale, &b, batch, &mut out);
                for s in 0..batch {
                    for k in 0..classes {
                        let mut acc = 0i32;
                        for j in 0..hl {
                            acc += i32::from(w[k * hl + j]) * i32::from(h_t[j * batch + s]);
                        }
                        let want = b[k] + scale[k] * acc as f32;
                        assert_eq!(
                            out[s * classes + k].to_bits(),
                            want.to_bits(),
                            "odd shape: sample {s} class {k} of batch {batch}"
                        );
                    }
                }
            }
        }
        // Property: the paper-sized worst case (1280 terms of ±127²)
        // uses under 1% of the i32 range.
        let worst: i64 = 1280 * 127 * 127;
        assert!(worst * 100 < i64::from(i32::MAX));
        // And the adversarial all-saturated dot product runs without
        // overflow in debug builds.
        let h = vec![127i8; hl * 3];
        let w = vec![-127i8; classes * hl];
        let mut out = vec![0.0f32; 3 * classes];
        dense_batch_i8(
            &h,
            &w,
            &vec![1.0; classes],
            &vec![0.0; classes],
            3,
            &mut out,
        );
        assert!(out.iter().all(|&v| v == -(1280.0 * 127.0 * 127.0)));
    }

    #[test]
    fn relu_requant_maps_worst_case_to_127_and_negatives_to_zero() {
        let (filters, cols) = (2usize, 3usize);
        // Filter 0: worst-case accumulator 1000 → multiplier 127/1000.
        // Filter 1: worst-case 50 → multiplier 127/50.
        let m = [127.0f32 / 1000.0, 127.0 / 50.0];
        let acc = [1000i32, -5, 500, 50, 25, 0];
        let mut out = [0i8; 6];
        relu_requant_i8(&acc, &m, filters, cols, &mut out);
        assert_eq!(out[0], 127, "worst case lands exactly at 127");
        assert_eq!(out[1], 0, "negative pre-activations clamp to zero");
        assert_eq!(out[2], 64, "round(500 · 0.127) = 64");
        assert_eq!(out[3], 127);
        assert_eq!(out[4], 64, "round(25 · 2.54) = 64");
        assert_eq!(out[5], 0);
    }

    #[test]
    fn relu_requant_wide_rows_match_scalar_formula_exactly() {
        // cols ≥ 32 dispatches to the AVX2 32-element blocks (with a
        // scalar tail); the outputs must be byte-identical to the scalar
        // formula, including at-the-cap and far-past-the-cap extremes.
        let (filters, cols) = (3usize, 67usize);
        let mut rng = Rng64::seed_from(21);
        let mut acc: Vec<i32> = (0..filters * cols)
            .map(|_| (rng.next_u64() % 2001) as i32 - 1000)
            .collect();
        // Extremes: exact worst case, far overflow, deep negative.
        acc[0] = 1000;
        acc[1] = i32::MAX;
        acc[2] = i32::MIN;
        let m = [127.0f32 / 1000.0, 127.0 / 350.0, 0.0];
        let mut out = vec![0i8; filters * cols];
        relu_requant_i8(&acc, &m, filters, cols, &mut out);
        for f in 0..filters {
            for c in 0..cols {
                let a = acc[f * cols + c].max(0);
                let want = ((a as f32 * m[f] + 0.5) as i32).min(127) as i8;
                assert_eq!(out[f * cols + c], want, "({f},{c})");
            }
        }
    }
}
