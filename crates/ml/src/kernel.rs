//! Blocked, allocation-free f32 kernels shared by the per-sample and
//! batched inference/training paths.
//!
//! # The accumulation-order contract
//!
//! Every output element is produced by **exactly the same sequence of
//! f32 operations** no matter how the call is batched, blocked, or
//! distributed across threads: an accumulator is initialized from the
//! bias and updated in ascending input-index order, one fused
//! multiply-free `acc += w * x` at a time. Blocking only changes *which
//! independent accumulators* advance together — the dense kernel walks
//! four output classes side by side and the convolution kernel walks all
//! columns of one filter side by side, giving the compiler independent
//! chains to vectorize and pipeline — never the order of additions
//! *within* one accumulator.
//!
//! Consequences, relied on across the workspace:
//!
//! - `CutCnn::predict_batch_into` is bit-identical to per-sample
//!   [`CutCnn::predict`](crate::CutCnn::predict), which in turn is
//!   bit-identical to the pre-kernel scalar implementation;
//! - splitting a batch into `slap-par` chunks and reassembling in order
//!   cannot change a single bit, so the SLAP flow's scored classes are
//!   thread-count invariant;
//! - the training forward/backward passes built on these kernels keep the
//!   batch-order gradient reduction and hence the whole weight
//!   trajectory bit-identical for every thread count.
//!
//! None of the kernels allocate; callers own every buffer.

/// Standardizes `raw` into `out`: `(v - mean) / std`, clamped to ±6
/// z-scores (inference-time inputs from circuits much larger than the
/// training set would otherwise push the network far outside the regime
/// it was trained in).
///
/// # Panics
///
/// Debug-asserts that all four slices share one length.
#[inline]
pub fn standardize_clamped(raw: &[f32], mean: &[f32], std: &[f32], out: &mut [f32]) {
    debug_assert_eq!(raw.len(), mean.len());
    debug_assert_eq!(raw.len(), std.len());
    debug_assert_eq!(raw.len(), out.len());
    for (((o, &v), &m), &s) in out.iter_mut().zip(raw).zip(mean).zip(std) {
        *o = ((v - m) / s).clamp(-6.0, 6.0);
    }
}

/// The Fig. 3 convolution: `filters` filters of shape `rows × 1` slide
/// across the `cols` columns of the `rows × cols` input `x`, so
/// `out[f * cols + col] = b[f] + Σ_r w[f * rows + r] · x[r * cols + col]`.
///
/// Blocked over columns: for each filter the whole output row is seeded
/// with the bias and then swept row by row, updating all `cols`
/// independent accumulators with one broadcast weight — a contiguous,
/// autovectorization-friendly inner loop. Each accumulator still sees
/// its additions in ascending `r` order (the contract above).
#[inline]
pub fn conv_rows(
    x: &[f32],
    w: &[f32],
    b: &[f32],
    filters: usize,
    rows: usize,
    cols: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(x.len(), rows * cols);
    debug_assert_eq!(w.len(), filters * rows);
    debug_assert_eq!(b.len(), filters);
    debug_assert_eq!(out.len(), filters * cols);
    for f in 0..filters {
        let wf = &w[f * rows..(f + 1) * rows];
        let of = &mut out[f * cols..(f + 1) * cols];
        of.fill(b[f]);
        for (r, &wr) in wf.iter().enumerate() {
            let xr = &x[r * cols..(r + 1) * cols];
            for (o, &xv) in of.iter_mut().zip(xr) {
                *o += wr * xv;
            }
        }
    }
}

/// Elementwise `max(0, ·)` from `src` into `dst` (kept out of place so
/// the trainer retains the pre-activation values for the backward pass).
#[inline]
pub fn relu(src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.max(0.0);
    }
}

/// Elementwise `max(0, ·)` in place (the inference path, which never
/// needs the pre-activation values again).
#[inline]
pub fn relu_inplace(data: &mut [f32]) {
    for v in data.iter_mut() {
        *v = v.max(0.0);
    }
}

/// The dense layer: `out[k] = b[k] + Σ_j w[k * h.len() + j] · h[j]`.
///
/// Blocked four output classes at a time: the four accumulators form
/// independent dependency chains sharing each `h[j]` load, so the
/// compiler can pipeline the multiply-adds instead of serializing on one
/// accumulator's add latency (the unblocked seed loop was latency-bound).
/// Each accumulator still sums in ascending `j` order.
#[inline]
pub fn dense(h: &[f32], w: &[f32], b: &[f32], out: &mut [f32]) {
    let hl = h.len();
    let classes = out.len();
    debug_assert_eq!(w.len(), classes * hl);
    debug_assert_eq!(b.len(), classes);
    let mut k = 0;
    while k + 4 <= classes {
        let w0 = &w[k * hl..(k + 1) * hl];
        let w1 = &w[(k + 1) * hl..(k + 2) * hl];
        let w2 = &w[(k + 2) * hl..(k + 3) * hl];
        let w3 = &w[(k + 3) * hl..(k + 4) * hl];
        let (mut a0, mut a1, mut a2, mut a3) = (b[k], b[k + 1], b[k + 2], b[k + 3]);
        for (j, &hj) in h.iter().enumerate() {
            a0 += w0[j] * hj;
            a1 += w1[j] * hj;
            a2 += w2[j] * hj;
            a3 += w3[j] * hj;
        }
        out[k] = a0;
        out[k + 1] = a1;
        out[k + 2] = a2;
        out[k + 3] = a3;
        k += 4;
    }
    while k < classes {
        let wk = &w[k * hl..(k + 1) * hl];
        let mut acc = b[k];
        for (&wj, &hj) in wk.iter().zip(h) {
            acc += wj * hj;
        }
        out[k] = acc;
        k += 1;
    }
}

/// In-place numerically-stable softmax: subtracts the row maximum before
/// exponentiating (so extreme logits cannot overflow `exp`), then
/// normalizes by the sequential sum. The maximum entry exponentiates to
/// exactly 1, so the sum is always ≥ 1 and the division is safe.
#[inline]
pub fn softmax_inplace(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for v in row.iter_mut() {
        *v = (*v - max).exp();
    }
    let sum: f32 = row.iter().sum();
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// Index of the row maximum, taking the **last** of equal maxima — the
/// tie rule of `Iterator::max_by`, which the pre-kernel implementation
/// used, preserved so predicted classes stay bit-identical.
///
/// # Panics
///
/// Panics if `row` is empty; debug-asserts the values are not NaN.
#[inline]
pub fn argmax(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax of an empty row");
    debug_assert!(row.iter().all(|v| !v.is_nan()), "argmax over NaN");
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v >= row[best] {
            best = i;
        }
    }
    best
}

/// Backward through the dense layer for one sample, accumulating into the
/// caller's gradient slices (never overwriting — the trainer sums batches
/// in batch order):
///
/// - `g_b[k] += dlogits[k]`
/// - `g_w[k][j] += dlogits[k] · h[j]`
/// - `dhidden[j] += dlogits[k] · w[k][j]` (ascending `k`, the seed order)
#[inline]
pub fn dense_backward(
    dlogits: &[f32],
    h: &[f32],
    w: &[f32],
    g_w: &mut [f32],
    g_b: &mut [f32],
    dhidden: &mut [f32],
) {
    let hl = h.len();
    debug_assert_eq!(dlogits.len(), g_b.len());
    debug_assert_eq!(w.len(), dlogits.len() * hl);
    debug_assert_eq!(g_w.len(), w.len());
    debug_assert_eq!(dhidden.len(), hl);
    for (k, &dl) in dlogits.iter().enumerate() {
        g_b[k] += dl;
        let gw = &mut g_w[k * hl..(k + 1) * hl];
        let wk = &w[k * hl..(k + 1) * hl];
        for j in 0..hl {
            gw[j] += dl * h[j];
            dhidden[j] += dl * wk[j];
        }
    }
}

/// Backward through ReLU and the convolution for one sample, accumulating
/// conv parameter gradients. `conv_out` carries the pre-activation
/// values; non-positive entries contribute nothing (a hard skip, not a
/// multiply by zero, matching the seed's float behaviour exactly).
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors conv_rows' shape triplet plus the gradient pair
pub fn conv_backward_rows(
    x: &[f32],
    conv_out: &[f32],
    dhidden: &[f32],
    filters: usize,
    rows: usize,
    cols: usize,
    g_w: &mut [f32],
    g_b: &mut [f32],
) {
    debug_assert_eq!(x.len(), rows * cols);
    debug_assert_eq!(conv_out.len(), filters * cols);
    debug_assert_eq!(dhidden.len(), filters * cols);
    debug_assert_eq!(g_w.len(), filters * rows);
    debug_assert_eq!(g_b.len(), filters);
    for f in 0..filters {
        let gw = &mut g_w[f * rows..(f + 1) * rows];
        for col in 0..cols {
            let idx = f * cols + col;
            if conv_out[idx] <= 0.0 {
                continue;
            }
            let d = dhidden[idx];
            g_b[f] += d;
            for (r, g) in gw.iter_mut().enumerate() {
                *g += d * x[r * cols + col];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_aig::Rng64;

    fn random_vec(rng: &mut Rng64, n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|_| rng.f32_symmetric(scale)).collect()
    }

    /// The unblocked scalar reference every kernel must reproduce
    /// bit-for-bit: one accumulator per output, ascending-index adds.
    fn dense_reference(h: &[f32], w: &[f32], b: &[f32]) -> Vec<f32> {
        let hl = h.len();
        b.iter()
            .enumerate()
            .map(|(k, &bk)| {
                let mut acc = bk;
                for (j, &hj) in h.iter().enumerate() {
                    acc += w[k * hl + j] * hj;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn dense_blocking_is_bit_identical_to_scalar() {
        let mut rng = Rng64::seed_from(11);
        // Class counts straddling the 4-wide block boundary, including a
        // remainder tail and an all-tail case.
        for classes in [1usize, 3, 4, 5, 8, 10, 11] {
            let h = random_vec(&mut rng, 257, 1.0);
            let w = random_vec(&mut rng, classes * h.len(), 0.5);
            let b = random_vec(&mut rng, classes, 0.1);
            let mut out = vec![0.0f32; classes];
            dense(&h, &w, &b, &mut out);
            let reference = dense_reference(&h, &w, &b);
            for (k, (&got, &want)) in out.iter().zip(&reference).enumerate() {
                assert_eq!(got.to_bits(), want.to_bits(), "class {k} of {classes}");
            }
        }
    }

    #[test]
    fn conv_matches_scalar_reference() {
        let (filters, rows, cols) = (7usize, 15usize, 10usize);
        let mut rng = Rng64::seed_from(12);
        let x = random_vec(&mut rng, rows * cols, 2.0);
        let w = random_vec(&mut rng, filters * rows, 0.5);
        let b = random_vec(&mut rng, filters, 0.1);
        let mut out = vec![0.0f32; filters * cols];
        conv_rows(&x, &w, &b, filters, rows, cols, &mut out);
        for f in 0..filters {
            for col in 0..cols {
                let mut acc = b[f];
                for r in 0..rows {
                    acc += w[f * rows + r] * x[r * cols + col];
                }
                assert_eq!(out[f * cols + col].to_bits(), acc.to_bits(), "({f},{col})");
            }
        }
    }

    #[test]
    fn standardize_clamps_extremes() {
        let raw = [1e9f32, -1e9, 0.5];
        let mean = [0.0f32; 3];
        let std = [1.0f32; 3];
        let mut out = [0.0f32; 3];
        standardize_clamped(&raw, &mean, &std, &mut out);
        assert_eq!(out, [6.0, -6.0, 0.5]);
    }

    #[test]
    fn relu_variants_agree() {
        let src = [-1.5f32, 0.0, 2.5, -0.0];
        let mut dst = [9.0f32; 4];
        relu(&src, &mut dst);
        let mut inplace = src;
        relu_inplace(&mut inplace);
        assert_eq!(dst, inplace);
        assert_eq!(dst, [0.0, 0.0, 2.5, 0.0]);
    }

    #[test]
    fn softmax_is_finite_and_normalized_on_extreme_logits() {
        // The satellite property test: logits at ±1e4 must not overflow
        // (naive exp(1e4) = inf) and must still sum to one.
        let cases: [&[f32]; 5] = [
            &[1e4, -1e4, 0.0],
            &[-1e4, -1e4, -1e4],
            &[1e4, 1e4, 1e4],
            &[1e4],
            &[0.0, -2.5, 7.0, 1e4, -1e4],
        ];
        for logits in cases {
            let mut row = logits.to_vec();
            softmax_inplace(&mut row);
            assert!(
                row.iter().all(|v| v.is_finite() && *v >= 0.0),
                "non-finite probabilities for {logits:?}: {row:?}"
            );
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "sum {sum} for {logits:?}");
        }
    }

    #[test]
    fn softmax_subtracts_row_max() {
        // With the max subtracted, the largest entry exponentiates to
        // exactly 1 before normalization, so its probability is
        // 1 / Σ exp(l - max) — for one dominant logit, ≈ 1.
        let mut row = vec![1e4f32, 0.0, -3.0];
        softmax_inplace(&mut row);
        assert!((row[0] - 1.0).abs() < 1e-6);
        assert_eq!(row[1], 0.0);
        assert_eq!(row[2], 0.0);
    }

    #[test]
    fn argmax_takes_last_of_equal_maxima() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 2);
        assert_eq!(argmax(&[5.0]), 0);
        assert_eq!(argmax(&[-1.0, -1.0]), 1);
        // Must match Iterator::max_by on every input.
        let mut rng = Rng64::seed_from(13);
        for _ in 0..50 {
            let row = random_vec(&mut rng, 10, 1.0);
            let reference = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty");
            assert_eq!(argmax(&row), reference, "{row:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty row")]
    fn argmax_rejects_empty() {
        argmax(&[]);
    }
}
