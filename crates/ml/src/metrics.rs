//! Richer evaluation metrics: confusion matrix and per-class statistics.

use crate::dataset::Dataset;
use crate::model::{CutCnn, InferenceScratch};

/// A `classes × classes` confusion matrix: `counts[actual][predicted]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Evaluates `model` over `data`, scoring in batches through one
    /// reused [`InferenceScratch`] (batched predictions are bit-identical
    /// to per-sample ones, so the matrix is unchanged from a per-sample
    /// sweep).
    pub fn compute(model: &CutCnn, data: &Dataset) -> ConfusionMatrix {
        const BATCH: usize = 64;
        let k = data.classes();
        let mut counts = vec![vec![0usize; k]; k];
        let mut scratch = InferenceScratch::new();
        let mut classes: Vec<u8> = Vec::with_capacity(BATCH);
        let mut start = 0usize;
        while start < data.len() {
            let end = (start + BATCH).min(data.len());
            classes.clear();
            model.predict_batch_into(data.features_of(start..end), &mut scratch, &mut classes);
            for (i, &pred) in (start..end).zip(&classes) {
                let p = pred as usize;
                if p < k {
                    counts[data.label(i) as usize][p] += 1;
                }
            }
            start = end;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of samples with true class `actual` predicted as `predicted`.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy (trace / total).
    pub fn accuracy(&self) -> f64 {
        let trace: usize = (0..self.classes()).map(|i| self.counts[i][i]).sum();
        trace as f64 / self.total().max(1) as f64
    }

    /// Precision of one class (`tp / predicted-as-class`), `None` when the
    /// class was never predicted.
    pub fn precision(&self, class: usize) -> Option<f64> {
        let predicted: usize = (0..self.classes()).map(|a| self.counts[a][class]).sum();
        if predicted == 0 {
            return None;
        }
        Some(self.counts[class][class] as f64 / predicted as f64)
    }

    /// Recall of one class (`tp / actual-class count`), `None` when the
    /// class has no samples.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let actual: usize = self.counts[class].iter().sum();
        if actual == 0 {
            return None;
        }
        Some(self.counts[class][class] as f64 / actual as f64)
    }

    /// Mean absolute class distance between prediction and truth — a
    /// useful ordinal metric for QoR classes, where predicting 4 for a 3
    /// is far less harmful than predicting 9.
    pub fn mean_class_distance(&self) -> f64 {
        let mut sum = 0usize;
        for (a, row) in self.counts.iter().enumerate() {
            for (p, &n) in row.iter().enumerate() {
                sum += n * a.abs_diff(p);
            }
        }
        sum as f64 / self.total().max(1) as f64
    }

    /// Renders an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::from("actual\\pred");
        for p in 0..self.classes() {
            out.push_str(&format!("{p:>7}"));
        }
        out.push('\n');
        for (a, row) in self.counts.iter().enumerate() {
            out.push_str(&format!("{a:>11}"));
            for &n in row {
                out.push_str(&format!("{n:>7}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CnnConfig;
    use crate::train::TrainConfig;
    use slap_aig::Rng64;

    fn trained_pair() -> (CutCnn, Dataset) {
        let mut ds = Dataset::new(15, 10, 3);
        let mut rng = Rng64::seed_from(44);
        for _ in 0..300 {
            let v = rng.f32() * 3.0;
            let mut x = vec![0.0f32; 150];
            x[0] = v;
            ds.push(&x, (v as usize).min(2) as u8);
        }
        let mut m = CutCnn::new(
            &CnnConfig {
                filters: 8,
                ..CnnConfig::default_with_classes(3)
            },
            1,
        );
        m.train(
            &ds,
            &TrainConfig {
                epochs: 20,
                ..TrainConfig::default()
            },
        );
        (m, ds)
    }

    #[test]
    fn totals_and_accuracy_consistent() {
        let (m, ds) = trained_pair();
        let cm = ConfusionMatrix::compute(&m, &ds);
        assert_eq!(cm.total(), ds.len());
        assert!((cm.accuracy() - m.accuracy(&ds)).abs() < 1e-12);
        assert!(cm.accuracy() > 0.55, "{}", cm.accuracy());
    }

    #[test]
    fn precision_recall_bounds() {
        let (m, ds) = trained_pair();
        let cm = ConfusionMatrix::compute(&m, &ds);
        for c in 0..3 {
            if let Some(p) = cm.precision(c) {
                assert!((0.0..=1.0).contains(&p));
            }
            let r = cm.recall(c).expect("every class has samples");
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn class_distance_zero_iff_perfect() {
        let (m, ds) = trained_pair();
        let cm = ConfusionMatrix::compute(&m, &ds);
        if cm.accuracy() == 1.0 {
            assert_eq!(cm.mean_class_distance(), 0.0);
        } else {
            assert!(cm.mean_class_distance() > 0.0);
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let (m, ds) = trained_pair();
        let cm = ConfusionMatrix::compute(&m, &ds);
        let table = cm.to_table();
        assert_eq!(table.lines().count(), 4); // header + 3 classes
    }
}
