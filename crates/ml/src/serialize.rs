//! Plain-text weight serialization (self-describing; no serde needed).
//!
//! Format: a header line `slap-cnn v1 <rows> <cols> <filters> <classes>`,
//! then one line per tensor: `<name> <len> <values...>`. The quantized
//! model uses the same shape with magic `slap-cnn-int8` and integer
//! tensors where the weights are int8/i32. f32 values round-trip
//! exactly: Rust's float `Display` prints the shortest representation
//! that parses back to the identical bits.

use std::fmt::Write as _;

use crate::model::{CnnConfig, CutCnn};
use crate::quant::QuantizedCnn;

/// Error for weight parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseWeightsError(String);

impl std::fmt::Display for ParseWeightsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid weight file: {}", self.0)
    }
}

impl std::error::Error for ParseWeightsError {}

impl CutCnn {
    /// Serializes the model (weights + standardization) to a string.
    pub fn to_text(&self) -> String {
        let c = self.config();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "slap-cnn v1 {} {} {} {}",
            c.rows, c.cols, c.filters, c.classes
        );
        for (name, values) in [
            ("conv_w", &self.conv_w),
            ("conv_b", &self.conv_b),
            ("dense_w", &self.dense_w),
            ("dense_b", &self.dense_b),
            ("feat_mean", &self.feat_mean),
            ("feat_std", &self.feat_std),
        ] {
            let _ = write!(out, "{name} {}", values.len());
            for v in values {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
        out
    }

    /// Parses a model serialized by [`CutCnn::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseWeightsError`] on malformed input or dimension
    /// mismatches.
    pub fn from_text(text: &str) -> Result<CutCnn, ParseWeightsError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| ParseWeightsError("empty file".into()))?;
        let mut it = header.split_whitespace();
        if it.next() != Some("slap-cnn") || it.next() != Some("v1") {
            return Err(ParseWeightsError("bad magic".into()));
        }
        let mut dims = [0usize; 4];
        for d in &mut dims {
            *d = it
                .next()
                .ok_or_else(|| ParseWeightsError("short header".into()))?
                .parse()
                .map_err(|_| ParseWeightsError("non-numeric header".into()))?;
        }
        let config = CnnConfig {
            rows: dims[0],
            cols: dims[1],
            filters: dims[2],
            classes: dims[3],
        };
        let mut model = CutCnn::new(&config, 0);
        let mut read_tensor =
            |expect_name: &str, expect_len: usize| -> Result<Vec<f32>, ParseWeightsError> {
                let line = lines
                    .next()
                    .ok_or_else(|| ParseWeightsError(format!("missing tensor {expect_name}")))?;
                let mut it = line.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| ParseWeightsError("empty tensor line".into()))?;
                if name != expect_name {
                    return Err(ParseWeightsError(format!(
                        "expected {expect_name}, got {name}"
                    )));
                }
                let len: usize = it
                    .next()
                    .ok_or_else(|| ParseWeightsError("missing length".into()))?
                    .parse()
                    .map_err(|_| ParseWeightsError("bad length".into()))?;
                if len != expect_len {
                    return Err(ParseWeightsError(format!(
                        "tensor {expect_name}: expected {expect_len} values, header says {len}"
                    )));
                }
                let values: Result<Vec<f32>, _> = it.map(str::parse::<f32>).collect();
                let values =
                    values.map_err(|_| ParseWeightsError(format!("bad value in {expect_name}")))?;
                if values.len() != expect_len {
                    return Err(ParseWeightsError(format!("tensor {expect_name} truncated")));
                }
                Ok(values)
            };
        let hidden = config.filters * config.cols;
        model.conv_w = read_tensor("conv_w", config.filters * config.rows)?;
        model.conv_b = read_tensor("conv_b", config.filters)?;
        model.dense_w = read_tensor("dense_w", config.classes * hidden)?;
        model.dense_b = read_tensor("dense_b", config.classes)?;
        model.feat_mean = read_tensor("feat_mean", config.rows * config.cols)?;
        model.feat_std = read_tensor("feat_std", config.rows * config.cols)?;
        Ok(model)
    }
}

/// Reads one `<name> <len> <values...>` tensor line of element type `T`.
fn read_tensor_line<'a, T: std::str::FromStr>(
    lines: &mut std::str::Lines<'a>,
    expect_name: &str,
    expect_len: usize,
) -> Result<Vec<T>, ParseWeightsError> {
    let line = lines
        .next()
        .ok_or_else(|| ParseWeightsError(format!("missing tensor {expect_name}")))?;
    let mut it = line.split_whitespace();
    let name = it
        .next()
        .ok_or_else(|| ParseWeightsError("empty tensor line".into()))?;
    if name != expect_name {
        return Err(ParseWeightsError(format!(
            "expected {expect_name}, got {name}"
        )));
    }
    let len: usize = it
        .next()
        .ok_or_else(|| ParseWeightsError("missing length".into()))?
        .parse()
        .map_err(|_| ParseWeightsError("bad length".into()))?;
    if len != expect_len {
        return Err(ParseWeightsError(format!(
            "tensor {expect_name}: expected {expect_len} values, header says {len}"
        )));
    }
    let values: Result<Vec<T>, _> = it.map(str::parse::<T>).collect();
    let values = values.map_err(|_| ParseWeightsError(format!("bad value in {expect_name}")))?;
    if values.len() != expect_len {
        return Err(ParseWeightsError(format!("tensor {expect_name} truncated")));
    }
    Ok(values)
}

impl QuantizedCnn {
    /// Serializes the quantized model to a string (magic
    /// `slap-cnn-int8 v1`; same line format as [`CutCnn::to_text`] with
    /// integer tensors for the int8/i32 weights).
    pub fn to_text(&self) -> String {
        let c = self.config();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "slap-cnn-int8 v1 {} {} {} {}",
            c.rows, c.cols, c.filters, c.classes
        );
        fn tensor<T: std::fmt::Display>(out: &mut String, name: &str, values: &[T]) {
            let _ = write!(out, "{name} {}", values.len());
            for v in values {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
        tensor(&mut out, "conv_w", &self.conv_w);
        tensor(&mut out, "conv_b", &self.conv_b);
        tensor(&mut out, "requant", &self.requant);
        tensor(&mut out, "dense_w", &self.dense_w);
        tensor(&mut out, "dense_scale", &self.dense_scale);
        tensor(&mut out, "dense_b", &self.dense_b);
        tensor(&mut out, "feat_mean", &self.feat_mean);
        tensor(&mut out, "feat_std", &self.feat_std);
        out
    }

    /// Parses a model serialized by [`QuantizedCnn::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseWeightsError`] on malformed input or dimension
    /// mismatches.
    pub fn from_text(text: &str) -> Result<QuantizedCnn, ParseWeightsError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| ParseWeightsError("empty file".into()))?;
        let mut it = header.split_whitespace();
        if it.next() != Some("slap-cnn-int8") || it.next() != Some("v1") {
            return Err(ParseWeightsError("bad magic".into()));
        }
        let mut dims = [0usize; 4];
        for d in &mut dims {
            *d = it
                .next()
                .ok_or_else(|| ParseWeightsError("short header".into()))?
                .parse()
                .map_err(|_| ParseWeightsError("non-numeric header".into()))?;
        }
        let config = CnnConfig {
            rows: dims[0],
            cols: dims[1],
            filters: dims[2],
            classes: dims[3],
        };
        let hidden = config.filters * config.cols;
        let input = config.rows * config.cols;
        Ok(QuantizedCnn {
            conv_w: read_tensor_line(&mut lines, "conv_w", config.filters * config.rows)?,
            conv_b: read_tensor_line(&mut lines, "conv_b", config.filters)?,
            requant: read_tensor_line(&mut lines, "requant", config.filters)?,
            dense_w: read_tensor_line(&mut lines, "dense_w", config.classes * hidden)?,
            dense_scale: read_tensor_line(&mut lines, "dense_scale", config.classes)?,
            dense_b: read_tensor_line(&mut lines, "dense_b", config.classes)?,
            feat_mean: read_tensor_line(&mut lines, "feat_mean", input)?,
            feat_std: read_tensor_line(&mut lines, "feat_std", input)?,
            config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_predictions() {
        let cfg = CnnConfig {
            rows: 4,
            cols: 3,
            filters: 5,
            classes: 3,
        };
        let mut m = CutCnn::new(&cfg, 42);
        m.set_standardization(vec![1.0; 12], vec![2.0; 12]);
        let text = m.to_text();
        let back = CutCnn::from_text(&text).expect("parse");
        let x: Vec<f32> = (0..12).map(|i| i as f32 * 0.1).collect();
        assert_eq!(m.predict_probs(&x), back.predict_probs(&x));
    }

    #[test]
    fn rejects_garbage() {
        assert!(CutCnn::from_text("").is_err());
        assert!(CutCnn::from_text("hello").is_err());
        assert!(CutCnn::from_text("slap-cnn v1 2 2 2").is_err());
        assert!(CutCnn::from_text("slap-cnn v1 2 2 2 2\nconv_w 1 0.5").is_err());
    }

    #[test]
    fn quantized_round_trip_is_exact() {
        let cfg = CnnConfig {
            rows: 4,
            cols: 3,
            filters: 5,
            classes: 3,
        };
        let mut m = CutCnn::new(&cfg, 43);
        m.set_standardization(vec![0.5; 12], vec![1.25; 12]);
        let q = QuantizedCnn::from_model(&m);
        let text = q.to_text();
        assert!(text.starts_with("slap-cnn-int8 v1 4 3 5 3\n"));
        let back = QuantizedCnn::from_text(&text).expect("parse");
        // Integer tensors and f32 Display both round-trip exactly, so
        // the whole model is reproduced field for field.
        assert_eq!(q, back);
    }

    #[test]
    fn quantized_rejects_f32_magic_and_vice_versa() {
        let cfg = CnnConfig {
            rows: 2,
            cols: 2,
            filters: 2,
            classes: 2,
        };
        let m = CutCnn::new(&cfg, 44);
        assert!(QuantizedCnn::from_text(&m.to_text()).is_err());
        let q = QuantizedCnn::from_model(&m);
        assert!(CutCnn::from_text(&q.to_text()).is_err());
        assert!(QuantizedCnn::from_text("").is_err());
        assert!(QuantizedCnn::from_text("slap-cnn-int8 v1 2 2 2").is_err());
        // A float where an int8 tensor is expected fails cleanly.
        let bad = q.to_text().replacen("conv_w 4 ", "conv_w 4 0.5 ", 1);
        assert!(QuantizedCnn::from_text(&bad).is_err());
    }

    #[test]
    fn rejects_wrong_tensor_order() {
        let cfg = CnnConfig {
            rows: 2,
            cols: 2,
            filters: 2,
            classes: 2,
        };
        let m = CutCnn::new(&cfg, 1);
        let text = m.to_text().replace("conv_w", "conv_x");
        assert!(CutCnn::from_text(&text).is_err());
    }
}
