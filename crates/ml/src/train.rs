//! Mini-batch training loop with sparse categorical cross-entropy + Adam.

use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use slap_aig::Rng64;

use crate::dataset::Dataset;
use crate::model::CutCnn;

/// What one finished epoch looked like, delivered to a [`ProgressSink`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochProgress {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Total epochs configured.
    pub epochs: usize,
    /// Mean training loss over the epoch.
    pub loss: f64,
    /// Top-1 accuracy on the validation split after the epoch.
    pub val_accuracy: f64,
    /// Wall time of the epoch (including the validation pass).
    pub seconds: f64,
}

/// Observer for per-epoch training progress.
///
/// The library never prints; binaries that want a progress display
/// install a sink (e.g. [`StderrProgress`]) on [`TrainConfig::progress`].
pub trait ProgressSink: Send + Sync {
    /// Called once after every epoch.
    fn on_epoch(&self, progress: &EpochProgress);
}

/// A [`ProgressSink`] writing one line per epoch to stderr.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrProgress;

impl ProgressSink for StderrProgress {
    fn on_epoch(&self, p: &EpochProgress) {
        let _ = writeln!(
            std::io::stderr(),
            "epoch {:>3}/{}: loss {:.4}  val-acc {:.2}%  ({:.2}s)",
            p.epoch,
            p.epochs,
            p.loss,
            p.val_accuracy * 100.0,
            p.seconds,
        );
    }
}

/// Training hyper-parameters.
#[derive(Clone)]
pub struct TrainConfig {
    /// Epochs over the training split (the paper trains 50).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Fraction held out for validation.
    pub val_fraction: f64,
    /// Shuffling/split seed.
    pub seed: u64,
    /// Classes `0..=binary_threshold` count as "keep" for the binarised
    /// accuracy. Default 6: the classes the band policy ever exposes to
    /// the mapper (good 0–3 plus average 4–6).
    pub binary_threshold: u8,
    /// Optional per-epoch progress observer (`None` = silent). When set,
    /// validation accuracy is additionally computed after every epoch.
    pub progress: Option<Arc<dyn ProgressSink>>,
}

impl std::fmt::Debug for TrainConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainConfig")
            .field("epochs", &self.epochs)
            .field("batch_size", &self.batch_size)
            .field("learning_rate", &self.learning_rate)
            .field("val_fraction", &self.val_fraction)
            .field("seed", &self.seed)
            .field("binary_threshold", &self.binary_threshold)
            .field("progress", &self.progress.as_ref().map(|_| "<sink>"))
            .finish()
    }
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 20,
            batch_size: 64,
            learning_rate: 1e-3,
            val_fraction: 0.2,
            seed: 1,
            binary_threshold: 6,
            progress: None,
        }
    }
}

/// Metrics of a finished training run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainReport {
    /// Top-1 accuracy on the training split.
    pub train_accuracy: f64,
    /// Top-1 accuracy on the validation split (paper: ≈ 34 % for 10
    /// classes).
    pub val_accuracy: f64,
    /// Binarised (keep vs discard) accuracy on the validation split
    /// (paper: ≈ 93.4 %).
    pub val_binary_accuracy: f64,
    /// Final mean training loss.
    pub final_loss: f64,
    /// Samples trained on.
    pub train_samples: usize,
    /// Samples validated on.
    pub val_samples: usize,
}

impl CutCnn {
    /// Trains the model in place and returns the report.
    ///
    /// Standardization constants are (re)estimated from the training
    /// split and stored in the model.
    ///
    /// # Panics
    ///
    /// Panics if the dataset shape does not match the model config or the
    /// dataset is empty.
    pub fn train(&mut self, data: &Dataset, config: &TrainConfig) -> TrainReport {
        let _span = slap_obs::span("train");
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert_eq!(data.rows(), self.config.rows, "dataset rows mismatch");
        assert_eq!(data.cols(), self.config.cols, "dataset cols mismatch");
        assert!(
            data.classes() <= self.config.classes,
            "too many classes for model"
        );
        let (train, val) = data.split(config.val_fraction, config.seed);
        let (mean, std) = train.feature_stats();
        self.set_standardization(mean, std);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut rng = Rng64::seed_from(config.seed ^ 0x5EED);
        let num_params = self.num_params();
        let mut grad = vec![0.0f32; num_params];
        // One gradient buffer per batch slot, reused across batches. Each
        // sample's backward pass writes its own buffer (fanned out across
        // worker threads), and the buffers are reduced into `grad` in batch
        // order — a fixed float-addition order, so the summed gradient and
        // hence the whole weight trajectory are bit-identical for every
        // thread count. The forward/backward passes run on the shared
        // kernel layer with per-worker scratch (`Forward` +
        // `BackwardScratch`), so the steady-state loop allocates nothing
        // per sample; the kernels' fixed accumulation order keeps the
        // per-sample gradients — and hence the trajectory — bit-identical
        // to the pre-kernel scalar loops.
        let mut sample_grads = vec![0.0f32; config.batch_size.max(1) * num_params];
        let mut final_loss = 0.0f64;
        for epoch in 0..config.epochs {
            let _epoch_span = slap_obs::span("epoch");
            let epoch_start = Instant::now();
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f64;
            for batch in order.chunks(config.batch_size) {
                let buf = &mut sample_grads[..batch.len() * num_params];
                let (losses, _scratch) = slap_par::par_chunks_mut_with(
                    buf,
                    num_params,
                    |_w| {
                        (
                            crate::model::Forward::default(),
                            crate::model::BackwardScratch::default(),
                        )
                    },
                    |(fwd, back), s, chunk| {
                        chunk.fill(0.0);
                        let (x, y) = train.sample(batch[s]);
                        self.forward_into(x, fwd);
                        self.backward(fwd, back, y, chunk)
                    },
                );
                for loss in losses {
                    epoch_loss += loss as f64;
                }
                grad.iter_mut().for_each(|g| *g = 0.0);
                for chunk in buf.chunks_exact(num_params) {
                    for (g, &s) in grad.iter_mut().zip(chunk) {
                        *g += s;
                    }
                }
                self.adam_step(&grad, batch.len(), config.learning_rate);
            }
            final_loss = epoch_loss / train.len().max(1) as f64;
            if let Some(sink) = &config.progress {
                let acc = self.accuracy(&val);
                sink.on_epoch(&EpochProgress {
                    epoch: epoch + 1,
                    epochs: config.epochs,
                    loss: final_loss,
                    val_accuracy: acc,
                    seconds: epoch_start.elapsed().as_secs_f64(),
                });
            }
        }
        TrainReport {
            train_accuracy: self.accuracy(&train),
            val_accuracy: self.accuracy(&val),
            val_binary_accuracy: self.binary_accuracy(&val, config.binary_threshold),
            final_loss,
            train_samples: train.len(),
            val_samples: val.len(),
        }
    }

    /// Top-1 accuracy over a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = self.count_correct(data, |pred, y| pred == y);
        correct as f64 / data.len() as f64
    }

    /// Binarised accuracy: agreement on "class ≤ threshold" (keep) vs
    /// "class > threshold" (discard) — the metric the paper reports as
    /// 93.4 %.
    pub fn binary_accuracy(&self, data: &Dataset, threshold: u8) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = self.count_correct(data, |pred, y| (pred <= threshold) == (y <= threshold));
        correct as f64 / data.len() as f64
    }

    /// Counts samples whose prediction satisfies `ok`, scoring the
    /// (read-only) batched forward passes across worker threads: each
    /// worker sweeps its contiguous range in [`ACCURACY_BATCH`]-sample
    /// batches through `predict_batch_into` with a worker-owned scratch.
    /// Batched predictions are bit-identical to per-sample ones and the
    /// result is an integer sum of per-range counts, so the count is
    /// exact for every thread count and batch size.
    fn count_correct(&self, data: &Dataset, ok: impl Fn(u8, u8) -> bool + Sync) -> usize {
        /// Samples per scoring batch inside one worker's range.
        const ACCURACY_BATCH: usize = 64;
        let ranges = slap_par::split_ranges(data.len(), slap_par::threads());
        slap_par::par_map(&ranges, |_, range| {
            let mut scratch = crate::model::InferenceScratch::new();
            let mut classes: Vec<u8> = Vec::with_capacity(ACCURACY_BATCH);
            let mut correct = 0usize;
            let mut start = range.start;
            while start < range.end {
                let end = (start + ACCURACY_BATCH).min(range.end);
                classes.clear();
                self.predict_batch_into(data.features_of(start..end), &mut scratch, &mut classes);
                for (i, &pred) in (start..end).zip(&classes) {
                    if ok(pred, data.label(i)) {
                        correct += 1;
                    }
                }
                start = end;
            }
            correct
        })
        .into_iter()
        .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CnnConfig;
    use slap_aig::Rng64;

    /// A learnable synthetic task: class = which quadrant of feature space
    /// the (f0, f1) pair lies in.
    fn quadrant_dataset(n: usize, seed: u64) -> Dataset {
        let mut ds = Dataset::new(15, 10, 4);
        let mut rng = Rng64::seed_from(seed);
        for _ in 0..n {
            let a = rng.f32() * 2.0 - 1.0;
            let b = rng.f32() * 2.0 - 1.0;
            let mut x = vec![0.0f32; 150];
            x[0] = a;
            x[17] = b;
            // Sprinkle correlated noise.
            for v in x.iter_mut().skip(30) {
                *v = rng.f32() * 0.1;
            }
            let label = ((a > 0.0) as u8) * 2 + ((b > 0.0) as u8);
            ds.push(&x, label);
        }
        ds
    }

    #[test]
    fn learns_quadrants_well_above_chance() {
        let ds = quadrant_dataset(600, 21);
        let mut model = CutCnn::new(
            &CnnConfig {
                filters: 16,
                ..CnnConfig::default_with_classes(4)
            },
            9,
        );
        let report = model.train(
            &ds,
            &TrainConfig {
                epochs: 25,
                learning_rate: 2e-3,
                ..TrainConfig::default()
            },
        );
        assert!(
            report.val_accuracy > 0.85,
            "val accuracy {}",
            report.val_accuracy
        );
        assert!(report.train_accuracy > 0.85);
        assert!(report.final_loss < 0.5);
    }

    #[test]
    fn binary_accuracy_at_least_top1() {
        let ds = quadrant_dataset(300, 22);
        let mut model = CutCnn::new(
            &CnnConfig {
                filters: 8,
                ..CnnConfig::default_with_classes(4)
            },
            10,
        );
        let report = model.train(
            &ds,
            &TrainConfig {
                epochs: 8,
                ..TrainConfig::default()
            },
        );
        assert!(report.val_binary_accuracy >= report.val_accuracy - 1e-9);
    }

    #[test]
    fn training_is_deterministic() {
        let ds = quadrant_dataset(200, 23);
        let cfg = CnnConfig {
            filters: 8,
            ..CnnConfig::default_with_classes(4)
        };
        let tc = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let mut m1 = CutCnn::new(&cfg, 11);
        let mut m2 = CutCnn::new(&cfg, 11);
        let r1 = m1.train(&ds, &tc);
        let r2 = m2.train(&ds, &tc);
        assert_eq!(r1, r2);
    }

    #[test]
    fn parallel_training_is_bit_identical_to_sequential() {
        let ds = quadrant_dataset(150, 25);
        let cfg = CnnConfig {
            filters: 8,
            ..CnnConfig::default_with_classes(4)
        };
        let tc = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let prev = slap_par::threads();
        slap_par::set_threads(1);
        let mut seq = CutCnn::new(&cfg, 13);
        let seq_report = seq.train(&ds, &tc);
        let seq_text = seq.to_text();
        for t in [2, 8] {
            slap_par::set_threads(t);
            let mut m = CutCnn::new(&cfg, 13);
            let report = m.train(&ds, &tc);
            assert_eq!(report, seq_report, "threads={t}");
            assert_eq!(m.to_text(), seq_text, "threads={t}");
            assert_eq!(m.accuracy(&ds), seq.accuracy(&ds), "threads={t}");
        }
        slap_par::set_threads(prev);
    }

    #[test]
    fn progress_sink_sees_every_epoch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting(AtomicUsize);
        impl ProgressSink for Counting {
            fn on_epoch(&self, p: &EpochProgress) {
                assert!(p.epoch >= 1 && p.epoch <= p.epochs);
                assert!(p.seconds >= 0.0);
                assert!(p.loss.is_finite());
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let sink = Arc::new(Counting(AtomicUsize::new(0)));
        let ds = quadrant_dataset(100, 24);
        let mut m = CutCnn::new(
            &CnnConfig {
                filters: 4,
                ..CnnConfig::default_with_classes(4)
            },
            12,
        );
        let tc = TrainConfig {
            epochs: 3,
            progress: Some(sink.clone()),
            ..TrainConfig::default()
        };
        m.train(&ds, &tc);
        assert_eq!(sink.0.load(Ordering::Relaxed), 3);
        // The sink is opaque in Debug output but the config stays Debug.
        assert!(format!("{tc:?}").contains("<sink>"));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let ds = Dataset::new(15, 10, 10);
        let mut m = CutCnn::new(&CnnConfig::paper(), 1);
        m.train(&ds, &TrainConfig::default());
    }
}
