//! Mini-batch training loop with sparse categorical cross-entropy + Adam.

use slap_aig::Rng64;

use crate::dataset::Dataset;
use crate::model::CutCnn;

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Epochs over the training split (the paper trains 50).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Fraction held out for validation.
    pub val_fraction: f64,
    /// Shuffling/split seed.
    pub seed: u64,
    /// Classes `0..=binary_threshold` count as "keep" for the binarised
    /// accuracy. Default 6: the classes the band policy ever exposes to
    /// the mapper (good 0–3 plus average 4–6).
    pub binary_threshold: u8,
    /// Print a progress line per epoch.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 20,
            batch_size: 64,
            learning_rate: 1e-3,
            val_fraction: 0.2,
            seed: 1,
            binary_threshold: 6,
            verbose: false,
        }
    }
}

/// Metrics of a finished training run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainReport {
    /// Top-1 accuracy on the training split.
    pub train_accuracy: f64,
    /// Top-1 accuracy on the validation split (paper: ≈ 34 % for 10
    /// classes).
    pub val_accuracy: f64,
    /// Binarised (keep vs discard) accuracy on the validation split
    /// (paper: ≈ 93.4 %).
    pub val_binary_accuracy: f64,
    /// Final mean training loss.
    pub final_loss: f64,
    /// Samples trained on.
    pub train_samples: usize,
    /// Samples validated on.
    pub val_samples: usize,
}

impl CutCnn {
    /// Trains the model in place and returns the report.
    ///
    /// Standardization constants are (re)estimated from the training
    /// split and stored in the model.
    ///
    /// # Panics
    ///
    /// Panics if the dataset shape does not match the model config or the
    /// dataset is empty.
    pub fn train(&mut self, data: &Dataset, config: &TrainConfig) -> TrainReport {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert_eq!(data.rows(), self.config.rows, "dataset rows mismatch");
        assert_eq!(data.cols(), self.config.cols, "dataset cols mismatch");
        assert!(data.classes() <= self.config.classes, "too many classes for model");
        let (train, val) = data.split(config.val_fraction, config.seed);
        let (mean, std) = train.feature_stats();
        self.set_standardization(mean, std);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut rng = Rng64::seed_from(config.seed ^ 0x5EED);
        let mut grad = vec![0.0f32; self.num_params()];
        let mut final_loss = 0.0f64;
        for epoch in 0..config.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f64;
            for batch in order.chunks(config.batch_size) {
                grad.iter_mut().for_each(|g| *g = 0.0);
                for &i in batch {
                    let (x, y) = train.sample(i);
                    let fwd = self.forward(x);
                    epoch_loss += self.backward(&fwd, y, &mut grad) as f64;
                }
                self.adam_step(&grad, batch.len(), config.learning_rate);
            }
            final_loss = epoch_loss / train.len().max(1) as f64;
            if config.verbose {
                let acc = self.accuracy(&val);
                println!("epoch {:>3}: loss {:.4}  val-acc {:.2}%", epoch + 1, final_loss, acc * 100.0);
            }
        }
        TrainReport {
            train_accuracy: self.accuracy(&train),
            val_accuracy: self.accuracy(&val),
            val_binary_accuracy: self.binary_accuracy(&val, config.binary_threshold),
            final_loss,
            train_samples: train.len(),
            val_samples: val.len(),
        }
    }

    /// Top-1 accuracy over a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.sample(i);
                self.predict(x) == y
            })
            .count();
        correct as f64 / data.len() as f64
    }

    /// Binarised accuracy: agreement on "class ≤ threshold" (keep) vs
    /// "class > threshold" (discard) — the metric the paper reports as
    /// 93.4 %.
    pub fn binary_accuracy(&self, data: &Dataset, threshold: u8) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.sample(i);
                (self.predict(x) <= threshold) == (y <= threshold)
            })
            .count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CnnConfig;
    use slap_aig::Rng64;

    /// A learnable synthetic task: class = which quadrant of feature space
    /// the (f0, f1) pair lies in.
    fn quadrant_dataset(n: usize, seed: u64) -> Dataset {
        let mut ds = Dataset::new(15, 10, 4);
        let mut rng = Rng64::seed_from(seed);
        for _ in 0..n {
            let a = rng.f32() * 2.0 - 1.0;
            let b = rng.f32() * 2.0 - 1.0;
            let mut x = vec![0.0f32; 150];
            x[0] = a;
            x[17] = b;
            // Sprinkle correlated noise.
            for v in x.iter_mut().skip(30) {
                *v = rng.f32() * 0.1;
            }
            let label = ((a > 0.0) as u8) * 2 + ((b > 0.0) as u8);
            ds.push(x, label);
        }
        ds
    }

    #[test]
    fn learns_quadrants_well_above_chance() {
        let ds = quadrant_dataset(600, 21);
        let mut model = CutCnn::new(&CnnConfig { filters: 16, ..CnnConfig::default_with_classes(4) }, 9);
        let report = model.train(
            &ds,
            &TrainConfig { epochs: 25, learning_rate: 2e-3, ..TrainConfig::default() },
        );
        assert!(report.val_accuracy > 0.85, "val accuracy {}", report.val_accuracy);
        assert!(report.train_accuracy > 0.85);
        assert!(report.final_loss < 0.5);
    }

    #[test]
    fn binary_accuracy_at_least_top1() {
        let ds = quadrant_dataset(300, 22);
        let mut model = CutCnn::new(&CnnConfig { filters: 8, ..CnnConfig::default_with_classes(4) }, 10);
        let report = model.train(&ds, &TrainConfig { epochs: 8, ..TrainConfig::default() });
        assert!(report.val_binary_accuracy >= report.val_accuracy - 1e-9);
    }

    #[test]
    fn training_is_deterministic() {
        let ds = quadrant_dataset(200, 23);
        let cfg = CnnConfig { filters: 8, ..CnnConfig::default_with_classes(4) };
        let tc = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let mut m1 = CutCnn::new(&cfg, 11);
        let mut m2 = CutCnn::new(&cfg, 11);
        let r1 = m1.train(&ds, &tc);
        let r2 = m2.train(&ds, &tc);
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let ds = Dataset::new(15, 10, 10);
        let mut m = CutCnn::new(&CnnConfig::paper(), 1);
        m.train(&ds, &TrainConfig::default());
    }
}
