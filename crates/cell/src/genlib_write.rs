//! Genlib export: serialize a [`Library`] back to the subset this crate
//! parses, enabling round-trips and user-tweaked libraries.

use std::fmt::Write as _;

use slap_aig::Tt;

use crate::gate::{Gate, Library};

/// Renders the library in genlib syntax. Boolean functions are emitted
/// as a sum of minterms over the pin names (always parseable, if not
/// minimal).
pub fn write_genlib(library: &Library) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} ({} cells)", library.name(), library.len());
    for (_, gate) in library.iter() {
        let _ = writeln!(
            out,
            "GATE {} {:.4} Y={};",
            gate.name(),
            gate.area(),
            expr_of(gate.tt(), gate.pins())
        );
        for (pin, name) in gate.pins().iter().enumerate() {
            let d = gate.pin_delay(pin);
            let s = gate.load_slope();
            let _ = writeln!(out, "  PIN {name} UNKNOWN 1 999 {d} {s} {d} {s}");
        }
    }
    out
}

/// A sum-of-minterms expression for `tt` over `pins`.
fn expr_of(tt: Tt, pins: &[String]) -> String {
    let n = tt.num_vars();
    if tt.bits() == 0 {
        return "0".to_string();
    }
    if tt == Tt::one(n) {
        return "1".to_string();
    }
    let mut terms = Vec::new();
    for assignment in 0..(1u64 << n) {
        if (tt.bits() >> assignment) & 1 == 0 {
            continue;
        }
        let term: Vec<String> = (0..n)
            .map(|v| {
                if (assignment >> v) & 1 != 0 {
                    pins[v].clone()
                } else {
                    format!("!{}", pins[v])
                }
            })
            .collect();
        terms.push(format!("({})", term.join("*")));
    }
    terms.join("+")
}

/// Convenience re-export point used by tests and docs.
impl Library {
    /// Serializes the library to genlib text (see [`write_genlib`]).
    pub fn to_genlib(&self) -> String {
        write_genlib(self)
    }
}

#[allow(dead_code)]
fn _assert_gate_is_pub(g: &Gate) -> &str {
    g.name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asap7::asap7_mini;
    use crate::genlib::parse_genlib;

    #[test]
    fn round_trip_preserves_every_gate() {
        let lib = asap7_mini();
        let text = lib.to_genlib();
        let back = parse_genlib("round-trip", &text).expect("re-parse own output");
        assert_eq!(back.len(), lib.len());
        for (_, g) in lib.iter() {
            let id = back
                .find(g.name())
                .unwrap_or_else(|| panic!("{} missing", g.name()));
            let b = back.gate(id);
            // Function must survive exactly (up to the gate's own pin order).
            assert_eq!(b.num_pins(), g.num_pins(), "{}", g.name());
            assert_eq!(b.tt().num_vars(), g.tt().num_vars(), "{}", g.name());
            // Sum-of-minterms preserves the function relative to the pin
            // list order we emitted; pin discovery follows first
            // appearance which may permute symmetric pins — compare up to
            // NPN-free direct check via evaluation over all assignments
            // of the *named* pins.
            assert!((b.area() - g.area()).abs() < 1e-3);
        }
    }

    #[test]
    fn round_trip_preserves_functions_semantically() {
        let lib = asap7_mini();
        let back = parse_genlib("rt", &lib.to_genlib()).expect("re-parse");
        for (_, g) in lib.iter() {
            let b = back.gate(back.find(g.name()).expect("present"));
            // Build pin-name -> variable maps for both and compare
            // evaluations.
            for assignment in 0..(1u64 << g.num_pins()) {
                let value_of = |pins: &[String], name: &str, a: u64, orig: &[String]| -> bool {
                    let _ = pins;
                    let v = orig.iter().position(|p| p == name).expect("pin exists");
                    (a >> v) & 1 != 0
                };
                let orig_bit = (g.tt().bits() >> assignment) & 1;
                // Map the same named assignment into b's pin order.
                let mut b_assignment = 0u64;
                for (bv, bname) in b.pins().iter().enumerate() {
                    if value_of(b.pins(), bname, assignment, g.pins()) {
                        b_assignment |= 1 << bv;
                    }
                }
                let back_bit = (b.tt().bits() >> b_assignment) & 1;
                assert_eq!(
                    orig_bit,
                    back_bit,
                    "{} assignment {:b}",
                    g.name(),
                    assignment
                );
            }
        }
    }

    #[test]
    fn minterm_expression_corner_cases() {
        assert_eq!(expr_of(Tt::zero(2), &["A".into(), "B".into()]), "0");
        assert_eq!(expr_of(Tt::one(2), &["A".into(), "B".into()]), "1");
        let and = Tt::var(0, 2).and(Tt::var(1, 2));
        assert_eq!(expr_of(and, &["A".into(), "B".into()]), "(A*B)");
    }
}
