//! The bundled ASAP7-flavoured mini library.
//!
//! The paper maps against the ASAP7 7 nm predictive PDK. Its liberty
//! files are not redistributable here, so this module provides a
//! substitute with the same *shape*: the ASAP7 simple-cell set
//! (INV/BUF/NAND/NOR/AND/OR/XOR/XNOR/AOI/OAI/AO/OA/MAJ/MUX families up to
//! five inputs), areas in µm² on the order of ASAP7's 7.5-track cells,
//! and intrinsic delays of a handful of picoseconds with a linear
//! fanout-load term. The mapper's optimisation problem — a discrete
//! covering with per-gate area/delay trade-offs — is preserved; absolute
//! numbers shift (see `DESIGN.md`, substitution table).

use crate::gate::Library;
use crate::genlib::parse_genlib;

/// Genlib source of the bundled library (kept public so tests and docs
/// can inspect it, and so users can tweak and re-parse it).
pub const ASAP7_MINI_GENLIB: &str = "\
# asap7-mini: ASAP7-flavoured cells. area in um^2; delays in ps.
# PIN fields: name phase input_load max_load rise_block rise_fanout fall_block fall_fanout
GATE INVx1    0.58 Y=!A;                 PIN * INV 1 999 4.5 1.2 4.5 1.2
GATE INVx2    0.87 Y=!A;                 PIN * INV 2 999 3.5 0.7 3.5 0.7
GATE BUFx2    1.16 Y=A;                  PIN * NONINV 1 999 7.0 0.9 7.0 0.9
GATE NAND2x1  0.87 Y=!(A*B);             PIN * INV 1 999 6.5 1.3 6.5 1.3
GATE NAND3x1  1.16 Y=!(A*B*C);           PIN * INV 1 999 8.5 1.5 8.5 1.5
GATE NAND4x1  1.45 Y=!(A*B*C*D);         PIN * INV 1 999 10.5 1.7 10.5 1.7
GATE NAND5x1  1.74 Y=!(A*B*C*D*E);       PIN * INV 1 999 12.5 1.9 12.5 1.9
GATE NOR2x1   0.87 Y=!(A+B);             PIN * INV 1 999 7.5 1.5 7.5 1.5
GATE NOR3x1   1.16 Y=!(A+B+C);           PIN * INV 1 999 10.0 1.8 10.0 1.8
GATE NOR4x1   1.45 Y=!(A+B+C+D);         PIN * INV 1 999 12.5 2.1 12.5 2.1
GATE NOR5x1   1.74 Y=!(A+B+C+D+E);       PIN * INV 1 999 15.0 2.4 15.0 2.4
GATE AND2x2   1.16 Y=A*B;                PIN * NONINV 1 999 9.5 1.0 9.5 1.0
GATE AND3x2   1.45 Y=A*B*C;              PIN * NONINV 1 999 11.0 1.1 11.0 1.1
GATE AND4x2   1.74 Y=A*B*C*D;            PIN * NONINV 1 999 12.5 1.2 12.5 1.2
GATE AND5x2   2.03 Y=A*B*C*D*E;          PIN * NONINV 1 999 14.0 1.3 14.0 1.3
GATE OR2x2    1.16 Y=A+B;                PIN * NONINV 1 999 10.0 1.0 10.0 1.0
GATE OR3x2    1.45 Y=A+B+C;              PIN * NONINV 1 999 12.0 1.1 12.0 1.1
GATE OR4x2    1.74 Y=A+B+C+D;            PIN * NONINV 1 999 13.5 1.2 13.5 1.2
GATE OR5x2    2.03 Y=A+B+C+D+E;          PIN * NONINV 1 999 15.5 1.3 15.5 1.3
GATE XOR2x1   1.74 Y=A^B;                PIN * UNKNOWN 1 999 11.5 1.4 11.5 1.4
GATE XNOR2x1  1.74 Y=!(A^B);             PIN * UNKNOWN 1 999 11.5 1.4 11.5 1.4
GATE XOR3x1   2.90 Y=A^B^C;              PIN * UNKNOWN 1 999 16.0 1.6 16.0 1.6
GATE AOI21x1  1.16 Y=!((A*B)+C);
  PIN A INV 1 999 8.5 1.4 8.5 1.4
  PIN B INV 1 999 8.5 1.4 8.5 1.4
  PIN C INV 1 999 6.5 1.4 6.5 1.4
GATE AOI22x1  1.45 Y=!((A*B)+(C*D));     PIN * INV 1 999 9.0 1.5 9.0 1.5
GATE AOI211x1 1.45 Y=!((A*B)+C+D);       PIN * INV 1 999 10.0 1.6 10.0 1.6
GATE AOI221x1 1.74 Y=!((A*B)+(C*D)+E);   PIN * INV 1 999 11.5 1.7 11.5 1.7
GATE AOI31x1  1.45 Y=!((A*B*C)+D);       PIN * INV 1 999 10.5 1.6 10.5 1.6
GATE AOI32x1  1.74 Y=!((A*B*C)+(D*E));   PIN * INV 1 999 11.5 1.7 11.5 1.7
GATE OAI21x1  1.16 Y=!((A+B)*C);
  PIN A INV 1 999 8.5 1.4 8.5 1.4
  PIN B INV 1 999 8.5 1.4 8.5 1.4
  PIN C INV 1 999 6.5 1.4 6.5 1.4
GATE OAI22x1  1.45 Y=!((A+B)*(C+D));     PIN * INV 1 999 9.0 1.5 9.0 1.5
GATE OAI211x1 1.45 Y=!((A+B)*C*D);       PIN * INV 1 999 10.0 1.6 10.0 1.6
GATE OAI221x1 1.74 Y=!((A+B)*(C+D)*E);   PIN * INV 1 999 11.5 1.7 11.5 1.7
GATE OAI31x1  1.45 Y=!((A+B+C)*D);       PIN * INV 1 999 10.5 1.6 10.5 1.6
GATE OAI32x1  1.74 Y=!((A+B+C)*(D+E));   PIN * INV 1 999 11.5 1.7 11.5 1.7
GATE AO21x2   1.45 Y=(A*B)+C;            PIN * NONINV 1 999 10.5 1.1 10.5 1.1
GATE AO22x2   1.74 Y=(A*B)+(C*D);        PIN * NONINV 1 999 11.5 1.2 11.5 1.2
GATE OA21x2   1.45 Y=(A+B)*C;            PIN * NONINV 1 999 11.0 1.1 11.0 1.1
GATE OA22x2   1.74 Y=(A+B)*(C+D);        PIN * NONINV 1 999 12.0 1.2 12.0 1.2
GATE MAJ3x1   1.74 Y=(A*B)+(A*C)+(B*C);  PIN * UNKNOWN 1 999 11.0 1.3 11.0 1.3
GATE MUX2x1   1.74 Y=(S*B)+(!S*A);       PIN * UNKNOWN 1 999 12.0 1.4 12.0 1.4
";

/// Returns the bundled ASAP7-flavoured library.
///
/// # Panics
///
/// Never panics in practice — the embedded genlib is validated by tests;
/// an invalid embedded library would be a build defect.
pub fn asap7_mini() -> Library {
    parse_genlib("asap7-mini", ASAP7_MINI_GENLIB).expect("embedded asap7-mini genlib is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::MatchIndex;
    use slap_aig::Tt;

    #[test]
    fn parses_and_has_expected_size() {
        let lib = asap7_mini();
        assert_eq!(lib.len(), 40);
        assert_eq!(lib.gate(lib.inverter()).name(), "INVx1");
        assert!(lib.buffer().is_some());
    }

    #[test]
    fn spot_check_functions() {
        let lib = asap7_mini();
        let maj = lib.gate(lib.find("MAJ3x1").expect("present"));
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let c = Tt::var(2, 3);
        assert_eq!(maj.tt(), a.and(b).or(a.and(c)).or(b.and(c)));
        let mux = lib.gate(lib.find("MUX2x1").expect("present"));
        assert_eq!(mux.num_pins(), 3);
    }

    #[test]
    fn index_covers_basic_functions() {
        let lib = asap7_mini();
        let idx = MatchIndex::build(&lib);
        let a2 = Tt::var(0, 2);
        let b2 = Tt::var(1, 2);
        for f in [
            a2.and(b2),
            a2.and(b2).not(),
            a2.or(b2),
            a2.or(b2).not(),
            a2.xor(b2),
            a2.xor(b2).not(),
        ] {
            assert!(!idx.matches(f).is_empty(), "no match for {f}");
        }
        // Full 5-input AND via AND5.
        let mut and5 = Tt::var(0, 5);
        for v in 1..5 {
            and5 = and5.and(Tt::var(v, 5));
        }
        assert!(!idx.matches(and5).is_empty());
    }

    #[test]
    fn drive_strength_variants_present() {
        let lib = asap7_mini();
        let x1 = lib.gate(lib.find("INVx1").expect("present"));
        let x2 = lib.gate(lib.find("INVx2").expect("present"));
        assert!(x2.area() > x1.area());
        assert!(x2.pin_delay(0) < x1.pin_delay(0));
    }

    #[test]
    fn areas_and_delays_are_positive() {
        let lib = asap7_mini();
        for (_, g) in lib.iter() {
            assert!(g.area() > 0.0, "{}", g.name());
            for p in 0..g.num_pins() {
                assert!(g.pin_delay(p) > 0.0, "{}", g.name());
            }
            assert!(g.load_slope() >= 0.0);
        }
    }
}
