//! Parser for a practical subset of the SIS/ABC genlib format.
//!
//! Supported syntax (one gate per `GATE` statement):
//!
//! ```text
//! GATE <name> <area> <output>=<expr>;
//!   PIN <name|*> <phase> <input_load> <max_load>
//!       <rise_block> <rise_fanout> <fall_block> <fall_fanout>
//! ```
//!
//! `PIN *` applies one timing spec to every pin. The intrinsic pin delay
//! is taken as the average of rise/fall block delays and the load slope
//! as the average of rise/fall fanout coefficients, matching how ABC's
//! `map` collapses genlib arcs into a single number per pin. Comments
//! start with `#`.

use slap_aig::Tt;

use crate::error::CellError;
use crate::expr::parse_expr;
use crate::gate::{Gate, Library};

/// Parses genlib text into a [`Library`].
///
/// # Errors
///
/// Returns [`CellError`] on malformed statements or if the resulting
/// library has no inverter.
///
/// # Example
///
/// ```
/// use slap_cell::genlib::parse_genlib;
///
/// # fn main() -> Result<(), slap_cell::CellError> {
/// let lib = parse_genlib("demo", "
///     GATE INVx1 1.0 Y=!A; PIN * INV 1 999 5.0 1.0 5.0 1.0
///     GATE NAND2 2.0 Y=!(A*B); PIN * INV 1 999 8.0 1.5 8.0 1.5
/// ")?;
/// assert_eq!(lib.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_genlib(name: &str, text: &str) -> Result<Library, CellError> {
    let cleaned: String = text
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    let tokens: Vec<&str> = cleaned.split_whitespace().collect();
    let mut gates = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        if tokens[pos] != "GATE" {
            return Err(CellError::ParseGenlib(format!(
                "expected GATE, found '{}'",
                tokens[pos]
            )));
        }
        pos += 1;
        let gate_name = tokens
            .get(pos)
            .ok_or_else(|| CellError::ParseGenlib("missing gate name".into()))?
            .to_string();
        pos += 1;
        let area: f32 = tokens
            .get(pos)
            .ok_or_else(|| CellError::ParseGenlib("missing area".into()))?
            .parse()
            .map_err(|_| CellError::ParseGenlib(format!("bad area for {gate_name}")))?;
        pos += 1;
        // The function spans tokens until the terminating ';'.
        let mut func = String::new();
        loop {
            let t = tokens.get(pos).ok_or_else(|| {
                CellError::ParseGenlib(format!("unterminated function for {gate_name}"))
            })?;
            pos += 1;
            if let Some(stripped) = t.strip_suffix(';') {
                func.push_str(stripped);
                break;
            }
            func.push_str(t);
            func.push(' ');
        }
        let expr_text = func
            .split_once('=')
            .ok_or_else(|| CellError::ParseGenlib(format!("function of {gate_name} lacks '='")))?
            .1
            .to_string();
        let parsed = parse_expr(&expr_text)
            .map_err(|e| CellError::ParseGenlib(format!("{gate_name}: {e}")))?;
        // PIN statements.
        let mut pin_specs: Vec<(String, f32, f32)> = Vec::new();
        while tokens.get(pos) == Some(&"PIN") {
            pos += 1;
            let pin_name = tokens
                .get(pos)
                .ok_or_else(|| CellError::ParseGenlib("missing pin name".into()))?
                .to_string();
            pos += 1;
            // phase, input_load, max_load, rise_block, rise_fanout,
            // fall_block, fall_fanout
            let mut nums = [0f32; 6];
            let _phase = tokens
                .get(pos)
                .ok_or_else(|| CellError::ParseGenlib("missing pin phase".into()))?;
            pos += 1;
            for slot in &mut nums {
                *slot = tokens
                    .get(pos)
                    .ok_or_else(|| {
                        CellError::ParseGenlib(format!("short PIN line in {gate_name}"))
                    })?
                    .parse()
                    .map_err(|_| {
                        CellError::ParseGenlib(format!("bad PIN number in {gate_name}"))
                    })?;
                pos += 1;
            }
            let intrinsic = (nums[2] + nums[4]) / 2.0;
            let slope = (nums[3] + nums[5]) / 2.0;
            pin_specs.push((pin_name, intrinsic, slope));
        }
        let (pin_delays, load_slope) = assign_pin_timing(&parsed.pins, &pin_specs, &gate_name)?;
        let tt = normalize_const(parsed.tt);
        gates.push(Gate::new(
            gate_name,
            area,
            tt,
            parsed.pins,
            pin_delays,
            load_slope,
        ));
    }
    Library::from_gates(name, gates)
}

fn normalize_const(tt: Tt) -> Tt {
    // Genlib constant cells (Y=0 / Y=1) parse as zero-variable tables;
    // keep them as-is — the match index skips constants anyway.
    tt
}

fn assign_pin_timing(
    pins: &[String],
    specs: &[(String, f32, f32)],
    gate: &str,
) -> Result<(Vec<f32>, f32), CellError> {
    if pins.is_empty() {
        return Ok((Vec::new(), 0.0));
    }
    if specs.is_empty() {
        return Err(CellError::ParseGenlib(format!(
            "{gate}: no PIN timing given"
        )));
    }
    let wildcard = specs.iter().find(|(n, _, _)| n == "*");
    let mut delays = Vec::with_capacity(pins.len());
    let mut slope_acc = 0.0f32;
    for p in pins {
        let spec = specs
            .iter()
            .find(|(n, _, _)| n == p)
            .or(wildcard)
            .ok_or_else(|| CellError::ParseGenlib(format!("{gate}: no timing for pin {p}")))?;
        delays.push(spec.1);
        slope_acc += spec.2;
    }
    Ok((delays, slope_acc / pins.len() as f32))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
        # a tiny library
        GATE INVx1 1.0 Y=!A;      PIN * INV 1 999 4.0 1.0 6.0 1.0
        GATE NAND2 2.0 Y=!(A*B);  PIN * INV 1 999 8.0 1.5 8.0 1.5
        GATE AOI21 2.5 Y=!((A*B)+C);
          PIN A INV 1 999 9.0 1.0 9.0 1.0
          PIN B INV 1 999 9.5 1.0 9.5 1.0
          PIN C INV 1 999 7.0 1.0 7.0 1.0
    ";

    #[test]
    fn parses_sample() {
        let lib = parse_genlib("sample", SAMPLE).expect("parse");
        assert_eq!(lib.len(), 3);
        let inv = lib.gate(lib.inverter());
        assert_eq!(inv.name(), "INVx1");
        assert_eq!(inv.pin_delay(0), 5.0); // average of 4 and 6
        let aoi = lib.gate(lib.find("AOI21").expect("present"));
        assert_eq!(aoi.num_pins(), 3);
        assert_eq!(aoi.pin_delay(2), 7.0);
        // AOI21 function: !((A*B)+C)
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let c = Tt::var(2, 3);
        assert_eq!(aoi.tt(), a.and(b).or(c).not());
    }

    #[test]
    fn function_with_spaces_before_semicolon() {
        let lib = parse_genlib("t", "GATE G 1.0 Y=A * B ; PIN * INV 1 999 1 1 1 1\nGATE I 1.0 Y=!A; PIN * INV 1 999 1 1 1 1")
            .expect("parse");
        assert_eq!(lib.find("G").map(|g| lib.gate(g).num_pins()), Some(2));
    }

    #[test]
    fn missing_pin_timing_is_error() {
        let r = parse_genlib("t", "GATE G 1.0 Y=!A;");
        assert!(r.is_err());
    }

    #[test]
    fn unknown_keyword_is_error() {
        assert!(parse_genlib("t", "LATCH x").is_err());
    }

    #[test]
    fn library_without_inverter_rejected() {
        let r = parse_genlib("t", "GATE NAND2 2.0 Y=!(A*B); PIN * INV 1 999 1 1 1 1");
        assert!(r.is_err());
    }

    #[test]
    fn comments_are_stripped() {
        let lib = parse_genlib(
            "t",
            "# header\nGATE I 1.0 Y=!A; PIN * INV 1 999 1 1 1 1 # trailing",
        )
        .expect("parse");
        assert_eq!(lib.len(), 1);
    }
}
