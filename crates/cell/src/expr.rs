//! Boolean expression parser for genlib-style gate functions.
//!
//! Grammar (standard genlib conventions):
//!
//! ```text
//! expr   := term (('+' | '|') term)*
//! term   := factor (('*' | '&')? factor)*      -- juxtaposition is AND
//! xfact  := factor ('^' factor)*               -- XOR binds tighter than OR
//! factor := ('!' | '~') factor | atom '\''* | atom
//! atom   := identifier | '0' | '1' | '(' expr ')'
//! ```
//!
//! Pins are collected in order of first appearance; the resulting truth
//! table's variable `i` is the i-th distinct pin.

use slap_aig::Tt;

use crate::error::CellError;

/// The result of parsing: the function and the ordered pin names.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedExpr {
    /// Truth table over the pins, pin `i` = variable `i`.
    pub tt: Tt,
    /// Pin names in order of first appearance.
    pub pins: Vec<String>,
}

/// Parses a genlib-style Boolean expression.
///
/// # Errors
///
/// Returns [`CellError::ParseExpr`] on syntax errors or on more than six
/// distinct pins.
///
/// # Example
///
/// ```
/// use slap_cell::expr::parse_expr;
///
/// # fn main() -> Result<(), slap_cell::CellError> {
/// let p = parse_expr("!(A * B)")?;
/// assert_eq!(p.pins, vec!["A", "B"]);
/// assert_eq!(p.tt.bits(), 0b0111); // NAND2
/// # Ok(())
/// # }
/// ```
pub fn parse_expr(input: &str) -> Result<ParsedExpr, CellError> {
    // Two-pass: discover pins first so all sub-tables share a variable count.
    let pins = discover_pins(input)?;
    if pins.len() > Tt::MAX_VARS {
        return Err(CellError::ParseExpr(format!(
            "expression has {} pins, at most {} supported",
            pins.len(),
            Tt::MAX_VARS
        )));
    }
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        pins: &pins,
    };
    let tt = parser.parse_or()?;
    if parser.pos != parser.tokens.len() {
        return Err(CellError::ParseExpr(format!(
            "trailing input at token {}",
            parser.pos
        )));
    }
    Ok(ParsedExpr { tt, pins })
}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Ident(String),
    Const(bool),
    Not,
    Post,
    And,
    Or,
    Xor,
    LParen,
    RParen,
}

fn tokenize(input: &str) -> Result<Vec<Token>, CellError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '!' | '~' => {
                chars.next();
                tokens.push(Token::Not);
            }
            '\'' => {
                chars.next();
                tokens.push(Token::Post);
            }
            '*' | '&' => {
                chars.next();
                tokens.push(Token::And);
            }
            '+' | '|' => {
                chars.next();
                tokens.push(Token::Or);
            }
            '^' => {
                chars.next();
                tokens.push(Token::Xor);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '0' => {
                chars.next();
                tokens.push(Token::Const(false));
            }
            '1' => {
                chars.next();
                tokens.push(Token::Const(true));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '[' || c == ']' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(name));
            }
            other => {
                return Err(CellError::ParseExpr(format!(
                    "unexpected character '{other}'"
                )))
            }
        }
    }
    Ok(tokens)
}

fn discover_pins(input: &str) -> Result<Vec<String>, CellError> {
    let tokens = tokenize(input)?;
    let mut pins: Vec<String> = Vec::new();
    for t in tokens {
        if let Token::Ident(name) = t {
            if !pins.contains(&name) {
                pins.push(name);
            }
        }
    }
    Ok(pins)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    pins: &'a [String],
}

impl Parser<'_> {
    fn nv(&self) -> usize {
        self.pins.len().max(1)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn parse_or(&mut self) -> Result<Tt, CellError> {
        let mut acc = self.parse_and()?;
        while self.peek() == Some(&Token::Or) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            acc = acc.or(rhs);
        }
        Ok(acc)
    }

    fn parse_and(&mut self) -> Result<Tt, CellError> {
        let mut acc = self.parse_xor()?;
        loop {
            match self.peek() {
                Some(Token::And) => {
                    self.pos += 1;
                    let rhs = self.parse_xor()?;
                    acc = acc.and(rhs);
                }
                // Juxtaposition: `a b` and `a (b+c)` mean AND.
                Some(Token::Ident(_))
                | Some(Token::LParen)
                | Some(Token::Not)
                | Some(Token::Const(_)) => {
                    let rhs = self.parse_xor()?;
                    acc = acc.and(rhs);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_xor(&mut self) -> Result<Tt, CellError> {
        let mut acc = self.parse_factor()?;
        while self.peek() == Some(&Token::Xor) {
            self.pos += 1;
            let rhs = self.parse_factor()?;
            acc = acc.xor(rhs);
        }
        Ok(acc)
    }

    fn parse_factor(&mut self) -> Result<Tt, CellError> {
        let mut negations = 0usize;
        while self.peek() == Some(&Token::Not) {
            self.pos += 1;
            negations += 1;
        }
        let mut tt = self.parse_atom()?;
        while self.peek() == Some(&Token::Post) {
            self.pos += 1;
            negations += 1;
        }
        if negations % 2 == 1 {
            tt = tt.not();
        }
        Ok(tt)
    }

    fn parse_atom(&mut self) -> Result<Tt, CellError> {
        match self.tokens.get(self.pos).cloned() {
            Some(Token::Ident(name)) => {
                self.pos += 1;
                let var = self
                    .pins
                    .iter()
                    .position(|p| *p == name)
                    .expect("pin discovered in first pass");
                Ok(Tt::var(var, self.nv()))
            }
            Some(Token::Const(b)) => {
                self.pos += 1;
                Ok(if b {
                    Tt::one(self.nv())
                } else {
                    Tt::zero(self.nv())
                })
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let tt = self.parse_or()?;
                if self.tokens.get(self.pos) != Some(&Token::RParen) {
                    return Err(CellError::ParseExpr("missing ')'".into()));
                }
                self.pos += 1;
                Ok(tt)
            }
            other => Err(CellError::ParseExpr(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tt_of(s: &str) -> Tt {
        parse_expr(s).expect("parse").tt
    }

    #[test]
    fn single_pin() {
        let p = parse_expr("A").expect("parse");
        assert_eq!(p.pins, vec!["A"]);
        assert_eq!(p.tt, Tt::var(0, 1));
    }

    #[test]
    fn and_or_not() {
        assert_eq!(tt_of("A*B").bits(), 0b1000);
        assert_eq!(tt_of("A+B").bits(), 0b1110);
        assert_eq!(tt_of("!A").bits(), 0b01);
        assert_eq!(tt_of("!(A*B)").bits(), 0b0111);
        assert_eq!(tt_of("!A * !B").bits(), 0b0001);
    }

    #[test]
    fn alternate_operators() {
        assert_eq!(tt_of("A&B"), tt_of("A*B"));
        assert_eq!(tt_of("A|B"), tt_of("A+B"));
        assert_eq!(tt_of("~A"), tt_of("!A"));
        assert_eq!(tt_of("A'"), tt_of("!A"));
    }

    #[test]
    fn juxtaposition_is_and() {
        assert_eq!(tt_of("A B"), tt_of("A*B"));
        assert_eq!(tt_of("A (B+C)"), tt_of("A*(B+C)"));
    }

    #[test]
    fn xor_and_precedence() {
        // XOR binds tighter than OR and is a factor of AND terms.
        assert_eq!(tt_of("A^B").bits(), 0b0110);
        // A + B*C: OR of A with AND.
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let c = Tt::var(2, 3);
        assert_eq!(tt_of("A + B*C"), a.or(b.and(c)));
        assert_eq!(tt_of("(A+B)*C"), a.or(b).and(c));
    }

    #[test]
    fn aoi_function() {
        // AOI21: !((A*B) + C)
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let c = Tt::var(2, 3);
        assert_eq!(tt_of("!((A*B)+C)"), a.and(b).or(c).not());
    }

    #[test]
    fn constants() {
        // Pinless expressions parse over one dummy variable.
        assert_eq!(tt_of("0"), Tt::zero(1));
        assert_eq!(tt_of("1"), Tt::one(1));
        assert!(tt_of("A * !A").is_const());
    }

    #[test]
    fn pin_order_is_first_appearance() {
        let p = parse_expr("B + A*B").expect("parse");
        assert_eq!(p.pins, vec!["B", "A"]);
    }

    #[test]
    fn five_pins() {
        let p = parse_expr("!((A*B)+(C*D)+E)").expect("parse");
        assert_eq!(p.pins.len(), 5);
        assert_eq!(p.tt.num_vars(), 5);
    }

    #[test]
    fn errors() {
        assert!(parse_expr("A +").is_err());
        assert!(parse_expr("(A").is_err());
        assert!(parse_expr("A @ B").is_err());
        assert!(parse_expr("A*B*C*D*E*F*G").is_err()); // 7 pins
    }
}
