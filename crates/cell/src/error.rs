//! Error type for library parsing.

use std::error::Error;
use std::fmt;

/// Errors from Boolean-expression or genlib parsing and library validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellError {
    /// The Boolean expression is syntactically invalid.
    ParseExpr(String),
    /// A genlib construct is malformed.
    ParseGenlib(String),
    /// The library is unusable (e.g. it lacks an inverter).
    InvalidLibrary(String),
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::ParseExpr(s) => write!(f, "invalid boolean expression: {s}"),
            CellError::ParseGenlib(s) => write!(f, "invalid genlib: {s}"),
            CellError::InvalidLibrary(s) => write!(f, "invalid library: {s}"),
        }
    }
}

impl Error for CellError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        assert!(!CellError::ParseExpr("x".into()).to_string().is_empty());
        assert!(CellError::InvalidLibrary("no inverter".into())
            .to_string()
            .contains("inverter"));
    }
}
