//! Standard-cell library substrate for the SLAP reproduction.
//!
//! The paper maps onto the open-source ASAP7 7 nm PDK through ABC's
//! library handling. Since the real liberty files are not redistributable
//! here, this crate provides the equivalent machinery from scratch:
//!
//! * [`Gate`] / [`Library`] — cells with a Boolean function (truth table
//!   over pins), an area in µm², and a per-pin linear delay model
//!   (intrinsic block delay + load slope, in ps);
//! * a Boolean expression parser ([`expr`]) and a genlib-subset parser
//!   ([`genlib`]);
//! * a [`MatchIndex`] that pre-expands every gate over all input
//!   permutations and polarities, so a cut's truth table matches with a
//!   single hash lookup;
//! * [`asap7_mini`] — a bundled ~40-cell ASAP7-flavoured library
//!   (documented substitution, see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use slap_cell::{asap7_mini, MatchIndex};
//! use slap_aig::Tt;
//!
//! let lib = asap7_mini();
//! let index = MatchIndex::build(&lib);
//! // A 2-input AND matches at least one cell directly.
//! let tt = Tt::var(0, 2).and(Tt::var(1, 2));
//! assert!(!index.matches(tt).is_empty());
//! ```

pub mod asap7;
pub mod error;
pub mod expr;
pub mod gate;
pub mod genlib;
pub mod genlib_write;
pub mod index;

pub use asap7::asap7_mini;
pub use error::CellError;
pub use gate::{Gate, GateId, Library};
pub use genlib_write::write_genlib;
pub use index::{MatchEntry, MatchIndex};
