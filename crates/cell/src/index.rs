//! The Boolean matching index.
//!
//! For every gate we pre-expand all input permutations and input/output
//! polarities, so that matching a cut function is a single hash lookup of
//! its raw truth table (normalized to its support). This replaces NPN
//! canonicalisation at query time with a one-off enumeration at library
//! build time — the classic trade ABC's supergate library makes.

use std::collections::{HashMap, HashSet};

use slap_aig::tt::permutations;
use slap_aig::Tt;

use crate::gate::{Gate, GateId, Library};

/// One way a gate can realize a function over cut leaves.
///
/// Leaf `i` of the cut feeds gate pin `pin_of_leaf[i]`; if bit `i` of
/// `leaf_compl` is set, the *complement* of leaf `i` is required.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatchEntry {
    /// The matched gate.
    pub gate: GateId,
    /// For each leaf position, the gate pin it drives.
    pub pin_of_leaf: [u8; 6],
    /// Bit `i` set ⇒ leaf `i` must be complemented.
    pub leaf_compl: u8,
}

impl MatchEntry {
    /// The gate pin fed by leaf `leaf`.
    pub fn pin(&self, leaf: usize) -> usize {
        self.pin_of_leaf[leaf] as usize
    }

    /// Whether leaf `leaf` is required in complemented polarity.
    pub fn leaf_complemented(&self, leaf: usize) -> bool {
        self.leaf_compl & (1 << leaf) != 0
    }
}

/// The two phase lists of one canonical bucket: entries realizing the
/// canonical polarity of the function and entries realizing its
/// complement, each in gate-expansion emission order.
#[derive(Clone, Debug, Default, PartialEq)]
struct PhasePair {
    canon: Vec<MatchEntry>,
    compl: Vec<MatchEntry>,
}

/// Hash index from (support size, truth table) to the gate bindings that
/// realize that exact function.
///
/// A function and its complement share a bucket: keys are canonicalized
/// to the output polarity with the smaller bit pattern, and the bucket
/// keeps one entry list per polarity. Matching a cut therefore needs a
/// single hash probe for *both* phases ([`MatchIndex::matches_both`]).
#[derive(Clone, Debug)]
pub struct MatchIndex {
    table: HashMap<(u8, u64), PhasePair>,
    max_inputs: usize,
}

/// The canonical-polarity key bits of `bits` over `num_vars` variables:
/// the smaller of the pattern and its masked complement.
#[inline]
fn canonical_bits(num_vars: u8, bits: u64) -> u64 {
    let compl = Tt::from_bits(bits, num_vars as usize).not().bits();
    bits.min(compl)
}

impl MatchIndex {
    /// Builds the index by expanding every gate of `library` over all pin
    /// permutations and input polarities.
    ///
    /// Gates expand independently (the binding dedup is per gate), so the
    /// expansion fans out across worker threads; the per-gate entry lists
    /// are merged into the hash table in gate order, which reproduces the
    /// sequential per-key entry ordering exactly for any thread count.
    pub fn build(library: &Library) -> MatchIndex {
        let gates: Vec<(GateId, &Gate)> = library.iter().collect();
        let expanded = slap_par::par_map(&gates, |_, &(id, gate)| expand_gate(id, gate));
        let mut table: HashMap<(u8, u64), PhasePair> = HashMap::new();
        let mut max_inputs = 0usize;
        for (entries, n) in expanded {
            max_inputs = max_inputs.max(n);
            for ((nv, bits), entry) in entries {
                let canon = canonical_bits(nv, bits);
                let pair = table.entry((nv, canon)).or_default();
                if bits == canon {
                    pair.canon.push(entry);
                } else {
                    pair.compl.push(entry);
                }
            }
        }
        MatchIndex { table, max_inputs }
    }

    /// All gate bindings realizing exactly `tt` (over its own variable
    /// count). Returns an empty slice when nothing matches.
    pub fn matches(&self, tt: Tt) -> &[MatchEntry] {
        self.matches_both(tt).0
    }

    /// The gate bindings of `tt` and of `!tt`, resolved with a single
    /// hash probe of the shared canonical bucket. Either slice may be
    /// empty; a function over at least one variable never equals its own
    /// complement, so the two lists are always distinct.
    pub fn matches_both(&self, tt: Tt) -> (&[MatchEntry], &[MatchEntry]) {
        let bits = tt.bits();
        let compl = tt.not().bits();
        let canon = bits.min(compl);
        match self.table.get(&(tt.num_vars() as u8, canon)) {
            None => (&[], &[]),
            Some(pair) => {
                if bits == canon {
                    (&pair.canon, &pair.compl)
                } else {
                    (&pair.compl, &pair.canon)
                }
            }
        }
    }

    /// Largest pin count among indexed gates.
    pub fn max_inputs(&self) -> usize {
        self.max_inputs
    }

    /// Number of distinct (size, function) keys in the index (each
    /// non-empty polarity of a canonical bucket counts as one function,
    /// matching the pre-canonicalization accounting).
    pub fn num_functions(&self) -> usize {
        self.table
            .values()
            .map(|p| usize::from(!p.canon.is_empty()) + usize::from(!p.compl.is_empty()))
            .sum()
    }

    /// Total number of stored bindings.
    pub fn num_entries(&self) -> usize {
        self.table
            .values()
            .map(|p| p.canon.len() + p.compl.len())
            .sum()
    }
}

/// One gate's expansion: `((support size, truth table), entry)` pairs in
/// emission order.
type GateEntries = Vec<((u8, u64), MatchEntry)>;

/// Expands one gate over all pin permutations and input polarities,
/// returning its match entries keyed and ordered exactly as the classic
/// sequential build would emit them, plus the gate's pin count (0 when the
/// gate is skipped).
fn expand_gate(id: GateId, gate: &Gate) -> (GateEntries, usize) {
    let n = gate.num_pins();
    if n == 0 || n > Tt::MAX_VARS || gate.tt().is_const() {
        return (Vec::new(), 0);
    }
    let mut out = Vec::new();
    // Two bindings of the same gate to the same function are redundant when
    // every leaf sees the same polarity and pin delay (symmetric pins):
    // dedup on that profile to keep match lists tight. The profile is
    // entirely gate-local, so deduping here is equivalent to deduping over
    // the whole library with the gate id in the key.
    let mut seen: HashSet<(u64, u8, [u32; 6])> = HashSet::new();
    for perm in permutations(n) {
        // perm[leaf] = pin: leaf `leaf` plays the role of gate pin
        // perm[leaf].
        for compl in 0u32..(1 << n) {
            // Complement the gate's pins selected by `compl`, then rename
            // pin variables to leaf variables.
            let tt = gate.tt().flip_inputs(compl).permute(&perm);
            let mut pin_of_leaf = [0u8; 6];
            let mut leaf_compl = 0u8;
            let mut delay_profile = [0u32; 6];
            for (leaf, &pin) in perm.iter().enumerate() {
                pin_of_leaf[leaf] = pin as u8;
                delay_profile[leaf] = gate.pin_delay(pin).to_bits();
                if compl & (1 << pin) != 0 {
                    leaf_compl |= 1 << leaf;
                }
            }
            if !seen.insert((tt.bits(), leaf_compl, delay_profile)) {
                continue;
            }
            let entry = MatchEntry {
                gate: id,
                pin_of_leaf,
                leaf_compl,
            };
            out.push(((n as u8, tt.bits()), entry));
        }
    }
    (out, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Gate, Library};

    fn test_library() -> Library {
        let inv = Gate::new(
            "INV",
            1.0,
            Tt::var(0, 1).not(),
            vec!["A".into()],
            vec![5.0],
            1.0,
        );
        let nand_tt = Tt::var(0, 2).and(Tt::var(1, 2)).not();
        let nand = Gate::new(
            "NAND2",
            2.0,
            nand_tt,
            vec!["A".into(), "B".into()],
            vec![8.0, 9.0],
            1.5,
        );
        let aoi_tt = Tt::var(0, 3).and(Tt::var(1, 3)).or(Tt::var(2, 3)).not();
        let aoi = Gate::new(
            "AOI21",
            2.5,
            aoi_tt,
            vec!["A".into(), "B".into(), "C".into()],
            vec![9.0, 9.5, 7.0],
            1.2,
        );
        Library::from_gates("test", vec![inv, nand, aoi]).expect("valid")
    }

    #[test]
    fn direct_match() {
        let lib = test_library();
        let idx = MatchIndex::build(&lib);
        let nand_tt = Tt::var(0, 2).and(Tt::var(1, 2)).not();
        let ms = idx.matches(nand_tt);
        assert!(ms
            .iter()
            .any(|m| lib.gate(m.gate).name() == "NAND2" && m.leaf_compl == 0));
    }

    #[test]
    fn polarity_expanded_match() {
        let lib = test_library();
        let idx = MatchIndex::build(&lib);
        // OR2 = NAND2 with both inputs complemented.
        let or_tt = Tt::var(0, 2).or(Tt::var(1, 2));
        let ms = idx.matches(or_tt);
        let m = ms
            .iter()
            .find(|m| lib.gate(m.gate).name() == "NAND2")
            .expect("NAND2 realizes OR with inverted inputs");
        assert_eq!(m.leaf_compl & 0b11, 0b11);
    }

    #[test]
    fn permutation_expanded_match() {
        let lib = test_library();
        let idx = MatchIndex::build(&lib);
        // !((B*C) + A): AOI21 with pins permuted — leaf 0 plays pin C.
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let c = Tt::var(2, 3);
        let f = b.and(c).or(a).not();
        let ms = idx.matches(f);
        let m = ms
            .iter()
            .find(|m| lib.gate(m.gate).name() == "AOI21")
            .expect("permuted AOI21");
        assert_eq!(m.pin(0), 2); // leaf 0 feeds pin C (index 2)
        assert!(!m.leaf_complemented(0));
    }

    #[test]
    fn unmatched_function_returns_empty() {
        let lib = test_library();
        let idx = MatchIndex::build(&lib);
        let xor = Tt::var(0, 2).xor(Tt::var(1, 2));
        assert!(idx.matches(xor).is_empty());
    }

    #[test]
    fn match_semantics_verified_by_evaluation() {
        // For every entry of a sampled tt, re-evaluating the gate under the
        // recorded binding must reproduce the tt.
        let lib = test_library();
        let idx = MatchIndex::build(&lib);
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let c = Tt::var(2, 3);
        let f = a.and(b).or(c).not();
        for m in idx.matches(f) {
            let gate = lib.gate(m.gate);
            let n = gate.num_pins();
            // Rebuild: pin p reads leaf l (with polarity) where
            // pin_of_leaf[l] = p.
            let mut pin_tts = vec![Tt::zero(n); n];
            for leaf in 0..n {
                let mut t = Tt::var(leaf, n);
                if m.leaf_complemented(leaf) {
                    t = t.not();
                }
                pin_tts[m.pin(leaf)] = t;
            }
            // Evaluate gate.tt() with pin variables substituted: brute force
            // over assignments.
            let mut result = 0u64;
            for x in 0..(1u64 << n) {
                let mut gate_input = 0u64;
                for (p, t) in pin_tts.iter().enumerate() {
                    if (t.bits() >> x) & 1 != 0 {
                        gate_input |= 1 << p;
                    }
                }
                if (gate.tt().bits() >> gate_input) & 1 != 0 {
                    result |= 1 << x;
                }
            }
            assert_eq!(
                result,
                f.bits(),
                "entry {m:?} of gate {} is wrong",
                gate.name()
            );
        }
        assert!(!idx.matches(f).is_empty());
    }

    #[test]
    fn matches_both_agrees_with_per_phase_lookups() {
        let lib = test_library();
        let idx = MatchIndex::build(&lib);
        // Probe a spread of functions over 1..=3 variables, including
        // unmatched ones: the fused lookup must agree with the per-phase
        // lookups for every polarity.
        for nv in 1..=3usize {
            let limit = 1u64 << (1 << nv);
            for bits in (0..limit).step_by(3) {
                let tt = Tt::from_bits(bits, nv);
                let (pos, neg) = idx.matches_both(tt);
                assert_eq!(pos, idx.matches(tt), "nv={nv} bits={bits:#x}");
                assert_eq!(neg, idx.matches(tt.not()), "nv={nv} bits={bits:#x}");
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let idx = MatchIndex::build(&test_library());
        assert_eq!(idx.max_inputs(), 3);
        assert!(idx.num_functions() > 3);
        assert!(idx.num_entries() >= idx.num_functions());
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        let lib = test_library();
        let prev = slap_par::threads();
        slap_par::set_threads(1);
        let seq = MatchIndex::build(&lib);
        for t in [2, 4, 8] {
            slap_par::set_threads(t);
            let par = MatchIndex::build(&lib);
            assert_eq!(par.max_inputs, seq.max_inputs, "threads={t}");
            assert_eq!(par.table, seq.table, "threads={t}");
        }
        slap_par::set_threads(prev);
    }
}
