//! Gates and libraries.

use std::fmt;

use slap_aig::Tt;

use crate::error::CellError;

/// Index of a gate inside a [`Library`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(u32);

impl GateId {
    /// Creates a gate id from a raw index.
    pub fn new(index: usize) -> GateId {
        GateId(index as u32)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A standard cell: a single-output Boolean function with area and a
/// per-pin linear delay model (`delay(pin) = intrinsic(pin) + slope × load`,
/// where load is measured in fanout count).
#[derive(Clone, Debug)]
pub struct Gate {
    name: String,
    area: f32,
    tt: Tt,
    pins: Vec<String>,
    pin_delays: Vec<f32>,
    load_slope: f32,
}

impl Gate {
    /// Creates a gate. `pin_delays` are intrinsic delays in ps, one per
    /// pin (variable order of `tt`).
    ///
    /// # Panics
    ///
    /// Panics if pin counts disagree with the truth table's variable count.
    pub fn new(
        name: impl Into<String>,
        area: f32,
        tt: Tt,
        pins: Vec<String>,
        pin_delays: Vec<f32>,
        load_slope: f32,
    ) -> Gate {
        assert_eq!(
            pins.len(),
            tt.num_vars(),
            "one pin per truth-table variable"
        );
        assert_eq!(pin_delays.len(), pins.len(), "one delay per pin");
        Gate {
            name: name.into(),
            area,
            tt,
            pins,
            pin_delays,
            load_slope,
        }
    }

    /// The cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell area in µm².
    pub fn area(&self) -> f32 {
        self.area
    }

    /// The function over the pins (pin `i` = variable `i`).
    pub fn tt(&self) -> Tt {
        self.tt
    }

    /// Number of input pins.
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Pin names.
    pub fn pins(&self) -> &[String] {
        &self.pins
    }

    /// Intrinsic delay of `pin` in ps.
    pub fn pin_delay(&self, pin: usize) -> f32 {
        self.pin_delays[pin]
    }

    /// Extra delay per unit of output load (fanout count), in ps.
    pub fn load_slope(&self) -> f32 {
        self.load_slope
    }

    /// Pin-to-output delay under a given output fanout count.
    pub fn delay(&self, pin: usize, fanout: usize) -> f32 {
        self.pin_delays[pin] + self.load_slope * fanout as f32
    }

    /// Worst intrinsic pin delay — a quick pessimistic bound.
    pub fn max_pin_delay(&self) -> f32 {
        self.pin_delays.iter().copied().fold(0.0, f32::max)
    }
}

/// A collection of gates plus the distinguished inverter (and optional
/// buffer) every mapper needs.
#[derive(Clone, Debug)]
pub struct Library {
    name: String,
    gates: Vec<Gate>,
    inverter: GateId,
    buffer: Option<GateId>,
}

impl Library {
    /// Builds a library from gates, locating the inverter and buffer by
    /// function (single-input NOT / identity).
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InvalidLibrary`] if no inverter is present or
    /// the library is empty.
    pub fn from_gates(name: impl Into<String>, gates: Vec<Gate>) -> Result<Library, CellError> {
        if gates.is_empty() {
            return Err(CellError::InvalidLibrary("library has no gates".into()));
        }
        let not_tt = Tt::var(0, 1).not();
        let buf_tt = Tt::var(0, 1);
        let mut inverter: Option<GateId> = None;
        let mut buffer: Option<GateId> = None;
        for (i, g) in gates.iter().enumerate() {
            if g.num_pins() == 1 {
                if g.tt() == not_tt {
                    // Keep the smallest-area inverter.
                    match inverter {
                        Some(prev) if gates[prev.index()].area() <= g.area() => {}
                        _ => inverter = Some(GateId::new(i)),
                    }
                } else if g.tt() == buf_tt {
                    match buffer {
                        Some(prev) if gates[prev.index()].area() <= g.area() => {}
                        _ => buffer = Some(GateId::new(i)),
                    }
                }
            }
        }
        let inverter = inverter
            .ok_or_else(|| CellError::InvalidLibrary("library must contain an inverter".into()))?;
        Ok(Library {
            name: name.into(),
            gates,
            inverter,
            buffer,
        })
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Access a gate by id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the library is empty (never true for a constructed library).
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The distinguished (smallest) inverter.
    pub fn inverter(&self) -> GateId {
        self.inverter
    }

    /// The distinguished buffer, if present.
    pub fn buffer(&self) -> Option<GateId> {
        self.buffer
    }

    /// Iterator over `(GateId, &Gate)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId::new(i), g))
    }

    /// Looks a gate up by name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.gates
            .iter()
            .position(|g| g.name() == name)
            .map(GateId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv() -> Gate {
        Gate::new(
            "INV",
            1.0,
            Tt::var(0, 1).not(),
            vec!["A".into()],
            vec![5.0],
            1.0,
        )
    }

    fn and2() -> Gate {
        let tt = Tt::var(0, 2).and(Tt::var(1, 2));
        Gate::new(
            "AND2",
            2.0,
            tt,
            vec!["A".into(), "B".into()],
            vec![8.0, 9.0],
            1.5,
        )
    }

    #[test]
    fn gate_accessors() {
        let g = and2();
        assert_eq!(g.name(), "AND2");
        assert_eq!(g.num_pins(), 2);
        assert_eq!(g.pin_delay(1), 9.0);
        assert_eq!(g.delay(0, 2), 8.0 + 3.0);
        assert_eq!(g.max_pin_delay(), 9.0);
    }

    #[test]
    fn library_finds_inverter() {
        let lib = Library::from_gates("test", vec![and2(), inv()]).expect("valid");
        assert_eq!(lib.gate(lib.inverter()).name(), "INV");
        assert!(lib.buffer().is_none());
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.find("AND2"), Some(GateId::new(0)));
        assert_eq!(lib.find("NOPE"), None);
    }

    #[test]
    fn library_prefers_smaller_inverter() {
        let mut small = inv();
        small = Gate::new("INVS", 0.5, small.tt(), vec!["A".into()], vec![4.0], 1.0);
        let lib = Library::from_gates("test", vec![inv(), small]).expect("valid");
        assert_eq!(lib.gate(lib.inverter()).name(), "INVS");
    }

    #[test]
    fn library_without_inverter_is_rejected() {
        assert!(Library::from_gates("test", vec![and2()]).is_err());
        assert!(Library::from_gates("test", vec![]).is_err());
    }

    #[test]
    fn buffer_detected() {
        let buf = Gate::new("BUF", 1.2, Tt::var(0, 1), vec!["A".into()], vec![7.0], 1.0);
        let lib = Library::from_gates("test", vec![inv(), buf]).expect("valid");
        assert_eq!(lib.gate(lib.buffer().expect("buffer")).name(), "BUF");
    }

    #[test]
    #[should_panic(expected = "one pin per truth-table variable")]
    fn pin_mismatch_panics() {
        let _ = Gate::new("BAD", 1.0, Tt::var(0, 2), vec!["A".into()], vec![1.0], 0.0);
    }
}
