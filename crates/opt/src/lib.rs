//! Pre-mapping AIG optimization: an ordered, composable pass pipeline.
//!
//! Real mapping flows (ABC's `strash; rewrite; balance`) optimize the
//! subject graph before technology mapping; this crate brings that stage
//! to the SLAP reproduction. A [`PassPipeline`] is parsed from a spec
//! string such as `"strash,fold,sweep,balance"` and applied to an [`Aig`]
//! before cut enumeration, so the enumerator and covering DP never pay
//! for redundant AND nodes, dangling cones, or depth-pessimal chains in
//! the input.
//!
//! Four passes are available (see [`passes`]):
//!
//! | name     | rewrite responsibility |
//! |----------|------------------------|
//! | `strash` | canonicalizing rebuild: flattens single-use AND/XOR trees, sorts and deduplicates leaves, cancels XOR pairs mod 2, and re-emits through the structural-hash table so isomorphic cones collapse |
//! | `fold`   | plain rebuild through [`Aig::and`], propagating 0/1 constants through complemented edges |
//! | `sweep`  | drops every AND node outside the transitive fanin of a primary output |
//! | `balance`| depth-oriented tree rebuild: combines the two lowest-level operands first (Huffman order) |
//!
//! # Contract
//!
//! Every pass preserves 64-bit parallel-simulation equivalence against
//! its input and keeps the PI/PO interface (count and order) intact; in
//! debug builds [`PassPipeline::optimize`] asserts this after every pass.
//! The empty pipeline (spec `""` or `"none"`) returns its input untouched
//! — byte-for-byte the same `Aig` — so opt-off paths stay bit-identical
//! to pre-pipeline behavior. Running the full pipeline twice is a no-op
//! (`tests/opt_equivalence.rs` pins this structurally). DESIGN.md §15
//! documents the full pass contract.
//!
//! # Example
//!
//! ```
//! use slap_aig::Aig;
//! use slap_opt::PassPipeline;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let x = aig.xor(a, b);
//! let y = aig.xor(x, b); // == a: the b's cancel mod 2
//! aig.add_po(y);
//!
//! let mut pipeline = PassPipeline::parse("strash,fold,sweep,balance").expect("valid spec");
//! let (opt, report) = pipeline.optimize(aig);
//! assert_eq!(opt.num_ands(), 0); // the XOR pair cancelled away
//! assert_eq!(report.ands_out, 0);
//! ```

mod extract;
pub mod pass;
pub mod passes;
pub mod pipeline;
mod rebuild;

pub use pass::{Pass, PassScratch, PassStats};
pub use passes::{Balance, Fold, Strash, Sweep};
pub use pipeline::{OptReport, PassPipeline, FULL_SPEC, NONE_SPEC};
