//! Cross-cone shared-pair extraction for XOR trees (Paar's greedy
//! common-pair algorithm over GF(2)).
//!
//! Cone-local canonicalization (see `rebuild`) leaves each XOR sum at
//! its own mod-2 minimum, but different cones still recompute the same
//! partial sums: two MixColumns lanes both need `a2 ^ a3`, two folded
//! reduction offsets both need `c13 ^ c14`. This stage collects every
//! XOR cone's atom set, counts unordered atom pairs across all cones,
//! and while some pair occurs in at least two cones, replaces it
//! everywhere with a single shared node. Selection is deterministic
//! (highest count, ties broken by smallest packed pair key), so
//! repeated runs extract the same structure and the pipeline stays
//! idempotent: after the loop no pair occurs twice, which is exactly
//! the fixpoint the next run re-discovers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;

use slap_aig::{Aig, Lit, NodeId};

use crate::pass::PassScratch;
use crate::rebuild::{
    cancel_xor_pairs, emit_and_leaves, emit_tree, map_lit, mark_absorbed_trees, walk_and_tree,
    walk_xor_tree, xor_operands,
};

/// Cones larger than this are excluded from pair counting: quadratic
/// pair enumeration on a huge sum costs more than the sharing it could
/// ever recover.
const PAIR_CONE_CAP: usize = 64;

/// Packs an unordered plain-literal pair into a deterministic map key.
#[inline]
fn pair_key(a: Lit, b: Lit) -> u64 {
    let (lo, hi) = if a.raw() <= b.raw() {
        (a.raw(), b.raw())
    } else {
        (b.raw(), a.raw())
    };
    ((lo as u64) << 32) | hi as u64
}

#[inline]
fn unpack_pair(key: u64) -> (Lit, Lit) {
    (Lit::from_raw((key >> 32) as u32), Lit::from_raw(key as u32))
}

/// Working state of one extraction run. All collections are rebuilt per
/// run; the dominant buffers (cone atom sets) reuse pooled vectors from
/// [`PassScratch`] so steady-state pipelines stay within the pinned
/// allocation budget.
struct Extractor {
    /// Per-cone sorted plain atom sets (old-graph + virtual literals).
    cones: Vec<Vec<Lit>>,
    /// Old-graph root index and complement parity per cone.
    roots: Vec<(u32, bool)>,
    /// Unordered pair key → number of cones containing the pair.
    counts: HashMap<u64, u32>,
    /// Lazy max-heap over (count, pair) snapshots.
    heap: BinaryHeap<(u32, Reverse<u64>)>,
    /// Definitions of extracted pairs, in creation order. Operands are
    /// plain old-graph or earlier-virtual literals.
    virtuals: Vec<(Lit, Lit)>,
    /// First raw value of the virtual id space.
    virtual_base: u32,
}

impl Extractor {
    /// Increments (`up`) or decrements the count of `(a, b)`, pushing a
    /// fresh heap snapshot on increment.
    fn bump(&mut self, a: Lit, b: Lit, up: bool) {
        let key = pair_key(a, b);
        let slot = self.counts.entry(key).or_insert(0);
        if up {
            *slot += 1;
            self.heap.push((*slot, Reverse(key)));
        } else {
            debug_assert!(*slot > 0, "decrement of an untracked pair");
            *slot = slot.saturating_sub(1);
        }
    }

    /// Counts all pairs of cone `c` against the rest of its atoms.
    fn count_cone(&mut self, c: usize) {
        let atoms = std::mem::take(&mut self.cones[c]);
        if atoms.len() <= PAIR_CONE_CAP {
            for i in 0..atoms.len() {
                for j in i + 1..atoms.len() {
                    self.bump(atoms[i], atoms[j], true);
                }
            }
        }
        self.cones[c] = atoms;
    }

    /// Replaces pair `(a, b)` with virtual literal `v` in cone `c`,
    /// keeping pair counts and sortedness intact.
    fn substitute(&mut self, c: usize, a: Lit, b: Lit, v: Lit) {
        let mut atoms = std::mem::take(&mut self.cones[c]);
        let counted = atoms.len() <= PAIR_CONE_CAP;
        if counted {
            for &x in &atoms {
                if x != a && x != b {
                    self.bump(a, x, false);
                    self.bump(b, x, false);
                }
            }
            self.bump(a, b, false);
        }
        atoms.retain(|&x| x != a && x != b);
        if counted {
            for &x in &atoms {
                self.bump(v, x, true);
            }
        }
        // Virtual raws grow monotonically, so pushing keeps the set sorted.
        atoms.push(v);
        self.cones[c] = atoms;
    }

    /// Runs the greedy loop: while some pair occurs in two or more
    /// cones, extract it. Returns the number of extracted pairs.
    fn extract(&mut self) -> u64 {
        while let Some((count, Reverse(key))) = self.heap.pop() {
            if count < 2 {
                break;
            }
            // Lazy heap: skip stale snapshots.
            if self.counts.get(&key).copied().unwrap_or(0) != count {
                continue;
            }
            let (a, b) = unpack_pair(key);
            let v = Lit::from_raw(self.virtual_base + 2 * self.virtuals.len() as u32);
            self.virtuals.push((a, b));
            for c in 0..self.cones.len() {
                let has =
                    |set: &[Lit], l: Lit| set.binary_search_by_key(&l.raw(), |x| x.raw()).is_ok();
                if has(&self.cones[c], a) && has(&self.cones[c], b) {
                    self.substitute(c, a, b, v);
                }
            }
        }
        self.virtuals.len() as u64
    }
}

/// Materializes virtual literal `v` (and, recursively, the virtuals it
/// depends on) in the new graph. `vmap` memoizes per virtual id.
fn materialize(
    new: &mut Aig,
    map: &[Lit],
    virtuals: &[(Lit, Lit)],
    virtual_base: u32,
    vmap: &mut Vec<Lit>,
    v: Lit,
) -> Lit {
    let vi = ((v.raw() - virtual_base) / 2) as usize;
    if vmap[vi] != Lit::NONE {
        return vmap[vi];
    }
    let (a, b) = virtuals[vi];
    let la = resolve_atom(new, map, virtuals, virtual_base, vmap, a);
    let lb = resolve_atom(new, map, virtuals, virtual_base, vmap, b);
    let lit = new.xor(la, lb);
    vmap[vi] = lit;
    lit
}

/// Maps an extracted-cone atom — old-graph or virtual — to a new-graph
/// literal.
fn resolve_atom(
    new: &mut Aig,
    map: &[Lit],
    virtuals: &[(Lit, Lit)],
    virtual_base: u32,
    vmap: &mut Vec<Lit>,
    atom: Lit,
) -> Lit {
    if atom.raw() >= virtual_base {
        materialize(new, map, virtuals, virtual_base, vmap, atom)
    } else {
        map_lit(map, atom)
    }
}

/// Extracts shared XOR pairs from `aig` and rebuilds it. Returns the
/// rebuilt graph and the number of pairs extracted; `None` means
/// nothing was shared and the input stands as-is (zero rebuild cost).
pub(crate) fn extract_shared_xor_pairs(aig: &Aig, scratch: &mut PassScratch) -> (Option<Aig>, u64) {
    scratch.reset(aig.num_nodes());
    mark_absorbed_trees(aig, scratch);
    let mut ex = Extractor {
        cones: Vec::new(),
        roots: Vec::new(),
        counts: HashMap::new(),
        heap: BinaryHeap::new(),
        virtuals: Vec::new(),
        virtual_base: 2 * aig.num_nodes() as u32,
    };
    // Collect every XOR cone's atom set in old-graph coordinates. The
    // graph comes out of a canonicalizing rebuild, so the sets are
    // already duplicate-free; canonicalize again for safety anyway.
    for idx in 0..aig.num_nodes() {
        let n = NodeId::new(idx);
        if !aig.is_and(n) || scratch.absorbed[idx] {
            continue;
        }
        let Some((p, q)) = xor_operands(aig, n) else {
            continue;
        };
        scratch.leaves.clear();
        let mut parity = walk_xor_tree(aig, n, p, q, scratch, false);
        let mut atoms = Vec::with_capacity(scratch.leaves.len());
        for &l in &scratch.leaves {
            parity ^= l.is_complement();
            let plain = l.with_complement(false);
            if plain != Lit::FALSE {
                atoms.push(plain);
            }
        }
        cancel_xor_pairs(&mut atoms);
        ex.roots.push((idx as u32, parity));
        ex.cones.push(atoms);
    }
    for c in 0..ex.cones.len() {
        ex.count_cone(c);
    }
    let extracted = ex.extract();
    if extracted == 0 {
        return (None, 0);
    }
    // Rebuild: XOR roots emit their substituted atom sets (virtuals
    // materialize as shared nodes on first use); everything else goes
    // through the regular tree emission.
    let mut new = Aig::with_capacity(aig.num_nodes(), aig.num_pis(), aig.num_pos());
    new.set_name(aig.name().to_string());
    for pi in aig.pis() {
        let lit = new.add_pi();
        scratch.map[pi.index()] = lit;
    }
    scratch.map[NodeId::CONST0.index()] = Lit::FALSE;
    let mut vmap = vec![Lit::NONE; ex.virtuals.len()];
    let mut next_cone = 0usize;
    for idx in 0..aig.num_nodes() {
        let n = NodeId::new(idx);
        if !aig.is_and(n) || scratch.absorbed[idx] {
            continue;
        }
        let result = if next_cone < ex.roots.len() && ex.roots[next_cone].0 == idx as u32 {
            let (_, mut parity) = ex.roots[next_cone];
            scratch.work.clear();
            for k in 0..ex.cones[next_cone].len() {
                let atom = ex.cones[next_cone][k];
                let lit = resolve_atom(
                    &mut new,
                    &scratch.map,
                    &ex.virtuals,
                    ex.virtual_base,
                    &mut vmap,
                    atom,
                );
                parity ^= lit.is_complement();
                let plain = lit.with_complement(false);
                if plain != Lit::FALSE {
                    scratch.work.push(plain);
                }
            }
            next_cone += 1;
            cancel_xor_pairs(&mut scratch.work);
            if scratch.work.is_empty() {
                Lit::FALSE.xor_complement(parity)
            } else {
                emit_tree(&mut new, &mut scratch.work, Aig::xor).xor_complement(parity)
            }
        } else {
            scratch.leaves.clear();
            walk_and_tree(aig, n, scratch, false);
            scratch.work.clear();
            for k in 0..scratch.leaves.len() {
                let mapped = map_lit(&scratch.map, scratch.leaves[k]);
                scratch.work.push(mapped);
            }
            emit_and_leaves(&mut new, &mut scratch.work)
        };
        scratch.map[idx] = result;
    }
    for &po in aig.pos() {
        new.add_po(map_lit(&scratch.map, po));
    }
    (Some(new), extracted)
}
