//! The four built-in passes: `strash`, `fold`, `sweep`, `balance`.

use slap_aig::Aig;

use crate::pass::{Pass, PassScratch};
use crate::rebuild::{mark_reachable, rebuild_plain, rebuild_trees};

/// `strash`: canonicalizing structural-hash rebuild.
///
/// Flattens every maximal single-use AND/XOR tree, sorts and
/// deduplicates the leaves (`x & x`, `x & !x`, `x ^ x` mod 2), and
/// re-emits each tree in a deterministic depth-aware shape through the
/// new graph's strash table, so isomorphic and association-variant cones
/// collapse to one node. A final cross-cone stage extracts partial sums
/// shared by two or more XOR cones into single nodes (Paar-style pair
/// extraction). Rewrites counted: tree roots realized without creating
/// any new AND node, plus extracted shared pairs.
pub struct Strash;

impl Pass for Strash {
    fn name(&self) -> &'static str {
        "strash"
    }

    fn run(&self, aig: &Aig, scratch: &mut PassScratch) -> (Aig, u64) {
        let out = rebuild_trees(aig, scratch);
        (out.aig, out.folded_roots + out.extracted_pairs)
    }
}

/// `fold`: constant folding with 0/1 propagation through complemented
/// edges.
///
/// A plain one-to-one rebuild through [`Aig::and`], whose folding rules
/// (`a & 0`, `a & 1`, `a & a`, `a & !a`) propagate constants bottom-up —
/// an inverted edge off a folded-to-0 node feeds `1` into its parent,
/// which folds in turn. Rewrites counted: nodes realized without
/// creating any new AND node (folded or collapsed into existing
/// structure).
pub struct Fold;

impl Pass for Fold {
    fn name(&self) -> &'static str {
        "fold"
    }

    fn run(&self, aig: &Aig, scratch: &mut PassScratch) -> (Aig, u64) {
        scratch.reset(aig.num_nodes());
        rebuild_plain(aig, scratch, false)
    }
}

/// `sweep`: dangling-cone removal.
///
/// Keeps exactly the AND nodes inside some primary output's transitive
/// fanin; every primary input survives so the PI/PO interface is
/// untouched. Rewrites counted: AND nodes dropped.
pub struct Sweep;

impl Pass for Sweep {
    fn name(&self) -> &'static str {
        "sweep"
    }

    fn run(&self, aig: &Aig, scratch: &mut PassScratch) -> (Aig, u64) {
        scratch.reset(aig.num_nodes());
        mark_reachable(aig, scratch);
        rebuild_plain(aig, scratch, true)
    }
}

/// `balance`: depth-oriented AND/XOR-tree rebalancing.
///
/// Rebuilds through the same flatten-and-re-emit engine as
/// [`Strash`], combining the two lowest-level operands of each tree
/// first (Huffman order), which minimizes the rebuilt root level.
/// After `strash` in the full pipeline this is a fixpoint verification
/// stage (trees are already emitted depth-aware); standalone — e.g.
/// `--passes balance` — it rebalances chains without canonical-order
/// leaf sorting side effects. Rewrites counted: tree roots whose
/// rebuilt level is strictly below their input level.
pub struct Balance;

impl Pass for Balance {
    fn name(&self) -> &'static str {
        "balance"
    }

    fn run(&self, aig: &Aig, scratch: &mut PassScratch) -> (Aig, u64) {
        let out = rebuild_trees(aig, scratch);
        (out.aig, out.depth_improved_roots)
    }
}
