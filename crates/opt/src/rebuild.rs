//! Shared tree-rebuild machinery: XOR-structure detection, maximal
//! single-use tree flattening, leaf canonicalization (sort, dedup,
//! mod-2 cancellation), and depth-aware re-emission through the new
//! graph's structural-hash table.
//!
//! Both `strash` and `balance` rebuild through this engine; they differ
//! in which rewrite events they report (see `passes`). Emitting every
//! tree in the same deterministic shape — operands combined two lowest
//! levels first, ties broken by raw literal — is what makes the full
//! pipeline idempotent: a tree that re-enters the engine with some of
//! its sub-trees shared (and therefore treated as atomic leaves) rebuilds
//! into exactly the nodes it already consists of.

use slap_aig::{Aig, Lit, NodeId};

use crate::pass::PassScratch;

/// Maps an old-graph literal through the rebuild map, preserving the
/// complement bit.
#[inline]
pub(crate) fn map_lit(map: &[Lit], l: Lit) -> Lit {
    let m = map[l.node().index()];
    debug_assert!(m != Lit::NONE, "fanin rebuilt before any node that uses it");
    m.xor_complement(l.is_complement())
}

/// Detects the three-AND XOR structure [`Aig::xor`] builds: if the plain
/// literal of AND node `n` computes `p ^ q`, returns `(p, q)`.
///
/// `n = AND(!AND(a, b), !AND(c, d))` with `{c, d} = {!a, !b}` simplifies
/// to `!(a & b) & (a | b)`, which is exactly `a ^ b`.
pub(crate) fn xor_operands(aig: &Aig, n: NodeId) -> Option<(Lit, Lit)> {
    let (f0, f1) = aig.fanins(n);
    if !f0.is_complement() || !f1.is_complement() {
        return None;
    }
    let (n0, n1) = (f0.node(), f1.node());
    if !aig.is_and(n0) || !aig.is_and(n1) {
        return None;
    }
    let (a, b) = aig.fanins(n0);
    let (c, d) = aig.fanins(n1);
    if (c == !a && d == !b) || (c == !b && d == !a) {
        Some((a, b))
    } else {
        None
    }
}

/// True if literal `l` may be flattened into an enclosing XOR tree: its
/// node is an XOR root used only by the tree parent. Both inner ANDs of
/// the parent's XOR structure reference the operand node, so "no
/// external users" means a fanout of exactly two.
fn expandable_xor(aig: &Aig, l: Lit) -> bool {
    let n = l.node();
    aig.is_and(n) && aig.fanout_of(n) == 2 && xor_operands(aig, n).is_some()
}

/// True if literal `l` may be flattened into an enclosing AND tree: a
/// plain edge into an AND used only by the tree parent that is not
/// itself an XOR root (XOR structures are kept atomic so they
/// canonicalize as XOR trees instead).
fn expandable_and(aig: &Aig, l: Lit) -> bool {
    let n = l.node();
    !l.is_complement() && aig.is_and(n) && aig.fanout_of(n) == 1 && xor_operands(aig, n).is_none()
}

/// Marks the inner NAND pair of XOR root `n` as absorbed where the tree
/// rebuild will bypass them (single-use only; a shared inner AND stays
/// live for its other users).
fn absorb_xor_inners(aig: &Aig, n: NodeId, absorbed: &mut [bool]) {
    let (f0, f1) = aig.fanins(n);
    for inner in [f0.node(), f1.node()] {
        if aig.fanout_of(inner) == 1 {
            absorbed[inner.index()] = true;
        }
    }
}

/// True if both inner NANDs of XOR root `n` are used only by `n` itself,
/// so the rebuild bypasses them entirely. Only then may the structure's
/// operands be flattened further: a shared inner stays live and keeps
/// referencing the operands, which therefore must not be absorbed.
fn xor_inners_private(aig: &Aig, n: NodeId) -> bool {
    let (f0, f1) = aig.fanins(n);
    aig.fanout_of(f0.node()) == 1 && aig.fanout_of(f1.node()) == 1
}

/// Walks the maximal XOR tree rooted at `root` (whose plain literal is
/// `p ^ q`), pushing old-graph leaf literals onto `scratch.leaves`. When
/// `mark` is set, interior nodes are flagged absorbed instead. Returns
/// the complement parity contributed by expanded literals: an inverted
/// edge into a flattened sub-XOR negates the whole sum.
///
/// An operand's two users are the inner NANDs of its enclosing
/// structure, so it may only be expanded (and absorbed) when those
/// inners are absorbed themselves — the `expand` flag carried on the
/// stack tracks exactly that, keeping the mark and collect phases in
/// agreement.
pub(crate) fn walk_xor_tree(
    aig: &Aig,
    root: NodeId,
    p: Lit,
    q: Lit,
    scratch: &mut PassScratch,
    mark: bool,
) -> bool {
    let root_private = xor_inners_private(aig, root);
    scratch.xstack.clear();
    scratch.xstack.push((p, root_private));
    scratch.xstack.push((q, root_private));
    let mut parity = false;
    while let Some((l, expand)) = scratch.xstack.pop() {
        if expand && expandable_xor(aig, l) {
            let n = l.node();
            parity ^= l.is_complement();
            let (a, b) =
                xor_operands(aig, n).expect("expandable_xor implies the XOR structure matches");
            if mark {
                scratch.absorbed[n.index()] = true;
                absorb_xor_inners(aig, n, &mut scratch.absorbed);
            }
            let private = xor_inners_private(aig, n);
            scratch.xstack.push((a, private));
            scratch.xstack.push((b, private));
        } else if !mark {
            scratch.leaves.push(l);
        }
    }
    parity
}

/// Walks the maximal AND tree rooted at `root`, pushing old-graph leaf
/// literals onto `scratch.leaves`, or flagging interior nodes absorbed
/// when `mark` is set.
pub(crate) fn walk_and_tree(aig: &Aig, root: NodeId, scratch: &mut PassScratch, mark: bool) {
    let (f0, f1) = aig.fanins(root);
    scratch.stack.clear();
    scratch.stack.push(f0);
    scratch.stack.push(f1);
    while let Some(l) = scratch.stack.pop() {
        if expandable_and(aig, l) {
            let n = l.node();
            if mark {
                scratch.absorbed[n.index()] = true;
            }
            let (a, b) = aig.fanins(n);
            scratch.stack.push(a);
            scratch.stack.push(b);
        } else if !mark {
            scratch.leaves.push(l);
        }
    }
}

/// Emission key: combine shallow operands first so tree depth tracks the
/// optimal Huffman bound; break level ties by raw literal for
/// determinism.
#[inline]
fn emit_key(new: &Aig, l: Lit) -> (u32, u32) {
    (new.level_of(l.node()), l.raw())
}

/// Combines `work` (already canonicalized operands) into one literal,
/// two lowest-keyed operands at a time, inserting each intermediate back
/// in key order. `op` is [`Aig::and`] or [`Aig::xor`].
pub(crate) fn emit_tree(
    new: &mut Aig,
    work: &mut Vec<Lit>,
    op: fn(&mut Aig, Lit, Lit) -> Lit,
) -> Lit {
    debug_assert!(!work.is_empty(), "caller handles the empty operand set");
    work.sort_by_key(|&l| emit_key(new, l));
    let mut i = 0;
    while work.len() - i > 1 {
        let a = work[i];
        let b = work[i + 1];
        i += 2;
        let combined = op(new, a, b);
        let key = emit_key(new, combined);
        let pos = work[i..].partition_point(|&l| emit_key(new, l) <= key);
        work.insert(i + pos, combined);
    }
    work[i]
}

/// Canonicalizes and emits an AND tree from the mapped leaves in
/// `scratch.work`: drops `TRUE`, folds on `FALSE`, deduplicates `x & x`,
/// detects `x & !x`, then emits in Huffman order.
pub(crate) fn emit_and_leaves(new: &mut Aig, work: &mut Vec<Lit>) -> Lit {
    work.retain(|&l| l != Lit::TRUE);
    if work.contains(&Lit::FALSE) {
        return Lit::FALSE;
    }
    work.sort_by_key(|l| l.raw());
    work.dedup();
    if work.windows(2).any(|w| w[0].node() == w[1].node()) {
        return Lit::FALSE; // x & !x: raw sort puts the pair adjacent
    }
    if work.is_empty() {
        return Lit::TRUE;
    }
    emit_tree(new, work, Aig::and)
}

/// Cancels equal pairs mod 2 (`x ^ x == 0`) in a raw-sorted `work`.
pub(crate) fn cancel_xor_pairs(work: &mut Vec<Lit>) {
    work.sort_by_key(|l| l.raw());
    let mut kept = 0;
    let mut i = 0;
    while i < work.len() {
        if i + 1 < work.len() && work[i] == work[i + 1] {
            i += 2;
        } else {
            work[kept] = work[i];
            kept += 1;
            i += 1;
        }
    }
    work.truncate(kept);
}

/// Cancellation-driven expansion of *shared* XOR leaves: a leaf whose
/// new-graph node is itself an XOR structure is replaced by its two
/// operands whenever at least one operand already occurs in the leaf
/// set, so the pair cancels mod 2 and the final sum gets strictly
/// smaller. The shared node stays live for its other users — this cone
/// merely re-expresses its parity function over cheaper leaves (the
/// operands are already-built literals). Returns the complement parity
/// contributed by expanded operand edges.
///
/// Each committed expansion removes one leaf and cancels at least one
/// pair, so the post-cancellation leaf count strictly decreases and the
/// loop terminates. Expansions that would not cancel are rejected,
/// which keeps the pass from duplicating shared logic to no benefit and
/// keeps the pipeline idempotent: a minimal sum admits no further
/// cancelling expansion.
fn expand_cancelling_xor_leaves(new: &Aig, work: &mut Vec<Lit>) -> bool {
    let mut parity = false;
    loop {
        cancel_xor_pairs(work);
        let mut committed = false;
        for i in 0..work.len() {
            if !new.is_and(work[i].node()) {
                continue;
            }
            let Some((a, b)) = xor_operands(new, work[i].node()) else {
                continue;
            };
            let pa = a.with_complement(false);
            let pb = b.with_complement(false);
            if work.binary_search_by_key(&pa.raw(), |l| l.raw()).is_ok()
                || work.binary_search_by_key(&pb.raw(), |l| l.raw()).is_ok()
            {
                parity ^= a.is_complement() ^ b.is_complement();
                work.swap_remove(i);
                work.push(pa);
                work.push(pb);
                committed = true;
                break;
            }
        }
        if !committed {
            return parity;
        }
    }
}

/// Toggles membership of `l` in the raw-sorted set `set` — mod-2
/// insertion: present literals cancel, absent literals join.
fn toggle_sorted(set: &mut Vec<Lit>, l: Lit) {
    match set.binary_search_by_key(&l.raw(), |x| x.raw()) {
        Ok(pos) => {
            set.remove(pos);
        }
        Err(pos) => set.insert(pos, l),
    }
}

/// Ceiling on the working-set size and expansion count of the
/// atomization trial; cones whose GF(2) normal form does not fit are
/// left in their greedy-refined shape. Deterministic, so repeated runs
/// take identical decisions.
const ATOMIZE_SIZE_CAP: usize = 128;
const ATOMIZE_STEP_CAP: usize = 512;

/// Fully atomizes the sum in `work` into `out`: repeatedly expands the
/// highest-id XOR-structure member into its operands with mod-2
/// cancellation. Operands always have lower ids than their root, so the
/// maximum expandable id strictly decreases and the walk terminates.
/// The result is the cone's parity function over non-XOR atoms — a
/// GF(2) normal form that catches rank deficiencies the pairwise greedy
/// expansion misses (e.g. `(a^b) ^ (b^c) ^ (a^c) == 0`). Returns the
/// accumulated complement parity, or `None` when a cap is hit.
fn atomize_xor_leaves(new: &Aig, work: &[Lit], out: &mut Vec<Lit>) -> Option<bool> {
    out.clear();
    out.extend_from_slice(work);
    out.sort_by_key(|l| l.raw());
    let mut parity = false;
    for _ in 0..ATOMIZE_STEP_CAP {
        // Raw-sorted order is id order for plain literals, so the first
        // XOR structure found from the back is the highest-id one.
        let Some(i) = (0..out.len())
            .rev()
            .find(|&i| new.is_and(out[i].node()) && xor_operands(new, out[i].node()).is_some())
        else {
            return Some(parity);
        };
        let (a, b) = xor_operands(new, out[i].node())
            .expect("membership test above matched the XOR structure");
        parity ^= a.is_complement() ^ b.is_complement();
        out.remove(i);
        toggle_sorted(out, a.with_complement(false));
        toggle_sorted(out, b.with_complement(false));
        if out.len() > ATOMIZE_SIZE_CAP {
            return None;
        }
    }
    None
}

/// Canonicalizes and emits an XOR tree from the plain mapped leaf nodes
/// in `scratch.work` (complement parity already stripped by the caller):
/// sorts, cancels equal pairs mod 2, expands shared XOR leaves where
/// that cancels further, atomizes the whole sum when its GF(2) normal
/// form is strictly smaller, then emits in Huffman order. Returns the
/// result literal and the parity contributed by the expansions.
fn emit_xor_leaves(new: &mut Aig, work: &mut Vec<Lit>, spare: &mut Vec<Lit>) -> (Lit, bool) {
    let mut parity = expand_cancelling_xor_leaves(new, work);
    if let Some(atom_parity) = atomize_xor_leaves(new, work, spare) {
        if spare.len() < work.len() {
            std::mem::swap(work, spare);
            parity ^= atom_parity;
        }
    }
    if work.is_empty() {
        return (Lit::FALSE, parity);
    }
    let lit = emit_tree(new, work, Aig::xor);
    (lit, parity)
}

/// Outcome of a canonicalizing tree rebuild, with the rewrite counts the
/// two tree passes report.
pub(crate) struct TreeRebuild {
    pub aig: Aig,
    /// Roots realized without creating any new AND node (collapsed into
    /// existing structure or folded to a constant/leaf).
    pub folded_roots: u64,
    /// Roots whose rebuilt level is strictly below their input level.
    pub depth_improved_roots: u64,
    /// Shared XOR pairs extracted across cones (see `extract`).
    pub extracted_pairs: u64,
}

/// Marks every node absorbed that the tree rebuild will flatten into an
/// enclosing AND/XOR tree. Parents have higher ids than their fanins,
/// so a reverse id walk sees every tree root before the nodes it
/// absorbs.
pub(crate) fn mark_absorbed_trees(aig: &Aig, scratch: &mut PassScratch) {
    for idx in (0..aig.num_nodes()).rev() {
        let n = NodeId::new(idx);
        if !aig.is_and(n) || scratch.absorbed[idx] {
            continue;
        }
        if let Some((p, q)) = xor_operands(aig, n) {
            absorb_xor_inners(aig, n, &mut scratch.absorbed);
            let _ = walk_xor_tree(aig, n, p, q, scratch, true);
        } else {
            walk_and_tree(aig, n, scratch, true);
        }
    }
}

/// True if the two graphs are structurally identical: same node array,
/// same PI count, same output literals.
fn same_structure(a: &Aig, b: &Aig) -> bool {
    a.num_nodes() == b.num_nodes()
        && a.num_pis() == b.num_pis()
        && a.pos() == b.pos()
        && (0..a.num_nodes()).all(|i| {
            let n = NodeId::new(i);
            a.is_and(n) == b.is_and(n) && (!a.is_and(n) || a.fanins(n) == b.fanins(n))
        })
}

/// Iteration ceiling for the rebuild/extract fixpoint loop. Convergence
/// takes two or three rounds in practice; the cap only guards against a
/// pathological oscillation.
const REBUILD_FIXPOINT_CAP: usize = 8;

/// Rebuilds `aig` by flattening every maximal single-use AND/XOR tree,
/// canonicalizing its leaves, re-emitting depth-aware through the new
/// graph's structural hash, and extracting partial sums shared across
/// XOR cones — iterated to a structural fixpoint, because extraction
/// changes fanouts and thereby exposes new flattening and cancellation
/// opportunities to the next canonicalizing round. The fixpoint is what
/// makes the pass idempotent. The PI/PO interface is preserved exactly;
/// dangling input cones are rebuilt too (sweeping is a separate pass).
pub(crate) fn rebuild_trees(aig: &Aig, scratch: &mut PassScratch) -> TreeRebuild {
    let mut result = rebuild_trees_once(aig, scratch);
    for _ in 0..REBUILD_FIXPOINT_CAP {
        let (extracted_aig, extracted_pairs) =
            crate::extract::extract_shared_xor_pairs(&result.aig, scratch);
        let extracted = extracted_aig.is_some();
        if let Some(extracted_aig) = extracted_aig {
            result.aig = extracted_aig;
            result.extracted_pairs += extracted_pairs;
        }
        let next = rebuild_trees_once(&result.aig, scratch);
        if !extracted && same_structure(&next.aig, &result.aig) {
            break;
        }
        result.folded_roots += next.folded_roots;
        result.depth_improved_roots += next.depth_improved_roots;
        result.aig = next.aig;
    }
    result
}

/// One canonicalizing flatten-and-re-emit rebuild (no cross-cone
/// extraction).
fn rebuild_trees_once(aig: &Aig, scratch: &mut PassScratch) -> TreeRebuild {
    scratch.reset(aig.num_nodes());
    mark_absorbed_trees(aig, scratch);
    let mut new = Aig::with_capacity(aig.num_nodes(), aig.num_pis(), aig.num_pos());
    new.set_name(aig.name().to_string());
    for pi in aig.pis() {
        let lit = new.add_pi();
        scratch.map[pi.index()] = lit;
    }
    scratch.map[NodeId::CONST0.index()] = Lit::FALSE;
    let mut folded_roots = 0u64;
    let mut depth_improved_roots = 0u64;
    for idx in 0..aig.num_nodes() {
        let n = NodeId::new(idx);
        if !aig.is_and(n) || scratch.absorbed[idx] {
            continue;
        }
        let ands_before = new.num_ands();
        let result = if let Some((p, q)) = xor_operands(aig, n) {
            scratch.leaves.clear();
            let mut parity = walk_xor_tree(aig, n, p, q, scratch, false);
            // Strip leaf polarity and constants into the output parity;
            // keep plain node literals for mod-2 cancellation.
            scratch.work.clear();
            for k in 0..scratch.leaves.len() {
                let mapped = map_lit(&scratch.map, scratch.leaves[k]);
                parity ^= mapped.is_complement();
                let plain = mapped.with_complement(false);
                if plain != Lit::FALSE {
                    scratch.work.push(plain);
                }
            }
            let (lit, expand_parity) =
                emit_xor_leaves(&mut new, &mut scratch.work, &mut scratch.work2);
            lit.xor_complement(parity ^ expand_parity)
        } else {
            scratch.leaves.clear();
            walk_and_tree(aig, n, scratch, false);
            scratch.work.clear();
            for k in 0..scratch.leaves.len() {
                let mapped = map_lit(&scratch.map, scratch.leaves[k]);
                scratch.work.push(mapped);
            }
            emit_and_leaves(&mut new, &mut scratch.work)
        };
        if new.num_ands() == ands_before {
            folded_roots += 1;
        }
        if new.level_of(result.node()) < aig.level_of(n) {
            depth_improved_roots += 1;
        }
        scratch.map[idx] = result;
    }
    for &po in aig.pos() {
        new.add_po(map_lit(&scratch.map, po));
    }
    TreeRebuild {
        aig: new,
        folded_roots,
        depth_improved_roots,
        extracted_pairs: 0,
    }
}

/// Plain one-to-one rebuild through [`Aig::and`] (structural hashing plus
/// constant folding), optionally restricted to nodes marked reachable.
pub(crate) fn rebuild_plain(
    aig: &Aig,
    scratch: &mut PassScratch,
    reachable_only: bool,
) -> (Aig, u64) {
    let mut new = Aig::with_capacity(aig.num_nodes(), aig.num_pis(), aig.num_pos());
    new.set_name(aig.name().to_string());
    for pi in aig.pis() {
        let lit = new.add_pi();
        scratch.map[pi.index()] = lit;
    }
    scratch.map[NodeId::CONST0.index()] = Lit::FALSE;
    let mut rewrites = 0u64;
    for idx in 0..aig.num_nodes() {
        let n = NodeId::new(idx);
        if !aig.is_and(n) {
            continue;
        }
        if reachable_only && !scratch.reach[idx] {
            rewrites += 1; // dropped: outside every PO cone
            continue;
        }
        let (f0, f1) = aig.fanins(n);
        let a = map_lit(&scratch.map, f0);
        let b = map_lit(&scratch.map, f1);
        let ands_before = new.num_ands();
        let result = new.and(a, b);
        if !reachable_only && new.num_ands() == ands_before {
            rewrites += 1; // folded or collapsed into existing structure
        }
        scratch.map[idx] = result;
    }
    for &po in aig.pos() {
        new.add_po(map_lit(&scratch.map, po));
    }
    (new, rewrites)
}

/// Marks `scratch.reach` for every node in the transitive fanin of a
/// primary output.
pub(crate) fn mark_reachable(aig: &Aig, scratch: &mut PassScratch) {
    scratch.stack.clear();
    for &po in aig.pos() {
        scratch.stack.push(po);
    }
    while let Some(l) = scratch.stack.pop() {
        let idx = l.node().index();
        if scratch.reach[idx] {
            continue;
        }
        scratch.reach[idx] = true;
        if aig.is_and(l.node()) {
            let (f0, f1) = aig.fanins(l.node());
            scratch.stack.push(f0);
            scratch.stack.push(f1);
        }
    }
}
