//! [`PassPipeline`]: an ordered list of passes parsed from a spec string.

use std::time::Instant;

use slap_aig::Aig;

use crate::pass::{Pass, PassScratch, PassStats};
use crate::passes::{Balance, Fold, Strash, Sweep};

/// The canonical full-pipeline spec, in recommended order.
pub const FULL_SPEC: &str = "strash,fold,sweep,balance";

/// The canonical spec of the empty (opt-off) pipeline. This is also the
/// value run manifests report when no `--passes` flag was given, so old
/// baselines and opt-off runs compare as the same pipeline.
pub const NONE_SPEC: &str = "none";

/// Seed for the debug-build equivalence check after each pass.
#[cfg(debug_assertions)]
const EQUIV_SEED: u64 = 0x51A9_0B70;

/// Summary of one [`PassPipeline::optimize`] invocation.
#[derive(Clone, Debug, Default)]
pub struct OptReport {
    /// AND count before the first pass.
    pub ands_in: usize,
    /// AND count after the last pass.
    pub ands_out: usize,
    /// Depth before the first pass.
    pub depth_in: u32,
    /// Depth after the last pass.
    pub depth_out: u32,
    /// Total wall time across all passes.
    pub seconds: f64,
    /// Per-pass breakdown, in execution order.
    pub passes: Vec<PassStats>,
}

/// An ordered, composable pass pipeline over [`Aig`]s.
///
/// Parsed from a comma-separated spec (`"strash,fold,sweep,balance"`);
/// the empty string and `"none"` parse to the empty pipeline, and
/// `"full"` expands to [`FULL_SPEC`]. The pipeline owns the scratch
/// buffers its passes share, so reusing one pipeline across circuits
/// avoids per-run buffer growth.
pub struct PassPipeline {
    passes: Vec<Box<dyn Pass>>,
    scratch: PassScratch,
}

impl PassPipeline {
    /// Parses a pipeline spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token if any
    /// comma-separated entry is not a known pass name.
    pub fn parse(spec: &str) -> Result<PassPipeline, String> {
        let trimmed = spec.trim();
        let mut passes: Vec<Box<dyn Pass>> = Vec::new();
        if !trimmed.is_empty() && trimmed != NONE_SPEC {
            let expanded = if trimmed == "full" {
                FULL_SPEC
            } else {
                trimmed
            };
            for tok in expanded.split(',') {
                match tok.trim() {
                    "strash" => passes.push(Box::new(Strash)),
                    "fold" => passes.push(Box::new(Fold)),
                    "sweep" => passes.push(Box::new(Sweep)),
                    "balance" => passes.push(Box::new(Balance)),
                    other => {
                        return Err(format!(
                            "unknown pass '{other}' (expected strash, fold, sweep, or balance)"
                        ))
                    }
                }
            }
        }
        Ok(PassPipeline {
            passes,
            scratch: PassScratch::new(),
        })
    }

    /// True when the pipeline holds no passes (opt off).
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// The canonical spec: [`NONE_SPEC`] when empty, otherwise the pass
    /// names joined by commas. This is the string that goes into run
    /// manifests and serve cache keys.
    pub fn spec(&self) -> String {
        if self.passes.is_empty() {
            NONE_SPEC.to_string()
        } else {
            let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
            names.join(",")
        }
    }

    /// Runs every pass in order and returns the optimized graph plus a
    /// per-pass report.
    ///
    /// The empty pipeline returns `input` untouched (the very same
    /// value, not a rebuild), which is what keeps opt-off paths
    /// bit-identical to pre-pipeline behavior. In debug builds each
    /// pass's output is checked for 64-bit parallel-sim equivalence
    /// against its input.
    pub fn optimize(&mut self, input: Aig) -> (Aig, OptReport) {
        let mut report = OptReport {
            ands_in: input.num_ands(),
            ands_out: input.num_ands(),
            depth_in: input.depth(),
            depth_out: input.depth(),
            ..OptReport::default()
        };
        if self.passes.is_empty() {
            return (input, report);
        }
        let _pipeline_span = slap_obs::span("opt.pipeline");
        let mut cur = input;
        for pass in &self.passes {
            let name = pass.name();
            let t0 = Instant::now();
            let (next, rewrites) = {
                let _pass_span = slap_obs::span(&format!("opt.{name}"));
                pass.run(&cur, &mut self.scratch)
            };
            let seconds = t0.elapsed().as_secs_f64();
            #[cfg(debug_assertions)]
            {
                assert!(
                    slap_aig::sim::random_equiv_check(&cur, &next, 4, EQUIV_SEED),
                    "pass '{name}' broke sim equivalence on '{}'",
                    cur.name()
                );
            }
            let stats = PassStats {
                name,
                ands_in: cur.num_ands(),
                ands_out: next.num_ands(),
                depth_in: cur.depth(),
                depth_out: next.depth(),
                rewrites,
                seconds,
            };
            slap_obs::counter(&format!("opt.{name}.nodes_in")).add(stats.ands_in as u64);
            slap_obs::counter(&format!("opt.{name}.nodes_out")).add(stats.ands_out as u64);
            slap_obs::counter(&format!("opt.{name}.rewrites")).add(rewrites);
            report.seconds += seconds;
            report.passes.push(stats);
            cur = next;
        }
        report.ands_out = cur.num_ands();
        report.depth_out = cur.depth();
        (cur, report)
    }
}

impl std::fmt::Debug for PassPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PassPipeline({})", self.spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_aig::sim::random_equiv_check;
    use slap_aig::Lit;

    fn pipeline(spec: &str) -> PassPipeline {
        PassPipeline::parse(spec).expect("valid spec in test")
    }

    #[test]
    fn parse_specs() {
        assert!(pipeline("").is_empty());
        assert!(pipeline("none").is_empty());
        assert!(pipeline(" none ").is_empty());
        assert_eq!(pipeline(FULL_SPEC).spec(), FULL_SPEC);
        assert_eq!(pipeline("full").spec(), FULL_SPEC);
        assert_eq!(pipeline(" strash , balance ").spec(), "strash,balance");
        assert_eq!(pipeline("").spec(), NONE_SPEC);
        assert!(PassPipeline::parse("strash,bogus").is_err());
        assert!(PassPipeline::parse(",").is_err());
    }

    #[test]
    fn empty_pipeline_returns_input_untouched() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let x = aig.and(a, b);
        aig.add_po(x);
        let before_nodes = aig.num_nodes();
        let (out, report) = pipeline("").optimize(aig);
        assert_eq!(out.num_nodes(), before_nodes);
        assert!(report.passes.is_empty());
        assert_eq!(report.ands_in, report.ands_out);
    }

    #[test]
    fn xor_pair_cancels_through_full_pipeline() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let x = aig.xor(a, b);
        let y = aig.xor(x, b); // == a
        aig.add_po(y);
        assert_eq!(aig.num_ands(), 6);
        let (out, report) = pipeline("full").optimize(aig);
        assert_eq!(out.num_ands(), 0, "a ^ b ^ b should collapse to a");
        assert_eq!(out.pos()[0], Lit::new(out.pis()[0], false));
        assert_eq!(report.ands_out, 0);
    }

    #[test]
    fn sweep_drops_dangling_cone_and_keeps_pis() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let live = aig.and(a, b);
        let _dead = aig.and(b, c);
        aig.add_po(live);
        let (out, _) = pipeline("sweep").optimize(aig);
        assert_eq!(out.num_ands(), 1);
        assert_eq!(out.num_pis(), 3, "unused PIs must survive a sweep");
    }

    #[test]
    fn fold_propagates_constants_through_complemented_edges() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        // x = a & !a folds at build time; force a dangling-constant shape
        // via a PO on an inverted dead node instead: y = !(b & 0) == 1.
        let x = aig.and(a, !a);
        let y = aig.and(b, x); // b & 0 == 0
        aig.add_po(!y);
        let (out, _) = pipeline("fold").optimize(aig);
        assert_eq!(out.num_ands(), 0);
        assert_eq!(out.pos()[0], Lit::TRUE);
    }

    #[test]
    fn balance_reduces_chain_depth() {
        let mut aig = Aig::new();
        let xs = aig.add_pis(8);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.and(acc, x); // a left-leaning depth-7 chain
        }
        aig.add_po(acc);
        assert_eq!(aig.depth(), 7);
        let orig = aig.clone();
        let (out, report) = pipeline("balance").optimize(aig);
        assert_eq!(out.depth(), 3, "8-leaf AND tree balances to depth 3");
        assert!(report.passes[0].rewrites >= 1);
        assert!(random_equiv_check(&orig, &out, 8, 7));
    }

    #[test]
    fn passes_preserve_equivalence_on_a_mixed_graph() {
        let mut aig = Aig::new();
        let xs = aig.add_pis(6);
        let s = aig.xor(xs[0], xs[1]);
        let t = aig.xor(s, xs[2]);
        let m = aig.mux(xs[3], t, s);
        let g = aig.maj(xs[4], xs[5], m);
        let dead = aig.and(xs[0], xs[4]);
        let _ = aig.and(dead, xs[5]);
        aig.add_po(g);
        aig.add_po(!t);
        let orig = aig.clone();
        for spec in ["strash", "fold", "sweep", "balance", FULL_SPEC] {
            let (out, _) = pipeline(spec).optimize(orig.clone());
            assert!(
                random_equiv_check(&orig, &out, 16, 0xBEEF),
                "spec '{spec}' broke equivalence"
            );
        }
    }
}
