//! The [`Pass`] trait, per-pass statistics, and the reusable scratch
//! buffers every pass rebuilds through.

use slap_aig::{Aig, Lit};

/// One optimization pass over an [`Aig`].
///
/// A pass never mutates its input (the graph is append-only); it rebuilds
/// a new `Aig` with the same PI/PO interface and an equivalent function.
/// Passes are stateless: all working memory lives in the caller-owned
/// [`PassScratch`] so repeated invocations allocate nothing per node in
/// steady state (pinned by `tests/alloc_budget.rs`).
pub trait Pass {
    /// The spec name of this pass (`"strash"`, `"fold"`, ...).
    fn name(&self) -> &'static str;

    /// Rebuilds `aig` through this pass. Returns the rebuilt graph and
    /// the number of rewrite events applied (pass-specific; see each
    /// pass's documentation for what counts as one rewrite).
    fn run(&self, aig: &Aig, scratch: &mut PassScratch) -> (Aig, u64);
}

/// Per-pass observation record emitted by
/// [`PassPipeline::optimize`](crate::PassPipeline::optimize).
#[derive(Clone, Debug)]
pub struct PassStats {
    /// Spec name of the pass.
    pub name: &'static str,
    /// AND count of the pass input.
    pub ands_in: usize,
    /// AND count of the pass output.
    pub ands_out: usize,
    /// Depth (maximum level) of the pass input.
    pub depth_in: u32,
    /// Depth of the pass output.
    pub depth_out: u32,
    /// Rewrite events applied (pass-specific meaning).
    pub rewrites: u64,
    /// Wall time spent inside the pass.
    pub seconds: f64,
}

/// Reusable working memory shared by all passes.
///
/// Buffers grow to the size of the largest graph seen and are then reused,
/// so a warm pipeline performs only the output-graph allocations.
#[derive(Default)]
pub struct PassScratch {
    /// Old node id → new literal (`Lit::NONE` = not rebuilt).
    pub(crate) map: Vec<Lit>,
    /// Old node was flattened into an enclosing tree and needs no rebuild.
    pub(crate) absorbed: Vec<bool>,
    /// Old node is in the transitive fanin of a primary output.
    pub(crate) reach: Vec<bool>,
    /// Leaf literals of the tree currently being collected.
    pub(crate) leaves: Vec<Lit>,
    /// DFS worklist for tree collection and reachability.
    pub(crate) stack: Vec<Lit>,
    /// DFS worklist for XOR-tree collection: literal plus whether the
    /// structure referencing it is fully absorbed (expansion allowed).
    pub(crate) xstack: Vec<(Lit, bool)>,
    /// Sorted working set for tree re-emission.
    pub(crate) work: Vec<Lit>,
    /// Secondary working set for the XOR atomization trial.
    pub(crate) work2: Vec<Lit>,
}

impl PassScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> PassScratch {
        PassScratch::default()
    }

    /// Resets the per-graph buffers for a graph of `num_nodes` nodes,
    /// keeping capacity.
    pub(crate) fn reset(&mut self, num_nodes: usize) {
        self.map.clear();
        self.map.resize(num_nodes, Lit::NONE);
        self.absorbed.clear();
        self.absorbed.resize(num_nodes, false);
        self.reach.clear();
        self.reach.resize(num_nodes, false);
        self.leaves.clear();
        self.stack.clear();
        self.xstack.clear();
        self.work.clear();
        self.work2.clear();
    }
}
