//! JSONL metrics emission for the experiment binaries.
//!
//! Every binary accepts `--metrics-json <path>` (`-` = stdout); when
//! set, the stream opens with one `event = "run_manifest"` record
//! ([`run_manifest`]) and then appends one [`Record`] per circuit × mode
//! (and per training epoch) via [`slap_obs::JsonlSink`]. The per-line
//! schema is flat (no nested objects) so [`slap_obs::parse_object`] can
//! read each line back — `slap-report` consumes exactly this format.
//!
//! Trace timelines ride along through [`TraceOut`]: `--trace-json` /
//! `--trace-folded` (or `SLAP_TRACE=1`) turn span collection on, and
//! `finish` exports the drained timeline as Chrome `trace_event` JSON
//! and/or folded flamegraph stacks.

use std::io::Write;
use std::sync::{Arc, Mutex};

use slap_aig::Aig;
use slap_cell::Library;
use slap_map::MapStats;
use slap_ml::{EpochProgress, ProgressSink, StderrProgress};
use slap_obs::manifest::{combine_hashes, content_hash};
use slap_obs::{trace, JsonlSink, Record, RunManifest, Sink};

use crate::Args;

/// A writer for per-run metrics records: either a JSONL sink (when the
/// user passed `--metrics-json`; `-` streams to stdout) or a no-op.
/// Thread-safe so it can be shared with a training [`ProgressSink`].
pub struct MetricsOut {
    sink: Option<Mutex<JsonlSink<Box<dyn Write + Send>>>>,
}

impl MetricsOut {
    /// Creates the output from the optional `--metrics-json` path
    /// (empty string = disabled, `-` = stdout).
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be created.
    pub fn from_arg(path: &str) -> MetricsOut {
        let sink = if path.is_empty() {
            None
        } else {
            Some(Mutex::new(
                JsonlSink::open(path).expect("can create metrics file"),
            ))
        };
        MetricsOut { sink }
    }

    /// Whether records are actually being written.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Appends one record (no-op when disabled).
    ///
    /// # Panics
    ///
    /// Panics on write errors.
    pub fn emit(&self, record: &Record) {
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("metrics sink mutex poisoned by a panicking writer")
                .emit(record)
                .expect("metrics write");
        }
    }

    /// Flushes the underlying writer (no-op when disabled).
    ///
    /// # Panics
    ///
    /// Panics on flush errors.
    pub fn finish(&self) {
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("metrics sink mutex poisoned by a panicking writer")
                .flush()
                .expect("metrics flush");
        }
    }
}

/// Adapter routing per-epoch training progress into a [`MetricsOut`]
/// (one `event = "epoch"` record per epoch), optionally echoing the
/// human-readable line to stderr.
pub struct EpochMetrics {
    out: Arc<MetricsOut>,
    echo: bool,
}

impl EpochMetrics {
    /// Wraps a shared metrics output.
    pub fn new(out: Arc<MetricsOut>, echo: bool) -> EpochMetrics {
        EpochMetrics { out, echo }
    }
}

impl ProgressSink for EpochMetrics {
    fn on_epoch(&self, p: &EpochProgress) {
        if self.echo {
            StderrProgress.on_epoch(p);
        }
        let mut r = Record::new();
        r.push("event", "epoch");
        r.push("epoch", p.epoch);
        r.push("epochs", p.epochs);
        r.push("loss", p.loss);
        r.push("val_accuracy", p.val_accuracy);
        r.push("seconds", p.seconds);
        self.out.emit(&r);
    }
}

/// Starts the `event = "run_manifest"` record every metrics stream opens
/// with: binary, thread count, cache mode, trace state, the mapping
/// target (`"asic"`, `"lut:6"`, …), and the pre-mapping optimization
/// pipeline (`"none"` when opt is off). Callers chain `.config(...)` /
/// `.input_hash(...)` for run-specific fields before emitting; schema in
/// DESIGN.md §11. `slap-report --check` refuses to compare streams whose
/// targets, kernels, or pipelines differ, so the fields are mandatory
/// here.
pub fn run_manifest(bin: &str, threads: usize, target: &str, passes: &str) -> RunManifest {
    RunManifest::new(bin)
        .threads(threads)
        .cache(None)
        .trace()
        .target(target)
        .passes(passes)
}

/// FNV-1a content hash of a circuit's canonical ASCII AIGER
/// serialization — bit-stable across thread counts, cache modes, and
/// hosts, because the serialization is a pure function of the AIG.
///
/// # Panics
///
/// Panics if the AIG cannot be serialized (structurally invalid).
pub fn aig_hash(aig: &Aig) -> u64 {
    let mut bytes = Vec::new();
    slap_aig::aiger::write_ascii(aig, &mut bytes).expect("serialize AIG for hashing");
    content_hash(&bytes)
}

/// One combined hash over an ordered set of circuits (the usual shape
/// for multi-benchmark runs: hash each, combine in catalog order).
pub fn circuits_hash<'a, I: IntoIterator<Item = &'a Aig>>(aigs: I) -> u64 {
    combine_hashes(aigs.into_iter().map(aig_hash))
}

/// FNV-1a content hash of the cell library's canonical genlib text.
pub fn library_hash(library: &Library) -> u64 {
    content_hash(slap_cell::genlib_write::write_genlib(library).as_bytes())
}

/// Builds the `event = "obs_snapshot"` record: the whole global registry
/// (counters, gauges, histograms, span timers) flattened into one line,
/// emitted at the end of a run so `slap-report` can render phase tables
/// and histogram quantiles without any other data source.
pub fn obs_snapshot_record() -> Record {
    let mut r = Record::new();
    r.push("event", "obs_snapshot");
    for (key, value) in slap_obs::Registry::global().snapshot().to_record().fields() {
        r.push(key, value.clone());
    }
    r
}

/// Builds the JSONL record for one circuit × mode mapping run: QoR,
/// cut-space footprint, pruning counters, NPN hit rate, cumulative
/// allocator traffic, and the per-phase wall-time breakdown.
pub fn map_record(circuit: &str, mode: &str, stats: &MapStats) -> Record {
    let alloc = slap_obs::alloc::record_gauges();
    let mut r = Record::new();
    r.push("circuit", circuit);
    r.push("mode", mode);
    r.push("area_um2", stats.area as f64);
    r.push("delay_ps", stats.delay as f64);
    r.push("dp_delay_ps", stats.dp_delay as f64);
    r.push("cuts_considered", stats.cuts_considered);
    r.push("cuts_enumerated", stats.cut_stats.cuts_enumerated);
    r.push("cuts_merged", stats.cut_stats.cuts_merged);
    r.push("dominance_kills", stats.cut_stats.dominance_kills);
    r.push("cap_truncations", stats.cut_stats.cap_truncations);
    r.push("cuts_dropped_by_cap", stats.cut_stats.cuts_dropped_by_cap);
    r.push("arena_cuts", stats.arena_stats.cuts);
    r.push("arena_bytes", stats.arena_stats.bytes);
    r.push("arena_spans", stats.arena_stats.spans);
    r.push("matches_tried", stats.matches_tried);
    r.push("npn_hit_rate", stats.match_stats.npn_hit_rate());
    r.push("fn_cache_hits", stats.match_stats.fn_cache_hits);
    r.push("fn_cache_misses", stats.match_stats.fn_cache_misses);
    r.push("binding_cache_hits", stats.match_stats.binding_cache_hits);
    r.push("interned_tts", stats.match_stats.interned_tts);
    r.push("num_instances", stats.num_instances);
    r.push("num_inverters", stats.num_inverters);
    r.push("alloc.count", alloc.count);
    r.push("alloc.bytes", alloc.bytes);
    r.push("enumerate_s", stats.phase.enumerate_s);
    r.push("match_s", stats.phase.match_s);
    r.push("cover_s", stats.phase.cover_s);
    r.push("area_flow_s", stats.phase.area_flow_s);
    r.push("exact_area_s", stats.phase.exact_area_s);
    r.push("sta_s", stats.phase.sta_s);
    r.push("total_s", stats.phase.total_s());
    r
}

/// The trace-timeline output of one binary run, wired to `--trace-json`
/// and `--trace-folded` (either may be `-` for stdout) plus the
/// `SLAP_TRACE` environment variable. Construct it *before* the run's
/// top-level span opens so collection is on from the first span; call
/// [`TraceOut::finish`] after the last span closed.
pub struct TraceOut {
    json_path: Option<String>,
    folded_path: Option<String>,
}

impl TraceOut {
    /// Reads `--trace-json` / `--trace-folded` and the environment, and
    /// enables span collection if any output is requested.
    pub fn from_args(args: &Args) -> TraceOut {
        let json_path = Some(args.get("trace-json", String::new())).filter(|p| !p.is_empty());
        let folded_path = Some(args.get("trace-folded", String::new())).filter(|p| !p.is_empty());
        trace::init_from_env();
        if json_path.is_some() || folded_path.is_some() {
            trace::set_enabled(true);
        }
        TraceOut {
            json_path,
            folded_path,
        }
    }

    /// Whether span events are being collected for this run.
    pub fn enabled(&self) -> bool {
        trace::enabled()
    }

    /// Drains the timeline and writes the requested exports.
    ///
    /// # Panics
    ///
    /// Panics if an output file cannot be created or written.
    pub fn finish(&self) {
        if self.json_path.is_none() && self.folded_path.is_none() {
            return;
        }
        let events = trace::drain();
        if let Some(path) = &self.json_path {
            let mut w = slap_obs::open_writer(path).expect("can create trace file");
            trace::write_chrome_json(&events, &mut w).expect("trace write");
            w.flush().expect("trace flush");
        }
        if let Some(path) = &self.folded_path {
            let mut w = slap_obs::open_writer(path).expect("can create folded-stacks file");
            trace::write_folded(&events, &mut w).expect("folded write");
            w.flush().expect("folded flush");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_cell::asap7_mini;
    use slap_cuts::CutConfig;
    use slap_map::{MapOptions, Mapper};

    fn tiny_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let ab = aig.and(a, b);
        let f = aig.and(ab, c);
        aig.add_po(f);
        aig
    }

    #[test]
    fn map_record_round_trips_through_jsonl() {
        let aig = tiny_aig();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        let rec = map_record("tiny", "abc-default", nl.stats());
        let line = rec.to_json_line();
        let fields = slap_obs::parse_object(line.trim()).expect("valid json");
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("circuit").and_then(|v| v.as_str()), Some("tiny"));
        assert_eq!(get("mode").and_then(|v| v.as_str()), Some("abc-default"));
        assert!(get("area_um2").and_then(|v| v.as_f64()).expect("area") > 0.0);
        assert!(
            get("cuts_enumerated")
                .and_then(|v| v.as_u64())
                .expect("cuts")
                > 0
        );
        assert!(
            get("matches_tried")
                .and_then(|v| v.as_u64())
                .expect("tried")
                > 0
        );
        assert!(get("npn_hit_rate").and_then(|v| v.as_f64()).expect("rate") > 0.0);
        // Session-cache counters travel with every mapping record (zero
        // here: one-shot maps are cold).
        for key in [
            "fn_cache_hits",
            "fn_cache_misses",
            "binding_cache_hits",
            "interned_tts",
        ] {
            assert_eq!(get(key).and_then(|v| v.as_u64()), Some(0), "{key}");
        }
        assert!(get("total_s").and_then(|v| v.as_f64()).expect("total") >= 0.0);
        // Arena footprint fields travel with every mapping record.
        assert!(get("arena_cuts").and_then(|v| v.as_u64()).expect("cuts") > 0);
        assert!(get("arena_bytes").and_then(|v| v.as_u64()).expect("bytes") > 0);
        assert_eq!(
            get("arena_spans").and_then(|v| v.as_u64()),
            Some(aig.num_nodes() as u64)
        );
        // Allocator traffic fields are present (zero when the counting
        // allocator is not installed, as in this test binary).
        assert!(get("alloc.count").and_then(|v| v.as_u64()).is_some());
        assert!(get("alloc.bytes").and_then(|v| v.as_u64()).is_some());
    }

    #[test]
    fn metrics_out_disabled_is_noop() {
        let out = MetricsOut::from_arg("");
        assert!(!out.enabled());
        out.emit(&map_record("x", "y", &MapStats::default()));
        out.finish();
    }

    #[test]
    fn metrics_out_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("slap-bench-metrics-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("out.jsonl");
        let path_str = path.to_str().expect("utf8 path");
        {
            let out = Arc::new(MetricsOut::from_arg(path_str));
            assert!(out.enabled());
            out.emit(&run_manifest("test-bin", 2, "asic", "none").into_record());
            out.emit(&map_record("c1", "m1", &MapStats::default()));
            let sink = EpochMetrics::new(out.clone(), false);
            sink.on_epoch(&EpochProgress {
                epoch: 1,
                epochs: 2,
                loss: 0.5,
                val_accuracy: 0.75,
                seconds: 0.01,
            });
            out.finish();
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            slap_obs::parse_object(line).expect("each line parses");
        }
        let manifest = slap_obs::parse_object(lines[0]).expect("manifest line");
        assert!(slap_obs::manifest::is_manifest(&manifest));
        assert!(manifest
            .iter()
            .any(|(k, v)| k == "target" && v.as_str() == Some("asic")));
        assert!(manifest
            .iter()
            .any(|(k, v)| k == "passes" && v.as_str() == Some("none")));
        let fields = slap_obs::parse_object(lines[2]).expect("epoch line");
        assert!(fields
            .iter()
            .any(|(k, v)| k == "event" && v.as_str() == Some("epoch")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn circuit_and_library_hashes_are_stable() {
        let h1 = aig_hash(&tiny_aig());
        let h2 = aig_hash(&tiny_aig());
        assert_eq!(h1, h2, "same structure, same hash");
        let mut other = tiny_aig();
        let extra = other.add_pi();
        other.add_po(extra);
        assert_ne!(aig_hash(&other), h1, "different structure, new hash");

        let lib = asap7_mini();
        assert_eq!(library_hash(&lib), library_hash(&asap7_mini()));

        let combined = circuits_hash([&tiny_aig(), &other]);
        assert_ne!(combined, h1);
        assert_eq!(combined, circuits_hash([&tiny_aig(), &other]));
    }

    #[test]
    fn obs_snapshot_record_carries_registry_metrics() {
        slap_obs::counter("metrics_test.snapshot_counter").add(5);
        let rec = obs_snapshot_record();
        let fields = slap_obs::parse_object(rec.to_json_line().trim()).expect("valid json");
        assert!(fields
            .iter()
            .any(|(k, v)| k == "event" && v.as_str() == Some("obs_snapshot")));
        assert!(fields
            .iter()
            .any(|(k, v)| k == "metrics_test.snapshot_counter" && v.as_u64() == Some(5)));
    }
}
