//! JSONL metrics emission for the experiment binaries.
//!
//! Every binary accepts `--metrics-json <path>`; when set, one
//! [`Record`] per circuit × mode (and per training epoch) is appended to
//! the file via [`slap_obs::JsonlSink`]. The schema is flat (no nested
//! objects) so [`slap_obs::parse_object`] can read each line back.

use std::sync::{Arc, Mutex};

use slap_map::MapStats;
use slap_ml::{EpochProgress, ProgressSink, StderrProgress};
use slap_obs::{JsonlSink, Record, Sink};

/// A writer for per-run metrics records: either a JSONL file sink (when
/// the user passed `--metrics-json`) or a no-op. Thread-safe so it can be
/// shared with a training [`ProgressSink`].
pub struct MetricsOut {
    sink: Option<Mutex<JsonlSink<std::io::BufWriter<std::fs::File>>>>,
}

impl MetricsOut {
    /// Creates the output from the optional `--metrics-json` path
    /// (empty string = disabled).
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be created.
    pub fn from_arg(path: &str) -> MetricsOut {
        let sink = if path.is_empty() {
            None
        } else {
            Some(Mutex::new(
                JsonlSink::create(std::path::Path::new(path)).expect("can create metrics file"),
            ))
        };
        MetricsOut { sink }
    }

    /// Whether records are actually being written.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Appends one record (no-op when disabled).
    ///
    /// # Panics
    ///
    /// Panics on write errors.
    pub fn emit(&self, record: &Record) {
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("metrics sink mutex poisoned by a panicking writer")
                .emit(record)
                .expect("metrics write");
        }
    }

    /// Flushes the underlying file (no-op when disabled).
    ///
    /// # Panics
    ///
    /// Panics on flush errors.
    pub fn finish(&self) {
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("metrics sink mutex poisoned by a panicking writer")
                .flush()
                .expect("metrics flush");
        }
    }
}

/// Adapter routing per-epoch training progress into a [`MetricsOut`]
/// (one `event = "epoch"` record per epoch), optionally echoing the
/// human-readable line to stderr.
pub struct EpochMetrics {
    out: Arc<MetricsOut>,
    echo: bool,
}

impl EpochMetrics {
    /// Wraps a shared metrics output.
    pub fn new(out: Arc<MetricsOut>, echo: bool) -> EpochMetrics {
        EpochMetrics { out, echo }
    }
}

impl ProgressSink for EpochMetrics {
    fn on_epoch(&self, p: &EpochProgress) {
        if self.echo {
            StderrProgress.on_epoch(p);
        }
        let mut r = Record::new();
        r.push("event", "epoch");
        r.push("epoch", p.epoch);
        r.push("epochs", p.epochs);
        r.push("loss", p.loss);
        r.push("val_accuracy", p.val_accuracy);
        r.push("seconds", p.seconds);
        self.out.emit(&r);
    }
}

/// Builds the `event = "config"` record every binary emits first: which
/// binary ran, with how many worker threads, and whether session
/// memoization is active (the `SLAP_CACHE` toggle).
pub fn config_record(bin: &str, threads: usize) -> Record {
    let mut r = Record::new();
    r.push("event", "config");
    r.push("bin", bin);
    r.push("threads", threads);
    r.push(
        "cache",
        std::env::var("SLAP_CACHE").map_or(true, |v| v != "0"),
    );
    r
}

/// Builds the JSONL record for one circuit × mode mapping run: QoR,
/// cut-space footprint, pruning counters, NPN hit rate, and the
/// per-phase wall-time breakdown.
pub fn map_record(circuit: &str, mode: &str, stats: &MapStats) -> Record {
    let mut r = Record::new();
    r.push("circuit", circuit);
    r.push("mode", mode);
    r.push("area_um2", stats.area as f64);
    r.push("delay_ps", stats.delay as f64);
    r.push("dp_delay_ps", stats.dp_delay as f64);
    r.push("cuts_considered", stats.cuts_considered);
    r.push("cuts_enumerated", stats.cut_stats.cuts_enumerated);
    r.push("cuts_merged", stats.cut_stats.cuts_merged);
    r.push("dominance_kills", stats.cut_stats.dominance_kills);
    r.push("cap_truncations", stats.cut_stats.cap_truncations);
    r.push("cuts_dropped_by_cap", stats.cut_stats.cuts_dropped_by_cap);
    r.push("arena_cuts", stats.arena_stats.cuts);
    r.push("arena_bytes", stats.arena_stats.bytes);
    r.push("arena_spans", stats.arena_stats.spans);
    r.push("matches_tried", stats.matches_tried);
    r.push("npn_hit_rate", stats.match_stats.npn_hit_rate());
    r.push("fn_cache_hits", stats.match_stats.fn_cache_hits);
    r.push("fn_cache_misses", stats.match_stats.fn_cache_misses);
    r.push("binding_cache_hits", stats.match_stats.binding_cache_hits);
    r.push("interned_tts", stats.match_stats.interned_tts);
    r.push("num_instances", stats.num_instances);
    r.push("num_inverters", stats.num_inverters);
    r.push("enumerate_s", stats.phase.enumerate_s);
    r.push("match_s", stats.phase.match_s);
    r.push("cover_s", stats.phase.cover_s);
    r.push("area_flow_s", stats.phase.area_flow_s);
    r.push("exact_area_s", stats.phase.exact_area_s);
    r.push("sta_s", stats.phase.sta_s);
    r.push("total_s", stats.phase.total_s());
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_cell::asap7_mini;
    use slap_cuts::CutConfig;
    use slap_map::{MapOptions, Mapper};

    #[test]
    fn map_record_round_trips_through_jsonl() {
        let mut aig = slap_aig::Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let ab = aig.and(a, b);
        let f = aig.and(ab, c);
        aig.add_po(f);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        let rec = map_record("tiny", "abc-default", nl.stats());
        let line = rec.to_json_line();
        let fields = slap_obs::parse_object(line.trim()).expect("valid json");
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("circuit").and_then(|v| v.as_str()), Some("tiny"));
        assert_eq!(get("mode").and_then(|v| v.as_str()), Some("abc-default"));
        assert!(get("area_um2").and_then(|v| v.as_f64()).expect("area") > 0.0);
        assert!(
            get("cuts_enumerated")
                .and_then(|v| v.as_u64())
                .expect("cuts")
                > 0
        );
        assert!(
            get("matches_tried")
                .and_then(|v| v.as_u64())
                .expect("tried")
                > 0
        );
        assert!(get("npn_hit_rate").and_then(|v| v.as_f64()).expect("rate") > 0.0);
        // Session-cache counters travel with every mapping record (zero
        // here: one-shot maps are cold).
        for key in [
            "fn_cache_hits",
            "fn_cache_misses",
            "binding_cache_hits",
            "interned_tts",
        ] {
            assert_eq!(get(key).and_then(|v| v.as_u64()), Some(0), "{key}");
        }
        assert!(get("total_s").and_then(|v| v.as_f64()).expect("total") >= 0.0);
        // Arena footprint fields travel with every mapping record.
        assert!(get("arena_cuts").and_then(|v| v.as_u64()).expect("cuts") > 0);
        assert!(get("arena_bytes").and_then(|v| v.as_u64()).expect("bytes") > 0);
        assert_eq!(
            get("arena_spans").and_then(|v| v.as_u64()),
            Some(aig.num_nodes() as u64)
        );
    }

    #[test]
    fn metrics_out_disabled_is_noop() {
        let out = MetricsOut::from_arg("");
        assert!(!out.enabled());
        out.emit(&map_record("x", "y", &MapStats::default()));
        out.finish();
    }

    #[test]
    fn metrics_out_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("slap-bench-metrics-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("out.jsonl");
        let path_str = path.to_str().expect("utf8 path");
        {
            let out = Arc::new(MetricsOut::from_arg(path_str));
            assert!(out.enabled());
            out.emit(&map_record("c1", "m1", &MapStats::default()));
            let sink = EpochMetrics::new(out.clone(), false);
            sink.on_epoch(&EpochProgress {
                epoch: 1,
                epochs: 2,
                loss: 0.5,
                val_accuracy: 0.75,
                seconds: 0.01,
            });
            out.finish();
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            slap_obs::parse_object(line).expect("each line parses");
        }
        let fields = slap_obs::parse_object(lines[1]).expect("epoch line");
        assert!(fields
            .iter()
            .any(|(k, v)| k == "event" && v.as_str() == Some("epoch")));
        std::fs::remove_file(&path).ok();
    }
}
