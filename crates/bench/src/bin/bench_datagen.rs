//! Session-memoization benchmark: times AES-core datagen with a cold
//! (per-round, cache-disabled) session against a persistent warm
//! [`slap_map::MapSession`] and writes the speedup to
//! `BENCH_datagen.json` in the workspace root.
//!
//! Cold and warm timings are interleaved within each round (cold, then
//! warm, per round) so slow drift of the host — thermal state,
//! co-tenants — spreads evenly across both sides instead of biasing one.
//! The warm session is pre-filled by one untimed pass, so every timed
//! warm round measures the steady state of epoch resampling: the cache
//! already holds the cut functions and gate bindings of the circuit.
//! Each round asserts the warm dataset is bit-identical to the cold one.
//!
//! Usage:
//!   cargo run --release -p slap-bench --bin bench_datagen -- \
//!       [--rounds 3] [--maps 48] [--target asic|lut:k]
//!       [--kernel f32|int8] [--passes strash,fold,sweep,balance]
//!       [--threads N] [--out BENCH_datagen.json]
//!       [--metrics-json out.jsonl] [--trace-json trace.json]
//!
//! `--kernel` is accepted for flag symmetry with the inference binaries
//! and recorded in the manifest, but datagen's random-shuffle mapping
//! never invokes the CNN — the timings are tier-independent. Recording
//! the tier keeps `slap-report --check` strict anyway: a datagen stream
//! tagged int8 only gates against an int8 baseline.

use std::fmt::Write as _;
use std::time::Instant;

use slap_bench::metrics::{
    aig_hash, library_hash, obs_snapshot_record, run_manifest, MetricsOut, TraceOut,
};
use slap_bench::{
    init_threads, kernel_tier_from_args, optimize_circuits, pass_pipeline_from_args,
    run_for_target, Args, TargetRunner, TargetSpec,
};
use slap_cell::Library;
use slap_circuits::aes::aes_mini;
use slap_core::{generate_dataset_session, SampleConfig, CUT_EMBED_COLS, CUT_EMBED_ROWS};
use slap_map::{MapOptions, Mapper, Target};
use slap_ml::Dataset;

#[global_allocator]
static ALLOC: slap_obs::alloc::CountingAllocator = slap_obs::alloc::CountingAllocator;

fn main() {
    let args = Args::from_env();
    let target = TargetSpec::from_args(&args);
    run_for_target(target, MapOptions::default(), Main { args });
}

/// `main`'s [`TargetRunner`] continuation (a struct because the
/// continuation is generic over the target type).
struct Main {
    args: Args,
}

impl TargetRunner for Main {
    fn run<T: Target>(self, mapper: &Mapper<'_, T>, target: TargetSpec, library: Option<&Library>) {
        run(&self.args, mapper, target, library);
    }
}

fn run<T: Target>(
    args: &Args,
    mapper: &Mapper<'_, T>,
    target: TargetSpec,
    library: Option<&Library>,
) {
    let rounds = args.get("rounds", 3usize);
    let maps = args.get("maps", 48usize);
    let out_path = args.get("out", "BENCH_datagen.json".to_string());
    let threads = init_threads(args);
    let metrics = MetricsOut::from_arg(&args.get("metrics-json", String::new()));
    let trace = TraceOut::from_args(args);
    let run_span = slap_obs::span("bench_datagen");
    assert!(maps >= 32, "acceptance criterion measures maps >= 32");

    let mut pipeline = pass_pipeline_from_args(args);
    let mut opt = [aes_mini()];
    for line in optimize_circuits(&mut pipeline, &mut opt) {
        eprintln!("{line}");
    }
    let [aig] = opt;
    let mut manifest = run_manifest("bench_datagen", threads, &target.name(), &pipeline.spec())
        .kernel(kernel_tier_from_args(args).name())
        .config("rounds", rounds)
        .config("maps", maps)
        .input_hash("circuit", aig_hash(&aig));
    if let Some(lib) = library {
        manifest = manifest.input_hash("library", library_hash(lib));
    }
    metrics.emit(&manifest.into_record());
    let cfg = SampleConfig {
        maps,
        cut_config: target.cut_config(),
        ..SampleConfig::default()
    };

    // Warm up lazy global state and pre-fill the persistent warm session.
    let warm_fill_span = slap_obs::span("warm_fill");
    let mut warm_session = mapper.session_cached(&aig, true);
    let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, cfg.classes);
    generate_dataset_session(&mut warm_session, &cfg, &mut ds).expect("maps");
    drop(warm_fill_span);
    let reference_hash = ds.content_hash();
    eprintln!(
        "warm-fill done: {} memoized runs, {} cached functions, {} interned truth tables",
        warm_session.num_cached_runs(),
        warm_session.num_cached_functions(),
        warm_session.num_interned_tts()
    );

    let mut cold_times = Vec::with_capacity(rounds);
    let mut warm_times = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Cold: a fresh cache-disabled session each round, as if the
        // caller used `SLAP_CACHE=0`.
        let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, cfg.classes);
        let cold_span = slap_obs::span("cold_round");
        let t0 = Instant::now();
        let mut cold_session = mapper.session_cached(&aig, false);
        generate_dataset_session(&mut cold_session, &cfg, &mut ds).expect("maps");
        let cold_s = t0.elapsed().as_secs_f64();
        drop(cold_span);
        assert_eq!(
            ds.content_hash(),
            reference_hash,
            "cold dataset diverged from the warm-fill pass"
        );

        // Warm: the persistent pre-filled session.
        let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, cfg.classes);
        let warm_span = slap_obs::span("warm_round");
        let t0 = Instant::now();
        generate_dataset_session(&mut warm_session, &cfg, &mut ds).expect("maps");
        let warm_s = t0.elapsed().as_secs_f64();
        drop(warm_span);
        assert_eq!(
            ds.content_hash(),
            reference_hash,
            "warm dataset diverged from the cold path"
        );

        eprintln!(
            "  round {}/{rounds}: cold {cold_s:.3}s, warm {warm_s:.3}s ({:.2}x)",
            round + 1,
            cold_s / warm_s
        );
        let mut rec = slap_obs::Record::new();
        rec.push("event", "round");
        rec.push("round", round);
        rec.push("cold_s", cold_s);
        rec.push("warm_s", warm_s);
        metrics.emit(&rec);
        cold_times.push(cold_s);
        warm_times.push(warm_s);
    }

    let best = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let cold_best = best(&cold_times);
    let warm_best = best(&warm_times);
    let speedup = cold_best / warm_best;
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let fmt_times = |v: &[f64]| {
        let secs: Vec<String> = v.iter().map(|s| format!("{s:.6}")).collect();
        secs.join(", ")
    };
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"maps\": {maps},");
    json.push_str(
        "  \"note\": \"aes_mini datagen, cold vs warm interleaved per round, best-of-round \
         wall times. Cold = fresh cache-disabled session per round (the SLAP_CACHE=0 path); \
         warm = one persistent session pre-filled by an untimed pass, i.e. the steady state \
         of repeated datagen on one circuit, where the session replays memoized map runs \
         (and cached cut functions for novel work) instead of re-mapping. Both sides \
         verified bit-identical per round.\",\n",
    );
    let _ = writeln!(json, "  \"cold_seconds\": [{}],", fmt_times(&cold_times));
    let _ = writeln!(json, "  \"warm_seconds\": [{}],", fmt_times(&warm_times));
    let _ = writeln!(json, "  \"cold_best_s\": {cold_best:.6},");
    let _ = writeln!(json, "  \"warm_best_s\": {warm_best:.6},");
    let _ = writeln!(json, "  \"warm_speedup\": {speedup:.3}");
    json.push_str("}\n");

    let path = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| std::path::PathBuf::from(d).join("../..").join(&out_path))
        .unwrap_or_else(|_| std::path::PathBuf::from(&out_path));
    std::fs::write(&path, &json).expect("write results");
    println!("{json}");
    println!("wrote {}", path.display());

    let alloc = slap_obs::alloc::record_gauges();
    let mut rec = slap_obs::Record::new();
    rec.push("event", "summary");
    rec.push("cold_best_s", cold_best);
    rec.push("warm_best_s", warm_best);
    rec.push("warm_speedup", speedup);
    rec.push("alloc.count", alloc.count);
    rec.push("alloc.bytes", alloc.bytes);
    metrics.emit(&rec);
    drop(run_span);
    metrics.emit(&obs_snapshot_record());
    metrics.finish();
    trace.finish();
}
