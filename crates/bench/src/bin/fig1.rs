//! Regenerates Fig. 1: the 2-D QoR distribution of random-shuffle
//! mappings of an AES core, with the default-heuristic star.
//!
//! Usage:
//!   cargo run --release -p slap-bench --bin fig1 -- \
//!       [--maps 300] [--keep 8] [--seed 1] [--full] [--target asic|lut:k]
//!       [--kernel f32|int8] [--passes strash,fold,sweep,balance]
//!       [--threads N] [--metrics-json out.jsonl]
//!       [--trace-json trace.json]
//!
//! `--kernel` is accepted for flag symmetry with the inference binaries
//! and recorded in the manifest; the shuffle scatter never invokes the
//! CNN, so the tag only keeps `slap-report --check` tier-strict.

use std::io::Write as _;

use slap_aig::Aig;
use slap_bench::metrics::{
    aig_hash, library_hash, map_record, obs_snapshot_record, run_manifest, MetricsOut, TraceOut,
};
use slap_bench::{
    experiments_dir, init_threads, kernel_tier_from_args, optimize_circuits,
    pass_pipeline_from_args, run_for_target, Args, TargetRunner, TargetSpec,
};
use slap_cell::Library;
use slap_circuits::aes::{aes_core, aes_mini};
use slap_map::{MapOptions, Mapper, Target};

#[global_allocator]
static ALLOC: slap_obs::alloc::CountingAllocator = slap_obs::alloc::CountingAllocator;

fn main() {
    let args = Args::from_env();
    let target = TargetSpec::from_args(&args);
    let aig = if args.has("full") {
        aes_core(1)
    } else {
        aes_mini()
    };
    run_for_target(target, MapOptions::default(), Main { args, aig });
}

/// `main`'s [`TargetRunner`] continuation (a struct because the
/// continuation is generic over the target type).
struct Main {
    args: Args,
    aig: Aig,
}

impl TargetRunner for Main {
    fn run<T: Target>(self, mapper: &Mapper<'_, T>, target: TargetSpec, library: Option<&Library>) {
        run(&self.args, &self.aig, mapper, target, library);
    }
}

fn run<T: Target>(
    args: &Args,
    aig: &Aig,
    mapper: &Mapper<'_, T>,
    target: TargetSpec,
    library: Option<&Library>,
) {
    let maps = args.get("maps", 300usize);
    let keep = args.get("keep", 8usize);
    let seed = args.get("seed", 1u64);
    let mut pipeline = pass_pipeline_from_args(args);
    let threads = init_threads(args);
    let metrics = MetricsOut::from_arg(&args.get("metrics-json", String::new()));
    let trace = TraceOut::from_args(args);
    let run_span = slap_obs::span("fig1");
    let mut opt = [aig.clone()];
    for line in optimize_circuits(&mut pipeline, &mut opt) {
        eprintln!("{line}");
    }
    let [aig] = &opt;
    println!("circuit: {} ({} AND nodes)", aig.name(), aig.num_ands());

    let mut manifest = run_manifest("fig1", threads, &target.name(), &pipeline.spec())
        .kernel(kernel_tier_from_args(args).name())
        .config("maps", maps)
        .config("keep", keep)
        .config("seed", seed)
        .input_hash("circuit", aig_hash(aig));
    if let Some(lib) = library {
        manifest = manifest.input_hash("library", library_hash(lib));
    }
    metrics.emit(&manifest.into_record());
    let cut_config = target.cut_config();
    let reference = mapper.map_default(aig, &cut_config).expect("default maps");
    metrics.emit(&map_record(aig.name(), "abc-default", reference.stats()));
    let (ref_area, ref_delay) = (reference.area() as f64, reference.delay() as f64);
    println!("ABC default: area {ref_area:.2} µm², delay {ref_delay:.2} ps (the black star)");

    let path = experiments_dir().join("fig1.csv");
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "seed,area_um2,delay_ps,area_delta_pct,delay_delta_pct").expect("write");
    // Each shuffle seed maps independently; fan the maps out, then write
    // the CSV rows and metrics records back in seed order so the outputs
    // are identical for every thread count.
    let indices: Vec<usize> = (0..maps).collect();
    let shuffle_span = slap_obs::span("shuffle_maps");
    let runs = slap_par::par_map(&indices, |_, &i| {
        let s = seed + i as u64;
        let nl = mapper
            .map_shuffled(aig, &cut_config, s, keep)
            .expect("maps");
        let rec = metrics.enabled().then(|| {
            let mut rec = map_record(aig.name(), "random-shuffle", nl.stats());
            rec.push("seed", s);
            rec
        });
        (s, nl.area() as f64, nl.delay() as f64, rec)
    });
    drop(shuffle_span);
    let mut delays = Vec::with_capacity(maps);
    let mut areas = Vec::with_capacity(maps);
    for (i, (s, a, d, rec)) in runs.into_iter().enumerate() {
        if let Some(rec) = rec {
            metrics.emit(&rec);
        }
        writeln!(
            f,
            "{s},{a:.2},{d:.2},{:.2},{:.2}",
            (a / ref_area - 1.0) * 100.0,
            (d / ref_delay - 1.0) * 100.0
        )
        .expect("write");
        delays.push(d);
        areas.push(a);
        if (i + 1) % 50 == 0 {
            eprintln!("  {}/{} maps", i + 1, maps);
        }
    }
    let min_d = delays.iter().copied().fold(f64::INFINITY, f64::min);
    let max_d = delays.iter().copied().fold(0.0f64, f64::max);
    let min_a = areas.iter().copied().fold(f64::INFINITY, f64::min);
    let max_a = areas.iter().copied().fold(0.0f64, f64::max);
    println!("\n{maps} random-shuffle maps (keep = {keep}):");
    println!(
        "  delay spread: {:.2} .. {:.2} ps ({:+.1}% .. {:+.1}% vs default)",
        min_d,
        max_d,
        (min_d / ref_delay - 1.0) * 100.0,
        (max_d / ref_delay - 1.0) * 100.0
    );
    println!(
        "  area  spread: {:.2} .. {:.2} µm² ({:+.1}% .. {:+.1}% vs default)",
        min_a,
        max_a,
        (min_a / ref_area - 1.0) * 100.0,
        (max_a / ref_area - 1.0) * 100.0
    );
    let below = delays.iter().filter(|&&d| d < ref_delay).count();
    println!(
        "  maps beating the default heuristic on delay: {below}/{maps} ({:.1}%)",
        below as f64 / maps as f64 * 100.0
    );
    println!("wrote {}", path.display());
    drop(run_span);
    metrics.emit(&obs_snapshot_record());
    metrics.finish();
    trace.finish();
}
