//! Thread-scaling benchmark: times AES enumerate+map and adder datagen at
//! 1/2/4/8 worker threads and writes the speedup curve to
//! `BENCH_parallel.json` in the workspace root.
//!
//! Thread counts are interleaved (1,2,4,8 per round rather than all
//! rounds of one count back-to-back) so slow drift of the host — thermal
//! state, co-tenants — spreads evenly across the curve instead of biasing
//! one count.
//!
//! Usage:
//!   cargo run --release -p slap-bench --bin bench_parallel -- \
//!       [--rounds 3] [--maps 24] [--out BENCH_parallel.json]

use std::fmt::Write as _;
use std::time::Instant;

use slap_bench::Args;
use slap_cell::asap7_mini;
use slap_circuits::aes::aes_mini;
use slap_circuits::arith::ripple_carry_adder;
use slap_core::{generate_dataset, SampleConfig, CUT_EMBED_COLS, CUT_EMBED_ROWS};
use slap_cuts::{enumerate_cuts, CutConfig, DefaultPolicy};
use slap_map::{MapOptions, Mapper};
use slap_ml::Dataset;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args = Args::from_env();
    let rounds = args.get("rounds", 3usize);
    let maps = args.get("maps", 24usize);
    let out_path = args.get("out", "BENCH_parallel.json".to_string());

    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let cut_config = CutConfig::default();
    let aes = aes_mini();
    let adder = ripple_carry_adder(16);
    let sample_cfg = SampleConfig {
        maps,
        ..SampleConfig::default()
    };

    let enumerate_map = || {
        let cuts = enumerate_cuts(&aes, &cut_config, &mut DefaultPolicy::default());
        let nl = mapper.map_with_cuts(&aes, &cuts).expect("maps");
        assert!(nl.area() > 0.0);
    };
    let datagen = || {
        let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        generate_dataset(&adder, &mapper, &sample_cfg, &mut ds).expect("maps");
        assert!(!ds.is_empty());
    };

    // best[workload][thread index] = fastest observed round, seconds.
    let mut best = [[f64::INFINITY; THREAD_COUNTS.len()]; 2];
    // Warm up once per workload (lazy globals, allocator pools).
    slap_par::set_threads(1);
    enumerate_map();
    datagen();
    for round in 0..rounds {
        for (ti, &t) in THREAD_COUNTS.iter().enumerate() {
            slap_par::set_threads(t);
            let t0 = Instant::now();
            enumerate_map();
            best[0][ti] = best[0][ti].min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            datagen();
            best[1][ti] = best[1][ti].min(t0.elapsed().as_secs_f64());
            eprintln!(
                "  round {}/{rounds}: {t} threads done ({:.0} ands aes, {maps} maps datagen)",
                round + 1,
                aes.num_ands() as f64,
            );
        }
    }

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let workloads = [("aes_enumerate_map", &best[0]), ("datagen_rc16", &best[1])];
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    json.push_str(
        "  \"note\": \"best-of-round wall times, thread counts interleaved per round; \
         speedup is vs the 1-thread run. On a single-core host (host_cpus = 1) extra \
         workers only add coordination overhead, so speedup <= 1 is expected there.\",\n",
    );
    json.push_str("  \"workloads\": {\n");
    for (wi, (name, times)) in workloads.iter().enumerate() {
        let base = times[0];
        let _ = writeln!(json, "    \"{name}\": {{");
        json.push_str("      \"threads\": [1, 2, 4, 8],\n");
        let secs: Vec<String> = times.iter().map(|s| format!("{s:.6}")).collect();
        let _ = writeln!(json, "      \"seconds\": [{}],", secs.join(", "));
        let speedups: Vec<String> = times.iter().map(|s| format!("{:.3}", base / s)).collect();
        let _ = writeln!(json, "      \"speedup\": [{}]", speedups.join(", "));
        let comma = if wi + 1 < workloads.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  }\n}\n");

    let path = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| std::path::PathBuf::from(d).join("../..").join(&out_path))
        .unwrap_or_else(|_| std::path::PathBuf::from(&out_path));
    std::fs::write(&path, &json).expect("write results");
    println!("{json}");
    println!("wrote {}", path.display());
}
