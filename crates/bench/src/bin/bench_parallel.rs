//! Thread-scaling benchmark: times AES enumerate+map and adder datagen at
//! 1/2/4/8 worker threads and writes the speedup curve to
//! `BENCH_parallel.json` in the workspace root.
//!
//! Thread counts are interleaved (1,2,4,8 per round rather than all
//! rounds of one count back-to-back) so slow drift of the host — thermal
//! state, co-tenants — spreads evenly across the curve instead of biasing
//! one count.
//!
//! Usage:
//!   cargo run --release -p slap-bench --bin bench_parallel -- \
//!       [--rounds 3] [--maps 24] [--target asic|lut:k]
//!       [--out BENCH_parallel.json] [--metrics-json out.jsonl]
//!       [--trace-json trace.json]

use std::fmt::Write as _;
use std::time::Instant;

use slap_bench::metrics::{
    aig_hash, library_hash, obs_snapshot_record, run_manifest, MetricsOut, TraceOut,
};
use slap_bench::{
    optimize_circuits, pass_pipeline_from_args, run_for_target, Args, TargetRunner, TargetSpec,
};
use slap_cell::Library;
use slap_circuits::aes::aes_mini;
use slap_circuits::arith::ripple_carry_adder;
use slap_core::{generate_dataset, SampleConfig, CUT_EMBED_COLS, CUT_EMBED_ROWS};
use slap_cuts::{enumerate_cuts, DefaultPolicy};
use slap_map::{MapOptions, Mapper, Target};
use slap_ml::Dataset;
use slap_obs::manifest::combine_hashes;

#[global_allocator]
static ALLOC: slap_obs::alloc::CountingAllocator = slap_obs::alloc::CountingAllocator;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args = Args::from_env();
    let target = TargetSpec::from_args(&args);
    run_for_target(target, MapOptions::default(), Main { args });
}

/// `main`'s [`TargetRunner`] continuation (a struct because the
/// continuation is generic over the target type).
struct Main {
    args: Args,
}

impl TargetRunner for Main {
    fn run<T: Target>(self, mapper: &Mapper<'_, T>, target: TargetSpec, library: Option<&Library>) {
        run(&self.args, mapper, target, library);
    }
}

fn run<T: Target>(
    args: &Args,
    mapper: &Mapper<'_, T>,
    target: TargetSpec,
    library: Option<&Library>,
) {
    let rounds = args.get("rounds", 3usize);
    let maps = args.get("maps", 24usize);
    let out_path = args.get("out", "BENCH_parallel.json".to_string());
    let metrics = MetricsOut::from_arg(&args.get("metrics-json", String::new()));
    let trace = TraceOut::from_args(args);
    let run_span = slap_obs::span("bench_parallel");

    let cut_config = target.cut_config();
    let mut pipeline = pass_pipeline_from_args(args);
    let mut opt = [aes_mini(), ripple_carry_adder(16)];
    for line in optimize_circuits(&mut pipeline, &mut opt) {
        eprintln!("{line}");
    }
    let [aes, adder] = opt;
    let mut manifest = run_manifest("bench_parallel", 0, &target.name(), &pipeline.spec())
        .config("rounds", rounds)
        .config("maps", maps)
        .input_hash(
            "circuits",
            combine_hashes([aig_hash(&aes), aig_hash(&adder)]),
        );
    if let Some(lib) = library {
        manifest = manifest.input_hash("library", library_hash(lib));
    }
    metrics.emit(&manifest.into_record());
    let sample_cfg = SampleConfig {
        maps,
        cut_config: cut_config.clone(),
        ..SampleConfig::default()
    };

    let enumerate_map = || {
        let cuts = enumerate_cuts(&aes, &cut_config, &mut DefaultPolicy::default());
        let nl = mapper.map_with_cuts(&aes, &cuts).expect("maps");
        assert!(nl.area() > 0.0);
    };
    let datagen = || {
        let mut ds = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        generate_dataset(&adder, mapper, &sample_cfg, &mut ds).expect("maps");
        assert!(!ds.is_empty());
    };

    // best[workload][thread index] = fastest observed round, seconds.
    let mut best = [[f64::INFINITY; THREAD_COUNTS.len()]; 2];
    // Warm up once per workload (lazy globals, allocator pools).
    slap_par::set_threads(1);
    enumerate_map();
    datagen();
    for round in 0..rounds {
        for (ti, &t) in THREAD_COUNTS.iter().enumerate() {
            slap_par::set_threads(t);
            let _round_span = slap_obs::span("sweep_round");
            let t0 = Instant::now();
            {
                let _s = slap_obs::span("enumerate_map");
                enumerate_map();
            }
            best[0][ti] = best[0][ti].min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            {
                let _s = slap_obs::span("datagen");
                datagen();
            }
            best[1][ti] = best[1][ti].min(t0.elapsed().as_secs_f64());
            eprintln!(
                "  round {}/{rounds}: {t} threads done ({:.0} ands aes, {maps} maps datagen)",
                round + 1,
                aes.num_ands() as f64,
            );
        }
    }

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let workloads = [("aes_enumerate_map", &best[0]), ("datagen_rc16", &best[1])];
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"target\": \"{}\",", target.name());
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    json.push_str(
        "  \"note\": \"best-of-round wall times, thread counts interleaved per round; \
         speedup is vs the 1-thread run. On a single-core host (host_cpus = 1) extra \
         workers only add coordination overhead, so speedup <= 1 is expected there.\",\n",
    );
    json.push_str("  \"workloads\": {\n");
    for (wi, (name, times)) in workloads.iter().enumerate() {
        let base = times[0];
        let _ = writeln!(json, "    \"{name}\": {{");
        json.push_str("      \"threads\": [1, 2, 4, 8],\n");
        let secs: Vec<String> = times.iter().map(|s| format!("{s:.6}")).collect();
        let _ = writeln!(json, "      \"seconds\": [{}],", secs.join(", "));
        let speedups: Vec<String> = times.iter().map(|s| format!("{:.3}", base / s)).collect();
        let _ = writeln!(json, "      \"speedup\": [{}]", speedups.join(", "));
        let comma = if wi + 1 < workloads.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  }\n}\n");

    let path = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| std::path::PathBuf::from(d).join("../..").join(&out_path))
        .unwrap_or_else(|_| std::path::PathBuf::from(&out_path));
    std::fs::write(&path, &json).expect("write results");
    println!("{json}");
    println!("wrote {}", path.display());

    let alloc = slap_obs::alloc::record_gauges();
    for (name, times) in &workloads {
        for (ti, &t) in THREAD_COUNTS.iter().enumerate() {
            let mut rec = slap_obs::Record::new();
            rec.push("event", "scaling");
            rec.push("workload", *name);
            rec.push("threads", t);
            rec.push("best_s", times[ti]);
            rec.push("speedup", times[0] / times[ti]);
            metrics.emit(&rec);
        }
    }
    let mut rec = slap_obs::Record::new();
    rec.push("event", "summary");
    rec.push("alloc.count", alloc.count);
    rec.push("alloc.bytes", alloc.bytes);
    metrics.emit(&rec);
    drop(run_span);
    metrics.emit(&obs_snapshot_record());
    metrics.finish();
    trace.finish();
}
