//! Pre-mapping optimization benchmark: times the end-to-end
//! opt + enumerate + map path against the raw enumerate + map path at
//! 1 worker thread and writes node/level reductions, wall-time ratios,
//! and per-pass time shares to `BENCH_opt.json` in the workspace root.
//!
//! Opt-on and opt-off are interleaved within each round (off, then on,
//! per round) so slow drift of the host — thermal state, co-tenants —
//! spreads evenly across both sides instead of biasing one. The opt-on
//! timing window covers the *whole* pipeline (clone + optimize +
//! enumerate + map): the ratio answers "is it worth optimizing first?",
//! not "is the optimized graph faster to map?". Every round asserts
//! 64-bit parallel-sim equivalence of the optimized graph against the
//! raw one, and that the optimized mapping still implements the raw
//! graph.
//!
//! The per-circuit `opt-off` / `opt-on` mapping records are gated by
//! `slap-report --check` (QoR at 1 thread with the default policy is
//! deterministic), so a committed metrics stream from this binary
//! doubles as a regression baseline for the optimizer itself.
//!
//! Usage:
//!   cargo run --release -p slap-bench --bin bench_opt -- \
//!       [--rounds 3] [--smoke] [--scale quick|full]
//!       [--target asic|lut:k] [--passes strash,fold,sweep,balance]
//!       [--out BENCH_opt.json] [--metrics-json out.jsonl]
//!       [--trace-json trace.json]

use std::fmt::Write as _;
use std::time::Instant;

use slap_aig::sim::random_equiv_check;
use slap_aig::Aig;
use slap_bench::metrics::{
    circuits_hash, library_hash, map_record, obs_snapshot_record, run_manifest, MetricsOut,
    TraceOut,
};
use slap_bench::{run_for_target, Args, TargetRunner, TargetSpec};
use slap_cell::Library;
use slap_circuits::catalog::Scale;
use slap_circuits::table2_benchmarks;
use slap_cuts::{enumerate_cuts, DefaultPolicy};
use slap_map::{MapOptions, MappedNetlist, Mapper, Target};
use slap_opt::PassPipeline;

#[global_allocator]
static ALLOC: slap_obs::alloc::CountingAllocator = slap_obs::alloc::CountingAllocator;

/// Catalog circuits measured by the default profile. The AES core
/// leads because the acceptance bar is stated on it.
const DEFAULT_CIRCUITS: &[&str] = &["AES", "adder", "bar", "sin", "max", "rc64b"];

/// The `--smoke` subset: enough for CI to gate the optimizer's QoR
/// without paying for the full sweep.
const SMOKE_CIRCUITS: &[&str] = &["AES", "adder"];

/// Sim rounds (of 64 parallel patterns each) for the per-round
/// equivalence asserts.
const EQUIV_ROUNDS: usize = 8;
const EQUIV_SEED: u64 = 0x0B7_BE4C;

fn main() {
    let args = Args::from_env();
    let target = TargetSpec::from_args(&args);
    run_for_target(target, MapOptions::default(), Main { args });
}

/// `main`'s [`TargetRunner`] continuation (a struct because the
/// continuation is generic over the target type).
struct Main {
    args: Args,
}

impl TargetRunner for Main {
    fn run<T: Target>(self, mapper: &Mapper<'_, T>, target: TargetSpec, library: Option<&Library>) {
        run(&self.args, mapper, target, library);
    }
}

/// Aggregate of one circuit's sweep.
struct CircuitResult {
    name: &'static str,
    ands_raw: usize,
    ands_opt: usize,
    depth_raw: u32,
    depth_opt: u32,
    off_times: Vec<f64>,
    on_times: Vec<f64>,
    opt_times: Vec<f64>,
    /// `(pass name, share of total optimize seconds)`, execution order.
    pass_shares: Vec<(&'static str, f64)>,
}

fn run<T: Target>(
    args: &Args,
    mapper: &Mapper<'_, T>,
    target: TargetSpec,
    library: Option<&Library>,
) {
    let smoke = args.has("smoke");
    let rounds = args.get("rounds", if smoke { 2 } else { 3 });
    let out_path = args.get("out", "BENCH_opt.json".to_string());
    let scale_name = args.get("scale", "quick".to_string());
    let scale = match scale_name.as_str() {
        "quick" => Scale::Quick,
        "full" => Scale::Full,
        other => panic!("unknown --scale {other:?} (expected quick or full)"),
    };
    let metrics = MetricsOut::from_arg(&args.get("metrics-json", String::new()));
    let trace = TraceOut::from_args(args);
    let run_span = slap_obs::span("bench_opt");
    // The acceptance bar is stated at 1 thread; the comparison is
    // between pipelines, not thread counts.
    slap_par::set_threads(1);

    let spec = args.get("passes", "full".to_string());
    let mut pipeline = PassPipeline::parse(&spec).unwrap_or_else(|e| panic!("{e}"));
    assert!(
        !pipeline.is_empty(),
        "bench_opt measures a pipeline against the raw path; \
         --passes must name at least one pass"
    );

    let names: &[&str] = if smoke {
        SMOKE_CIRCUITS
    } else {
        DEFAULT_CIRCUITS
    };
    let benches: Vec<_> = table2_benchmarks()
        .into_iter()
        .filter(|b| names.contains(&b.name))
        .collect();
    assert_eq!(benches.len(), names.len(), "unknown circuit in the set");
    let raws: Vec<Aig> = benches.iter().map(|b| b.build(scale)).collect();

    let mut manifest = run_manifest("bench_opt", 1, &target.name(), &pipeline.spec())
        .config("rounds", rounds)
        .config("smoke", smoke)
        .config("scale", scale_name.as_str())
        .input_hash("circuits", circuits_hash(&raws));
    if let Some(lib) = library {
        manifest = manifest.input_hash("library", library_hash(lib));
    }
    metrics.emit(&manifest.into_record());

    let cut_config = target.cut_config();
    let map = |aig: &Aig| -> MappedNetlist {
        let cuts = enumerate_cuts(aig, &cut_config, &mut DefaultPolicy::default());
        mapper.map_with_cuts(aig, &cuts).expect("maps")
    };

    let mut results: Vec<CircuitResult> = Vec::with_capacity(benches.len());
    for (bench, raw) in benches.iter().zip(&raws) {
        let _circuit_span = slap_obs::span("circuit");
        // Warm up lazy globals and allocator pools, untimed.
        let _ = map(raw);

        let mut result = CircuitResult {
            name: bench.name,
            ands_raw: raw.num_ands(),
            ands_opt: 0,
            depth_raw: raw.depth(),
            depth_opt: 0,
            off_times: Vec::with_capacity(rounds),
            on_times: Vec::with_capacity(rounds),
            opt_times: Vec::with_capacity(rounds),
            pass_shares: Vec::new(),
        };
        let mut last: Option<(MappedNetlist, MappedNetlist)> = None;
        for round in 0..rounds {
            let off_span = slap_obs::span("off_round");
            let t0 = Instant::now();
            let nl_off = map(raw);
            let off_s = t0.elapsed().as_secs_f64();
            drop(off_span);

            let on_span = slap_obs::span("on_round");
            let t0 = Instant::now();
            let (opt, report) = pipeline.optimize(raw.clone());
            let nl_on = map(&opt);
            let on_s = t0.elapsed().as_secs_f64();
            drop(on_span);

            // The equivalence obligations, every round: the optimizer
            // preserved the function, and the mapping of the optimized
            // graph still implements the *raw* circuit.
            assert!(
                random_equiv_check(raw, &opt, EQUIV_ROUNDS, EQUIV_SEED ^ round as u64),
                "{}: pipeline broke sim equivalence in round {round}",
                bench.name
            );
            assert!(
                nl_on.verify_against(raw, 4, EQUIV_SEED ^ round as u64),
                "{}: optimized mapping diverged from the raw circuit in round {round}",
                bench.name
            );

            eprintln!(
                "  {} round {}/{rounds}: off {off_s:.3}s, on {on_s:.3}s \
                 (opt {:.3}s, {} -> {} ands) = {:.2}x",
                bench.name,
                round + 1,
                report.seconds,
                report.ands_in,
                report.ands_out,
                off_s / on_s
            );
            let mut rec = slap_obs::Record::new();
            rec.push("event", "round");
            rec.push("circuit", bench.name);
            rec.push("round", round);
            rec.push("off_s", off_s);
            rec.push("on_s", on_s);
            rec.push("opt_s", report.seconds);
            metrics.emit(&rec);

            result.ands_opt = report.ands_out;
            result.depth_opt = report.depth_out;
            result.off_times.push(off_s);
            result.on_times.push(on_s);
            result.opt_times.push(report.seconds);
            result.pass_shares = report
                .passes
                .iter()
                .map(|p| (p.name, p.seconds / report.seconds.max(1e-12)))
                .collect();
            last = Some((nl_off, nl_on));
        }

        // QoR rows for the regression gate, from the final round (QoR
        // at 1 thread with the default policy is deterministic, so any
        // round would do).
        let (nl_off, nl_on) = last.expect("rounds >= 1");
        metrics.emit(&map_record(bench.name, "opt-off", nl_off.stats()));
        metrics.emit(&map_record(bench.name, "opt-on", nl_on.stats()));
        results.push(result);
    }

    let best = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    json.push_str("  \"threads\": 1,\n");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(json, "  \"target\": \"{}\",", target.name());
    let _ = writeln!(json, "  \"passes\": \"{}\",", pipeline.spec());
    json.push_str(
        "  \"note\": \"opt-on vs opt-off interleaved per round, best-of-round wall times at \
         1 thread. on_best_s covers clone + optimize + enumerate + map, so speedup is the \
         end-to-end gain of optimizing before mapping; opt_best_s is the optimize share of \
         that window. Sim equivalence (raw vs optimized, and raw vs the optimized mapping) \
         is asserted every round.\",\n",
    );
    json.push_str("  \"circuits\": {\n");
    for (i, r) in results.iter().enumerate() {
        let off_best = best(&r.off_times);
        let on_best = best(&r.on_times);
        let and_red = 100.0 * (1.0 - r.ands_opt as f64 / r.ands_raw.max(1) as f64);
        let depth_red = 100.0 * (1.0 - f64::from(r.depth_opt) / f64::from(r.depth_raw.max(1)));
        let _ = writeln!(json, "    \"{}\": {{", r.name);
        let _ = writeln!(json, "      \"ands_raw\": {},", r.ands_raw);
        let _ = writeln!(json, "      \"ands_opt\": {},", r.ands_opt);
        let _ = writeln!(json, "      \"and_reduction_pct\": {and_red:.2},");
        let _ = writeln!(json, "      \"depth_raw\": {},", r.depth_raw);
        let _ = writeln!(json, "      \"depth_opt\": {},", r.depth_opt);
        let _ = writeln!(json, "      \"depth_reduction_pct\": {depth_red:.2},");
        let fmt = |v: &[f64]| {
            let s: Vec<String> = v.iter().map(|t| format!("{t:.6}")).collect();
            s.join(", ")
        };
        let _ = writeln!(json, "      \"off_seconds\": [{}],", fmt(&r.off_times));
        let _ = writeln!(json, "      \"on_seconds\": [{}],", fmt(&r.on_times));
        let _ = writeln!(json, "      \"off_best_s\": {off_best:.6},");
        let _ = writeln!(json, "      \"on_best_s\": {on_best:.6},");
        let _ = writeln!(json, "      \"opt_best_s\": {:.6},", best(&r.opt_times));
        let _ = writeln!(json, "      \"speedup\": {:.3},", off_best / on_best);
        let shares: Vec<String> = r
            .pass_shares
            .iter()
            .map(|(name, share)| format!("\"{name}\": {share:.3}"))
            .collect();
        let _ = writeln!(
            json,
            "      \"pass_time_shares\": {{{}}}",
            shares.join(", ")
        );
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  }\n}\n");

    let path = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| std::path::PathBuf::from(d).join("../..").join(&out_path))
        .unwrap_or_else(|_| std::path::PathBuf::from(&out_path));
    std::fs::write(&path, &json).expect("write results");
    println!("{json}");
    println!("wrote {}", path.display());

    let alloc = slap_obs::alloc::record_gauges();
    let mut rec = slap_obs::Record::new();
    rec.push("event", "summary");
    for r in &results {
        if r.name == "AES" {
            rec.push("aes_and_reduction_pct", {
                100.0 * (1.0 - r.ands_opt as f64 / r.ands_raw.max(1) as f64)
            });
            rec.push("aes_speedup", best(&r.off_times) / best(&r.on_times));
        }
    }
    rec.push("alloc.count", alloc.count);
    rec.push("alloc.bytes", alloc.bytes);
    metrics.emit(&rec);
    drop(run_span);
    metrics.emit(&obs_snapshot_record());
    metrics.finish();
    trace.finish();
}
