//! Regenerates Table II: 14 circuits × {ABC original, ABC unlimited,
//! SLAP}, reporting area (µm²), delay (ps), cuts considered, the
//! SLAP/ABC and SLAP/Unlimited ratios, and the geomean rows.
//!
//! Usage:
//!   cargo run --release -p slap-bench --bin table2 -- \
//!       [--full | --smoke] [--target asic|lut:k] [--kernel f32|int8]
//!       [--passes strash,fold,sweep,balance]
//!       [--maps 150] [--epochs 15] [--filters 128] [--seed 1]
//!       [--cap 1000] [--threads N] [--metrics-json out.jsonl]
//!       [--trace-json trace.json] [--trace-folded stacks.txt]
//!
//! `--smoke` is the CI profile: quick-scale circuits with a tiny
//! training run, fast enough to gate every commit via `slap-report`.
//! `--target lut:k` maps the same catalog onto k-input LUTs instead of
//! the ASIC library; the area/delay columns then report LUT count and
//! logic depth (unit cost model). `--kernel int8` scores cuts with the
//! quantized inference tier (training stays f32; the trained model is
//! post-training-quantized) — the manifest records the tier, and
//! `slap-report --check` refuses cross-tier comparisons.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use slap_aig::Aig;
use slap_bench::metrics::{
    aig_hash, library_hash, map_record, obs_snapshot_record, run_manifest, EpochMetrics,
    MetricsOut, TraceOut,
};
use slap_bench::{
    experiments_dir, geomean, init_threads, kernel_tier_from_args, optimize_circuits,
    pass_pipeline_from_args, run_for_target, train_paper_model, Args, Qor, TargetRunner,
    TargetSpec,
};
use slap_cell::Library;
use slap_circuits::catalog::{table2_benchmarks, Scale};
use slap_core::{SlapConfig, SlapMapper};
use slap_map::{MapOptions, Mapper, Target};
use slap_obs::manifest::combine_hashes;

#[global_allocator]
static ALLOC: slap_obs::alloc::CountingAllocator = slap_obs::alloc::CountingAllocator;

struct Row {
    name: &'static str,
    abc: Qor,
    unlimited: Qor,
    slap: Qor,
}

fn main() {
    let args = Args::from_env();
    let target = TargetSpec::from_args(&args);
    run_for_target(target, MapOptions::default(), Main { args });
}

/// `main`'s [`TargetRunner`] continuation (a struct because the
/// continuation is generic over the target type).
struct Main {
    args: Args,
}

impl TargetRunner for Main {
    fn run<T: Target>(self, mapper: &Mapper<'_, T>, target: TargetSpec, library: Option<&Library>) {
        run(&self.args, mapper, target, library);
    }
}

fn run<T: Target>(
    args: &Args,
    mapper: &Mapper<'_, T>,
    target: TargetSpec,
    library: Option<&Library>,
) {
    let smoke = args.has("smoke");
    let scale = if args.has("full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let maps = args.get("maps", if smoke { 6 } else { 300usize });
    let epochs = args.get("epochs", if smoke { 2 } else { 30usize });
    let filters = args.get("filters", if smoke { 16 } else { 128usize });
    let seed = args.get("seed", 1u64);
    let cap = args.get("cap", if smoke { 200 } else { 1000usize });
    let kernel = kernel_tier_from_args(args);
    let mut pipeline = pass_pipeline_from_args(args);
    let threads = init_threads(args);
    let metrics = Arc::new(MetricsOut::from_arg(
        &args.get("metrics-json", String::new()),
    ));
    let trace = TraceOut::from_args(args);
    let run_span = slap_obs::span("table2");

    // Build the benchmark circuits up front so the manifest (the
    // stream's first record) can carry their combined content hash.
    let benches = table2_benchmarks();
    let mut aigs: Vec<Aig> = {
        let _s = slap_obs::span("build_circuits");
        slap_par::par_map(&benches, |_, b| b.build(scale))
    };
    // Optimize before hashing: the manifest pins the graphs that were
    // actually mapped, and the `passes` field explains the difference
    // from an opt-off stream.
    for line in optimize_circuits(&mut pipeline, &mut aigs) {
        eprintln!("{line}");
    }
    let aigs = aigs;
    let mut manifest = run_manifest("table2", threads, &target.name(), &pipeline.spec())
        .kernel(kernel.name())
        .config("scale", format!("{scale:?}"))
        .config("smoke", smoke)
        .config("maps", maps)
        .config("epochs", epochs)
        .config("filters", filters)
        .config("seed", seed)
        .config("cap", cap)
        .input_hash("circuits", combine_hashes(aigs.iter().map(aig_hash)));
    if let Some(lib) = library {
        manifest = manifest.input_hash("library", library_hash(lib));
    }
    metrics.emit(&manifest.into_record());
    let cut_config = target.cut_config();
    println!("== training SLAP model on rc16 + cla16 ({maps} maps each, {epochs} epochs) ==");
    let progress = Some(Arc::new(EpochMetrics::new(metrics.clone(), true)) as _);
    let (model, report) = {
        let _s = slap_obs::span("train");
        train_paper_model(mapper, &cut_config, maps, epochs, filters, seed, progress)
    };
    println!(
        "trained: val 10-class {:.2}%, binarised {:.2}%\n",
        report.val_accuracy * 100.0,
        report.val_binary_accuracy * 100.0
    );

    let slap_config = match target {
        TargetSpec::Asic => SlapConfig::default(),
        TargetSpec::Lut(k) => SlapConfig::for_lut(k),
    };
    let slap = SlapMapper::new(
        mapper,
        model,
        SlapConfig {
            unlimited_cap: cap,
            kernel,
            ..slap_config
        },
    );

    // The 14 circuits map independently; fan them out and then emit the
    // metrics records and rows in catalog order, so the table, the CSV,
    // and the JSONL stream are identical for every thread count.
    let map_span = slap_obs::span("map_circuits");
    let mapped = slap_par::par_map(&aigs, |i, aig| {
        let bench = &benches[i];
        let t0 = Instant::now();
        let _circuit_span = slap_obs::span(bench.name);
        // One session per circuit: the three policy runs share memoized
        // cut functions and gate bindings (bit-identical to one-shot
        // maps; disable with SLAP_CACHE=0).
        let mut session = mapper.session(aig);
        let abc = session.map_default(&cut_config).expect("default maps");
        let unl = session
            .map_unlimited(&cut_config, cap)
            .expect("unlimited maps");
        let (snl, sstats) = slap.map_with_session(&mut session).expect("slap maps");
        assert!(
            snl.verify_against(aig, 4, seed),
            "{}: SLAP netlist not equivalent",
            bench.name
        );
        let mut slap_rec = map_record(bench.name, "slap", snl.stats());
        slap_rec.push("cuts_scored", sstats.cuts_scored);
        slap_rec.push("cuts_kept", sstats.cuts_kept);
        slap_rec.push("nodes_all_bad", sstats.nodes_all_bad);
        let records = vec![
            map_record(bench.name, "abc-default", abc.stats()),
            map_record(bench.name, "abc-unlimited", unl.stats()),
            slap_rec,
        ];
        let to_qor = |n: &slap_map::MappedNetlist| Qor {
            area: n.area() as f64,
            delay: n.delay() as f64,
            cuts: n.stats().cuts_considered,
        };
        let row = Row {
            name: bench.name,
            abc: to_qor(&abc),
            unlimited: to_qor(&unl),
            slap: to_qor(&snl),
        };
        (row, records, aig.num_ands(), t0.elapsed().as_secs_f64())
    });
    drop(map_span);
    let mut rows: Vec<Row> = Vec::new();
    for (row, records, ands, seconds) in mapped {
        for record in &records {
            metrics.emit(record);
        }
        eprintln!("  {:<12} ({ands} ands) done in {seconds:.1}s", row.name);
        rows.push(row);
    }

    print_table(&rows, scale, target);
    write_csv(&rows).expect("csv written");
    drop(run_span);
    metrics.emit(&obs_snapshot_record());
    metrics.finish();
    trace.finish();
}

fn print_table(rows: &[Row], scale: Scale, target: TargetSpec) {
    // For LUT targets the "area" column is the LUT count and "delay" the
    // logic depth in levels (unit cost model) — same math, new labels.
    let (area_label, delay_label) = target.qor_labels();
    println!(
        "\n== Table II reproduction (scale: {scale:?}, target: {}) ==",
        target.name()
    );
    println!(
        "{:<12} | {:>10} {:>10} {:>9} | {:>10} {:>10} {:>9} | {:>10} {:>10} {:>9} | {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5}",
        "Circuit",
        format!("ABC {area_label}"),
        delay_label,
        "cuts",
        format!("Unl {area_label}"),
        delay_label,
        "cuts",
        format!("SLAP {area_label}"),
        delay_label,
        "cuts", "A", "D", "C", "A/u", "D/u", "C/u"
    );
    for r in rows {
        println!(
            "{:<12} | {:>10.2} {:>10.2} {:>9} | {:>10.2} {:>10.2} {:>9} | {:>10.2} {:>10.2} {:>9} | {:>5.2} {:>5.2} {:>5.2} | {:>5.2} {:>5.2} {:>5.2}",
            r.name,
            r.abc.area, r.abc.delay, r.abc.cuts,
            r.unlimited.area, r.unlimited.delay, r.unlimited.cuts,
            r.slap.area, r.slap.delay, r.slap.cuts,
            r.slap.area / r.abc.area,
            r.slap.delay / r.abc.delay,
            r.slap.cuts as f64 / r.abc.cuts as f64,
            r.slap.area / r.unlimited.area,
            r.slap.delay / r.unlimited.delay,
            r.slap.cuts as f64 / r.unlimited.cuts as f64,
        );
    }
    let gm = |f: &dyn Fn(&Row) -> f64| geomean(rows.iter().map(f));
    println!(
        "{:<12} | {:>10.2} {:>10.2} {:>9.0} | {:>10.2} {:>10.2} {:>9.0} | {:>10.2} {:>10.2} {:>9.0} | {:>5.2} {:>5.2} {:>5.2} | {:>5.2} {:>5.2} {:>5.2}",
        "Geomean",
        gm(&|r| r.abc.area), gm(&|r| r.abc.delay), gm(&|r| r.abc.cuts as f64),
        gm(&|r| r.unlimited.area), gm(&|r| r.unlimited.delay), gm(&|r| r.unlimited.cuts as f64),
        gm(&|r| r.slap.area), gm(&|r| r.slap.delay), gm(&|r| r.slap.cuts as f64),
        gm(&|r| r.slap.area / r.abc.area),
        gm(&|r| r.slap.delay / r.abc.delay),
        gm(&|r| r.slap.cuts as f64 / r.abc.cuts as f64),
        gm(&|r| r.slap.area / r.unlimited.area),
        gm(&|r| r.slap.delay / r.unlimited.delay),
        gm(&|r| r.slap.cuts as f64 / r.unlimited.cuts as f64),
    );
    // Paper-style "Improvements" summary (vs vanilla ABC = 1.0).
    println!(
        "\nImprovements vs ABC:       unlimited area {:.2}, delay {:.2}, cuts {:.2}",
        gm(&|r| r.unlimited.area / r.abc.area),
        gm(&|r| r.unlimited.delay / r.abc.delay),
        gm(&|r| r.unlimited.cuts as f64 / r.abc.cuts as f64),
    );
    println!(
        "                           SLAP      area {:.2}, delay {:.2}, cuts {:.2}, ADP {:.2}",
        gm(&|r| r.slap.area / r.abc.area),
        gm(&|r| r.slap.delay / r.abc.delay),
        gm(&|r| r.slap.cuts as f64 / r.abc.cuts as f64),
        gm(&|r| r.slap.adp() / r.abc.adp()),
    );
    let delay_wins_abc = rows.iter().filter(|r| r.slap.delay <= r.abc.delay).count();
    let delay_wins_unl = rows
        .iter()
        .filter(|r| r.slap.delay <= r.unlimited.delay)
        .count();
    let adp_wins_abc = rows.iter().filter(|r| r.slap.adp() <= r.abc.adp()).count();
    println!(
        "SLAP delay wins: {delay_wins_abc}/{} vs ABC, {delay_wins_unl}/{} vs Unlimited; ADP wins vs ABC: {adp_wins_abc}/{}",
        rows.len(),
        rows.len(),
        rows.len()
    );
}

fn write_csv(rows: &[Row]) -> std::io::Result<()> {
    let path = experiments_dir().join("table2.csv");
    let mut f = std::fs::File::create(&path)?;
    writeln!(
        f,
        "circuit,abc_area,abc_delay,abc_cuts,unl_area,unl_delay,unl_cuts,slap_area,slap_delay,slap_cuts"
    )?;
    for r in rows {
        writeln!(
            f,
            "{},{:.2},{:.2},{},{:.2},{:.2},{},{:.2},{:.2},{}",
            r.name,
            r.abc.area,
            r.abc.delay,
            r.abc.cuts,
            r.unlimited.area,
            r.unlimited.delay,
            r.unlimited.cuts,
            r.slap.area,
            r.slap.delay,
            r.slap.cuts
        )?;
    }
    println!("\nwrote {}", path.display());
    Ok(())
}
