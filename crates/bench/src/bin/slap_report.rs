//! `slap-report`: render, diff, and gate metrics JSONL streams produced
//! by the experiment binaries (`--metrics-json`).
//!
//! Usage:
//!   slap-report <metrics.jsonl>...               # render each run
//!   slap-report new.jsonl --diff base.jsonl      # field-by-field diff
//!   slap-report new.jsonl --check BASELINE.jsonl [--tolerance 2]
//!
//! `--check` is the CI regression gate: exits non-zero and names every
//! offending metric when a deterministic QoR value drifts past the
//! tolerance (percent), a `(circuit, mode)` row disappears, or the
//! manifest input hashes / schema version disagree with the baseline.

use std::process::ExitCode;

use slap_bench::report::{check, load_run, render_diff, render_report};
use slap_bench::Args;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::from_vec(raw.clone());
    let inputs: Vec<&String> = {
        // Positional arguments: anything not a --flag and not a flag's value.
        let mut inputs = Vec::new();
        let mut skip = false;
        for (i, a) in raw.iter().enumerate() {
            if skip {
                skip = false;
                continue;
            }
            if let Some(flag) = a.strip_prefix("--") {
                // These flags consume the next argument as their value.
                skip = matches!(flag, "check" | "diff" | "tolerance");
                let _ = i;
                continue;
            }
            inputs.push(a);
        }
        inputs
    };

    if inputs.is_empty() {
        eprintln!(
            "usage: slap-report <metrics.jsonl>... [--diff BASE.jsonl] \
             [--check BASELINE.jsonl [--tolerance PCT]]"
        );
        return ExitCode::from(2);
    }

    let mut runs = Vec::new();
    for path in &inputs {
        match load_run(path) {
            Ok(run) => runs.push(run),
            Err(e) => {
                eprintln!("slap-report: {e}");
                return ExitCode::from(2);
            }
        }
    }

    for run in &runs {
        print!("{}", render_report(run));
        println!();
    }

    let diff_path = args.get("diff", String::new());
    if !diff_path.is_empty() {
        match load_run(&diff_path) {
            Ok(base) => print!("{}", render_diff(&base, &runs[0])),
            Err(e) => {
                eprintln!("slap-report: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let check_path = args.get("check", String::new());
    if !check_path.is_empty() {
        let tolerance = args.get("tolerance", 2.0f64);
        let baseline = match load_run(&check_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("slap-report: {e}");
                return ExitCode::from(2);
            }
        };
        let report = check(&runs[0], &baseline, tolerance);
        if report.passed() {
            println!(
                "check PASSED: {} comparisons against {} within {tolerance}%",
                report.compared, baseline.label
            );
        } else {
            println!(
                "check FAILED against {} ({} comparisons):",
                baseline.label, report.compared
            );
            for failure in &report.failures {
                println!("  FAIL: {failure}");
            }
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
