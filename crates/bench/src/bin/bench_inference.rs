//! Batched-inference benchmark: times the full inference phase of the
//! AES-core SLAP flow across all three kernel tiers —
//!
//! * **seed**: a transcription of the pre-kernel per-sample path
//!   (allocating forward pass, scalar strided conv, single-chain dense);
//! * **f32**: [`slap_core::SlapMapper::classify_cuts`] on the
//!   lane-blocked f32 kernels (bit-identical to seed by contract);
//! * **int8**: the same two-pass flow on the quantized tier
//!   (QoR-equivalent; keep-mask divergence measured and bounded) —
//!
//! interleaved seed → f32 → int8 within every round so slow drift of the
//! host (thermal state, co-tenants) spreads evenly across all tiers
//! instead of biasing one. The whole trajectory lands in
//! `BENCH_inference.json` in the workspace root.
//!
//! Every round asserts the f32 keep mask and stats are bit-identical to
//! the seed path's: that tier's speedup must come from blocking,
//! batching, and allocation removal alone, never from changing a single
//! predicted class. The int8 tier is held to its own contract instead:
//! bit-deterministic across rounds, same cut count, and keep-mask
//! divergence below [`INT8_KEEP_DIVERGENCE_BOUND`] (the same bound the
//! golden suite in `tests/int8_divergence.rs` pins per circuit).
//!
//! Usage:
//!   cargo run --release -p slap-bench --bin bench_inference -- \
//!       [--rounds 5] [--threads N] [--smoke] [--target asic|lut:k]
//!       [--kernel f32|int8] [--passes strash,fold,sweep,balance]
//!       [--out BENCH_inference.json]
//!       [--metrics-json out.jsonl] [--trace-json trace.json]
//!
//! `--smoke` runs one round and skips the JSON file — the CI leg proving
//! the harness, the f32 bit-identity asserts, and the int8 divergence
//! bound stay green. `--kernel` is recorded in the manifest for stream
//! provenance (so `slap-report --check` gating stays strict); the bench
//! itself always measures all three tiers.

use std::fmt::Write as _;
use std::time::Instant;

use slap_bench::metrics::{
    aig_hash, library_hash, obs_snapshot_record, run_manifest, MetricsOut, TraceOut,
};
use slap_bench::{
    init_threads, kernel_tier_from_args, optimize_circuits, pass_pipeline_from_args,
    run_for_target, Args, TargetRunner, TargetSpec,
};
use slap_cell::Library;
use slap_circuits::aes::aes_mini;
use slap_core::{
    BandPolicy, EmbeddingContext, KernelTier, SlapConfig, SlapMapper, SlapStats, CUT_EMBED_DIM,
};
use slap_cuts::{cut_features, enumerate_cuts, CutArena, UnlimitedPolicy};
use slap_map::{MapOptions, Mapper, Target};
use slap_ml::{CnnConfig, CutCnn};

#[global_allocator]
static ALLOC: slap_obs::alloc::CountingAllocator = slap_obs::alloc::CountingAllocator;

/// Committed ceiling on the int8 tier's keep-mask divergence vs the f32
/// reference, as a fraction of all cuts in the arena. Kept in lockstep
/// with the per-circuit bound in `tests/int8_divergence.rs`.
const INT8_KEEP_DIVERGENCE_BOUND: f64 = 0.05;

/// The seed model representation: raw tensors extracted through the
/// text serialization (Rust's float `Display` round-trips exactly, so
/// the transcribed forward pass sees bit-identical weights).
struct SeedModel {
    rows: usize,
    cols: usize,
    filters: usize,
    classes: usize,
    conv_w: Vec<f32>,
    conv_b: Vec<f32>,
    dense_w: Vec<f32>,
    dense_b: Vec<f32>,
    feat_mean: Vec<f32>,
    feat_std: Vec<f32>,
}

impl SeedModel {
    fn from_model(model: &CutCnn) -> SeedModel {
        let text = model.to_text();
        let mut lines = text.lines();
        let header: Vec<usize> = lines
            .next()
            .expect("header")
            .split_whitespace()
            .skip(2)
            .map(|v| v.parse().expect("dims"))
            .collect();
        let mut tensor = |name: &str| -> Vec<f32> {
            let line = lines.next().expect("tensor line");
            let mut it = line.split_whitespace();
            assert_eq!(it.next(), Some(name), "tensor order");
            it.skip(1).map(|v| v.parse().expect("weight")).collect()
        };
        SeedModel {
            rows: header[0],
            cols: header[1],
            filters: header[2],
            classes: header[3],
            conv_w: tensor("conv_w"),
            conv_b: tensor("conv_b"),
            dense_w: tensor("dense_w"),
            dense_b: tensor("dense_b"),
            feat_mean: tensor("feat_mean"),
            feat_std: tensor("feat_std"),
        }
    }

    /// Transcription of the pre-kernel per-sample forward: standardize,
    /// conv, ReLU, dense, and softmax each allocate a fresh `Vec`, the
    /// conv inner loop strides across columns, and the dense layer is one
    /// latency-bound accumulation chain per class.
    fn predict(&self, raw: &[f32]) -> u8 {
        let x: Vec<f32> = raw
            .iter()
            .zip(self.feat_mean.iter().zip(&self.feat_std))
            .map(|(&v, (&mean, &s))| ((v - mean) / s).clamp(-6.0, 6.0))
            .collect();
        let mut conv_out = vec![0.0f32; self.filters * self.cols];
        for f in 0..self.filters {
            let w = &self.conv_w[f * self.rows..(f + 1) * self.rows];
            let b = self.conv_b[f];
            let out = &mut conv_out[f * self.cols..(f + 1) * self.cols];
            for (col, o) in out.iter_mut().enumerate() {
                let mut acc = b;
                for (r, &wr) in w.iter().enumerate() {
                    acc += wr * x[r * self.cols + col];
                }
                *o = acc;
            }
        }
        let hidden: Vec<f32> = conv_out.iter().map(|&v| v.max(0.0)).collect();
        let h = self.filters * self.cols;
        let mut logits = vec![0.0f32; self.classes];
        for (k, logit) in logits.iter_mut().enumerate() {
            let w = &self.dense_w[k * h..(k + 1) * h];
            let mut acc = self.dense_b[k];
            for (wj, hj) in w.iter().zip(&hidden) {
                acc += wj * hj;
            }
            *logit = acc;
        }
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let probs: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
        let sum: f32 = probs.iter().sum();
        probs
            .iter()
            .map(|p| p / sum)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite probs"))
            .map(|(i, _)| i as u8)
            .expect("non-empty")
    }
}

/// Transcription of the seed inference loop: node by node, one embedding
/// buffer, one allocating `predict` per cut, one allocating `select` per
/// node.
fn seed_classify(
    seed: &SeedModel,
    policy: &BandPolicy,
    aig: &slap_aig::Aig,
    cuts: &CutArena,
) -> (Vec<bool>, SlapStats) {
    let ctx = EmbeddingContext::new(aig);
    let mut stats = SlapStats {
        class_histogram: vec![0; seed.classes],
        ..SlapStats::default()
    };
    let mut keep: Vec<bool> = vec![false; cuts.total_cuts()];
    let mut embedding = [0f32; CUT_EMBED_DIM];
    let mut classes: Vec<u8> = Vec::new();
    for n in aig.and_ids() {
        let span = cuts.span_of(n);
        if span.is_empty() {
            continue;
        }
        classes.clear();
        for (_, cut) in cuts.ids_of(n) {
            let features = cut_features(aig, n, cut, ctx.compl_flags());
            ctx.cut_embedding_into(n, cut, &features, &mut embedding);
            let class = seed.predict(&embedding);
            stats.class_histogram[class as usize] += 1;
            classes.push(class);
        }
        stats.cuts_scored += classes.len();
        let mask = policy.select(&classes);
        if mask.iter().all(|&k| !k) {
            stats.nodes_all_bad += 1;
        }
        stats.cuts_kept += mask.iter().filter(|&&k| k).count();
        for (offset, &kept) in (span.start as usize..).zip(&mask) {
            keep[offset] = kept;
        }
    }
    (keep, stats)
}

fn main() {
    let args = Args::from_env();
    let target = TargetSpec::from_args(&args);
    run_for_target(target, MapOptions::default(), Main { args });
}

/// `main`'s [`TargetRunner`] continuation (a struct because the
/// continuation is generic over the target type).
struct Main {
    args: Args,
}

impl TargetRunner for Main {
    fn run<T: Target>(self, mapper: &Mapper<'_, T>, target: TargetSpec, library: Option<&Library>) {
        run(&self.args, mapper, target, library);
    }
}

fn run<T: Target>(
    args: &Args,
    mapper: &Mapper<'_, T>,
    target: TargetSpec,
    library: Option<&Library>,
) {
    let smoke = args.has("smoke");
    let rounds = if smoke { 1 } else { args.get("rounds", 5usize) };
    let out_path = args.get("out", "BENCH_inference.json".to_string());
    let kernel_flag = kernel_tier_from_args(args);
    let threads = init_threads(args);
    let metrics = MetricsOut::from_arg(&args.get("metrics-json", String::new()));
    let trace = TraceOut::from_args(args);
    let run_span = slap_obs::span("bench_inference");

    let mut pipeline = pass_pipeline_from_args(args);
    let mut opt = [aes_mini()];
    for line in optimize_circuits(&mut pipeline, &mut opt) {
        eprintln!("{line}");
    }
    let [aig] = opt;
    let mut manifest = run_manifest("bench_inference", threads, &target.name(), &pipeline.spec())
        .kernel(kernel_flag.name())
        .config("rounds", rounds)
        .config("smoke", smoke)
        .input_hash("circuit", aig_hash(&aig));
    if let Some(lib) = library {
        manifest = manifest.input_hash("library", library_hash(lib));
    }
    metrics.emit(&manifest.into_record());
    let config = match target {
        TargetSpec::Asic => SlapConfig::default(),
        TargetSpec::Lut(k) => SlapConfig::for_lut(k),
    };
    // An untrained paper-architecture model: weights are irrelevant for
    // timing (the FLOP count is fixed by the architecture) and the
    // deterministic init keeps every round's asserts meaningful.
    let model = CutCnn::new(&CnnConfig::paper(), 7);
    let seed = SeedModel::from_model(&model);
    let policy = config.policy;
    let slap_f32 = SlapMapper::new(mapper, model.clone(), config.clone());
    let slap_int8 = SlapMapper::new(
        mapper,
        model,
        SlapConfig {
            kernel: KernelTier::Int8,
            ..config.clone()
        },
    );
    // The smoke leg caps the per-node cut count so CI exercises the whole
    // harness (including the bit-identity asserts and the int8 divergence
    // bound) in seconds; the real measurement scores the full SLAP-flow
    // enumeration.
    let cap = if smoke { 12 } else { config.unlimited_cap };
    let cuts = enumerate_cuts(
        &aig,
        &config.cut_config,
        &mut UnlimitedPolicy::with_cap(cap),
    );

    // Warm up all three paths (lazy obs state, scratch growth) and pin
    // the reference outputs: the seed mask doubles as the f32 reference
    // (bit-identity), the int8 mask is its own determinism reference.
    let (ref_keep, ref_stats) = seed_classify(&seed, &policy, &aig, &cuts);
    let _ = slap_f32.classify_cuts(&aig, &cuts);
    let (int8_ref_keep, int8_ref_stats) = slap_int8.classify_cuts(&aig, &cuts);
    let divergent = ref_keep
        .iter()
        .zip(&int8_ref_keep)
        .filter(|(a, b)| a != b)
        .count();
    let divergence = divergent as f64 / ref_keep.len().max(1) as f64;
    eprintln!(
        "aes_mini: {} ands, {} cuts scored, {} kept f32 / {} kept int8, \
         int8 keep divergence {divergent}/{} ({:.4}%) ({} threads)",
        aig.num_ands(),
        ref_stats.cuts_scored,
        ref_stats.cuts_kept,
        int8_ref_stats.cuts_kept,
        ref_keep.len(),
        divergence * 100.0,
        threads
    );
    assert_eq!(
        int8_ref_stats.cuts_scored, ref_stats.cuts_scored,
        "int8 tier must score exactly the same cuts"
    );
    assert!(
        divergence <= INT8_KEEP_DIVERGENCE_BOUND,
        "int8 keep-mask divergence {divergence:.4} exceeds the committed bound \
         {INT8_KEEP_DIVERGENCE_BOUND}"
    );

    let mut seed_times = Vec::with_capacity(rounds);
    let mut f32_times = Vec::with_capacity(rounds);
    let mut int8_times = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let seed_span = slap_obs::span("seed_classify");
        let t0 = Instant::now();
        let (seed_keep, seed_stats) = seed_classify(&seed, &policy, &aig, &cuts);
        seed_times.push(t0.elapsed().as_secs_f64());
        drop(seed_span);

        let f32_span = slap_obs::span("f32_classify");
        let t0 = Instant::now();
        let (f32_keep, f32_stats) = slap_f32.classify_cuts(&aig, &cuts);
        f32_times.push(t0.elapsed().as_secs_f64());
        drop(f32_span);

        let int8_span = slap_obs::span("int8_classify");
        let t0 = Instant::now();
        let (int8_keep, int8_stats) = slap_int8.classify_cuts(&aig, &cuts);
        int8_times.push(t0.elapsed().as_secs_f64());
        drop(int8_span);

        // f32 bit-identity: the lane-blocked batched path must replay
        // the seed decisions exactly, every round.
        assert_eq!(seed_keep, ref_keep, "round {round}: seed keep mask drifted");
        assert_eq!(seed_stats, ref_stats, "round {round}: seed stats drifted");
        assert_eq!(
            f32_keep, ref_keep,
            "round {round}: f32 keep mask diverged from the seed path"
        );
        assert_eq!(
            f32_stats, ref_stats,
            "round {round}: f32 stats diverged from the seed path"
        );
        // int8 determinism: identical output every round.
        assert_eq!(
            int8_keep, int8_ref_keep,
            "round {round}: int8 keep mask is not deterministic"
        );
        assert_eq!(
            int8_stats, int8_ref_stats,
            "round {round}: int8 stats are not deterministic"
        );
        eprintln!(
            "  round {}/{rounds}: seed {:.3}s, f32 {:.3}s, int8 {:.3}s",
            round + 1,
            seed_times[round],
            f32_times[round],
            int8_times[round]
        );
    }

    let best = |ts: &[f64]| ts.iter().copied().fold(f64::INFINITY, f64::min);
    let (seed_best, f32_best, int8_best) = (best(&seed_times), best(&f32_times), best(&int8_times));
    let f32_speedup = seed_best / f32_best;
    let int8_speedup = seed_best / int8_best;
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    json.push_str("  \"circuit\": \"aes_mini\",\n");
    let _ = writeln!(json, "  \"target\": \"{}\",", target.name());
    json.push_str("  \"model\": \"paper (128 filters, untrained)\",\n");
    let _ = writeln!(json, "  \"cuts_scored\": {},", ref_stats.cuts_scored);
    json.push_str(
        "  \"note\": \"best-of-round wall times of the whole inference phase (embed + \
         score + select), seed/f32/int8 interleaved per round; seed = transcribed \
         per-sample path (allocating forward, scalar conv, single-chain dense), f32 = \
         two-pass batched lane-blocked kernels (keep mask asserted bit-identical to seed \
         every round), int8 = quantized tier with i32 accumulation (deterministic every \
         round; keep-mask divergence vs f32 reported below and bounded).\",\n",
    );
    let secs = |ts: &[f64]| {
        ts.iter()
            .map(|s| format!("{s:.6}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(json, "  \"seed_seconds\": [{}],", secs(&seed_times));
    let _ = writeln!(json, "  \"f32_seconds\": [{}],", secs(&f32_times));
    let _ = writeln!(json, "  \"int8_seconds\": [{}],", secs(&int8_times));
    let _ = writeln!(json, "  \"seed_best\": {seed_best:.6},");
    let _ = writeln!(json, "  \"f32_best\": {f32_best:.6},");
    let _ = writeln!(json, "  \"int8_best\": {int8_best:.6},");
    let _ = writeln!(json, "  \"f32_speedup\": {f32_speedup:.3},");
    let _ = writeln!(json, "  \"int8_speedup\": {int8_speedup:.3},");
    let _ = writeln!(json, "  \"int8_divergent_cuts\": {divergent},");
    let _ = writeln!(json, "  \"int8_divergence_frac\": {divergence:.6},");
    let _ = writeln!(
        json,
        "  \"int8_divergence_bound\": {INT8_KEEP_DIVERGENCE_BOUND}"
    );
    json.push_str("}\n");
    println!("{json}");

    let alloc = slap_obs::alloc::record_gauges();
    let mut rec = slap_obs::Record::new();
    rec.push("event", "summary");
    rec.push("cuts_scored", ref_stats.cuts_scored);
    rec.push("seed_best_s", seed_best);
    rec.push("f32_best_s", f32_best);
    rec.push("int8_best_s", int8_best);
    rec.push("f32_speedup", f32_speedup);
    rec.push("int8_speedup", int8_speedup);
    rec.push("int8_divergence_frac", divergence);
    rec.push("alloc.count", alloc.count);
    rec.push("alloc.bytes", alloc.bytes);
    metrics.emit(&rec);
    drop(run_span);
    metrics.emit(&obs_snapshot_record());
    metrics.finish();
    trace.finish();

    if smoke {
        println!(
            "smoke mode: f32 bit-identity asserts and int8 divergence bound passed, \
             skipping {out_path}"
        );
        return;
    }
    let path = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| std::path::PathBuf::from(d).join("../..").join(&out_path))
        .unwrap_or_else(|_| std::path::PathBuf::from(&out_path));
    std::fs::write(&path, &json).expect("write results");
    println!("wrote {}", path.display());
}
