//! Batched-inference benchmark: times the two-pass batched cut scoring
//! of [`slap_core::SlapMapper::classify_cuts`] against a transcription
//! of the seed per-sample path (allocating forward pass, scalar strided
//! conv, single-chain dense) on the AES-core SLAP flow, and writes the
//! speedup to `BENCH_inference.json` in the workspace root.
//!
//! Old and new timings are interleaved within each round (old, then new,
//! per round) so slow drift of the host — thermal state, co-tenants —
//! spreads evenly across both sides instead of biasing one. Every round
//! asserts the batched keep mask and stats are bit-identical to the seed
//! path's: the speedup must come from blocking, batching, and allocation
//! removal alone, never from changing a single predicted class.
//!
//! Usage:
//!   cargo run --release -p slap-bench --bin bench_inference -- \
//!       [--rounds 5] [--threads N] [--smoke] [--out BENCH_inference.json]
//!       [--metrics-json out.jsonl] [--trace-json trace.json]
//!
//! `--smoke` runs one round and skips the JSON file — the CI leg proving
//! the harness and the bit-identity asserts stay green.

use std::fmt::Write as _;
use std::time::Instant;

use slap_bench::metrics::{
    aig_hash, library_hash, obs_snapshot_record, run_manifest, MetricsOut, TraceOut,
};
use slap_bench::{init_threads, Args};
use slap_cell::asap7_mini;
use slap_circuits::aes::aes_mini;
use slap_core::{BandPolicy, EmbeddingContext, SlapConfig, SlapMapper, SlapStats, CUT_EMBED_DIM};
use slap_cuts::{cut_features, enumerate_cuts, CutArena, UnlimitedPolicy};
use slap_map::{MapOptions, Mapper};
use slap_ml::{CnnConfig, CutCnn};

#[global_allocator]
static ALLOC: slap_obs::alloc::CountingAllocator = slap_obs::alloc::CountingAllocator;

/// The seed model representation: raw tensors extracted through the
/// text serialization (Rust's float `Display` round-trips exactly, so
/// the transcribed forward pass sees bit-identical weights).
struct SeedModel {
    rows: usize,
    cols: usize,
    filters: usize,
    classes: usize,
    conv_w: Vec<f32>,
    conv_b: Vec<f32>,
    dense_w: Vec<f32>,
    dense_b: Vec<f32>,
    feat_mean: Vec<f32>,
    feat_std: Vec<f32>,
}

impl SeedModel {
    fn from_model(model: &CutCnn) -> SeedModel {
        let text = model.to_text();
        let mut lines = text.lines();
        let header: Vec<usize> = lines
            .next()
            .expect("header")
            .split_whitespace()
            .skip(2)
            .map(|v| v.parse().expect("dims"))
            .collect();
        let mut tensor = |name: &str| -> Vec<f32> {
            let line = lines.next().expect("tensor line");
            let mut it = line.split_whitespace();
            assert_eq!(it.next(), Some(name), "tensor order");
            it.skip(1).map(|v| v.parse().expect("weight")).collect()
        };
        SeedModel {
            rows: header[0],
            cols: header[1],
            filters: header[2],
            classes: header[3],
            conv_w: tensor("conv_w"),
            conv_b: tensor("conv_b"),
            dense_w: tensor("dense_w"),
            dense_b: tensor("dense_b"),
            feat_mean: tensor("feat_mean"),
            feat_std: tensor("feat_std"),
        }
    }

    /// Transcription of the pre-kernel per-sample forward: standardize,
    /// conv, ReLU, dense, and softmax each allocate a fresh `Vec`, the
    /// conv inner loop strides across columns, and the dense layer is one
    /// latency-bound accumulation chain per class.
    fn predict(&self, raw: &[f32]) -> u8 {
        let x: Vec<f32> = raw
            .iter()
            .zip(self.feat_mean.iter().zip(&self.feat_std))
            .map(|(&v, (&mean, &s))| ((v - mean) / s).clamp(-6.0, 6.0))
            .collect();
        let mut conv_out = vec![0.0f32; self.filters * self.cols];
        for f in 0..self.filters {
            let w = &self.conv_w[f * self.rows..(f + 1) * self.rows];
            let b = self.conv_b[f];
            let out = &mut conv_out[f * self.cols..(f + 1) * self.cols];
            for (col, o) in out.iter_mut().enumerate() {
                let mut acc = b;
                for (r, &wr) in w.iter().enumerate() {
                    acc += wr * x[r * self.cols + col];
                }
                *o = acc;
            }
        }
        let hidden: Vec<f32> = conv_out.iter().map(|&v| v.max(0.0)).collect();
        let h = self.filters * self.cols;
        let mut logits = vec![0.0f32; self.classes];
        for (k, logit) in logits.iter_mut().enumerate() {
            let w = &self.dense_w[k * h..(k + 1) * h];
            let mut acc = self.dense_b[k];
            for (wj, hj) in w.iter().zip(&hidden) {
                acc += wj * hj;
            }
            *logit = acc;
        }
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let probs: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
        let sum: f32 = probs.iter().sum();
        probs
            .iter()
            .map(|p| p / sum)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite probs"))
            .map(|(i, _)| i as u8)
            .expect("non-empty")
    }
}

/// Transcription of the seed inference loop: node by node, one embedding
/// buffer, one allocating `predict` per cut, one allocating `select` per
/// node.
fn seed_classify(
    seed: &SeedModel,
    policy: &BandPolicy,
    aig: &slap_aig::Aig,
    cuts: &CutArena,
) -> (Vec<bool>, SlapStats) {
    let ctx = EmbeddingContext::new(aig);
    let mut stats = SlapStats {
        class_histogram: vec![0; seed.classes],
        ..SlapStats::default()
    };
    let mut keep: Vec<bool> = vec![false; cuts.total_cuts()];
    let mut embedding = [0f32; CUT_EMBED_DIM];
    let mut classes: Vec<u8> = Vec::new();
    for n in aig.and_ids() {
        let span = cuts.span_of(n);
        if span.is_empty() {
            continue;
        }
        classes.clear();
        for (_, cut) in cuts.ids_of(n) {
            let features = cut_features(aig, n, cut, ctx.compl_flags());
            ctx.cut_embedding_into(n, cut, &features, &mut embedding);
            let class = seed.predict(&embedding);
            stats.class_histogram[class as usize] += 1;
            classes.push(class);
        }
        stats.cuts_scored += classes.len();
        let mask = policy.select(&classes);
        if mask.iter().all(|&k| !k) {
            stats.nodes_all_bad += 1;
        }
        stats.cuts_kept += mask.iter().filter(|&&k| k).count();
        for (offset, &kept) in (span.start as usize..).zip(&mask) {
            keep[offset] = kept;
        }
    }
    (keep, stats)
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    let rounds = if smoke { 1 } else { args.get("rounds", 5usize) };
    let out_path = args.get("out", "BENCH_inference.json".to_string());
    let threads = init_threads(&args);
    let metrics = MetricsOut::from_arg(&args.get("metrics-json", String::new()));
    let trace = TraceOut::from_args(&args);
    let run_span = slap_obs::span("bench_inference");

    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let aig = aes_mini();
    metrics.emit(
        &run_manifest("bench_inference", threads, "asic")
            .config("rounds", rounds)
            .config("smoke", smoke)
            .input_hash("circuit", aig_hash(&aig))
            .input_hash("library", library_hash(&lib))
            .into_record(),
    );
    let config = SlapConfig::default();
    // An untrained paper-architecture model: weights are irrelevant for
    // timing (the FLOP count is fixed by the architecture) and the
    // deterministic init keeps every round's asserts meaningful.
    let model = CutCnn::new(&CnnConfig::paper(), 7);
    let seed = SeedModel::from_model(&model);
    let policy = config.policy;
    let slap = SlapMapper::new(&mapper, model, config.clone());
    // The smoke leg caps the per-node cut count so CI exercises the whole
    // harness (including the bit-identity asserts) in seconds; the real
    // measurement scores the full SLAP-flow enumeration.
    let cap = if smoke { 12 } else { config.unlimited_cap };
    let cuts = enumerate_cuts(
        &aig,
        &config.cut_config,
        &mut UnlimitedPolicy::with_cap(cap),
    );

    // Warm up both paths (lazy obs state, scratch growth) and pin the
    // reference output.
    let (ref_keep, ref_stats) = seed_classify(&seed, &policy, &aig, &cuts);
    let _ = slap.classify_cuts(&aig, &cuts);
    eprintln!(
        "aes_mini: {} ands, {} cuts scored, {} kept ({} threads)",
        aig.num_ands(),
        ref_stats.cuts_scored,
        ref_stats.cuts_kept,
        threads
    );

    let mut old_times = Vec::with_capacity(rounds);
    let mut new_times = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let old_span = slap_obs::span("seed_classify");
        let t0 = Instant::now();
        let (old_keep, old_stats) = seed_classify(&seed, &policy, &aig, &cuts);
        old_times.push(t0.elapsed().as_secs_f64());
        drop(old_span);

        let new_span = slap_obs::span("batched_classify");
        let t0 = Instant::now();
        let (new_keep, new_stats) = slap.classify_cuts(&aig, &cuts);
        new_times.push(t0.elapsed().as_secs_f64());
        drop(new_span);

        // Bit-identity: the batched path must replay the seed decisions
        // exactly, every round.
        assert_eq!(old_keep, ref_keep, "round {round}: seed keep mask drifted");
        assert_eq!(old_stats, ref_stats, "round {round}: seed stats drifted");
        assert_eq!(
            new_keep, ref_keep,
            "round {round}: batched keep mask diverged from the seed path"
        );
        assert_eq!(
            new_stats, ref_stats,
            "round {round}: batched stats diverged from the seed path"
        );
        eprintln!(
            "  round {}/{rounds}: old {:.3}s, new {:.3}s",
            round + 1,
            old_times[round],
            new_times[round]
        );
    }

    let best = |ts: &[f64]| ts.iter().copied().fold(f64::INFINITY, f64::min);
    let (old_best, new_best) = (best(&old_times), best(&new_times));
    let speedup = old_best / new_best;
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    json.push_str("  \"circuit\": \"aes_mini\",\n");
    json.push_str("  \"model\": \"paper (128 filters, untrained)\",\n");
    let _ = writeln!(json, "  \"cuts_scored\": {},", ref_stats.cuts_scored);
    json.push_str(
        "  \"note\": \"best-of-round wall times of the whole inference phase (embed + \
         score + select), old/new interleaved per round; old = transcribed seed \
         per-sample path (allocating forward, scalar conv, single-chain dense), new = \
         two-pass batched kernels. Every round asserts keep masks and stats are \
         bit-identical across paths.\",\n",
    );
    let secs = |ts: &[f64]| {
        ts.iter()
            .map(|s| format!("{s:.6}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(json, "  \"old_seconds\": [{}],", secs(&old_times));
    let _ = writeln!(json, "  \"new_seconds\": [{}],", secs(&new_times));
    let _ = writeln!(json, "  \"old_best\": {old_best:.6},");
    let _ = writeln!(json, "  \"new_best\": {new_best:.6},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3}");
    json.push_str("}\n");
    println!("{json}");

    let alloc = slap_obs::alloc::record_gauges();
    let mut rec = slap_obs::Record::new();
    rec.push("event", "summary");
    rec.push("cuts_scored", ref_stats.cuts_scored);
    rec.push("old_best_s", old_best);
    rec.push("new_best_s", new_best);
    rec.push("speedup", speedup);
    rec.push("alloc.count", alloc.count);
    rec.push("alloc.bytes", alloc.bytes);
    metrics.emit(&rec);
    drop(run_span);
    metrics.emit(&obs_snapshot_record());
    metrics.finish();
    trace.finish();

    if smoke {
        println!("smoke mode: bit-identity asserts passed, skipping {out_path}");
        return;
    }
    let path = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| std::path::PathBuf::from(d).join("../..").join(&out_path))
        .unwrap_or_else(|_| std::path::PathBuf::from(&out_path));
    std::fs::write(&path, &json).expect("write results");
    println!("wrote {}", path.display());
}
