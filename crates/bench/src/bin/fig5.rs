//! Regenerates Fig. 5: permutation feature importance of the trained
//! model (accuracy drop when each of the 19 feature groups is permuted,
//! averaged over 10 rounds).
//!
//! Usage:
//!   cargo run --release -p slap-bench --bin fig5 -- \
//!       [--maps 120] [--epochs 12] [--filters 64] [--rounds 10]
//!       [--eval 2000] [--seed 1] [--target asic|lut:k] [--kernel f32|int8]
//!       [--passes strash,fold,sweep,balance] [--threads N]
//!       [--metrics-json out.jsonl] [--trace-json trace.json]
//!
//! `--kernel` is accepted for flag symmetry with the inference binaries
//! and recorded in the manifest; permutation importance evaluates the
//! f32 reference model directly, so the tag is provenance only.

use std::io::Write as _;
use std::sync::Arc;

use slap_aig::Aig;
use slap_bench::metrics::{
    circuits_hash, library_hash, obs_snapshot_record, run_manifest, EpochMetrics, MetricsOut,
    TraceOut,
};
use slap_bench::{
    experiments_dir, init_threads, kernel_tier_from_args, optimize_circuits,
    pass_pipeline_from_args, run_for_target, Args, TargetRunner, TargetSpec,
};
use slap_cell::Library;
use slap_circuits::catalog::Scale;
use slap_circuits::training_benchmarks;
use slap_core::{feature_groups, generate_dataset, SampleConfig, CUT_EMBED_COLS, CUT_EMBED_ROWS};
use slap_map::{MapOptions, Mapper, Target};
use slap_ml::{permutation_importance, CnnConfig, CutCnn, Dataset, TrainConfig};

#[global_allocator]
static ALLOC: slap_obs::alloc::CountingAllocator = slap_obs::alloc::CountingAllocator;

fn main() {
    let args = Args::from_env();
    let target = TargetSpec::from_args(&args);
    run_for_target(target, MapOptions::default(), Main { args });
}

/// `main`'s [`TargetRunner`] continuation (a struct because the
/// continuation is generic over the target type).
struct Main {
    args: Args,
}

impl TargetRunner for Main {
    fn run<T: Target>(self, mapper: &Mapper<'_, T>, target: TargetSpec, library: Option<&Library>) {
        run(&self.args, mapper, target, library);
    }
}

fn run<T: Target>(
    args: &Args,
    mapper: &Mapper<'_, T>,
    target: TargetSpec,
    library: Option<&Library>,
) {
    let maps = args.get("maps", 120usize);
    let epochs = args.get("epochs", 12usize);
    let filters = args.get("filters", 64usize);
    let rounds = args.get("rounds", 10usize);
    let eval = args.get("eval", 2000usize);
    let seed = args.get("seed", 1u64);
    let threads = init_threads(args);
    let metrics = Arc::new(MetricsOut::from_arg(
        &args.get("metrics-json", String::new()),
    ));
    let trace = TraceOut::from_args(args);
    let run_span = slap_obs::span("fig5");

    // The training circuits sample independently; build one dataset per
    // circuit across worker threads and merge in catalog order.
    let benches = training_benchmarks();
    let mut pipeline = pass_pipeline_from_args(args);
    let mut aigs: Vec<Aig> = slap_par::par_map(&benches, |_, b| b.build(Scale::Full));
    for line in optimize_circuits(&mut pipeline, &mut aigs) {
        eprintln!("{line}");
    }
    let aigs = aigs;
    let mut manifest = run_manifest("fig5", threads, &target.name(), &pipeline.spec())
        .kernel(kernel_tier_from_args(args).name())
        .config("maps", maps)
        .config("epochs", epochs)
        .config("filters", filters)
        .config("rounds", rounds)
        .config("seed", seed)
        .input_hash("circuits", circuits_hash(&aigs));
    if let Some(lib) = library {
        manifest = manifest.input_hash("library", library_hash(lib));
    }
    metrics.emit(&manifest.into_record());
    let datagen_span = slap_obs::span("datagen");
    let parts = slap_par::par_map(&aigs, |_, aig| {
        let mut part = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        generate_dataset(
            aig,
            mapper,
            &SampleConfig {
                maps,
                seed,
                cut_config: target.cut_config(),
                ..SampleConfig::default()
            },
            &mut part,
        )
        .expect("training circuit maps");
        part
    });
    drop(datagen_span);
    let mut dataset = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
    for part in &parts {
        dataset.extend_from(part);
    }
    println!("dataset: {} cut samples", dataset.len());
    let mut model = CutCnn::new(
        &CnnConfig {
            filters,
            ..CnnConfig::paper()
        },
        seed,
    );
    let progress = metrics
        .enabled()
        .then(|| Arc::new(EpochMetrics::new(metrics.clone(), false)) as _);
    let train_span = slap_obs::span("train");
    let report = model.train(
        &dataset,
        &TrainConfig {
            epochs,
            seed,
            progress,
            ..TrainConfig::default()
        },
    );
    drop(train_span);
    println!(
        "trained: val 10-class {:.2}%, binarised {:.2}%",
        report.val_accuracy * 100.0,
        report.val_binary_accuracy * 100.0
    );

    // Evaluate importance on a bounded validation subsample for speed.
    let (_, val) = dataset.split(0.2, seed);
    let mut eval_set = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
    for i in 0..val.len().min(eval) {
        let (x, y) = val.sample(i);
        eval_set.push(x, y);
    }
    println!(
        "permuting {} features x {rounds} rounds over {} samples...",
        19,
        eval_set.len()
    );
    let groups = feature_groups();
    let importance = {
        let _s = slap_obs::span("importance");
        permutation_importance(&model, &eval_set, &groups, rounds, seed)
    };

    let mut sorted = importance.clone();
    sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("\n== Fig. 5 reproduction: permutation feature importance ==");
    let max_imp = sorted.first().map(|(_, v)| *v).unwrap_or(0.0).max(1e-9);
    for (name, imp) in &sorted {
        let bar_len = ((imp / max_imp) * 40.0).max(0.0) as usize;
        println!("  {:<14} {:>7.4}  {}", name, imp, "#".repeat(bar_len));
    }

    let path = experiments_dir().join("fig5.csv");
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "feature,importance").expect("write");
    for (name, imp) in &importance {
        writeln!(f, "{name},{imp:.6}").expect("write");
        let mut rec = slap_obs::Record::new();
        rec.push("event", "importance");
        rec.push("feature", name.as_str());
        rec.push("importance", *imp);
        metrics.emit(&rec);
    }
    println!("\nwrote {}", path.display());
    drop(run_span);
    metrics.emit(&obs_snapshot_record());
    metrics.finish();
    trace.finish();
}
