//! Sustained-throughput benchmark of the `slap-serve` engine: drives a
//! mixed catalog workload (every Table II circuit × {default, unlimited,
//! shuffled} × {asic, lut:6} × {f32, int8}) through one multi-tenant
//! [`slap_serve::Engine`] and through per-job standalone cold mapping,
//! interleaved per round, and writes sustained maps/sec plus p50/p99
//! queue-wait and service latency to `BENCH_serve.json` in the
//! workspace root.
//!
//! The engine side is measured *warm*: one untimed pass fills the
//! frozen function tiers and the run memo, then every timed round
//! re-submits the same request stream — the steady state of a bulk
//! synthesis service replaying known work and sharing cut functions
//! across jobs. The standalone side maps each job cold, as if every
//! request spawned a fresh session. Every round asserts each engine
//! result bit-identical to its standalone counterpart, so the speedup
//! can never come from changing an answer.
//!
//! Usage:
//!   cargo run --release -p slap-bench --bin bench_serve -- \
//!       [--rounds 3] [--cap 64] [--keep 8] [--seed 1] [--threads N]
//!       [--passes strash,fold,sweep,balance] [--smoke]
//!       [--out BENCH_serve.json] [--metrics-json out.jsonl]
//!       [--trace-json trace.json]
//!
//! `--smoke` shrinks the workload (4 circuits, 1 round) and skips the
//! JSON file — the CI leg proving the harness and the per-round
//! bit-identity asserts stay green. The `{f32, int8}` axis is request
//! provenance: serve policies never invoke the CNN, so the tags double
//! the request mix (as a real multi-tenant stream would) without
//! changing any mapping — same convention as `bench_datagen --kernel`.

use std::fmt::Write as _;
use std::time::Instant;

use slap_bench::metrics::{
    circuits_hash, library_hash, map_record, obs_snapshot_record, run_manifest, MetricsOut,
    TraceOut,
};
use slap_bench::{init_threads, optimize_circuits, pass_pipeline_from_args, Args};
use slap_cell::asap7_mini;
use slap_circuits::{table2_benchmarks, Scale};
use slap_map::{LutMapper, MapOptions, MapPolicy, MappedNetlist, Mapper};
use slap_serve::{
    CircuitId, CircuitSpec, Engine, EngineConfig, EngineTarget, MapRequest, TargetId,
};

#[global_allocator]
static ALLOC: slap_obs::alloc::CountingAllocator = slap_obs::alloc::CountingAllocator;

/// LUT width of the FPGA side of the mixed workload.
const LUT_K: usize = 6;

/// One job of the mixed workload, with the resolved engine ids.
struct Job {
    circuit: CircuitId,
    circuit_name: &'static str,
    target: TargetId,
    target_name: String,
    k: usize,
    policy: MapPolicy,
    kernel: &'static str,
    tenant: String,
}

/// Locates the submitted job a completion answers. Completions arrive
/// in dispatch (fair-queuing) order, not submit order, so match on the
/// request fields — unique per job by construction of the workload.
fn job_index(jobs: &[Job], done: &slap_serve::Completed) -> usize {
    jobs.iter()
        .position(|j| {
            j.circuit_name == done.circuit
                && j.target_name == done.target
                && j.policy == done.policy
                && j.kernel == done.kernel
                && j.tenant == done.tenant
        })
        .expect("completion matches a submitted job")
}

fn assert_same_mapping(got: &MappedNetlist, base: &MappedNetlist, label: &str) {
    assert_eq!(got.instances(), base.instances(), "{label}: instances");
    assert_eq!(got.pos(), base.pos(), "{label}: po sources");
    assert_eq!(got.cover_cuts(), base.cover_cuts(), "{label}: cover cuts");
    assert_eq!(got.area().to_bits(), base.area().to_bits(), "{label}: area");
    assert_eq!(
        got.delay().to_bits(),
        base.delay().to_bits(),
        "{label}: delay"
    );
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let ix = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[ix.min(sorted.len() - 1)]
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    let rounds = if smoke { 1 } else { args.get("rounds", 3usize) };
    let cap = args.get("cap", if smoke { 48 } else { 64usize });
    let keep = args.get("keep", 8usize);
    let seed = args.get("seed", 1u64);
    let out_path = args.get("out", "BENCH_serve.json".to_string());
    let threads = init_threads(&args);
    let metrics = MetricsOut::from_arg(&args.get("metrics-json", String::new()));
    let trace = TraceOut::from_args(&args);
    let run_span = slap_obs::span("bench_serve");

    // The mixed catalog: every Table II circuit at Quick scale (the
    // serve benchmark measures engine throughput, not circuit scale).
    let benches = table2_benchmarks();
    let circuits = if smoke { &benches[..4] } else { &benches[..] };
    let mut pipeline = pass_pipeline_from_args(&args);
    let mut aigs: Vec<slap_aig::Aig> = slap_par::par_map(circuits, |_, b| b.build(Scale::Quick));
    for line in optimize_circuits(&mut pipeline, &mut aigs) {
        eprintln!("{line}");
    }
    let aigs = aigs;

    let library = asap7_mini();
    let asic_mapper = Mapper::new(&library, MapOptions::default());
    let lut_mapper = LutMapper::lut(LUT_K, MapOptions::default());
    let mut engine = Engine::new(EngineConfig {
        queue_capacity: 256,
        quantum: 1,
        batch: 32,
        cache: None, // honor SLAP_CACHE
    });
    let asic = engine.add_target(EngineTarget::Asic(asic_mapper));
    let lut = engine.add_target(EngineTarget::Lut(lut_mapper));
    let circuit_ids: Vec<CircuitId> = circuits
        .iter()
        .zip(&aigs)
        .map(|(b, aig)| engine.register_circuit(b.name, aig.clone()))
        .collect();

    // The request mix: circuits × policies × targets × kernel tags,
    // tenants assigned round-robin so fair queuing has real contention.
    let policies = [
        MapPolicy::Default,
        MapPolicy::Unlimited { cap },
        MapPolicy::Shuffled { seed, keep },
    ];
    let mut jobs: Vec<Job> = Vec::new();
    for (ci, bench) in circuits.iter().enumerate() {
        for policy in policies {
            for (target, target_name, k) in [
                (asic, "asic".to_string(), 5),
                (lut, format!("lut:{LUT_K}"), LUT_K),
            ] {
                for kernel in ["f32", "int8"] {
                    jobs.push(Job {
                        circuit: circuit_ids[ci],
                        circuit_name: bench.name,
                        target,
                        target_name: target_name.clone(),
                        k,
                        policy,
                        kernel,
                        tenant: format!("tenant-{}", jobs.len() % 4),
                    });
                }
            }
        }
    }

    let mut manifest = run_manifest("bench_serve", threads, "mixed", &pipeline.spec())
        .kernel("mixed")
        .config("rounds", rounds)
        .config("jobs", jobs.len())
        .config("cap", cap)
        .config("smoke", smoke)
        .input_hash("circuits", circuits_hash(aigs.iter()))
        .input_hash("library", library_hash(&library));
    manifest = manifest.config("cache", engine.cache_enabled());
    metrics.emit(&manifest.into_record());
    eprintln!(
        "workload: {} jobs ({} circuits x {} policies x 2 targets x 2 kernel tags), \
         cache {} ({} threads)",
        jobs.len(),
        circuits.len(),
        policies.len(),
        if engine.cache_enabled() { "on" } else { "off" },
        threads,
    );

    let submit_all = |engine: &mut Engine<'_>| {
        for job in &jobs {
            engine
                .submit(MapRequest {
                    tenant: job.tenant.clone(),
                    circuit: CircuitSpec::Named(job.circuit_name.to_string()),
                    target: job.target,
                    k: job.k,
                    policy: job.policy,
                    kernel: job.kernel.to_string(),
                    // The bin optimizes the catalog before registration
                    // (see above), so requests map as-registered.
                    passes: String::new(),
                })
                .expect("admitted (queue capacity sized for the workload)");
        }
    };

    // Standalone reference pass: one cold map per job — what a caller
    // spawning a fresh session per request would compute. The outputs
    // double as the bit-identity reference for every engine round.
    let reference: Vec<MappedNetlist> = {
        let _s = slap_obs::span("standalone_reference");
        jobs.iter()
            .map(|job| {
                engine
                    .map_standalone(job.circuit, job.target, job.k, job.policy)
                    .expect("maps")
            })
            .collect()
    };

    // Engine warm-fill: one untimed pass populates the frozen tiers and
    // the run memo, and asserts equivalence once before timing starts.
    // Its completions (all fresh executions) provide the per-job QoR
    // rows for the regression gate.
    {
        let _s = slap_obs::span("warm_fill");
        submit_all(&mut engine);
        let done = engine.drain();
        assert_eq!(done.len(), jobs.len());
        for done in &done {
            let netlist = done.result.as_ref().expect("maps");
            let ix = job_index(&jobs, done);
            let job = &jobs[ix];
            assert_same_mapping(
                netlist,
                &reference[ix],
                &format!(
                    "warm-fill {} {} {}",
                    job.circuit_name,
                    job.target_name,
                    job.policy.name()
                ),
            );
            // One gated QoR row per distinct (circuit, mode). Kernel
            // tags map identically by construction, so only tag f32
            // rows to keep the baseline free of duplicate rows.
            if job.kernel == "f32" {
                let mode = format!("serve:{}:{}", job.policy.name(), job.target_name);
                metrics.emit(&map_record(job.circuit_name, &mode, netlist.stats()));
            }
        }
        for rec in engine.take_records() {
            metrics.emit(&rec);
        }
    }
    eprintln!(
        "warm-fill done: {} executed, {} replayed, {} generations",
        engine.stats().executed,
        engine.stats().replayed,
        engine.stats().generations,
    );

    // Interleaved timed rounds: standalone first, then the warm engine,
    // per round, with bit-identity asserted on every engine completion.
    let mut standalone_times = Vec::with_capacity(rounds);
    let mut engine_times = Vec::with_capacity(rounds);
    let mut queue_waits: Vec<f64> = Vec::new();
    let mut services: Vec<f64> = Vec::new();
    for round in 0..rounds {
        let standalone_span = slap_obs::span("standalone_round");
        let t0 = Instant::now();
        for (job, reference) in jobs.iter().zip(&reference) {
            let netlist = engine
                .map_standalone(job.circuit, job.target, job.k, job.policy)
                .expect("maps");
            assert_same_mapping(
                &netlist,
                reference,
                &format!("round {round} standalone {}", job.circuit_name),
            );
        }
        let standalone_s = t0.elapsed().as_secs_f64();
        drop(standalone_span);

        let engine_span = slap_obs::span("engine_round");
        let t0 = Instant::now();
        submit_all(&mut engine);
        let done = engine.drain();
        let engine_s = t0.elapsed().as_secs_f64();
        drop(engine_span);
        assert_eq!(done.len(), jobs.len());
        for done in &done {
            let job_ix = job_index(&jobs, done);
            assert_same_mapping(
                done.result.as_ref().expect("maps"),
                &reference[job_ix],
                &format!("round {round} engine {} {}", done.circuit, done.target),
            );
            queue_waits.push(done.queue_wait_s);
            services.push(done.service_s);
        }
        for rec in engine.take_records() {
            metrics.emit(&rec);
        }

        eprintln!(
            "  round {}/{rounds}: standalone {standalone_s:.3}s, engine {engine_s:.3}s \
             ({:.2}x)",
            round + 1,
            standalone_s / engine_s,
        );
        let mut rec = slap_obs::Record::new();
        rec.push("event", "round");
        rec.push("round", round);
        rec.push("standalone_s", standalone_s);
        rec.push("engine_s", engine_s);
        metrics.emit(&rec);
        standalone_times.push(standalone_s);
        engine_times.push(engine_s);
    }

    let best = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let standalone_best = best(&standalone_times);
    let engine_best = best(&engine_times);
    let standalone_mps = jobs.len() as f64 / standalone_best;
    let engine_mps = jobs.len() as f64 / engine_best;
    let speedup = standalone_best / engine_best;
    queue_waits.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    services.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let fmt_times = |v: &[f64]| {
        let secs: Vec<String> = v.iter().map(|s| format!("{s:.6}")).collect();
        secs.join(", ")
    };
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"jobs_per_round\": {},", jobs.len());
    let _ = writeln!(json, "  \"circuits\": {},", circuits.len());
    json.push_str(
        "  \"note\": \"mixed catalog workload (circuits x {default, unlimited, shuffled} x \
         {asic, lut:6} x {f32, int8} kernel tags) through one multi-tenant engine, \
         standalone vs warm engine interleaved per round, best-of-round wall times. \
         Standalone = one cold map per job (fresh session per request); engine = DRR fair \
         queuing over 4 tenants with frozen-tier function caches and whole-run \
         memoization, pre-filled by one untimed pass. Every engine completion asserted \
         bit-identical to its standalone reference every round. Latency quantiles are \
         exact (sorted per-request samples across all timed engine rounds).\",\n",
    );
    let _ = writeln!(
        json,
        "  \"standalone_seconds\": [{}],",
        fmt_times(&standalone_times)
    );
    let _ = writeln!(
        json,
        "  \"engine_seconds\": [{}],",
        fmt_times(&engine_times)
    );
    let _ = writeln!(json, "  \"standalone_best_s\": {standalone_best:.6},");
    let _ = writeln!(json, "  \"engine_best_s\": {engine_best:.6},");
    let _ = writeln!(json, "  \"standalone_maps_per_sec\": {standalone_mps:.3},");
    let _ = writeln!(json, "  \"engine_maps_per_sec\": {engine_mps:.3},");
    let _ = writeln!(json, "  \"engine_speedup\": {speedup:.3},");
    let _ = writeln!(
        json,
        "  \"queue_wait_p50_ms\": {:.6},",
        quantile(&queue_waits, 0.50) * 1e3
    );
    let _ = writeln!(
        json,
        "  \"queue_wait_p99_ms\": {:.6},",
        quantile(&queue_waits, 0.99) * 1e3
    );
    let _ = writeln!(
        json,
        "  \"service_p50_ms\": {:.6},",
        quantile(&services, 0.50) * 1e3
    );
    let _ = writeln!(
        json,
        "  \"service_p99_ms\": {:.6},",
        quantile(&services, 0.99) * 1e3
    );
    let _ = writeln!(json, "  \"executed\": {},", engine.stats().executed);
    let _ = writeln!(json, "  \"replayed\": {}", engine.stats().replayed);
    json.push_str("}\n");
    println!("{json}");

    let alloc = slap_obs::alloc::record_gauges();
    let mut rec = slap_obs::Record::new();
    rec.push("event", "summary");
    rec.push("standalone_best_s", standalone_best);
    rec.push("engine_best_s", engine_best);
    rec.push("engine_speedup", speedup);
    rec.push("engine_maps_per_sec", engine_mps);
    rec.push("queue_wait_p99_ms", quantile(&queue_waits, 0.99) * 1e3);
    rec.push("service_p99_ms", quantile(&services, 0.99) * 1e3);
    rec.push("alloc.count", alloc.count);
    rec.push("alloc.bytes", alloc.bytes);
    metrics.emit(&rec);
    drop(run_span);
    metrics.emit(&obs_snapshot_record());
    metrics.finish();
    trace.finish();

    if smoke {
        println!("smoke mode: per-round bit-identity asserts passed, skipping {out_path}");
        return;
    }
    let path = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| std::path::PathBuf::from(d).join("../..").join(&out_path))
        .unwrap_or_else(|_| std::path::PathBuf::from(&out_path));
    std::fs::write(&path, &json).expect("write results");
    println!("wrote {}", path.display());
}
