//! Regenerates the §V-B model-accuracy experiment: trains the Fig. 3 CNN
//! on random maps of the two 16-bit adders and reports the 10-class and
//! binarised validation accuracies (paper: ≈ 34 % and ≈ 93.4 %).
//!
//! Usage:
//!   cargo run --release -p slap-bench --bin accuracy -- \
//!       [--maps 250] [--epochs 20] [--filters 128] [--keep 4] [--lr 0.002]
//!       [--seed 1] [--target asic|lut:k] [--passes strash,fold,sweep,balance]
//!       [--threads N] [--save model.txt] [--metrics-json out.jsonl]

use std::sync::Arc;

use slap_aig::Aig;
use slap_bench::metrics::{
    circuits_hash, library_hash, obs_snapshot_record, run_manifest, EpochMetrics, MetricsOut,
    TraceOut,
};
use slap_bench::{
    experiments_dir, init_threads, optimize_circuits, pass_pipeline_from_args, run_for_target,
    Args, TargetRunner, TargetSpec,
};
use slap_cell::Library;
use slap_circuits::catalog::Scale;
use slap_circuits::training_benchmarks;
use slap_core::{generate_dataset, LabelMode, SampleConfig, CUT_EMBED_COLS, CUT_EMBED_ROWS};
use slap_map::{MapOptions, Mapper, Target};
use slap_ml::{CnnConfig, CutCnn, Dataset, TrainConfig};

#[global_allocator]
static ALLOC: slap_obs::alloc::CountingAllocator = slap_obs::alloc::CountingAllocator;

fn main() {
    let args = Args::from_env();
    let target = TargetSpec::from_args(&args);
    run_for_target(target, MapOptions::default(), Main { args });
}

/// `main`'s [`TargetRunner`] continuation (a struct because the
/// continuation is generic over the target type).
struct Main {
    args: Args,
}

impl TargetRunner for Main {
    fn run<T: Target>(self, mapper: &Mapper<'_, T>, target: TargetSpec, library: Option<&Library>) {
        run(&self.args, mapper, target, library);
    }
}

fn run<T: Target>(
    args: &Args,
    mapper: &Mapper<'_, T>,
    target: TargetSpec,
    library: Option<&Library>,
) {
    let maps = args.get("maps", 250usize);
    let epochs = args.get("epochs", 20usize);
    let filters = args.get("filters", 128usize);
    let keep = args.get("keep", 4usize);
    let lr = args.get("lr", 2e-3f32);
    let seed = args.get("seed", 1u64);
    let label_mode = if args.has("peruse") {
        LabelMode::PerUse
    } else if args.has("nonegatives") {
        LabelMode::BestPerCut
    } else {
        LabelMode::BestPerCutWithNegatives
    };
    let threads = init_threads(args);
    let metrics = Arc::new(MetricsOut::from_arg(
        &args.get("metrics-json", String::new()),
    ));
    let trace = TraceOut::from_args(args);
    let run_span = slap_obs::span("accuracy");

    println!("== §V-B model accuracy: {maps} maps/circuit, keep {keep}, {epochs} epochs, {filters} filters ==");

    // The training circuits sample independently; build one dataset per
    // circuit across worker threads and merge in catalog order.
    let benches = training_benchmarks();
    let mut pipeline = pass_pipeline_from_args(args);
    let mut aigs: Vec<Aig> = slap_par::par_map(&benches, |_, b| b.build(Scale::Full));
    for line in optimize_circuits(&mut pipeline, &mut aigs) {
        eprintln!("{line}");
    }
    let aigs = aigs;
    let mut manifest = run_manifest("accuracy", threads, &target.name(), &pipeline.spec())
        .config("maps", maps)
        .config("epochs", epochs)
        .config("filters", filters)
        .config("keep", keep)
        .config("seed", seed)
        .input_hash("circuits", circuits_hash(&aigs));
    if let Some(lib) = library {
        manifest = manifest.input_hash("library", library_hash(lib));
    }
    metrics.emit(&manifest.into_record());
    let datagen_span = slap_obs::span("datagen");
    let parts = slap_par::par_map(&aigs, |i, aig| {
        let bench = &benches[i];
        let mut part = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
        let samples = generate_dataset(
            aig,
            mapper,
            &SampleConfig {
                maps,
                keep,
                seed,
                label_mode,
                cut_config: target.cut_config(),
                ..SampleConfig::default()
            },
            &mut part,
        )
        .expect("training circuit maps");
        (bench.name, samples, part)
    });
    drop(datagen_span);
    let mut dataset = Dataset::new(CUT_EMBED_ROWS, CUT_EMBED_COLS, 10);
    for (name, samples, part) in &parts {
        dataset.extend_from(part);
        let delays: Vec<f32> = samples.iter().map(|s| s.delay).collect();
        let min = delays.iter().copied().fold(f32::INFINITY, f32::min);
        let max = delays.iter().copied().fold(0.0f32, f32::max);
        println!(
            "  {}: {} distinct maps, delay {:.0}..{:.0} ps ({:.1}% spread)",
            name,
            samples.len(),
            min,
            max,
            (max / min - 1.0) * 100.0
        );
    }
    let counts = dataset.class_counts();
    let total = dataset.len().max(1);
    println!("  dataset: {} cut samples; class histogram:", dataset.len());
    for (c, n) in counts.iter().enumerate() {
        println!(
            "    class {c}: {:>6} ({:>5.1}%)",
            n,
            *n as f64 / total as f64 * 100.0
        );
    }
    let keep_share: usize = counts.iter().take(7).sum();
    println!(
        "  majority-class baseline: {:.1}% (10-class), {:.1}% (binarised keep-vs-discard)",
        counts.iter().max().copied().unwrap_or(0) as f64 / total as f64 * 100.0,
        (keep_share.max(total - keep_share)) as f64 / total as f64 * 100.0
    );

    let mut model = CutCnn::new(
        &CnnConfig {
            filters,
            ..CnnConfig::paper()
        },
        seed,
    );
    let progress = Some(Arc::new(EpochMetrics::new(metrics.clone(), true)) as _);
    let train_span = slap_obs::span("train");
    let report = model.train(
        &dataset,
        &TrainConfig {
            epochs,
            seed,
            learning_rate: lr,
            progress,
            ..TrainConfig::default()
        },
    );
    drop(train_span);

    println!("\nresults:");
    println!(
        "  data points            : {}",
        report.train_samples + report.val_samples
    );
    println!(
        "  train 10-class accuracy: {:.2}%",
        report.train_accuracy * 100.0
    );
    println!(
        "  val   10-class accuracy: {:.2}%   (paper: ~34%)",
        report.val_accuracy * 100.0
    );
    println!(
        "  val   binarised accuracy: {:.2}%  (paper: ~93.4%)",
        report.val_binary_accuracy * 100.0
    );
    println!("  final training loss    : {:.4}", report.final_loss);

    let mut rec = slap_obs::Record::new();
    rec.push("event", "summary");
    rec.push("maps", maps);
    rec.push("epochs", epochs);
    rec.push("filters", filters);
    rec.push("train_accuracy", report.train_accuracy);
    rec.push("val_accuracy", report.val_accuracy);
    rec.push("val_binary_accuracy", report.val_binary_accuracy);
    rec.push("final_loss", report.final_loss);
    metrics.emit(&rec);
    drop(run_span);
    metrics.emit(&obs_snapshot_record());
    metrics.finish();
    trace.finish();

    let path = experiments_dir().join(args.get("save", "model.txt".to_string()));
    std::fs::write(&path, model.to_text()).expect("write model");
    println!("\nwrote trained model to {}", path.display());
}
