//! A tiny hand-rolled microbenchmark harness.
//!
//! The workspace ships zero external dependencies, so instead of
//! Criterion the `benches/` targets are `harness = false` binaries built
//! on this module: warm up once, time a fixed number of iterations, and
//! report min/mean (the min is the stable number on a noisy machine).
//! Results can be serialized as JSONL [`Record`]s via slap-obs for
//! before/after comparisons (e.g. the instrumentation-overhead check in
//! DESIGN.md).

use std::time::Instant;

use slap_obs::Record;

/// Timing summary of one benchmarked closure.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Timed iterations (excluding warmup).
    pub iters: u32,
    /// Wall-clock total over all timed iterations, seconds.
    pub total_s: f64,
    /// Mean per-iteration time, seconds.
    pub mean_s: f64,
    /// Fastest iteration, seconds — the least noise-sensitive statistic.
    pub min_s: f64,
}

impl Measurement {
    /// The measurement as a JSONL-ready record.
    pub fn to_record(&self) -> Record {
        let mut r = Record::new();
        r.push("bench", self.name.as_str())
            .push("iters", u64::from(self.iters))
            .push("total_s", self.total_s)
            .push("mean_s", self.mean_s)
            .push("min_s", self.min_s);
        r
    }

    /// One aligned human-readable line.
    pub fn render(&self) -> String {
        format!(
            "{:<28} {:>4} iters  mean {:>10.3} ms  min {:>10.3} ms",
            self.name,
            self.iters,
            self.mean_s * 1e3,
            self.min_s * 1e3,
        )
    }
}

/// Runs `f` once unmeasured, then `iters` timed iterations.
///
/// # Panics
///
/// Panics if `iters == 0`.
pub fn measure<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> Measurement {
    assert!(iters > 0, "need at least one timed iteration");
    std::hint::black_box(f());
    let mut total_s = 0.0f64;
    let mut min_s = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total_s += dt;
        min_s = min_s.min(dt);
    }
    Measurement {
        name: name.to_string(),
        iters,
        total_s,
        mean_s: total_s / f64::from(iters),
        min_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_consistent_statistics() {
        let mut calls = 0u32;
        let m = measure("unit/test", 4, || {
            calls += 1;
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        assert_eq!(calls, 5, "one warmup + four timed");
        assert_eq!(m.iters, 4);
        assert!(m.min_s > 0.0);
        assert!(m.min_s <= m.mean_s);
        assert!((m.mean_s * 4.0 - m.total_s).abs() < 1e-9);
        let record = m.to_record();
        assert_eq!(
            record.get("bench").and_then(|v| v.as_str()),
            Some("unit/test")
        );
        assert_eq!(record.get("iters").and_then(|v| v.as_u64()), Some(4));
        assert!(m.render().contains("unit/test"));
    }
}
