//! The `slap-report` engine: parses metrics JSONL streams back into
//! structured runs, renders per-phase self/total time tables and
//! histogram quantiles, diffs two runs, and implements the CI
//! regression gate (`--check`).
//!
//! Everything here returns strings or data — the `slap-report` binary
//! does the printing. Input is exactly what [`crate::metrics`] emits:
//! a `run_manifest` first line, `circuit × mode` mapping records, and a
//! final `obs_snapshot` carrying the whole registry (span timers as
//! `<path>.count` / `<path>.ns` pairs, histograms as bucket arrays).
//!
//! The gate compares only *deterministic* metrics — QoR and structural
//! counts that DESIGN.md §8–§10 pin across thread counts and cache
//! modes — plus the manifest's input hashes and schema version.
//! Wall-clock times and allocation counts show up in diffs but never
//! fail the gate: CI timing noise would make it flaky.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use slap_obs::manifest::is_manifest;
use slap_obs::{parse_object, quantile_from_buckets, Value};

/// Metrics gated by [`check`]: deterministic per-`(circuit, mode)`
/// outputs of the mapper. A relative change beyond the tolerance on any
/// of these fails CI.
pub const GATED_METRICS: &[&str] = &[
    "area_um2",
    "delay_ps",
    "cuts_considered",
    "num_instances",
    "num_inverters",
];

/// One parsed mapping record (`circuit` × `mode`).
#[derive(Clone, Debug)]
pub struct MapRow {
    /// Circuit name.
    pub circuit: String,
    /// Mapping mode (`abc-default`, `slap`, …).
    pub mode: String,
    fields: Vec<(String, Value)>,
}

impl MapRow {
    /// A numeric field of the record, if present.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_f64())
    }
}

/// One parsed metrics stream.
#[derive(Clone, Debug, Default)]
pub struct Run {
    /// Display label (usually the file path).
    pub label: String,
    /// The `run_manifest` fields, when the stream had one.
    pub manifest: Vec<(String, Value)>,
    /// Mapping records in stream order.
    pub maps: Vec<MapRow>,
    /// The final `obs_snapshot` fields, when present.
    pub snapshot: Vec<(String, Value)>,
    /// Total parsed lines.
    pub lines: usize,
}

impl Run {
    /// A manifest field by name.
    pub fn manifest_field(&self, key: &str) -> Option<&Value> {
        self.manifest.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The mapping row for `(circuit, mode)`.
    pub fn map(&self, circuit: &str, mode: &str) -> Option<&MapRow> {
        self.maps
            .iter()
            .find(|m| m.circuit == circuit && m.mode == mode)
    }

    /// Summed `total_s` across every mapping record — the run's mapping
    /// wall time (diffed but never gated).
    pub fn total_map_seconds(&self) -> f64 {
        self.maps.iter().filter_map(|m| m.num("total_s")).sum()
    }
}

/// Parses one metrics JSONL stream. Unknown events are counted but kept
/// out of the structured fields; malformed lines are errors.
///
/// # Errors
///
/// Returns a message naming the offending line on parse failure.
pub fn parse_run(text: &str, label: &str) -> Result<Run, String> {
    let mut run = Run {
        label: label.to_string(),
        ..Run::default()
    };
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields =
            parse_object(line).map_err(|e| format!("{label}:{}: bad JSONL: {e:?}", i + 1))?;
        run.lines += 1;
        let get_str = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_str().map(str::to_string))
        };
        let event = get_str("event");
        if is_manifest(&fields) {
            run.manifest = fields;
        } else if event.as_deref() == Some("obs_snapshot") {
            run.snapshot = fields;
        } else if let (Some(circuit), Some(mode)) = (get_str("circuit"), get_str("mode")) {
            run.maps.push(MapRow {
                circuit,
                mode,
                fields,
            });
        }
    }
    Ok(run)
}

/// Reads and parses a metrics JSONL file.
///
/// # Errors
///
/// Returns a message on I/O or parse failure.
pub fn load_run(path: &str) -> Result<Run, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_run(&text, path)
}

/// One row of the phase-time table: a span timer with its total time and
/// the *self* portion (total minus direct children).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseRow {
    /// Slash-joined span path.
    pub path: String,
    /// Number of recorded spans.
    pub count: u64,
    /// Summed wall time, nanoseconds.
    pub total_ns: u64,
    /// Total minus the summed totals of direct children.
    pub self_ns: u64,
}

/// Extracts the span timers from `obs_snapshot` fields (the
/// `<path>.count` / `<path>.ns` pairs) and computes self times. Sorted
/// by path, so parents precede children.
pub fn phase_table(snapshot: &[(String, Value)]) -> Vec<PhaseRow> {
    let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for (key, value) in snapshot {
        if let (Some(stem), Some(v)) = (key.strip_suffix(".count"), value.as_u64()) {
            counts.insert(stem, v);
        } else if let (Some(stem), Some(v)) = (key.strip_suffix(".ns"), value.as_u64()) {
            totals.insert(stem, v);
        }
    }
    // A timer is a stem with BOTH suffixes — that rules out plain
    // counters/gauges that merely end in ".count" (e.g. "alloc.count").
    let mut child_ns: BTreeMap<&str, u64> = BTreeMap::new();
    let timers: Vec<&str> = totals
        .keys()
        .copied()
        .filter(|stem| counts.contains_key(stem))
        .collect();
    for &path in &timers {
        if let Some((parent, _)) = path.rsplit_once('/') {
            if totals.contains_key(parent) && counts.contains_key(parent) {
                *child_ns.entry(parent).or_insert(0) += totals[path];
            }
        }
    }
    timers
        .into_iter()
        .map(|path| {
            let total_ns = totals[path];
            PhaseRow {
                path: path.to_string(),
                count: counts[path],
                total_ns,
                self_ns: total_ns.saturating_sub(child_ns.get(path).copied().unwrap_or(0)),
            }
        })
        .collect()
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders one run: manifest summary, the phase self/total table, map
/// QoR rows, and histogram p50/p99 estimates from the snapshot.
pub fn render_report(run: &Run) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "run: {}", run.label);
    if run.manifest.is_empty() {
        let _ = writeln!(out, "  (no run_manifest record)");
    } else {
        for key in ["bin", "slap_version", "threads", "cache", "trace"] {
            if let Some(v) = run.manifest_field(key) {
                let _ = writeln!(out, "  {key}: {v}");
            }
        }
        for (key, value) in &run.manifest {
            if key.ends_with("_hash") {
                let _ = writeln!(out, "  {key}: {value}");
            }
        }
    }

    if !run.maps.is_empty() {
        let _ = writeln!(out, "\nmappings ({}):", run.maps.len());
        let _ = writeln!(
            out,
            "  {:<16} {:<14} {:>12} {:>12} {:>10}",
            "circuit", "mode", "area_um2", "delay_ps", "total_s"
        );
        for m in &run.maps {
            let _ = writeln!(
                out,
                "  {:<16} {:<14} {:>12.2} {:>12.1} {:>10.4}",
                m.circuit,
                m.mode,
                m.num("area_um2").unwrap_or(f64::NAN),
                m.num("delay_ps").unwrap_or(f64::NAN),
                m.num("total_s").unwrap_or(f64::NAN),
            );
        }
    }

    let phases = phase_table(&run.snapshot);
    if !phases.is_empty() {
        let _ = writeln!(out, "\nphases (ms):");
        let _ = writeln!(
            out,
            "  {:<48} {:>8} {:>12} {:>12}",
            "span", "count", "total", "self"
        );
        for p in &phases {
            let _ = writeln!(
                out,
                "  {:<48} {:>8} {:>12} {:>12}",
                p.path,
                p.count,
                fmt_ms(p.total_ns),
                fmt_ms(p.self_ns)
            );
        }
    }

    let mut hist_lines = Vec::new();
    for (key, value) in &run.snapshot {
        if let Some(items) = value.as_array() {
            let buckets: Vec<u64> = items.iter().filter_map(Value::as_u64).collect();
            if buckets.len() == items.len() {
                if let (Some(p50), Some(p99)) = (
                    quantile_from_buckets(&buckets, 0.50),
                    quantile_from_buckets(&buckets, 0.99),
                ) {
                    hist_lines.push(format!("  {:<48} {:>12.1} {:>12.1}", key, p50, p99));
                }
            }
        }
    }
    if !hist_lines.is_empty() {
        let _ = writeln!(out, "\nhistograms (log2-bucket estimates):");
        let _ = writeln!(out, "  {:<48} {:>12} {:>12}", "histogram", "~p50", "~p99");
        for line in hist_lines {
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

fn pct_change(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        if to == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (to - from) / from * 100.0
    }
}

/// Renders a field-by-field comparison of two runs: QoR and wall time
/// per shared `(circuit, mode)`, plus total mapping time. Informational
/// only — gating is [`check`]'s job.
pub fn render_diff(base: &Run, new: &Run) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "diff: {} -> {}", base.label, new.label);
    let _ = writeln!(
        out,
        "  {:<16} {:<14} {:<16} {:>12} {:>12} {:>9}",
        "circuit", "mode", "metric", "base", "new", "delta%"
    );
    for b in &base.maps {
        let Some(n) = new.map(&b.circuit, &b.mode) else {
            let _ = writeln!(
                out,
                "  {:<16} {:<14} (missing in new run)",
                b.circuit, b.mode
            );
            continue;
        };
        for metric in ["area_um2", "delay_ps", "total_s", "alloc.count"] {
            if let (Some(vb), Some(vn)) = (b.num(metric), n.num(metric)) {
                let delta = pct_change(vb, vn);
                if metric == "total_s" || metric == "alloc.count" || delta.abs() > 1e-9 {
                    let _ = writeln!(
                        out,
                        "  {:<16} {:<14} {:<16} {:>12.3} {:>12.3} {:>+8.2}%",
                        b.circuit, b.mode, metric, vb, vn, delta
                    );
                }
            }
        }
    }
    let (tb, tn) = (base.total_map_seconds(), new.total_map_seconds());
    let _ = writeln!(
        out,
        "  total mapping seconds: {tb:.4} -> {tn:.4} ({:+.2}%)",
        pct_change(tb, tn)
    );
    out
}

/// The outcome of a regression check.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Human-readable failures, each naming the offending metric. Empty
    /// means the gate passes.
    pub failures: Vec<String>,
    /// Number of `(circuit, mode, metric)` comparisons performed.
    pub compared: usize,
}

impl CheckReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The mapping target a run's manifest declares. Streams written before
/// the manifest carried a `target` field are all ASIC runs, so absence
/// defaults to `"asic"`.
pub fn run_target(run: &Run) -> &str {
    run.manifest_field("target")
        .and_then(Value::as_str)
        .unwrap_or("asic")
}

/// The inference kernel tier a run's manifest declares. Streams written
/// before the manifest carried a `kernel` field all used the f32
/// kernels, so absence defaults to `"f32"`.
pub fn run_kernel(run: &Run) -> &str {
    run.manifest_field("kernel")
        .and_then(Value::as_str)
        .unwrap_or("f32")
}

/// The pre-mapping optimization pipeline a run's manifest declares.
/// Streams written before the manifest carried a `passes` field never
/// optimized their subject graphs, so absence defaults to `"none"`.
pub fn run_passes(run: &Run) -> &str {
    run.manifest_field("passes")
        .and_then(Value::as_str)
        .unwrap_or("none")
}

/// The CI regression gate: compares `current` against `baseline`,
/// failing on
///
/// * manifest `target` mismatches (an ASIC stream can never gate a LUT
///   stream or vice versa — the QoR units aren't even the same);
/// * manifest `kernel` mismatches (the int8 tier is QoR-equivalent,
///   not bit-identical, to f32 — diffing across tiers would either
///   mask real regressions or flag expected divergence);
/// * manifest `passes` mismatches (an optimized subject graph has
///   different node counts, cut spaces, and QoR than the raw graph —
///   cross-pipeline comparison would flag the optimization itself as a
///   regression or mask a real one behind it);
/// * manifest input-hash or `schema_version` mismatches (the runs
///   mapped different inputs — QoR comparison would be meaningless);
/// * baseline `(circuit, mode)` rows missing from the current run;
/// * any [`GATED_METRICS`] value differing by more than
///   `tolerance_pct` percent (QoR is deterministic, so the tolerance
///   exists only for float formatting slack — CI uses a small one).
pub fn check(current: &Run, baseline: &Run, tolerance_pct: f64) -> CheckReport {
    let mut report = CheckReport::default();
    let (ct, bt) = (run_target(current), run_target(baseline));
    if ct != bt {
        report.failures.push(format!(
            "manifest target mismatch: baseline {bt:?}, current {ct:?}"
        ));
    }
    let (ck, bk) = (run_kernel(current), run_kernel(baseline));
    if ck != bk {
        report.failures.push(format!(
            "manifest kernel mismatch: baseline {bk:?}, current {ck:?}"
        ));
    }
    let (cp, bp) = (run_passes(current), run_passes(baseline));
    if cp != bp {
        report.failures.push(format!(
            "manifest passes mismatch: baseline {bp:?}, current {cp:?}"
        ));
    }
    for (key, base_value) in &baseline.manifest {
        if key == "schema_version" || key.ends_with("_hash") {
            match current.manifest_field(key) {
                Some(v) if v == base_value => {}
                Some(v) => report.failures.push(format!(
                    "manifest {key} mismatch: baseline {base_value}, current {v}"
                )),
                None => report
                    .failures
                    .push(format!("manifest {key} missing from current run")),
            }
        }
    }
    if baseline.maps.is_empty() {
        report
            .failures
            .push("baseline has no mapping records".to_string());
    }
    for b in &baseline.maps {
        let Some(c) = current.map(&b.circuit, &b.mode) else {
            report.failures.push(format!(
                "missing mapping record for {} / {}",
                b.circuit, b.mode
            ));
            continue;
        };
        for &metric in GATED_METRICS {
            let (Some(vb), Some(vc)) = (b.num(metric), c.num(metric)) else {
                continue;
            };
            report.compared += 1;
            let delta = pct_change(vb, vc);
            if delta.abs() > tolerance_pct {
                report.failures.push(format!(
                    "{} / {}: {metric} regressed {delta:+.3}% (baseline {vb}, current {vc}, \
                     tolerance {tolerance_pct}%)",
                    b.circuit, b.mode
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        r#"{"event":"run_manifest","schema_version":1,"bin":"table2","slap_version":"0.1.0","host_cpus":8,"threads":4,"cache":true,"trace":false,"circuits_hash":"00000000deadbeef","library_hash":"0000000000000007"}"#,
        "\n",
        r#"{"circuit":"c17","mode":"slap","area_um2":10.0,"delay_ps":50.0,"cuts_considered":100,"num_instances":4,"num_inverters":1,"total_s":0.5,"alloc.count":1000}"#,
        "\n",
        r#"{"circuit":"c17","mode":"abc-default","area_um2":12.0,"delay_ps":55.0,"cuts_considered":90,"num_instances":5,"num_inverters":1,"total_s":0.4,"alloc.count":900}"#,
        "\n",
        r#"{"event":"obs_snapshot","alloc.count":2000,"cuts.per_node":[0,2,4,2],"table2.count":1,"table2.ns":100000000,"table2/map.count":2,"table2/map.ns":60000000,"table2/map/cover.count":2,"table2/map/cover.ns":25000000}"#,
        "\n",
    );

    fn sample_run() -> Run {
        parse_run(SAMPLE, "sample").expect("parses")
    }

    #[test]
    fn parse_splits_records_by_kind() {
        let run = sample_run();
        assert_eq!(run.lines, 4);
        assert!(is_manifest(&run.manifest));
        assert_eq!(run.maps.len(), 2);
        assert_eq!(run.maps[0].circuit, "c17");
        assert_eq!(run.maps[0].mode, "slap");
        assert_eq!(run.maps[0].num("area_um2"), Some(10.0));
        assert!(!run.snapshot.is_empty());
        assert!((run.total_map_seconds() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let err = parse_run("{\"a\":1}\nnot json\n", "bad").unwrap_err();
        assert!(err.contains("bad:2"), "{err}");
    }

    #[test]
    fn phase_table_computes_self_time_and_skips_non_timers() {
        let run = sample_run();
        let phases = phase_table(&run.snapshot);
        let paths: Vec<&str> = phases.iter().map(|p| p.path.as_str()).collect();
        // "alloc" has a .count but no .ns: not a timer.
        assert_eq!(paths, ["table2", "table2/map", "table2/map/cover"]);
        assert_eq!(phases[0].total_ns, 100_000_000);
        assert_eq!(phases[0].self_ns, 40_000_000, "minus table2/map");
        assert_eq!(phases[1].self_ns, 35_000_000, "minus cover");
        assert_eq!(phases[2].self_ns, 25_000_000, "leaf keeps everything");
    }

    #[test]
    fn report_renders_phases_maps_and_histograms() {
        let text = render_report(&sample_run());
        assert!(text.contains("bin"), "{text}");
        assert!(text.contains("circuits_hash"), "{text}");
        assert!(text.contains("c17"), "{text}");
        assert!(text.contains("table2/map/cover"), "{text}");
        assert!(text.contains("cuts.per_node"), "{text}");
    }

    #[test]
    fn check_passes_against_itself() {
        let run = sample_run();
        let report = check(&run, &run, 0.01);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.compared, 10, "5 gated metrics x 2 rows");
    }

    #[test]
    fn check_fails_on_regressed_metric_naming_it() {
        let baseline = sample_run();
        let doctored = SAMPLE.replace("\"area_um2\":10.0", "\"area_um2\":15.0");
        let current = parse_run(&doctored, "doctored").expect("parses");
        let report = check(&current, &baseline, 2.0);
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(
            report.failures[0].contains("area_um2"),
            "{:?}",
            report.failures
        );
        assert!(report.failures[0].contains("c17"), "{:?}", report.failures);
        // Within tolerance passes.
        let slight = SAMPLE.replace("\"area_um2\":10.0", "\"area_um2\":10.0001");
        let near = parse_run(&slight, "near").expect("parses");
        assert!(check(&near, &baseline, 2.0).passed());
    }

    #[test]
    fn check_fails_on_hash_mismatch_and_missing_rows() {
        let baseline = sample_run();
        let other_input = SAMPLE.replace("00000000deadbeef", "00000000deadbea7");
        let current = parse_run(&other_input, "other").expect("parses");
        let report = check(&current, &baseline, 2.0);
        assert!(
            report.failures.iter().any(|f| f.contains("circuits_hash")),
            "{:?}",
            report.failures
        );

        let mut missing = String::new();
        for line in SAMPLE.lines().filter(|l| !l.contains("abc-default")) {
            missing.push_str(line);
            missing.push('\n');
        }
        let current = parse_run(&missing, "missing").expect("parses");
        let report = check(&current, &baseline, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("abc-default") && f.contains("missing")));
    }

    #[test]
    fn check_fails_on_target_mismatch_defaulting_absent_to_asic() {
        let baseline = sample_run();
        assert_eq!(run_target(&baseline), "asic", "absent target is asic");
        let lut = SAMPLE.replace("\"trace\":false", "\"trace\":false,\"target\":\"lut:6\"");
        let current = parse_run(&lut, "lut").expect("parses");
        assert_eq!(run_target(&current), "lut:6");
        let report = check(&current, &baseline, 2.0);
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("target mismatch") && f.contains("lut:6")),
            "{:?}",
            report.failures
        );
        // An explicit "asic" still matches a pre-target baseline.
        let asic = SAMPLE.replace("\"trace\":false", "\"trace\":false,\"target\":\"asic\"");
        let current = parse_run(&asic, "asic").expect("parses");
        assert!(check(&current, &baseline, 2.0).passed());
    }

    #[test]
    fn check_fails_on_kernel_mismatch_defaulting_absent_to_f32() {
        let baseline = sample_run();
        assert_eq!(run_kernel(&baseline), "f32", "absent kernel is f32");
        let int8 = SAMPLE.replace("\"trace\":false", "\"trace\":false,\"kernel\":\"int8\"");
        let current = parse_run(&int8, "int8").expect("parses");
        assert_eq!(run_kernel(&current), "int8");
        let report = check(&current, &baseline, 2.0);
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("kernel mismatch") && f.contains("int8")),
            "{:?}",
            report.failures
        );
        // Symmetric: an f32 run can't gate an int8 baseline either.
        let report = check(&baseline, &current, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("kernel mismatch")));
        // An explicit "f32" still matches a pre-kernel baseline.
        let f32_run = SAMPLE.replace("\"trace\":false", "\"trace\":false,\"kernel\":\"f32\"");
        let current = parse_run(&f32_run, "f32").expect("parses");
        assert!(check(&current, &baseline, 2.0).passed());
        // Two int8 runs gate each other fine.
        let a = parse_run(&int8, "a").expect("parses");
        let b = parse_run(&int8, "b").expect("parses");
        assert!(check(&a, &b, 2.0).passed());
    }

    #[test]
    fn check_fails_on_passes_mismatch_defaulting_absent_to_none() {
        let baseline = sample_run();
        assert_eq!(run_passes(&baseline), "none", "absent passes is none");
        let opt = SAMPLE.replace(
            "\"trace\":false",
            "\"trace\":false,\"passes\":\"strash,fold,sweep,balance\"",
        );
        let current = parse_run(&opt, "opt").expect("parses");
        assert_eq!(run_passes(&current), "strash,fold,sweep,balance");
        let report = check(&current, &baseline, 2.0);
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("passes mismatch") && f.contains("strash")),
            "{:?}",
            report.failures
        );
        // Symmetric: an opt-off run can't gate an optimized baseline.
        let report = check(&baseline, &current, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("passes mismatch")));
        // An explicit "none" still matches a pre-passes baseline.
        let none = SAMPLE.replace("\"trace\":false", "\"trace\":false,\"passes\":\"none\"");
        let current = parse_run(&none, "none").expect("parses");
        assert!(check(&current, &baseline, 2.0).passed());
        // Two optimized runs with the same pipeline gate each other fine.
        let a = parse_run(&opt, "a").expect("parses");
        let b = parse_run(&opt, "b").expect("parses");
        assert!(check(&a, &b, 2.0).passed());
    }

    #[test]
    fn diff_reports_changes() {
        let baseline = sample_run();
        let faster = SAMPLE.replace("\"total_s\":0.5", "\"total_s\":0.25");
        let current = parse_run(&faster, "faster").expect("parses");
        let text = render_diff(&baseline, &current);
        assert!(text.contains("total_s"), "{text}");
        assert!(text.contains("-50.00%"), "{text}");
    }
}
