//! Shared harness code for the experiment binaries.
//!
//! Each binary regenerates one table or figure of the paper:
//!
//! * `table2` — Table II (14 circuits × {ABC default, ABC unlimited,
//!   SLAP}: area, delay, cuts, ratios, geomean);
//! * `fig1` — the 2-D QoR scatter of random-shuffle mappings;
//! * `accuracy` — the §V-B model-accuracy numbers;
//! * `fig5` — the permutation feature-importance bars.
//!
//! Outputs land under `experiments/` in the workspace root (CSV + the
//! printed tables recorded in `EXPERIMENTS.md`).

pub mod metrics;
pub mod microbench;
pub mod report;

use std::sync::Arc;

use slap_aig::Aig;
use slap_circuits::training_benchmarks;
use slap_core::{train_slap_model, PipelineConfig, SampleConfig};
use slap_cuts::CutConfig;
use slap_map::{Mapper, Target};
use slap_ml::{CnnConfig, CutCnn, KernelTier, ProgressSink, TrainConfig, TrainReport};

/// One mapped result row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Qor {
    /// Cell area in µm².
    pub area: f64,
    /// STA delay in ps.
    pub delay: f64,
    /// Cuts exposed to Boolean matching.
    pub cuts: usize,
}

impl Qor {
    /// Area-delay product.
    pub fn adp(&self) -> f64 {
        self.area * self.delay
    }
}

/// Geometric mean of a sequence (positive values).
pub fn geomean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean requires positive values");
        sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (sum / n as f64).exp()
}

/// Simple `--key value` / `--flag` argument scanner for the binaries.
#[derive(Clone, Debug, Default)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn from_env() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from explicit strings (tests).
    pub fn from_vec(raw: Vec<String>) -> Args {
        Args { raw }
    }

    /// The value following `--name`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let key = format!("--{name}");
        self.raw
            .iter()
            .position(|a| *a == key)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether the bare flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let key = format!("--{name}");
        self.raw.contains(&key)
    }
}

/// Which mapping target a binary runs against, parsed from the
/// `--target {asic,lut:k}` flag shared by the experiment binaries. The
/// spec is only a *description* — binaries turn it into a concrete
/// [`Mapper`] / [`slap_map::LutMapper`] and dispatch generically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetSpec {
    /// The default ASIC cell target (genlib library + NPN matching).
    Asic,
    /// A k-input LUT FPGA target: any cut with ≤ k leaves is a match.
    Lut(usize),
}

impl TargetSpec {
    /// Parses `"asic"` or `"lut:k"` (e.g. `"lut:6"`).
    ///
    /// # Errors
    ///
    /// Returns a usage message on anything else.
    pub fn parse(s: &str) -> Result<TargetSpec, String> {
        if s == "asic" {
            return Ok(TargetSpec::Asic);
        }
        if let Some(k) = s.strip_prefix("lut:") {
            let k: usize = k
                .parse()
                .map_err(|_| format!("bad LUT size in --target {s:?} (want lut:k, e.g. lut:6)"))?;
            return Ok(TargetSpec::Lut(k));
        }
        Err(format!("unknown --target {s:?} (want asic or lut:k)"))
    }

    /// Reads the `--target` flag (default `asic`).
    ///
    /// # Panics
    ///
    /// Panics with the usage message on a malformed value.
    pub fn from_args(args: &Args) -> TargetSpec {
        let raw = args.get("target", "asic".to_string());
        TargetSpec::parse(&raw).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The canonical name carried by run manifests (`"asic"`, `"lut:6"`).
    pub fn name(&self) -> String {
        match self {
            TargetSpec::Asic => "asic".to_string(),
            TargetSpec::Lut(k) => format!("lut:{k}"),
        }
    }

    /// The cut-enumeration config matching the target: the LUT target
    /// enumerates k-feasible cuts for its own k.
    pub fn cut_config(&self) -> CutConfig {
        match self {
            TargetSpec::Asic => CutConfig::default(),
            TargetSpec::Lut(k) => CutConfig::with_k(*k),
        }
    }

    /// Column labels for QoR tables: `(area, delay)` for ASIC runs,
    /// `(LUTs, depth)` for LUT runs (unit cost model: area = LUT count,
    /// delay = logic depth in levels).
    pub fn qor_labels(&self) -> (&'static str, &'static str) {
        match self {
            TargetSpec::Asic => ("area", "delay"),
            TargetSpec::Lut(_) => ("LUTs", "depth"),
        }
    }
}

/// The target-generic continuation of a binary's `main()`: implemented
/// once per binary (usually forwarding to its `fn run<T: Target>`),
/// invoked by [`run_for_target`] with the concrete mapper. A trait
/// rather than a closure because the continuation itself is generic
/// over the target type.
pub trait TargetRunner {
    /// Runs the binary against the concrete mapper. `library` is the
    /// genlib library for ASIC targets (`None` for LUT targets, which
    /// have no library to hash into manifests).
    fn run<T: Target>(
        self,
        mapper: &Mapper<'_, T>,
        target: TargetSpec,
        library: Option<&slap_cell::Library>,
    );
}

/// Builds the concrete mapper for `target` and hands it to `runner` —
/// the one shared copy of the `--target` dispatch match that every
/// experiment binary's `main()` used to repeat (construct `asap7_mini`
/// + [`Mapper`] for ASIC, [`slap_map::LutMapper`] for `lut:k`).
pub fn run_for_target<R: TargetRunner>(
    target: TargetSpec,
    options: slap_map::MapOptions,
    runner: R,
) {
    match target {
        TargetSpec::Asic => {
            let library = slap_cell::asap7_mini();
            let mapper = Mapper::new(&library, options);
            runner.run(&mapper, target, Some(&library));
        }
        TargetSpec::Lut(k) => {
            let mapper = slap_map::LutMapper::lut(k, options);
            runner.run(&mapper, target, None);
        }
    }
}

/// Reads the `--kernel {f32,int8}` flag (default `f32`) shared by the
/// inference binaries. The chosen tier goes into [`SlapConfig::kernel`]
/// and the run manifest (`RunManifest::kernel`), so `slap-report
/// --check` can refuse cross-tier comparisons.
///
/// [`SlapConfig::kernel`]: slap_core::SlapConfig
///
/// # Panics
///
/// Panics with the usage message on a malformed value.
pub fn kernel_tier_from_args(args: &Args) -> KernelTier {
    let raw = args.get("kernel", "f32".to_string());
    KernelTier::parse(&raw).unwrap_or_else(|e| panic!("{e}"))
}

/// Reads the `--passes` flag (default: no optimization) shared by the
/// experiment binaries and parses it into a pre-mapping optimization
/// pipeline. The pipeline's canonical spec goes into the run manifest
/// (`RunManifest::passes`), so `slap-report --check` can refuse
/// cross-pipeline comparisons.
///
/// # Panics
///
/// Panics with the parser's message on an unknown pass name.
pub fn pass_pipeline_from_args(args: &Args) -> slap_opt::PassPipeline {
    let raw = args.get("passes", String::new());
    slap_opt::PassPipeline::parse(&raw).unwrap_or_else(|e| panic!("{e}"))
}

/// Optimizes every circuit in place through `pipeline`, returning one
/// preformatted per-circuit reduction line for the caller (a binary)
/// to print. The empty pipeline is a strict no-op — the slots are
/// never touched and no lines are produced, so opt-off runs stay
/// bit-identical to binaries that predate the pipeline.
#[must_use]
pub fn optimize_circuits(pipeline: &mut slap_opt::PassPipeline, aigs: &mut [Aig]) -> Vec<String> {
    if pipeline.is_empty() {
        return Vec::new();
    }
    let _s = slap_obs::span("optimize_circuits");
    let mut lines = Vec::with_capacity(aigs.len());
    for slot in aigs.iter_mut() {
        let input = std::mem::replace(slot, Aig::new());
        let (opt, report) = pipeline.optimize(input);
        lines.push(format!(
            "  opt {:<14} ands {} -> {}, depth {} -> {} ({:.3}s)",
            opt.name(),
            report.ands_in,
            report.ands_out,
            report.depth_in,
            report.depth_out,
            report.seconds
        ));
        *slot = opt;
    }
    lines
}

/// Applies the `--threads N` override and returns the effective worker
/// count. Without the flag the count falls back to the `SLAP_THREADS`
/// environment variable, then to the machine's available parallelism.
pub fn init_threads(args: &Args) -> usize {
    let n = args.get("threads", 0usize);
    if n > 0 {
        slap_par::set_threads(n);
    }
    slap_par::threads()
}

/// Trains the paper's model on the two 16-bit adders (§V-A/§V-B).
/// Returns the model and its accuracy report. Per-epoch progress goes to
/// `progress` (`None` = silent); binaries that want a display pass
/// `Some(Arc::new(StderrProgress))`.
pub fn train_paper_model<T: Target>(
    mapper: &Mapper<'_, T>,
    cut_config: &CutConfig,
    maps_per_circuit: usize,
    epochs: usize,
    filters: usize,
    seed: u64,
    progress: Option<Arc<dyn ProgressSink>>,
) -> (CutCnn, TrainReport) {
    train_paper_model_tuned(
        mapper,
        cut_config,
        maps_per_circuit,
        epochs,
        filters,
        seed,
        progress,
        4,
        2e-3,
    )
}

/// [`train_paper_model`] with explicit shuffle-keep and learning-rate
/// knobs (exposed for the harness' tuning flags).
#[allow(clippy::too_many_arguments)]
pub fn train_paper_model_tuned<T: Target>(
    mapper: &Mapper<'_, T>,
    cut_config: &CutConfig,
    maps_per_circuit: usize,
    epochs: usize,
    filters: usize,
    seed: u64,
    progress: Option<Arc<dyn ProgressSink>>,
    keep: usize,
    learning_rate: f32,
) -> (CutCnn, TrainReport) {
    let circuits: Vec<Aig> = training_benchmarks()
        .iter()
        .map(|b| b.build(slap_circuits::catalog::Scale::Full))
        .collect();
    let config = PipelineConfig {
        sample: SampleConfig {
            maps: maps_per_circuit,
            keep,
            seed,
            cut_config: cut_config.clone(),
            ..SampleConfig::default()
        },
        train: TrainConfig {
            epochs,
            seed,
            progress,
            learning_rate,
            ..TrainConfig::default()
        },
        model: CnnConfig {
            filters,
            ..CnnConfig::paper()
        },
        model_seed: seed,
    };
    train_slap_model(&circuits, mapper, &config)
}

/// Ensures the `experiments/` output directory exists and returns its
/// path.
pub fn experiments_dir() -> std::path::PathBuf {
    // The binaries run from the workspace (cargo sets CARGO_MANIFEST_DIR
    // for the crate; experiments/ lives two levels up).
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| std::path::PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    let dir = base.join("experiments");
    std::fs::create_dir_all(&dir).expect("can create experiments dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(Vec::<f64>::new()), 0.0);
    }

    #[test]
    fn qor_adp() {
        let q = Qor {
            area: 2.0,
            delay: 3.0,
            cuts: 5,
        };
        assert_eq!(q.adp(), 6.0);
    }

    #[test]
    fn args_parsing() {
        let a = Args::from_vec(vec!["--maps".into(), "42".into(), "--full".into()]);
        assert_eq!(a.get("maps", 7usize), 42);
        assert_eq!(a.get("epochs", 7usize), 7);
        assert!(a.has("full"));
        assert!(!a.has("quick"));
    }

    #[test]
    fn target_spec_parses_and_names() {
        assert_eq!(TargetSpec::parse("asic"), Ok(TargetSpec::Asic));
        assert_eq!(TargetSpec::parse("lut:6"), Ok(TargetSpec::Lut(6)));
        assert!(TargetSpec::parse("fpga").is_err());
        assert!(TargetSpec::parse("lut:x").is_err());
        assert_eq!(TargetSpec::Asic.name(), "asic");
        assert_eq!(TargetSpec::Lut(4).name(), "lut:4");
        assert_eq!(TargetSpec::Lut(4).cut_config().k, 4);
        assert_eq!(TargetSpec::Lut(4).qor_labels(), ("LUTs", "depth"));
        // Flag plumbing: default asic, explicit lut:k.
        let args = Args::from_vec(vec!["--target".into(), "lut:5".into()]);
        assert_eq!(TargetSpec::from_args(&args), TargetSpec::Lut(5));
        assert_eq!(
            TargetSpec::from_args(&Args::from_vec(vec![])),
            TargetSpec::Asic
        );
    }

    #[test]
    fn run_for_target_dispatches_both_targets() {
        struct Probe<'a> {
            seen: &'a mut Vec<(String, bool)>,
        }
        impl TargetRunner for Probe<'_> {
            fn run<T: Target>(
                self,
                mapper: &Mapper<'_, T>,
                target: TargetSpec,
                library: Option<&slap_cell::Library>,
            ) {
                let _ = mapper;
                self.seen.push((target.name(), library.is_some()));
            }
        }
        let mut seen = Vec::new();
        run_for_target(
            TargetSpec::Asic,
            slap_map::MapOptions::default(),
            Probe { seen: &mut seen },
        );
        run_for_target(
            TargetSpec::Lut(4),
            slap_map::MapOptions::default(),
            Probe { seen: &mut seen },
        );
        assert_eq!(
            seen,
            [("asic".to_string(), true), ("lut:4".to_string(), false)]
        );
    }

    #[test]
    fn kernel_tier_flag_parses_with_f32_default() {
        assert_eq!(
            kernel_tier_from_args(&Args::from_vec(vec![])),
            KernelTier::F32
        );
        let args = Args::from_vec(vec!["--kernel".into(), "int8".into()]);
        assert_eq!(kernel_tier_from_args(&args), KernelTier::Int8);
    }

    #[test]
    fn pass_pipeline_flag_parses_with_empty_default() {
        assert!(pass_pipeline_from_args(&Args::from_vec(vec![])).is_empty());
        let args = Args::from_vec(vec!["--passes".into(), "strash,balance".into()]);
        assert_eq!(pass_pipeline_from_args(&args).spec(), "strash,balance");
        let args = Args::from_vec(vec!["--passes".into(), "full".into()]);
        assert_eq!(pass_pipeline_from_args(&args).spec(), slap_opt::FULL_SPEC);
    }

    #[test]
    fn optimize_circuits_shrinks_in_place_and_empty_is_noop() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let x = aig.xor(a, b);
        let y = aig.xor(x, b); // == a
        aig.add_po(y);
        let mut aigs = vec![aig];
        let before = aigs[0].num_ands();
        let lines = optimize_circuits(
            &mut pass_pipeline_from_args(&Args::from_vec(vec![])),
            &mut aigs,
        );
        assert!(lines.is_empty(), "empty pipeline reports nothing");
        assert_eq!(aigs[0].num_ands(), before, "empty pipeline is a no-op");
        let args = Args::from_vec(vec!["--passes".into(), "full".into()]);
        let lines = optimize_circuits(&mut pass_pipeline_from_args(&args), &mut aigs);
        assert_eq!(lines.len(), 1, "one report line per circuit");
        assert_eq!(aigs[0].num_ands(), 0, "the XOR pair cancels");
    }

    #[test]
    fn init_threads_applies_flag() {
        let prev = slap_par::threads();
        let n = init_threads(&Args::from_vec(vec!["--threads".into(), "3".into()]));
        assert_eq!(n, 3);
        assert_eq!(slap_par::threads(), 3);
        // Without the flag the current setting is reported unchanged.
        assert_eq!(init_threads(&Args::from_vec(vec![])), 3);
        slap_par::set_threads(prev);
    }
}
