//! CNN inference throughput (the cost SLAP adds per considered cut).
//!
//! Hand-rolled `harness = false` bench (the workspace has no external
//! bench framework); run with `cargo bench -p slap-bench --bench
//! inference`. Measures the one-shot path and the batched kernel sweep
//! ([`CutCnn::predict_batch_into`]) at several batch sizes — the batched
//! numbers are what the two-pass SLAP flow pays per 64-cut chunk.

use slap_aig::Rng64;
use slap_bench::microbench::measure;
use slap_ml::{CnnConfig, CutCnn, InferenceScratch, QuantScratch, QuantizedCnn};

fn main() {
    let mut rng = Rng64::seed_from(7);
    let sample: Vec<f32> = (0..150).map(|_| rng.f32()).collect();
    for filters in [32usize, 64, 128] {
        let model = CutCnn::new(
            &CnnConfig {
                filters,
                ..CnnConfig::paper()
            },
            1,
        );
        let m = measure(&format!("inference/predict/{filters}-filters"), 100, || {
            model.predict(&sample)
        });
        println!("{}", m.render());
    }

    // Batched sweep: per-sample cost as the batch grows (64 is the SLAP
    // flow's chunk size). Bit-identical to the per-sample path, so the
    // delta is pure batching overhead amortization.
    let model = CutCnn::new(&CnnConfig::paper(), 1);
    for batch in [1usize, 16, 64, 256] {
        let xs: Vec<f32> = (0..batch * 150).map(|_| rng.f32()).collect();
        let mut scratch = InferenceScratch::new();
        let mut out: Vec<u8> = Vec::with_capacity(batch);
        let iters = (6400 / batch).max(10) as u32;
        let m = measure(&format!("inference/predict_batch/{batch}"), iters, || {
            out.clear();
            model.predict_batch_into(&xs, &mut scratch, &mut out);
        });
        println!(
            "{}  ({:.3} us/sample)",
            m.render(),
            m.min_s * 1e6 / batch as f64
        );
    }

    // The int8 tier at the same batch sizes: the delta vs the f32 sweep
    // above is what `--kernel int8` buys per scored cut.
    let quant = QuantizedCnn::from_model(&model);
    for batch in [1usize, 64, 256] {
        let xs: Vec<f32> = (0..batch * 150).map(|_| rng.f32()).collect();
        let mut scratch = QuantScratch::new();
        let mut out: Vec<u8> = Vec::with_capacity(batch);
        let iters = (6400 / batch).max(10) as u32;
        let m = measure(
            &format!("inference/predict_batch_i8/{batch}"),
            iters,
            || {
                out.clear();
                quant.predict_batch_into(&xs, &mut scratch, &mut out);
            },
        );
        println!(
            "{}  ({:.3} us/sample)",
            m.render(),
            m.min_s * 1e6 / batch as f64
        );
    }

    // Per-stage breakdown (batch of 64, paper shape, GEMM layout): where
    // a scored cut's microseconds actually go, f32 stages vs int8 stages.
    stage_breakdown(&mut rng);
}

fn stage_breakdown(rng: &mut Rng64) {
    use slap_ml::kernel;
    let (rows, cols, filters, classes) = (15usize, 10usize, 128usize, 10usize);
    let batch = 64usize;
    let bc = cols * batch; // GEMM column count: the batch laid sample-minor
    let hidden = filters * cols;
    let per = |m: &slap_bench::microbench::Measurement| m.min_s * 1e6 / batch as f64;
    let xt: Vec<f32> = (0..rows * bc).map(|_| rng.f32() * 12.0 - 6.0).collect();
    let conv_w: Vec<f32> = (0..filters * rows).map(|_| rng.f32() - 0.5).collect();
    let conv_b: Vec<f32> = (0..filters).map(|_| rng.f32() - 0.5).collect();
    let dense_w: Vec<f32> = (0..classes * hidden).map(|_| rng.f32() - 0.5).collect();
    let dense_b: Vec<f32> = (0..classes).map(|_| rng.f32() - 0.5).collect();
    let mut conv_out = vec![0.0f32; filters * bc];
    let mut logits = vec![0.0f32; batch * classes];
    let iters = 200;

    let m = measure("stage/f32/conv", iters, || {
        kernel::conv_rows(&xt, &conv_w, &conv_b, filters, rows, bc, &mut conv_out);
    });
    println!("{}  ({:.3} us/sample)", m.render(), per(&m));
    kernel::relu_inplace(&mut conv_out);
    let m = measure("stage/f32/dense", iters, || {
        kernel::dense_batch(&conv_out, &dense_w, &dense_b, batch, &mut logits);
    });
    println!("{}  ({:.3} us/sample)", m.render(), per(&m));
    let m = measure("stage/f32/softmax+argmax", iters, || {
        let mut last = 0;
        for row in logits.chunks_exact_mut(classes) {
            kernel::softmax_inplace(row);
            last = kernel::argmax(row);
        }
        last
    });
    println!("{}  ({:.3} us/sample)", m.render(), per(&m));

    let i8_vec = |rng: &mut Rng64, n: usize| -> Vec<i8> {
        (0..n)
            .map(|_| (rng.below(255) as i32 - 127) as i8)
            .collect()
    };
    let xq = i8_vec(rng, rows * bc);
    let wq = i8_vec(rng, filters * rows);
    let bq: Vec<i32> = (0..filters).map(|_| rng.below(1000) as i32 - 500).collect();
    let requant: Vec<f32> = (0..filters).map(|_| rng.f32() * 0.001).collect();
    let dq = i8_vec(rng, classes * hidden);
    let dscale: Vec<f32> = (0..classes).map(|_| rng.f32() * 0.001).collect();
    let mut acc = vec![0i32; filters * bc];
    let mut hq = vec![0i8; filters * bc];
    let mut xq_out = vec![0i8; rows * bc];

    let m = measure("stage/i8/quantize-input", iters, || {
        kernel::quantize_i8(&xt, 127.0 / 6.0, &mut xq_out);
    });
    println!("{}  ({:.3} us/sample)", m.render(), per(&m));
    let m = measure("stage/i8/conv", iters, || {
        kernel::conv_rows_i8(&xq, &wq, &bq, filters, rows, bc, &mut acc);
    });
    println!("{}  ({:.3} us/sample)", m.render(), per(&m));
    let m = measure("stage/i8/relu-requant", iters, || {
        kernel::relu_requant_i8(&acc, &requant, filters, bc, &mut hq);
    });
    println!("{}  ({:.3} us/sample)", m.render(), per(&m));
    let m = measure("stage/i8/dense", iters, || {
        kernel::dense_batch_i8(&hq, &dq, &dscale, &dense_b, batch, &mut logits);
    });
    println!("{}  ({:.3} us/sample)", m.render(), per(&m));
}
