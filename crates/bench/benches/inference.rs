//! CNN inference throughput (the cost SLAP adds per considered cut).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use slap_aig::Rng64;
use slap_ml::{CnnConfig, CutCnn};

fn bench_inference(c: &mut Criterion) {
    let mut rng = Rng64::seed_from(7);
    let sample: Vec<f32> = (0..150).map(|_| rng.f32()).collect();
    let mut g = c.benchmark_group("inference");
    for filters in [32usize, 64, 128] {
        let model = CutCnn::new(&CnnConfig { filters, ..CnnConfig::paper() }, 1);
        g.bench_function(format!("predict/{filters}-filters"), |b| {
            b.iter(|| model.predict(black_box(&sample)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
