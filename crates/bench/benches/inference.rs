//! CNN inference throughput (the cost SLAP adds per considered cut).
//!
//! Hand-rolled `harness = false` bench (the workspace has no external
//! bench framework); run with `cargo bench -p slap-bench --bench
//! inference`.

use slap_aig::Rng64;
use slap_bench::microbench::measure;
use slap_ml::{CnnConfig, CutCnn};

fn main() {
    let mut rng = Rng64::seed_from(7);
    let sample: Vec<f32> = (0..150).map(|_| rng.f32()).collect();
    for filters in [32usize, 64, 128] {
        let model = CutCnn::new(
            &CnnConfig {
                filters,
                ..CnnConfig::paper()
            },
            1,
        );
        let m = measure(&format!("inference/predict/{filters}-filters"), 100, || {
            model.predict(&sample)
        });
        println!("{}", m.render());
    }
}
