//! CNN inference throughput (the cost SLAP adds per considered cut).
//!
//! Hand-rolled `harness = false` bench (the workspace has no external
//! bench framework); run with `cargo bench -p slap-bench --bench
//! inference`. Measures the one-shot path and the batched kernel sweep
//! ([`CutCnn::predict_batch_into`]) at several batch sizes — the batched
//! numbers are what the two-pass SLAP flow pays per 64-cut chunk.

use slap_aig::Rng64;
use slap_bench::microbench::measure;
use slap_ml::{CnnConfig, CutCnn, InferenceScratch};

fn main() {
    let mut rng = Rng64::seed_from(7);
    let sample: Vec<f32> = (0..150).map(|_| rng.f32()).collect();
    for filters in [32usize, 64, 128] {
        let model = CutCnn::new(
            &CnnConfig {
                filters,
                ..CnnConfig::paper()
            },
            1,
        );
        let m = measure(&format!("inference/predict/{filters}-filters"), 100, || {
            model.predict(&sample)
        });
        println!("{}", m.render());
    }

    // Batched sweep: per-sample cost as the batch grows (64 is the SLAP
    // flow's chunk size). Bit-identical to the per-sample path, so the
    // delta is pure batching overhead amortization.
    let model = CutCnn::new(&CnnConfig::paper(), 1);
    for batch in [1usize, 16, 64, 256] {
        let xs: Vec<f32> = (0..batch * 150).map(|_| rng.f32()).collect();
        let mut scratch = InferenceScratch::new();
        let mut out: Vec<u8> = Vec::with_capacity(batch);
        let iters = (6400 / batch).max(10) as u32;
        let m = measure(&format!("inference/predict_batch/{batch}"), iters, || {
            out.clear();
            model.predict_batch_into(&xs, &mut scratch, &mut out);
        });
        println!(
            "{}  ({:.3} us/sample)",
            m.render(),
            m.min_s * 1e6 / batch as f64
        );
    }
}
