//! Cut-enumeration throughput per policy (the mapper's first stage).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use slap_circuits::arith::{barrel_shifter, ripple_carry_adder};
use slap_cuts::{enumerate_cuts, CutConfig, DefaultPolicy, ShufflePolicy, UnlimitedPolicy};

fn bench_policies(c: &mut Criterion) {
    let adder = ripple_carry_adder(64);
    let bar = barrel_shifter(64);
    let cfg = CutConfig::default();
    let mut g = c.benchmark_group("cut_enumeration");
    g.sample_size(10);
    g.bench_function("rc64/default", |b| {
        b.iter(|| enumerate_cuts(black_box(&adder), &cfg, &mut DefaultPolicy::default()))
    });
    g.bench_function("rc64/unlimited", |b| {
        b.iter(|| enumerate_cuts(black_box(&adder), &cfg, &mut UnlimitedPolicy::new()))
    });
    g.bench_function("rc64/shuffle", |b| {
        b.iter(|| enumerate_cuts(black_box(&adder), &cfg, &mut ShufflePolicy::with_keep(1, 8)))
    });
    g.bench_function("bar64/default", |b| {
        b.iter(|| enumerate_cuts(black_box(&bar), &cfg, &mut DefaultPolicy::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
