//! Cut-enumeration throughput per policy (the mapper's first stage).
//!
//! Hand-rolled `harness = false` bench (the workspace has no external
//! bench framework); run with `cargo bench -p slap-bench --bench
//! cut_enumeration`.

use slap_bench::microbench::measure;
use slap_circuits::aes::aes_core;
use slap_circuits::arith::{barrel_shifter, ripple_carry_adder};
use slap_cuts::{enumerate_cuts, CutConfig, DefaultPolicy, ShufflePolicy, UnlimitedPolicy};

fn main() {
    let adder = ripple_carry_adder(64);
    let bar = barrel_shifter(64);
    let aes = aes_core(1);
    let cfg = CutConfig::default();
    let results = [
        measure("cut_enumeration/rc64/default", 10, || {
            enumerate_cuts(&adder, &cfg, &mut DefaultPolicy::default())
        }),
        measure("cut_enumeration/rc64/unlimited", 10, || {
            enumerate_cuts(&adder, &cfg, &mut UnlimitedPolicy::new())
        }),
        measure("cut_enumeration/rc64/shuffle", 10, || {
            enumerate_cuts(&adder, &cfg, &mut ShufflePolicy::with_keep(1, 8))
        }),
        measure("cut_enumeration/bar64/default", 10, || {
            enumerate_cuts(&bar, &cfg, &mut DefaultPolicy::default())
        }),
        measure("cut_enumeration/aes/default", 10, || {
            enumerate_cuts(&aes, &cfg, &mut DefaultPolicy::default())
        }),
        measure("cut_enumeration/aes/unlimited", 10, || {
            enumerate_cuts(&aes, &cfg, &mut UnlimitedPolicy::new())
        }),
    ];
    for m in &results {
        println!("{}", m.render());
    }
}
