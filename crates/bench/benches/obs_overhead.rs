//! Instrumentation-overhead check: estimates the share of one AES-core
//! mapping spent inside slap-obs (spans, counters, histogram observes)
//! and asserts it stays under the 5% budget recorded in DESIGN.md.
//!
//! Run with `cargo bench -p slap-bench --bench obs_overhead`.

use slap_bench::microbench::measure;
use slap_cell::asap7_mini;
use slap_circuits::aes::aes_mini;
use slap_cuts::CutConfig;
use slap_map::{MapOptions, Mapper};
use slap_obs::{MetricValue, Registry};

fn main() {
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let aig = aes_mini();
    let cfg = CutConfig::default();

    // One counted run: how many obs operations does a single map perform?
    let reg = Registry::global();
    let before = reg.snapshot();
    std::hint::black_box(mapper.map_default(&aig, &cfg).expect("maps"));
    let delta = reg.snapshot().delta(&before);
    let mut spans = 0u64;
    let mut observes = 0u64;
    let mut counter_adds = 0u64;
    for (_, v) in delta.entries() {
        match v {
            MetricValue::Timer { count, .. } => spans += count,
            MetricValue::Histogram(buckets) => observes += buckets.iter().sum::<u64>(),
            // Each counter is bumped once per run (totals are batched),
            // so touched counters ≈ fetch_adds.
            MetricValue::Counter(_) => counter_adds += 1,
            MetricValue::Gauge(_) => {}
        }
    }

    // Primitive costs, amortised over batches of 1000.
    const OPS: u32 = 1000;
    let probe_counter = reg.counter("bench.probe_counter");
    let add = measure("obs/counter_add_x1000", 50, || {
        for _ in 0..OPS {
            probe_counter.add(1);
        }
    });
    let probe_hist = reg.histogram("bench.probe_hist");
    let hist = measure("obs/hist_observe_x1000", 50, || {
        for _ in 0..OPS {
            probe_hist.observe(9);
        }
    });
    let span = measure("obs/span_x1000", 50, || {
        for _ in 0..OPS {
            let _s = slap_obs::span("bench_probe");
        }
    });
    // The tracing-disabled path: with SLAP_TRACE unset every span pays
    // one relaxed `enabled()` load and skips the buffer push entirely,
    // so a traced build costs the same as the seed until the flag flips.
    assert!(
        !slap_obs::trace::enabled(),
        "obs_overhead measures the default (tracing-off) configuration"
    );
    let enabled_check = measure("obs/trace_enabled_check_x1000", 50, || {
        for _ in 0..OPS {
            std::hint::black_box(slap_obs::trace::enabled());
        }
    });

    let map = measure("map/aes_sbox_core", 10, || {
        mapper.map_default(&aig, &cfg).expect("maps")
    });

    for m in [&map, &add, &hist, &span, &enabled_check] {
        println!("{}", m.render());
    }
    assert!(
        slap_obs::trace::drain().is_empty(),
        "tracing-disabled spans must buffer no events"
    );
    let per = |m: &slap_bench::microbench::Measurement| m.min_s / f64::from(OPS);
    let obs_s =
        spans as f64 * per(&span) + observes as f64 * per(&hist) + counter_adds as f64 * per(&add);
    let share = obs_s / map.min_s * 100.0;
    println!(
        "\none map = {spans} spans + {observes} histogram observes + {counter_adds} counter adds"
    );
    println!(
        "estimated instrumentation share: {share:.4}% of {:.3} ms per map",
        map.min_s * 1e3
    );
    assert!(
        share < 5.0,
        "instrumentation overhead {share:.2}% exceeds the 5% budget"
    );
}
