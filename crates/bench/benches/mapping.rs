//! End-to-end mapping throughput per cut policy (Table II's inner loop).
//!
//! Hand-rolled `harness = false` bench (the workspace has no external
//! bench framework); run with `cargo bench -p slap-bench --bench mapping`.

use slap_bench::microbench::measure;
use slap_cell::asap7_mini;
use slap_circuits::aes::aes_core;
use slap_circuits::arith::ripple_carry_adder;
use slap_circuits::iscas::c6288_like;
use slap_cuts::CutConfig;
use slap_map::{MapOptions, Mapper};

fn main() {
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let delay_only = Mapper::new(&lib, MapOptions::delay_only());
    let rc = ripple_carry_adder(64);
    let mult = c6288_like();
    let aes = aes_core(1);
    let cfg = CutConfig::default();
    let results = [
        measure("mapping/rc64/default", 10, || {
            mapper.map_default(&rc, &cfg).expect("maps")
        }),
        measure("mapping/rc64/unlimited", 10, || {
            mapper.map_unlimited(&rc, &cfg, 1000).expect("maps")
        }),
        measure("mapping/rc64/delay-only", 10, || {
            delay_only.map_default(&rc, &cfg).expect("maps")
        }),
        measure("mapping/c6288/default", 10, || {
            mapper.map_default(&mult, &cfg).expect("maps")
        }),
        measure("mapping/aes/default", 10, || {
            mapper.map_default(&aes, &cfg).expect("maps")
        }),
    ];
    for m in &results {
        println!("{}", m.render());
    }
}
