//! End-to-end mapping throughput per cut policy (Table II's inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use slap_cell::asap7_mini;
use slap_circuits::arith::ripple_carry_adder;
use slap_circuits::iscas::c6288_like;
use slap_cuts::CutConfig;
use slap_map::{MapOptions, Mapper};

fn bench_mapping(c: &mut Criterion) {
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let delay_only = Mapper::new(&lib, MapOptions::delay_only());
    let rc = ripple_carry_adder(64);
    let mult = c6288_like();
    let cfg = CutConfig::default();
    let mut g = c.benchmark_group("mapping");
    g.sample_size(10);
    g.bench_function("rc64/default", |b| {
        b.iter(|| mapper.map_default(black_box(&rc), &cfg).expect("maps"))
    });
    g.bench_function("rc64/unlimited", |b| {
        b.iter(|| mapper.map_unlimited(black_box(&rc), &cfg, 1000).expect("maps"))
    });
    g.bench_function("rc64/delay-only", |b| {
        b.iter(|| delay_only.map_default(black_box(&rc), &cfg).expect("maps"))
    });
    g.bench_function("c6288/default", |b| {
        b.iter(|| mapper.map_default(black_box(&mult), &cfg).expect("maps"))
    });
    g.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
