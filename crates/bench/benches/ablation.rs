//! Ablations for the design choices called out in DESIGN.md: the
//! dominance filter, the per-node cut limit, and the cut width k.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use slap_circuits::arith::ripple_carry_adder;
use slap_cuts::{enumerate_cuts, CutConfig, DefaultPolicy, UnlimitedPolicy};

fn bench_ablations(c: &mut Criterion) {
    let aig = ripple_carry_adder(64);
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    // Cut limit sweep (the 250-cut knob).
    for limit in [8usize, 50, 250] {
        g.bench_function(format!("limit/{limit}"), |b| {
            b.iter(|| {
                enumerate_cuts(
                    black_box(&aig),
                    &CutConfig::default(),
                    &mut DefaultPolicy::with_limit(limit),
                )
            })
        });
    }
    // k sweep.
    for k in [3usize, 4, 5, 6] {
        g.bench_function(format!("k/{k}"), |b| {
            b.iter(|| {
                enumerate_cuts(black_box(&aig), &CutConfig::with_k(k), &mut DefaultPolicy::default())
            })
        });
    }
    // Dominance filter on/off at the same cap.
    g.bench_function("dominance/on", |b| {
        b.iter(|| {
            enumerate_cuts(black_box(&aig), &CutConfig::default(), &mut DefaultPolicy::with_limit(1000))
        })
    });
    g.bench_function("dominance/off", |b| {
        b.iter(|| {
            enumerate_cuts(black_box(&aig), &CutConfig::default(), &mut UnlimitedPolicy::with_cap(1000))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
