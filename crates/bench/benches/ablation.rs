//! Ablations for the design choices called out in DESIGN.md: the
//! dominance filter, the per-node cut limit, and the cut width k.
//!
//! Hand-rolled `harness = false` bench (the workspace has no external
//! bench framework); run with `cargo bench -p slap-bench --bench
//! ablation`.

use slap_bench::microbench::measure;
use slap_circuits::arith::ripple_carry_adder;
use slap_cuts::{enumerate_cuts, CutConfig, DefaultPolicy, UnlimitedPolicy};

fn main() {
    let aig = ripple_carry_adder(64);
    // Cut limit sweep (the 250-cut knob).
    for limit in [8usize, 50, 250] {
        let m = measure(&format!("ablation/limit/{limit}"), 10, || {
            enumerate_cuts(
                &aig,
                &CutConfig::default(),
                &mut DefaultPolicy::with_limit(limit),
            )
        });
        println!("{}", m.render());
    }
    // k sweep.
    for k in [3usize, 4, 5, 6] {
        let m = measure(&format!("ablation/k/{k}"), 10, || {
            enumerate_cuts(&aig, &CutConfig::with_k(k), &mut DefaultPolicy::default())
        });
        println!("{}", m.render());
    }
    // Dominance filter on/off at the same cap.
    let on = measure("ablation/dominance/on", 10, || {
        enumerate_cuts(
            &aig,
            &CutConfig::default(),
            &mut DefaultPolicy::with_limit(1000),
        )
    });
    println!("{}", on.render());
    let off = measure("ablation/dominance/off", 10, || {
        enumerate_cuts(
            &aig,
            &CutConfig::default(),
            &mut UnlimitedPolicy::with_cap(1000),
        )
    });
    println!("{}", off.render());
}
