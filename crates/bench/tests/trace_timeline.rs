//! End-to-end trace-timeline test: enables tracing, runs a real
//! enumerate + map pass plus a parallel fan-out, and checks that
//!
//! * the drained events reconstruct the span tree (library phases nested
//!   under the enclosing root span),
//! * worker spans spawned through `slap-par` are parented under the
//!   forking phase even though they ran on other threads,
//! * the Chrome `trace_event` export is valid JSON that round-trips
//!   through `slap_obs::parse_object`, and
//! * the folded-stacks export carries the same paths.
//!
//! Tracing is process-global state, so every test here serializes on one
//! lock and restores the disabled default before releasing it.

use std::sync::Mutex;

use slap_cell::asap7_mini;
use slap_circuits::arith::ripple_carry_adder;
use slap_cuts::{enumerate_cuts, CutConfig, DefaultPolicy};
use slap_map::{MapOptions, Mapper};
use slap_obs::{parse_object, TraceEvent, Value};

static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with tracing enabled and returns the events it produced.
fn traced<F: FnOnce()>(f: F) -> Vec<TraceEvent> {
    slap_obs::trace::set_enabled(true);
    let _ = slap_obs::trace::drain();
    f();
    slap_obs::trace::set_enabled(false);
    slap_obs::trace::drain()
}

#[test]
fn mapping_produces_a_nested_span_timeline() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let aig = ripple_carry_adder(8);
    let lib = asap7_mini();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let cfg = CutConfig::default();

    let events = traced(|| {
        let _root = slap_obs::span("timeline_root");
        let cuts = enumerate_cuts(&aig, &cfg, &mut DefaultPolicy::default());
        let nl = mapper.map_with_cuts(&aig, &cuts).expect("maps");
        assert!(nl.area() > 0.0);
    });

    let paths: Vec<&str> = events.iter().map(|e| e.path.as_str()).collect();
    assert!(paths.contains(&"timeline_root"), "{paths:?}");
    // The library phases must nest under the root span, not float free.
    for phase in ["enumerate", "cover"] {
        assert!(
            paths
                .iter()
                .any(|p| p.starts_with("timeline_root/") && p.split('/').any(|seg| seg == phase)),
            "no {phase} span under timeline_root in {paths:?}"
        );
    }
    // Every event closes inside the root span's window.
    let root = events
        .iter()
        .find(|e| e.path == "timeline_root")
        .expect("root event");
    for e in &events {
        assert!(
            e.start_ns >= root.start_ns && e.start_ns + e.dur_ns <= root.start_ns + root.dur_ns,
            "event {} [{}, +{}] escapes the root window",
            e.path,
            e.start_ns,
            e.dur_ns
        );
    }
}

#[test]
fn worker_spans_are_parented_under_the_forking_phase() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    slap_par::set_threads(4);
    let items: Vec<u32> = (0..32).collect();

    let events = traced(|| {
        let _root = slap_obs::span("timeline_fork");
        let out = slap_par::par_map(&items, |_, &x| {
            let _s = slap_obs::span("timeline_work");
            x * 2
        });
        assert_eq!(out.len(), items.len());
    });

    let work: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.path == "timeline_fork/timeline_work")
        .collect();
    assert_eq!(
        work.len(),
        items.len(),
        "every worker item records one parented span: {:?}",
        events.iter().map(|e| e.path.as_str()).collect::<Vec<_>>()
    );
    // The fan-out genuinely crossed threads — par_map's caller only
    // joins, so every work event was recorded on a spawned worker, never
    // on the forking thread. (How many distinct workers ran is scheduler
    // luck on a small host, so that is deliberately not asserted.)
    let fork_tid = events
        .iter()
        .find(|e| e.path == "timeline_fork")
        .expect("forking span event")
        .tid;
    assert!(
        work.iter().all(|e| e.tid != fork_tid),
        "worker spans ran off-thread"
    );
    assert!(work.iter().all(|e| e.parent() == Some("timeline_fork")));
}

#[test]
fn chrome_and_folded_exports_round_trip() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    slap_par::set_threads(2);
    let items: Vec<u32> = (0..8).collect();

    let events = traced(|| {
        let _root = slap_obs::span("timeline_export");
        let _ = slap_par::par_map(&items, |_, &x| {
            let _s = slap_obs::span("timeline_leaf");
            x + 1
        });
    });
    assert!(!events.is_empty());

    // Chrome trace JSON: one document, `traceEvents` array of complete
    // ("X") events whose args carry the slash-joined path.
    let mut chrome = Vec::new();
    slap_obs::trace::write_chrome_json(&events, &mut chrome).expect("chrome export");
    let doc = String::from_utf8(chrome).expect("utf-8");
    let fields = parse_object(&doc).expect("valid JSON document");
    let trace_events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_array())
        .expect("traceEvents array");
    assert_eq!(trace_events.len(), events.len());
    let mut seen_paths = Vec::new();
    for ev in trace_events {
        let obj = ev.as_object().expect("event object");
        let get = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        assert_eq!(get("ph").and_then(Value::as_str), Some("X"));
        assert!(get("ts").is_some() && get("dur").is_some() && get("tid").is_some());
        let args = get("args").and_then(Value::as_object).expect("args");
        let path = args
            .iter()
            .find(|(k, _)| k == "path")
            .and_then(|(_, v)| v.as_str())
            .expect("args.path");
        seen_paths.push(path.to_string());
    }
    seen_paths.sort();
    let mut expected: Vec<String> = events.iter().map(|e| e.path.clone()).collect();
    expected.sort();
    assert_eq!(seen_paths, expected, "exported paths match drained events");

    // Folded stacks: semicolon-joined path + self time, one per line.
    let mut folded = Vec::new();
    slap_obs::trace::write_folded(&events, &mut folded).expect("folded export");
    let text = String::from_utf8(folded).expect("utf-8");
    assert!(text.lines().any(|l| l.starts_with("timeline_export ")));
    assert!(text
        .lines()
        .any(|l| l.starts_with("timeline_export;timeline_leaf ")));
    for line in text.lines() {
        let (_, value) = line.rsplit_once(' ').expect("stack <space> value");
        value.parse::<u64>().expect("numeric self time");
    }
}

#[test]
fn trace_structure_is_stable_across_thread_counts() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let items: Vec<u32> = (0..16).collect();
    let mut shapes = Vec::new();
    for threads in [1, 4] {
        slap_par::set_threads(threads);
        let events = traced(|| {
            let _root = slap_obs::span("timeline_stable");
            let _ = slap_par::par_map(&items, |_, &x| {
                let _s = slap_obs::span("timeline_item");
                x
            });
        });
        // The determinism contract covers the path *multiset* — event
        // order, timestamps, and thread ids legitimately vary.
        let mut shape: Vec<String> = events.iter().map(|e| e.path.clone()).collect();
        shape.sort();
        shapes.push(shape);
    }
    assert_eq!(
        shapes[0], shapes[1],
        "path multiset must not depend on thread count"
    );
}
