//! Regression-gate test: the committed `BASELINE_metrics.jsonl` must
//! parse, pass `check` against itself, and a synthetically regressed
//! copy must fail the gate naming the offending metric — both through
//! the library API and through the actual `slap-report` binary CI runs.

use std::process::Command;

use slap_bench::report::{check, load_run, parse_run, phase_table, render_report};

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BASELINE_metrics.jsonl")
}

fn baseline_text() -> String {
    std::fs::read_to_string(baseline_path()).expect("committed BASELINE_metrics.jsonl")
}

/// Doctors the baseline: multiplies the slap-mode `area_um2` values by
/// 1.5, a regression far outside any sane tolerance.
fn doctored_text() -> String {
    let mut doctored = String::new();
    let mut changed = 0;
    for line in baseline_text().lines() {
        if line.contains("\"mode\":\"slap\"") {
            let run = parse_run(line, "row").expect("row parses");
            let area = run.maps[0].num("area_um2").expect("area field");
            let from = format!("\"area_um2\":{area}");
            let to = format!("\"area_um2\":{}", area * 1.5);
            assert!(line.contains(&from), "float round-trips through Display");
            doctored.push_str(&line.replace(&from, &to));
            changed += 1;
        } else {
            doctored.push_str(line);
        }
        doctored.push('\n');
    }
    assert!(changed > 0, "baseline has slap-mode rows to doctor");
    doctored
}

#[test]
fn committed_baseline_parses_and_passes_against_itself() {
    let run = load_run(baseline_path().to_str().expect("utf-8 path")).expect("baseline parses");
    assert!(!run.manifest.is_empty(), "baseline opens with a manifest");
    for key in ["schema_version", "circuits_hash", "library_hash"] {
        assert!(run.manifest_field(key).is_some(), "manifest carries {key}");
    }
    assert!(!run.maps.is_empty(), "baseline has mapping records");
    assert!(
        !run.snapshot.is_empty(),
        "baseline ends with an obs_snapshot"
    );
    let phases = phase_table(&run.snapshot);
    assert!(
        phases.iter().any(|p| p.path == "table2"),
        "snapshot carries the table2 run span: {phases:?}"
    );

    let report = check(&run, &run, 0.01);
    assert!(report.passed(), "{:?}", report.failures);
    assert!(report.compared >= run.maps.len(), "gates every row");

    // The report renderer digests the real stream without panicking and
    // shows the provenance fields CI logs rely on.
    let text = render_report(&run);
    assert!(text.contains("circuits_hash"), "{text}");
    assert!(text.contains("phases (ms):"), "{text}");
}

#[test]
fn doctored_baseline_fails_the_gate_naming_the_metric() {
    let baseline = parse_run(&baseline_text(), "baseline").expect("parses");
    let current = parse_run(&doctored_text(), "doctored").expect("parses");
    let report = check(&current, &baseline, 2.0);
    assert!(
        !report.passed(),
        "a 50% area regression must fail a 2% gate"
    );
    assert!(
        report
            .failures
            .iter()
            .all(|f| f.contains("area_um2") && f.contains("regressed")),
        "failures name the offending metric: {:?}",
        report.failures
    );
}

#[test]
fn slap_report_binary_gates_like_the_library() {
    let bin = env!("CARGO_BIN_EXE_slap-report");
    let baseline = baseline_path();

    // Baseline vs itself: exit 0, PASSED on stdout.
    let ok = Command::new(bin)
        .arg(&baseline)
        .arg("--check")
        .arg(&baseline)
        .arg("--tolerance")
        .arg("0.01")
        .output()
        .expect("slap-report runs");
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(ok.status.success(), "{stdout}");
    assert!(stdout.contains("check PASSED"), "{stdout}");

    // Doctored vs baseline: nonzero exit, FAIL lines naming the metric.
    let dir = std::env::temp_dir().join(format!("slap_report_gate_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let doctored = dir.join("doctored_metrics.jsonl");
    std::fs::write(&doctored, doctored_text()).expect("write doctored stream");
    let bad = Command::new(bin)
        .arg(&doctored)
        .arg("--check")
        .arg(&baseline)
        .arg("--tolerance")
        .arg("2")
        .output()
        .expect("slap-report runs");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(!bad.status.success(), "doctored input must fail the gate");
    assert!(stdout.contains("check FAILED"), "{stdout}");
    assert!(stdout.contains("area_um2"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
