//! `slap-serve`: a multi-tenant batch mapping engine.
//!
//! The experiment binaries map one circuit per process; this crate is
//! the step from "experiment harness" to "service": a job-stream
//! [`Engine`] that accepts mapping requests (catalog circuit or raw
//! AIGER bytes, plus target / cut bound / policy / kernel tier), runs
//! them over `slap-par` workers, and shares one immutable match index
//! and one **frozen-tier session cache** per `(circuit, target)` across
//! every job that ever touches that pair.
//!
//! # Generations
//!
//! The engine alternates two phases, with the borrow checker standing
//! in for a lock:
//!
//! 1. **Dispatch** — a generation of jobs (picked by deficit
//!    round-robin over bounded per-tenant queues) runs on the worker
//!    pool. Every worker probes the shared [`FrozenTier`] through
//!    `&self` — read-only, hence lock-free — and records cache misses
//!    into a private [`SessionDelta`].
//! 2. **Absorb** — back on the engine thread, the deltas are replayed
//!    into the tier in job-dispatch order (deterministic: `par_map`
//!    reassembles results in item order regardless of thread count) and
//!    the tier's generation counter advances.
//!
//! The cache only ever removes recomputation — a frozen probe returns
//! exactly what a cold computation would — so a job's QoR is
//! bit-identical to a standalone cold session no matter the arrival
//! order, worker thread count, or what ran before it. On top of the
//! function tier the engine memoizes whole runs: a request repeating an
//! already-served `(circuit, target, k, policy)` replays the stored
//! netlist without mapping at all (mapping is a pure function of that
//! key).
//!
//! Admission control is explicit: each tenant owns a bounded FIFO, and
//! a submit against a full queue is shed with
//! [`Rejected::QueueFull`] instead of growing without bound. Service is
//! deficit round-robin, so a tenant flooding its queue cannot starve
//! the others. Every served request emits one `slap-obs` record (queue
//! wait, service time, frozen-tier hit counters, QoR) under a
//! request-scoped span; see [`Engine::take_records`].

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use slap_aig::Aig;
use slap_cache::{FrozenTier, SessionDelta};
use slap_cuts::CutConfig;
use slap_map::{AsicTarget, LutMapper, MapError, MapPolicy, MappedNetlist, Mapper, Target};
use slap_obs::Record;

/// Index of a registered circuit (dense, in registration order).
pub type CircuitId = usize;

/// Index of a registered target (dense, in registration order).
pub type TargetId = usize;

/// Engine-assigned request identifier, unique per engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// A mapping target registered with the engine. The engine is not
/// generic over one target — a serve workload is *mixed* by nature, so
/// targets are closed-enum dispatched per job.
pub enum EngineTarget<'lib> {
    /// ASIC standard-cell mapping against a genlib library.
    Asic(Mapper<'lib, AsicTarget<'lib>>),
    /// k-input LUT FPGA mapping (unit cost model).
    Lut(LutMapper),
}

impl EngineTarget<'_> {
    /// Manifest name of the target (`"asic"`, `"lut:6"`).
    pub fn name(&self) -> String {
        match self {
            EngineTarget::Asic(m) => m.target().name(),
            EngineTarget::Lut(m) => m.target().name(),
        }
    }

    fn map_policy_cold(
        &self,
        aig: &Aig,
        config: &CutConfig,
        policy: MapPolicy,
    ) -> Result<MappedNetlist, MapError> {
        match self {
            EngineTarget::Asic(m) => m.map_policy(aig, config, policy),
            EngineTarget::Lut(m) => m.map_policy(aig, config, policy),
        }
    }

    fn map_policy_frozen(
        &self,
        aig: &Aig,
        config: &CutConfig,
        policy: MapPolicy,
        cache: &slap_cache::SessionCache,
    ) -> (Result<MappedNetlist, MapError>, SessionDelta) {
        match self {
            EngineTarget::Asic(m) => m.map_policy_frozen(aig, config, policy, cache),
            EngineTarget::Lut(m) => m.map_policy_frozen(aig, config, policy, cache),
        }
    }

    fn absorb_into(&self, cache: &mut slap_cache::SessionCache, delta: SessionDelta) -> u64 {
        match self {
            EngineTarget::Asic(m) => m.absorb_into(cache, delta),
            EngineTarget::Lut(m) => m.absorb_into(cache, delta),
        }
    }
}

/// Which circuit a request maps.
#[derive(Clone, Debug)]
pub enum CircuitSpec {
    /// A circuit previously registered with
    /// [`Engine::register_circuit`], by name.
    Named(String),
    /// Raw AIGER bytes (ASCII `aag` or binary `aig`), parsed and
    /// deduplicated by content on submit.
    Aiger(Vec<u8>),
}

/// One mapping request.
#[derive(Clone, Debug)]
pub struct MapRequest {
    /// Submitting tenant (auto-registered on first use; queue bound and
    /// fair-queuing weight are per tenant).
    pub tenant: String,
    /// The circuit to map.
    pub circuit: CircuitSpec,
    /// Which registered target to map onto.
    pub target: TargetId,
    /// Cut feasibility bound `k`.
    pub k: usize,
    /// Cut-enumeration policy (carries the shuffle seed when present).
    pub policy: MapPolicy,
    /// Inference kernel-tier tag (`"f32"` / `"int8"`), recorded in the
    /// request record for provenance. The serve policies never invoke
    /// the CNN, so the tag does not affect results — same convention as
    /// `bench_datagen --kernel`.
    pub kernel: String,
    /// Pre-mapping optimization pipeline spec (`slap-opt` syntax, e.g.
    /// `"strash,fold,sweep,balance"`; `""` or `"none"` maps the graph
    /// as registered). A non-empty spec derives an optimized circuit
    /// registered as `"{name}@{canonical-spec}"` with its own
    /// [`CircuitId`], so frozen tiers and the run memo never mix
    /// optimized and raw graphs; the optimization runs once per
    /// `(circuit, spec)` and later requests reuse the derived circuit.
    pub passes: String,
}

/// Admission-control shedding decisions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The tenant's bounded queue is at capacity; the request was shed.
    QueueFull {
        /// The tenant whose queue overflowed.
        tenant: String,
        /// The configured per-tenant bound.
        capacity: usize,
    },
}

/// Errors a submit can fail with before a job is enqueued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Shed by admission control.
    Rejected(Rejected),
    /// `CircuitSpec::Named` named an unregistered circuit.
    UnknownCircuit(String),
    /// `CircuitSpec::Aiger` bytes failed to parse.
    InvalidAiger(String),
    /// The request's [`TargetId`] was never registered.
    UnknownTarget(TargetId),
    /// The request's `passes` spec failed to parse (unknown pass name).
    InvalidPasses(String),
}

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Per-tenant queue bound; a submit beyond it is shed with
    /// [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// Deficit-round-robin quantum, in jobs credited per tenant per
    /// scheduling round (1 = strict round-robin).
    pub quantum: usize,
    /// Maximum jobs dispatched per generation (bounds how stale the
    /// frozen tier can get before deltas are absorbed).
    pub batch: usize,
    /// Frozen-tier toggle: `None` honors the `SLAP_CACHE` environment
    /// variable, `Some(false)` forces the cold path (results unchanged,
    /// nothing shared).
    pub cache: Option<bool>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            queue_capacity: 64,
            quantum: 1,
            batch: 32,
            cache: None,
        }
    }
}

/// One served request.
#[derive(Clone, Debug)]
pub struct Completed {
    /// Engine-assigned id, in submit order.
    pub job: JobId,
    /// Submitting tenant.
    pub tenant: String,
    /// Resolved circuit name.
    pub circuit: String,
    /// Target name (`"asic"`, `"lut:6"`).
    pub target: String,
    /// The request's policy.
    pub policy: MapPolicy,
    /// The request's cut bound.
    pub k: usize,
    /// The request's kernel-tier tag.
    pub kernel: String,
    /// Canonical pre-mapping pipeline spec (`"none"` when the request
    /// mapped the registered graph untouched).
    pub passes: String,
    /// The mapping outcome — bit-identical to a standalone cold
    /// session running the same request.
    pub result: Result<MappedNetlist, MapError>,
    /// Seconds between submit and dispatch.
    pub queue_wait_s: f64,
    /// Seconds spent serving (mapping, or replaying the run memo).
    pub service_s: f64,
    /// The frozen tier's generation when this job was dispatched.
    pub generation: u64,
    /// Whether the run memo replayed a stored netlist (no mapping ran).
    pub replayed: bool,
}

/// Aggregate engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Requests served fresh (a mapping ran).
    pub executed: u64,
    /// Requests served from the run memo.
    pub replayed: u64,
    /// Completed dispatch/absorb generations.
    pub generations: u64,
}

struct CircuitEntry {
    name: String,
    aig: Aig,
}

struct Tenant {
    name: String,
    deficit: usize,
    queue: VecDeque<PendingJob>,
}

struct PendingJob {
    id: JobId,
    circuit: CircuitId,
    target: TargetId,
    k: usize,
    policy: MapPolicy,
    kernel: String,
    passes: String,
    tenant: usize,
    submitted: Instant,
}

/// Key of one memoized whole run; everything that, with the registered
/// circuit and target, determines the mapping bit-for-bit. (The
/// kernel-tier tag is deliberately absent — it is provenance, not an
/// input of the mapping. The passes spec is also absent, but for the
/// opposite reason: it *is* an input, and it is already folded into
/// the [`CircuitId`] because an optimized request resolves to its own
/// derived circuit registration.)
type RunMemoKey = (CircuitId, TargetId, usize, MapPolicy);

/// The multi-tenant batch mapping engine. See the crate docs for the
/// generation / fairness / determinism contract.
pub struct Engine<'lib> {
    config: EngineConfig,
    cache_enabled: bool,
    targets: Vec<EngineTarget<'lib>>,
    circuits: Vec<CircuitEntry>,
    circuits_by_name: HashMap<String, CircuitId>,
    aiger_by_hash: HashMap<u64, CircuitId>,
    /// Parsed pipelines keyed by canonical spec, kept so repeated
    /// optimized requests reuse one pipeline's scratch buffers.
    opt_pipelines: HashMap<String, slap_opt::PassPipeline>,
    tiers: HashMap<(CircuitId, TargetId), FrozenTier>,
    runs: HashMap<RunMemoKey, MappedNetlist>,
    tenants: Vec<Tenant>,
    tenants_by_name: HashMap<String, usize>,
    next_job: u64,
    stats: EngineStats,
    records: Vec<Record>,
}

impl<'lib> Engine<'lib> {
    /// An engine with no targets, circuits, or tenants yet.
    pub fn new(config: EngineConfig) -> Engine<'lib> {
        assert!(config.queue_capacity >= 1, "queue capacity must be >= 1");
        assert!(config.quantum >= 1, "DRR quantum must be >= 1");
        assert!(config.batch >= 1, "generation batch must be >= 1");
        let cache_enabled = config
            .cache
            .unwrap_or_else(|| std::env::var("SLAP_CACHE").map_or(true, |v| v != "0"));
        Engine {
            config,
            cache_enabled,
            targets: Vec::new(),
            circuits: Vec::new(),
            circuits_by_name: HashMap::new(),
            aiger_by_hash: HashMap::new(),
            opt_pipelines: HashMap::new(),
            tiers: HashMap::new(),
            runs: HashMap::new(),
            tenants: Vec::new(),
            tenants_by_name: HashMap::new(),
            next_job: 0,
            stats: EngineStats::default(),
            records: Vec::new(),
        }
    }

    /// Registers a mapping target and returns its id (requests name
    /// targets by id).
    pub fn add_target(&mut self, target: EngineTarget<'lib>) -> TargetId {
        self.targets.push(target);
        self.targets.len() - 1
    }

    /// Registers a named catalog circuit. Registering the same name
    /// twice returns the existing id.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a *different* AIG —
    /// frozen tiers are keyed by circuit, so silently swapping the
    /// graph under a name would poison them.
    pub fn register_circuit(&mut self, name: &str, aig: Aig) -> CircuitId {
        if let Some(&id) = self.circuits_by_name.get(name) {
            assert!(
                aig_fingerprint(&self.circuits[id].aig) == aig_fingerprint(&aig),
                "circuit name {name:?} re-registered with a different AIG"
            );
            return id;
        }
        let id = self.circuits.len();
        self.circuits.push(CircuitEntry {
            name: name.to_string(),
            aig,
        });
        self.circuits_by_name.insert(name.to_string(), id);
        id
    }

    /// Resolves a request's pre-mapping pipeline: an empty spec
    /// (`""` / `"none"`) returns the base circuit untouched; a
    /// non-empty spec returns the derived circuit
    /// `"{name}@{canonical-spec}"`, creating it — one optimization run,
    /// ever — on first use. The derived circuit has its own
    /// [`CircuitId`], so its frozen tier and run-memo entries are
    /// disjoint from the raw graph's by construction.
    ///
    /// # Errors
    ///
    /// [`SubmitError::InvalidPasses`] when the spec names an unknown
    /// pass. The spec is parsed even when the queue would shed the
    /// request, so a typo never silently maps the raw graph.
    fn apply_passes(
        &mut self,
        base: CircuitId,
        spec: &str,
    ) -> Result<(CircuitId, String), SubmitError> {
        if !self.opt_pipelines.contains_key(spec) {
            let pipeline =
                slap_opt::PassPipeline::parse(spec).map_err(SubmitError::InvalidPasses)?;
            self.opt_pipelines.insert(spec.to_string(), pipeline);
        }
        let pipeline = self.opt_pipelines.get_mut(spec).expect("inserted above");
        if pipeline.is_empty() {
            return Ok((base, "none".to_string()));
        }
        let canonical = pipeline.spec();
        let name = format!("{}@{canonical}", self.circuits[base].name);
        if let Some(&id) = self.circuits_by_name.get(&name) {
            return Ok((id, canonical));
        }
        let span = slap_obs::span("serve_optimize");
        let input = self.circuits[base].aig.clone();
        let (optimized, report) = pipeline.optimize(input);
        drop(span);
        slap_obs::counter("serve.optimized").incr();
        let mut rec = Record::new();
        rec.push("event", "optimize");
        rec.push("circuit", self.circuits[base].name.as_str());
        rec.push("derived", name.as_str());
        rec.push("passes", canonical.as_str());
        rec.push("ands_in", report.ands_in);
        rec.push("ands_out", report.ands_out);
        rec.push("depth_in", u64::from(report.depth_in));
        rec.push("depth_out", u64::from(report.depth_out));
        rec.push("seconds", report.seconds);
        self.records.push(rec);
        let id = self.circuits.len();
        self.circuits.push(CircuitEntry {
            name: name.clone(),
            aig: optimized,
        });
        self.circuits_by_name.insert(name, id);
        Ok((id, canonical))
    }

    /// Whether the shared frozen tier (and run memo) is active.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Aggregate counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Jobs currently queued across all tenants.
    pub fn pending(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.len()).sum()
    }

    /// The per-request `slap-obs` records accumulated since the last
    /// call, in completion order (one per served request).
    pub fn take_records(&mut self) -> Vec<Record> {
        std::mem::take(&mut self.records)
    }

    /// Order-independent content digests of every frozen tier, keyed by
    /// `(circuit, target)` names and sorted — equal across runs that
    /// memoized the same function set, regardless of worker thread
    /// count (the golden suite's tier-invariance assertion).
    pub fn tier_fingerprints(&self) -> Vec<(String, String, u64)> {
        let mut out: Vec<(String, String, u64)> = self
            .tiers
            .iter()
            .map(|(&(c, t), tier)| {
                (
                    self.circuits[c].name.clone(),
                    self.targets[t].name(),
                    tier.fingerprint(),
                )
            })
            .collect();
        out.sort();
        out
    }

    /// Total completed generations summed over all tiers.
    pub fn tier_generations(&self) -> u64 {
        self.tiers.values().map(FrozenTier::generation).sum()
    }

    /// Submits a request, enqueuing it on its tenant's bounded queue.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Rejected`] when admission control sheds the
    /// request (tenant queue full); the other variants reject malformed
    /// requests (unknown circuit/target, unparseable AIGER).
    pub fn submit(&mut self, request: MapRequest) -> Result<JobId, SubmitError> {
        if request.target >= self.targets.len() {
            return Err(SubmitError::UnknownTarget(request.target));
        }
        let circuit = match &request.circuit {
            CircuitSpec::Named(name) => *self
                .circuits_by_name
                .get(name)
                .ok_or_else(|| SubmitError::UnknownCircuit(name.clone()))?,
            CircuitSpec::Aiger(bytes) => {
                let hash = slap_obs::content_hash(bytes);
                match self.aiger_by_hash.get(&hash) {
                    Some(&id) => id,
                    None => {
                        let aig = slap_aig::aiger::read_aiger(&bytes[..])
                            .map_err(|e| SubmitError::InvalidAiger(format!("{e:?}")))?;
                        let id = self.register_circuit(&format!("aiger:{hash:016x}"), aig);
                        self.aiger_by_hash.insert(hash, id);
                        id
                    }
                }
            }
        };
        let (circuit, passes) = self.apply_passes(circuit, &request.passes)?;
        let tenant = match self.tenants_by_name.get(&request.tenant) {
            Some(&ix) => ix,
            None => {
                let ix = self.tenants.len();
                self.tenants.push(Tenant {
                    name: request.tenant.clone(),
                    deficit: 0,
                    queue: VecDeque::new(),
                });
                self.tenants_by_name.insert(request.tenant.clone(), ix);
                ix
            }
        };
        if self.tenants[tenant].queue.len() >= self.config.queue_capacity {
            self.stats.rejected += 1;
            slap_obs::counter("serve.rejected").incr();
            return Err(SubmitError::Rejected(Rejected::QueueFull {
                tenant: request.tenant,
                capacity: self.config.queue_capacity,
            }));
        }
        // The tier is created at admission so dispatch can probe it
        // through `&self` without an entry-creation race.
        self.tiers
            .entry((circuit, request.target))
            .or_insert_with(|| FrozenTier::new(self.cache_enabled));
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.tenants[tenant].queue.push_back(PendingJob {
            id,
            circuit,
            target: request.target,
            k: request.k,
            policy: request.policy,
            kernel: request.kernel,
            passes,
            tenant,
            submitted: Instant::now(),
        });
        self.stats.submitted += 1;
        slap_obs::counter("serve.submitted").incr();
        slap_obs::gauge("serve.queue_depth").set(self.pending() as i64);
        Ok(id)
    }

    /// Runs one generation: schedules up to `batch` jobs by deficit
    /// round-robin, dispatches them over the worker pool against the
    /// frozen tiers, absorbs the recorded deltas in dispatch order, and
    /// returns the completions (in dispatch order). Returns an empty
    /// vector when no jobs are queued.
    pub fn step(&mut self) -> Vec<Completed> {
        let jobs = self.schedule();
        if jobs.is_empty() {
            return Vec::new();
        }

        // Split replays (run-memo hits, served inline) from fresh jobs,
        // and dedupe within the generation: a job repeating an earlier
        // job's run key maps identically (mapping is a pure function of
        // the key), so only the first occurrence executes.
        enum Work {
            Replay(Box<MappedNetlist>),
            Fresh(usize), // index into `fresh`: this job executes
            Dup(usize),   // shares the result of `fresh[ix]`
        }
        let mut fresh: Vec<&PendingJob> = Vec::new();
        let mut fresh_by_key: HashMap<RunMemoKey, usize> = HashMap::new();
        let mut work: Vec<Work> = Vec::with_capacity(jobs.len());
        for job in &jobs {
            let key = (job.circuit, job.target, job.k, job.policy);
            if self.cache_enabled {
                if let Some(netlist) = self.runs.get(&key) {
                    work.push(Work::Replay(Box::new(netlist.clone())));
                    continue;
                }
                if let Some(&ix) = fresh_by_key.get(&key) {
                    work.push(Work::Dup(ix));
                    continue;
                }
                fresh_by_key.insert(key, fresh.len());
            }
            work.push(Work::Fresh(fresh.len()));
            fresh.push(job);
        }

        // Dispatch: workers probe the frozen tiers read-only and record
        // deltas. `par_map` reassembles results in item order, so the
        // output order (and therefore the absorb order below) does not
        // depend on the worker thread count.
        let queue_waits: Vec<f64> = jobs
            .iter()
            .map(|j| j.submitted.elapsed().as_secs_f64())
            .collect();
        let outs = {
            let circuits = &self.circuits;
            let targets = &self.targets;
            let tiers = &self.tiers;
            slap_par::par_map(&fresh, |_, job| {
                let _span = slap_obs::span("request");
                let t0 = Instant::now();
                let aig = &circuits[job.circuit].aig;
                let tier = tiers
                    .get(&(job.circuit, job.target))
                    .expect("tier created at submit");
                let config = CutConfig::with_k(job.k);
                let (result, delta) =
                    targets[job.target].map_policy_frozen(aig, &config, job.policy, tier.frozen());
                (result, delta, t0.elapsed().as_secs_f64())
            })
        };

        // Absorb every delta in dispatch order, grouped per tier in
        // first-touch order, then advance each touched tier's
        // generation.
        let mut per_tier: Vec<((CircuitId, TargetId), Vec<SessionDelta>)> = Vec::new();
        let mut results: Vec<(Result<MappedNetlist, MapError>, f64)> =
            Vec::with_capacity(fresh.len());
        for (job, (result, delta, service_s)) in fresh.iter().zip(outs) {
            let key = (job.circuit, job.target);
            match per_tier.iter_mut().find(|(k, _)| *k == key) {
                Some((_, deltas)) => deltas.push(delta),
                None => per_tier.push((key, vec![delta])),
            }
            results.push((result, service_s));
        }
        for (key, deltas) in per_tier {
            let target = &self.targets[key.1];
            let tier = self.tiers.get_mut(&key).expect("tier created at submit");
            tier.absorb_generation(deltas, |cache, delta| target.absorb_into(cache, delta));
        }
        self.stats.generations += 1;

        // Completions in dispatch order: memoize fresh successes, emit
        // one obs record per request.
        let mut completed = Vec::with_capacity(jobs.len());
        for ((job, work), queue_wait_s) in jobs.iter().zip(work).zip(queue_waits) {
            let (result, service_s, replayed) = match work {
                Work::Replay(netlist) => {
                    let t0 = Instant::now();
                    let result = Ok(*netlist);
                    (result, t0.elapsed().as_secs_f64(), true)
                }
                Work::Fresh(ix) => {
                    let (result, service_s) = results[ix].clone();
                    (result, service_s, false)
                }
                Work::Dup(ix) => {
                    let t0 = Instant::now();
                    let result = results[ix].0.clone();
                    (result, t0.elapsed().as_secs_f64(), true)
                }
            };
            if !replayed {
                if let (true, Ok(netlist)) = (self.cache_enabled, &result) {
                    self.runs
                        .entry((job.circuit, job.target, job.k, job.policy))
                        .or_insert_with(|| netlist.clone());
                }
            }
            let generation = self
                .tiers
                .get(&(job.circuit, job.target))
                .map_or(0, FrozenTier::generation);
            let done = Completed {
                job: job.id,
                tenant: self.tenants[job.tenant].name.clone(),
                circuit: self.circuits[job.circuit].name.clone(),
                target: self.targets[job.target].name(),
                policy: job.policy,
                k: job.k,
                kernel: job.kernel.clone(),
                passes: job.passes.clone(),
                result,
                queue_wait_s,
                service_s,
                generation,
                replayed,
            };
            if replayed {
                self.stats.replayed += 1;
                slap_obs::counter("serve.replayed").incr();
            } else {
                self.stats.executed += 1;
                slap_obs::counter("serve.executed").incr();
            }
            self.records.push(request_record(&done));
            completed.push(done);
        }
        slap_obs::gauge("serve.queue_depth").set(self.pending() as i64);
        completed
    }

    /// Runs generations until every queue is empty, returning all
    /// completions in service order.
    pub fn drain(&mut self) -> Vec<Completed> {
        let mut all = Vec::new();
        loop {
            let step = self.step();
            if step.is_empty() {
                return all;
            }
            all.extend(step);
        }
    }

    /// What a standalone cold session would produce for a request —
    /// the reference side of the equivalence contract, exposed so
    /// benchmarks and tests compare against exactly the engine's own
    /// notion of "standalone".
    ///
    /// # Errors
    ///
    /// See [`Mapper::map_default`]; unknown ids panic (this is a
    /// test/bench helper, not the service path).
    pub fn map_standalone(
        &self,
        circuit: CircuitId,
        target: TargetId,
        k: usize,
        policy: MapPolicy,
    ) -> Result<MappedNetlist, MapError> {
        self.targets[target].map_policy_cold(
            &self.circuits[circuit].aig,
            &CutConfig::with_k(k),
            policy,
        )
    }

    /// Deficit round-robin over the tenant queues: each scheduling
    /// round credits every backlogged tenant `quantum` jobs and drains
    /// its queue while credit lasts, until `batch` jobs are picked or
    /// every queue is empty. An emptied tenant forfeits leftover credit
    /// (classic DRR — credit must not accumulate while idle).
    fn schedule(&mut self) -> Vec<PendingJob> {
        let mut picked = Vec::new();
        let quantum = self.config.quantum;
        let batch = self.config.batch;
        while picked.len() < batch && self.tenants.iter().any(|t| !t.queue.is_empty()) {
            for tenant in &mut self.tenants {
                if tenant.queue.is_empty() {
                    tenant.deficit = 0;
                    continue;
                }
                tenant.deficit += quantum;
                while tenant.deficit >= 1 && picked.len() < batch {
                    let Some(job) = tenant.queue.pop_front() else {
                        tenant.deficit = 0;
                        break;
                    };
                    tenant.deficit -= 1;
                    picked.push(job);
                }
                if picked.len() >= batch {
                    break;
                }
            }
        }
        picked
    }
}

/// The per-request observability record. Deliberately carries no
/// `mode` field: `slap-report` treats `(circuit, mode)` pairs as gated
/// QoR rows, and request records are a latency stream, not a QoR
/// baseline.
fn request_record(done: &Completed) -> Record {
    let mut rec = Record::new();
    rec.push("event", "request");
    rec.push("job", done.job.0);
    rec.push("tenant", done.tenant.as_str());
    rec.push("circuit", done.circuit.as_str());
    rec.push("target", done.target.as_str());
    rec.push("policy", done.policy.name());
    if let MapPolicy::Shuffled { seed, keep } = done.policy {
        rec.push("seed", seed);
        rec.push("keep", keep);
    }
    rec.push("k", done.k);
    rec.push("kernel", done.kernel.as_str());
    rec.push("passes", done.passes.as_str());
    rec.push("replayed", done.replayed);
    rec.push("generation", done.generation);
    rec.push("queue_wait_s", done.queue_wait_s);
    rec.push("service_s", done.service_s);
    let wait_us = (done.queue_wait_s * 1e6) as u64;
    let service_us = (done.service_s * 1e6) as u64;
    slap_obs::histogram("serve.queue_wait_us").observe(wait_us);
    slap_obs::histogram("serve.service_us").observe(service_us);
    match &done.result {
        Ok(netlist) => {
            let stats = netlist.stats();
            rec.push("area_um2", f64::from(netlist.area()));
            rec.push("delay_ps", f64::from(netlist.delay()));
            rec.push("num_instances", stats.num_instances);
            rec.push("cuts_considered", stats.cuts_considered);
            if !done.replayed {
                rec.push("fn_cache_hits", stats.match_stats.fn_cache_hits);
                rec.push("fn_cache_misses", stats.match_stats.fn_cache_misses);
                rec.push("binding_cache_hits", stats.match_stats.binding_cache_hits);
            }
        }
        Err(e) => {
            rec.push("error", format!("{e:?}"));
        }
    }
    rec
}

/// Content digest of an AIG (its ASCII AIGER serialization hashed).
fn aig_fingerprint(aig: &Aig) -> u64 {
    let mut bytes = Vec::new();
    slap_aig::aiger::write_ascii(aig, &mut bytes).expect("serialize AIG");
    slap_obs::content_hash(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_map::MapOptions;

    fn adder8() -> Aig {
        // A small ripple-carry adder — enough structure to exercise the
        // cache without slowing the unit tests.
        let mut aig = Aig::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..8 {
            a.push(aig.add_pi());
        }
        for _ in 0..8 {
            b.push(aig.add_pi());
        }
        let mut carry = None;
        for i in 0..8 {
            let (x, y) = (a[i], b[i]);
            let sum = match carry {
                None => aig.xor(x, y),
                Some(c) => {
                    let t = aig.xor(x, y);
                    aig.xor(t, c)
                }
            };
            let new_carry = match carry {
                None => aig.and(x, y),
                Some(c) => {
                    let t1 = aig.and(x, y);
                    let t2 = aig.xor(x, y);
                    let t3 = aig.and(t2, c);
                    aig.or(t1, t3)
                }
            };
            carry = Some(new_carry);
            aig.add_po(sum);
        }
        aig.add_po(carry.expect("nonzero width"));
        aig
    }

    fn lut_engine(config: EngineConfig) -> Engine<'static> {
        let mut engine = Engine::new(config);
        engine.add_target(EngineTarget::Lut(LutMapper::lut(6, MapOptions::default())));
        engine.register_circuit("adder8", adder8());
        engine
    }

    fn request(tenant: &str, policy: MapPolicy) -> MapRequest {
        MapRequest {
            tenant: tenant.to_string(),
            circuit: CircuitSpec::Named("adder8".to_string()),
            target: 0,
            k: 6,
            policy,
            kernel: "f32".to_string(),
            passes: String::new(),
        }
    }

    #[test]
    fn queue_full_sheds_with_explicit_rejection() {
        let mut engine = lut_engine(EngineConfig {
            queue_capacity: 2,
            cache: Some(true),
            ..EngineConfig::default()
        });
        assert!(engine.submit(request("t0", MapPolicy::Default)).is_ok());
        assert!(engine
            .submit(request("t0", MapPolicy::Unlimited { cap: 16 }))
            .is_ok());
        let third = engine.submit(request("t0", MapPolicy::Shuffled { seed: 1, keep: 4 }));
        assert_eq!(
            third,
            Err(SubmitError::Rejected(Rejected::QueueFull {
                tenant: "t0".to_string(),
                capacity: 2,
            }))
        );
        // Another tenant still has room.
        assert!(engine.submit(request("t1", MapPolicy::Default)).is_ok());
        assert_eq!(engine.stats().rejected, 1);
        assert_eq!(engine.pending(), 3);
    }

    #[test]
    fn drr_alternates_tenants_and_completes_everything() {
        let mut engine = lut_engine(EngineConfig {
            cache: Some(true),
            ..EngineConfig::default()
        });
        // Tenant a floods three jobs before b's single job arrives; DRR
        // with quantum 1 still alternates a, b, a, a.
        for seed in 0..3u64 {
            engine
                .submit(request("a", MapPolicy::Shuffled { seed, keep: 4 }))
                .expect("admitted");
        }
        engine
            .submit(request("b", MapPolicy::Default))
            .expect("admitted");
        let done = engine.drain();
        assert_eq!(done.len(), 4);
        let tenants: Vec<&str> = done.iter().map(|d| d.tenant.as_str()).collect();
        assert_eq!(tenants, ["a", "b", "a", "a"]);
        assert!(done.iter().all(|d| d.result.is_ok()));
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn repeat_requests_replay_the_run_memo() {
        let mut engine = lut_engine(EngineConfig {
            cache: Some(true),
            ..EngineConfig::default()
        });
        let policy = MapPolicy::Shuffled { seed: 9, keep: 4 };
        engine.submit(request("t", policy)).expect("admitted");
        let first = engine.drain();
        engine.submit(request("t", policy)).expect("admitted");
        let second = engine.drain();
        assert!(!first[0].replayed);
        assert!(second[0].replayed);
        let (a, b) = (
            first[0].result.as_ref().expect("maps"),
            second[0].result.as_ref().expect("maps"),
        );
        assert_eq!(a.area().to_bits(), b.area().to_bits());
        assert_eq!(a.delay().to_bits(), b.delay().to_bits());
        assert_eq!(a.cover_cuts(), b.cover_cuts());
        assert_eq!(engine.stats().executed, 1);
        assert_eq!(engine.stats().replayed, 1);
    }

    #[test]
    fn disabled_cache_still_serves_identical_results() {
        let policy = MapPolicy::Shuffled { seed: 3, keep: 4 };
        let mut on = lut_engine(EngineConfig {
            cache: Some(true),
            ..EngineConfig::default()
        });
        let mut off = lut_engine(EngineConfig {
            cache: Some(false),
            ..EngineConfig::default()
        });
        assert!(on.cache_enabled() && !off.cache_enabled());
        for engine in [&mut on, &mut off] {
            engine.submit(request("t", policy)).expect("admitted");
            engine.submit(request("t", policy)).expect("admitted");
        }
        let warm = on.drain();
        let cold = off.drain();
        assert!(cold.iter().all(|d| !d.replayed), "cold path never replays");
        assert!(warm[1].replayed);
        for (w, c) in warm.iter().zip(&cold) {
            let (w, c) = (
                w.result.as_ref().expect("maps"),
                c.result.as_ref().expect("maps"),
            );
            assert_eq!(w.area().to_bits(), c.area().to_bits());
            assert_eq!(w.delay().to_bits(), c.delay().to_bits());
            assert_eq!(w.cover_cuts(), c.cover_cuts());
        }
        assert_eq!(off.tier_generations(), 0, "disabled tiers never advance");
    }

    #[test]
    fn aiger_submissions_parse_and_dedupe() {
        let mut engine = lut_engine(EngineConfig {
            cache: Some(true),
            ..EngineConfig::default()
        });
        let mut bytes = Vec::new();
        slap_aig::aiger::write_ascii(&adder8(), &mut bytes).expect("serialize");
        let mk = |policy| MapRequest {
            tenant: "t".to_string(),
            circuit: CircuitSpec::Aiger(bytes.clone()),
            target: 0,
            k: 6,
            policy,
            kernel: "f32".to_string(),
            passes: String::new(),
        };
        engine.submit(mk(MapPolicy::Default)).expect("admitted");
        engine.submit(mk(MapPolicy::Default)).expect("admitted");
        let done = engine.drain();
        assert_eq!(done.len(), 2);
        assert!(done[1].replayed, "same bytes dedupe to one circuit");
        assert!(done[0].circuit.starts_with("aiger:"));
        // Bad submissions are rejected without enqueueing.
        let bad = engine.submit(MapRequest {
            circuit: CircuitSpec::Aiger(b"not an aiger".to_vec()),
            ..mk(MapPolicy::Default)
        });
        assert!(matches!(bad, Err(SubmitError::InvalidAiger(_))));
        let unknown = engine.submit(MapRequest {
            circuit: CircuitSpec::Named("nope".to_string()),
            ..mk(MapPolicy::Default)
        });
        assert_eq!(
            unknown,
            Err(SubmitError::UnknownCircuit("nope".to_string()))
        );
        let bad_target = engine.submit(MapRequest {
            target: 7,
            ..mk(MapPolicy::Default)
        });
        assert_eq!(bad_target, Err(SubmitError::UnknownTarget(7)));
    }

    #[test]
    fn request_records_cover_every_completion() {
        let mut engine = lut_engine(EngineConfig {
            cache: Some(true),
            ..EngineConfig::default()
        });
        engine
            .submit(request("t", MapPolicy::Default))
            .expect("admitted");
        engine
            .submit(request("t", MapPolicy::Default))
            .expect("admitted");
        let done = engine.drain();
        let records = engine.take_records();
        assert_eq!(records.len(), done.len());
        let lines: Vec<String> = records.iter().map(Record::to_json_line).collect();
        assert!(lines[0].contains("\"event\":\"request\""));
        assert!(lines[0].contains("\"fn_cache_misses\""));
        assert!(lines[1].contains("\"replayed\":true"));
        assert!(engine.take_records().is_empty(), "records drain once");
    }

    #[test]
    fn optimized_requests_derive_a_distinct_circuit_and_map_equivalently() {
        let mut engine = lut_engine(EngineConfig {
            cache: Some(true),
            ..EngineConfig::default()
        });
        engine
            .submit(request("t", MapPolicy::Default))
            .expect("admitted");
        engine
            .submit(MapRequest {
                passes: "full".to_string(),
                ..request("t", MapPolicy::Default)
            })
            .expect("admitted");
        let done = engine.drain();
        assert_eq!(done.len(), 2);
        // Same (target, k, policy), but the derived circuit has its own
        // id, so the optimized request is NOT a run-memo hit.
        assert!(!done[0].replayed && !done[1].replayed);
        assert_eq!(done[0].circuit, "adder8");
        assert_eq!(done[0].passes, "none");
        assert_eq!(done[1].circuit, "adder8@strash,fold,sweep,balance");
        assert_eq!(done[1].passes, "strash,fold,sweep,balance");
        // The optimized mapping still implements the *registered* graph.
        let raw = done[0].result.as_ref().expect("maps");
        let opt = done[1].result.as_ref().expect("maps");
        assert!(raw.verify_against(&adder8(), 16, 0xC0FFEE));
        assert!(opt.verify_against(&adder8(), 16, 0xC0FFEE));
        assert!(
            opt.stats().num_instances <= raw.stats().num_instances,
            "optimization must not grow the adder's LUT cover ({} > {})",
            opt.stats().num_instances,
            raw.stats().num_instances
        );
        // Both tiers exist, keyed by their own circuit names.
        let tiers = engine.tier_fingerprints();
        assert_eq!(tiers.len(), 2);
        assert_eq!(tiers[0].0, "adder8");
        assert_eq!(tiers[1].0, "adder8@strash,fold,sweep,balance");
    }

    #[test]
    fn optimized_requests_share_one_derivation_and_replay() {
        let mut engine = lut_engine(EngineConfig {
            cache: Some(true),
            ..EngineConfig::default()
        });
        // Three spellings of the same pipeline: the alias, the canonical
        // spec, and the alias again from another tenant. One derivation
        // runs; the repeats replay the derived circuit's run memo.
        for (tenant, spec) in [
            ("a", "full"),
            ("a", "strash,fold,sweep,balance"),
            ("b", "full"),
        ] {
            engine
                .submit(MapRequest {
                    passes: spec.to_string(),
                    ..request(tenant, MapPolicy::Default)
                })
                .expect("admitted");
        }
        let done = engine.drain();
        assert_eq!(done.len(), 3);
        assert!(done
            .iter()
            .all(|d| d.circuit == "adder8@strash,fold,sweep,balance"));
        assert!(!done[0].replayed);
        assert!(done[1].replayed && done[2].replayed);
        let records = engine.take_records();
        let optimize_events: Vec<&Record> = records
            .iter()
            .filter(|r| r.to_json_line().contains("\"event\":\"optimize\""))
            .collect();
        assert_eq!(optimize_events.len(), 1, "optimization runs once");
        let line = optimize_events[0].to_json_line();
        assert!(line.contains("\"circuit\":\"adder8\""));
        assert!(line.contains("\"passes\":\"strash,fold,sweep,balance\""));
        // The request stream carries the canonical spec for provenance.
        let request_lines: Vec<String> = records
            .iter()
            .filter(|r| r.to_json_line().contains("\"event\":\"request\""))
            .map(Record::to_json_line)
            .collect();
        assert_eq!(request_lines.len(), 3);
        assert!(request_lines
            .iter()
            .all(|l| l.contains("\"passes\":\"strash,fold,sweep,balance\"")));
    }

    #[test]
    fn invalid_passes_are_rejected_before_enqueue() {
        let mut engine = lut_engine(EngineConfig {
            cache: Some(true),
            ..EngineConfig::default()
        });
        let bad = engine.submit(MapRequest {
            passes: "strash,nosuchpass".to_string(),
            ..request("t", MapPolicy::Default)
        });
        assert!(matches!(bad, Err(SubmitError::InvalidPasses(_))));
        assert_eq!(engine.pending(), 0);
        // "none" and "" are both the identity pipeline.
        engine
            .submit(MapRequest {
                passes: "none".to_string(),
                ..request("t", MapPolicy::Default)
            })
            .expect("admitted");
        let done = engine.drain();
        assert_eq!(done[0].circuit, "adder8");
        assert_eq!(done[0].passes, "none");
    }
}
