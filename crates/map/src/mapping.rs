//! The covering engine: delay-optimal mapping with area recovery.

use std::time::Instant;

use slap_aig::{Aig, NodeId, Rng64};
use slap_cell::{Library, MatchIndex};
use slap_cuts::{
    enumerate_cuts, CutConfig, CutEnumStats, CutSets, DefaultPolicy, ShufflePolicy, UnlimitedPolicy,
};

use crate::error::MapError;
use crate::matching::{compute_matches, MatchStats, NodeMatches};
use crate::netlist::{Instance, MappedNetlist, PoSource, Signal};

/// Tolerance used when comparing arrivals against required times.
const EPS: f32 = 1e-3;

/// Mapper configuration.
#[derive(Clone, Debug)]
pub struct MapOptions {
    /// Number of global area-flow recovery passes (ABC runs one or two).
    pub area_flow_passes: usize,
    /// Number of exact local-area recovery passes.
    pub exact_area_passes: usize,
    /// Inject the structural 2-input cut for nodes whose policy-filtered
    /// cut list lost it, guaranteeing mappability.
    pub add_structural_matches: bool,
}

impl MapOptions {
    /// ABC-like defaults: two area-flow passes and one exact pass.
    pub fn new() -> MapOptions {
        MapOptions {
            area_flow_passes: 2,
            exact_area_passes: 1,
            add_structural_matches: true,
        }
    }

    /// Delay-only mapping (no area recovery) — useful for ablations.
    pub fn delay_only() -> MapOptions {
        MapOptions {
            area_flow_passes: 0,
            exact_area_passes: 0,
            add_structural_matches: true,
        }
    }
}

impl Default for MapOptions {
    fn default() -> MapOptions {
        MapOptions::new()
    }
}

/// Wall-clock seconds spent in each mapping phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// Cut enumeration (zero when cuts were supplied externally).
    pub enumerate_s: f64,
    /// Boolean matching against the library index.
    pub match_s: f64,
    /// Delay-optimal covering (the first DP pass).
    pub cover_s: f64,
    /// Global area-flow recovery passes.
    pub area_flow_s: f64,
    /// Exact local-area recovery passes.
    pub exact_area_s: f64,
    /// Load-aware static timing analysis.
    pub sta_s: f64,
}

impl PhaseTimes {
    /// Sum over all phases.
    pub fn total_s(&self) -> f64 {
        self.enumerate_s
            + self.match_s
            + self.cover_s
            + self.area_flow_s
            + self.exact_area_s
            + self.sta_s
    }
}

/// Quality-of-results and accounting for one mapping run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MapStats {
    /// Total cell area in µm² (inverters included).
    pub area: f32,
    /// STA delay in ps under the load-dependent model.
    pub delay: f32,
    /// Delay predicted by the covering DP (unit-load model).
    pub dp_delay: f32,
    /// Cuts exposed to Boolean matching — the paper's footprint metric.
    pub cuts_considered: usize,
    /// Number of emitted instances.
    pub num_instances: usize,
    /// How many of those are phase-fixing inverters.
    pub num_inverters: usize,
    /// Matching-step statistics.
    pub match_stats: MatchStats,
    /// Cut-enumeration counters for the cut sets this run consumed.
    pub cut_stats: CutEnumStats,
    /// Match evaluations performed across all DP passes.
    pub matches_tried: u64,
    /// Per-phase wall time.
    pub phase: PhaseTimes,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Choice {
    Unset,
    PiPos,
    Const,
    Match(u32),
    InvertOther,
}

#[derive(Clone, Copy, Debug)]
struct Ph {
    arrival: f32,
    required: f32,
    flow: f32,
    refs: u32,
    choice: Choice,
}

impl Ph {
    fn unset() -> Ph {
        Ph {
            arrival: f32::INFINITY,
            required: f32::INFINITY,
            flow: f32::INFINITY,
            refs: 0,
            choice: Choice::Unset,
        }
    }
}

/// The technology mapper: owns the match index for a library and maps
/// AIGs under any cut policy.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Mapper<'a> {
    library: &'a Library,
    index: MatchIndex,
    options: MapOptions,
}

impl<'a> Mapper<'a> {
    /// Builds a mapper (and its match index) for a library.
    pub fn new(library: &'a Library, options: MapOptions) -> Mapper<'a> {
        Mapper {
            library,
            index: MatchIndex::build(library),
            options,
        }
    }

    /// The library this mapper targets.
    pub fn library(&self) -> &Library {
        self.library
    }

    /// The pre-built match index (shared with SLAP's inference pipeline).
    pub fn index(&self) -> &MatchIndex {
        &self.index
    }

    /// Maps with ABC's default cut policy (sort by leaves, dominance
    /// filter, 250-cut limit).
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if some required node has no implementation
    /// (impossible with a library containing basic 2-input cells).
    pub fn map_default(&self, aig: &Aig, config: &CutConfig) -> Result<MappedNetlist, MapError> {
        let t0 = Instant::now();
        let cuts = enumerate_cuts(aig, config, &mut DefaultPolicy::default());
        self.map_with_cuts_timed(aig, &cuts, t0.elapsed().as_secs_f64())
    }

    /// Maps with the paper's *ABC Unlimited* policy (no sorting or
    /// dominance filtering; `cap` bounds per-node memory).
    ///
    /// # Errors
    ///
    /// See [`Mapper::map_default`].
    pub fn map_unlimited(
        &self,
        aig: &Aig,
        config: &CutConfig,
        cap: usize,
    ) -> Result<MappedNetlist, MapError> {
        let t0 = Instant::now();
        let cuts = enumerate_cuts(aig, config, &mut UnlimitedPolicy::with_cap(cap));
        self.map_with_cuts_timed(aig, &cuts, t0.elapsed().as_secs_f64())
    }

    /// Maps with the random-shuffle policy used for design-space
    /// exploration and training-data generation (Fig. 1 / §IV-B).
    ///
    /// # Errors
    ///
    /// See [`Mapper::map_default`].
    pub fn map_shuffled(
        &self,
        aig: &Aig,
        config: &CutConfig,
        seed: u64,
        keep: usize,
    ) -> Result<MappedNetlist, MapError> {
        let _ = Rng64::seed_from(seed); // seed validity is trivially total; kept for symmetry
        let t0 = Instant::now();
        let cuts = enumerate_cuts(aig, config, &mut ShufflePolicy::with_keep(seed, keep));
        self.map_with_cuts_timed(aig, &cuts, t0.elapsed().as_secs_f64())
    }

    /// Maps an AIG given externally prepared cut sets (the `read_cuts`
    /// entry point used by SLAP).
    ///
    /// # Errors
    ///
    /// Returns [`MapError::CutSetMismatch`] if the cut sets were built for
    /// a different graph, or [`MapError::Unmappable`] if covering fails.
    pub fn map_with_cuts(&self, aig: &Aig, cuts: &CutSets) -> Result<MappedNetlist, MapError> {
        self.map_with_cuts_timed(aig, cuts, 0.0)
    }

    /// [`Mapper::map_with_cuts`] with the seconds already spent on cut
    /// enumeration, so the phase breakdown covers the whole run.
    fn map_with_cuts_timed(
        &self,
        aig: &Aig,
        cuts: &CutSets,
        enumerate_s: f64,
    ) -> Result<MappedNetlist, MapError> {
        if aig.and_ids().next().is_some() {
            // Cheap sanity check: every stored cut list must index within
            // the graph.
            let max = aig.num_nodes();
            for n in aig.and_ids() {
                for c in cuts.cuts_of(n) {
                    if c.leaf_indices().iter().any(|&l| l as usize >= max) {
                        return Err(MapError::CutSetMismatch);
                    }
                }
            }
        }
        let mut phase_times = PhaseTimes {
            enumerate_s,
            ..PhaseTimes::default()
        };
        let mut matches_tried = 0u64;

        let t = Instant::now();
        let (matches, match_stats) = {
            let _span = slap_obs::span("match");
            compute_matches(aig, cuts, &self.index, self.options.add_structural_matches)
        };
        phase_times.match_s = t.elapsed().as_secs_f64();

        let mut state: Vec<[Ph; 2]> = vec![[Ph::unset(), Ph::unset()]; aig.num_nodes()];
        let t = Instant::now();
        let mut dp_delay = {
            let _span = slap_obs::span("cover");
            self.init_terminals(aig, &mut state);
            matches_tried += self.delay_pass(aig, &matches, &mut state);
            self.compute_refs_required(aig, &matches, &mut state)
        };
        phase_times.cover_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        {
            let _span = slap_obs::span("area-flow");
            for _ in 0..self.options.area_flow_passes {
                matches_tried += self.area_flow_pass(aig, &matches, &mut state);
                dp_delay = self.compute_refs_required(aig, &matches, &mut state);
            }
        }
        phase_times.area_flow_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        {
            let _span = slap_obs::span("exact-area");
            for _ in 0..self.options.exact_area_passes {
                matches_tried += self.exact_area_pass(aig, &matches, &mut state);
                dp_delay = self.compute_refs_required(aig, &matches, &mut state);
            }
        }
        phase_times.exact_area_s = t.elapsed().as_secs_f64();

        let netlist = self.extract(
            aig,
            &matches,
            &state,
            dp_delay,
            match_stats,
            *cuts.stats(),
            matches_tried,
            phase_times,
        )?;
        let reg = slap_obs::Registry::global();
        reg.counter("map.matches_tried").add(matches_tried);
        reg.counter("map.npn_hits").add(match_stats.npn_hits);
        reg.counter("map.npn_misses").add(match_stats.npn_misses);
        reg.counter("map.inverters")
            .add(netlist.stats().num_inverters as u64);
        Ok(netlist)
    }

    fn inv_delay(&self) -> f32 {
        let inv = self.library.gate(self.library.inverter());
        inv.delay(0, 1)
    }

    fn inv_area(&self) -> f32 {
        self.library.gate(self.library.inverter()).area()
    }

    fn init_terminals(&self, aig: &Aig, state: &mut [[Ph; 2]]) {
        let c0 = &mut state[NodeId::CONST0.index()];
        c0[0] = Ph {
            arrival: 0.0,
            required: f32::INFINITY,
            flow: 0.0,
            refs: 0,
            choice: Choice::Const,
        };
        c0[1] = Ph {
            arrival: 0.0,
            required: f32::INFINITY,
            flow: 0.0,
            refs: 0,
            choice: Choice::Const,
        };
        for pi in aig.pis() {
            let s = &mut state[pi.index()];
            s[0] = Ph {
                arrival: 0.0,
                required: f32::INFINITY,
                flow: 0.0,
                refs: 0,
                choice: Choice::PiPos,
            };
            s[1] = Ph {
                arrival: self.inv_delay(),
                required: f32::INFINITY,
                flow: self.inv_area(),
                refs: 0,
                choice: Choice::InvertOther,
            };
        }
    }

    /// Arrival of a prepared match under the unit-load DP model.
    fn match_arrival(&self, m: &crate::matching::PreparedMatch, state: &[[Ph; 2]]) -> f32 {
        let gate = self.library.gate(m.gate);
        let mut arr = 0.0f32;
        for &(leaf, compl, pin) in &m.leaves {
            let a = state[leaf.index()][compl as usize].arrival + gate.delay(pin as usize, 1);
            arr = arr.max(a);
        }
        arr
    }

    /// Area flow of a prepared match given current flows and refs.
    fn match_flow(&self, m: &crate::matching::PreparedMatch, state: &[[Ph; 2]]) -> f32 {
        let gate = self.library.gate(m.gate);
        let mut flow = gate.area();
        for &(leaf, compl, _) in &m.leaves {
            let s = &state[leaf.index()][compl as usize];
            flow += s.flow / (s.refs.max(1) as f32);
        }
        flow
    }

    /// Returns the number of match evaluations performed.
    fn delay_pass(&self, aig: &Aig, matches: &[NodeMatches], state: &mut [[Ph; 2]]) -> u64 {
        let mut tried = 0u64;
        for n in aig.and_ids() {
            for phase in 0..2 {
                let list = matches[n.index()].phase(phase == 1);
                tried += list.len() as u64;
                let mut best: Option<(f32, f32, u32)> = None; // (arrival, area, idx)
                for (i, m) in list.iter().enumerate() {
                    let arr = self.match_arrival(m, state);
                    let area = self.library.gate(m.gate).area();
                    let better = match best {
                        None => true,
                        Some((ba, bar, _)) => arr < ba - EPS || (arr < ba + EPS && area < bar),
                    };
                    if better {
                        best = Some((arr, area, i as u32));
                    }
                }
                let ph = &mut state[n.index()][phase];
                if let Some((arr, _, i)) = best {
                    ph.arrival = arr;
                    ph.choice = Choice::Match(i);
                } else {
                    ph.arrival = f32::INFINITY;
                    ph.choice = Choice::Unset;
                }
            }
            // Inverter relaxation between the two phases.
            for phase in 0..2 {
                let other = &state[n.index()][1 - phase];
                if matches!(other.choice, Choice::Match(_)) {
                    let alt = other.arrival + self.inv_delay();
                    let ph = &state[n.index()][phase];
                    if alt + EPS < ph.arrival || ph.choice == Choice::Unset {
                        let ph = &mut state[n.index()][phase];
                        ph.arrival = alt;
                        ph.choice = Choice::InvertOther;
                    }
                }
            }
            // Flow bookkeeping so later passes have sane starting values.
            for phase in 0..2 {
                let flow = match state[n.index()][phase].choice {
                    Choice::Match(i) => {
                        let m = &matches[n.index()].phase(phase == 1)[i as usize];
                        self.match_flow(m, state)
                    }
                    Choice::InvertOther => state[n.index()][1 - phase].flow + self.inv_area(),
                    _ => f32::INFINITY,
                };
                state[n.index()][phase].flow = flow;
            }
        }
        tried
    }

    /// Rebuilds reference counts and required times from the POs over the
    /// current choices. Returns the DP delay (max PO arrival).
    fn compute_refs_required(
        &self,
        aig: &Aig,
        matches: &[NodeMatches],
        state: &mut [[Ph; 2]],
    ) -> f32 {
        for s in state.iter_mut() {
            s[0].refs = 0;
            s[0].required = f32::INFINITY;
            s[1].refs = 0;
            s[1].required = f32::INFINITY;
        }
        let mut dp_delay = 0.0f32;
        for &po in aig.pos() {
            if po.node() == NodeId::CONST0 {
                continue;
            }
            let arr = state[po.node().index()][po.is_complement() as usize].arrival;
            dp_delay = dp_delay.max(arr);
        }
        for &po in aig.pos() {
            if po.node() == NodeId::CONST0 {
                continue;
            }
            let s = &mut state[po.node().index()][po.is_complement() as usize];
            s.refs += 1;
            s.required = s.required.min(dp_delay);
        }
        let inv_delay = self.inv_delay();
        for idx in (0..aig.num_nodes()).rev() {
            // Inverter edges first (intra-node), then match edges.
            for phase in 0..2 {
                let s = state[idx][phase];
                if s.refs > 0 && s.choice == Choice::InvertOther {
                    let req = s.required - inv_delay;
                    let o = &mut state[idx][1 - phase];
                    o.refs += 1;
                    o.required = o.required.min(req);
                }
            }
            let n = NodeId::new(idx);
            if !aig.is_and(n) {
                continue;
            }
            for phase in 0..2 {
                let s = state[idx][phase];
                if s.refs == 0 {
                    continue;
                }
                if let Choice::Match(i) = s.choice {
                    let m = &matches[idx].phase(phase == 1)[i as usize];
                    let gate = self.library.gate(m.gate);
                    for &(leaf, compl, pin) in &m.leaves {
                        let req = s.required - gate.delay(pin as usize, 1);
                        let l = &mut state[leaf.index()][compl as usize];
                        l.refs += 1;
                        l.required = l.required.min(req);
                    }
                }
            }
        }
        dp_delay
    }

    /// Returns the number of match evaluations performed.
    fn area_flow_pass(&self, aig: &Aig, matches: &[NodeMatches], state: &mut [[Ph; 2]]) -> u64 {
        let mut tried = 0u64;
        for n in aig.and_ids() {
            // Match-based candidates for both phases.
            for phase in 0..2 {
                let required = state[n.index()][phase].required;
                let list = matches[n.index()].phase(phase == 1);
                tried += list.len() as u64;
                let mut best: Option<(f32, f32, u32)> = None; // (flow, arrival, idx)
                for (i, m) in list.iter().enumerate() {
                    let arr = self.match_arrival(m, state);
                    if arr > required + EPS {
                        continue;
                    }
                    let flow = self.match_flow(m, state);
                    let better = match best {
                        None => true,
                        Some((bf, ba, _)) => flow < bf - EPS || (flow < bf + EPS && arr < ba),
                    };
                    if better {
                        best = Some((flow, arr, i as u32));
                    }
                }
                if let Some((flow, arr, i)) = best {
                    let ph = &mut state[n.index()][phase];
                    ph.choice = Choice::Match(i);
                    ph.arrival = arr;
                    ph.flow = flow;
                }
                // If nothing is feasible (tight required through an edge the
                // previous cover did not constrain), the previous choice is
                // kept — it is feasible by construction.
            }
            // Inverter relaxation by flow.
            for phase in 0..2 {
                let other = state[n.index()][1 - phase];
                if !matches!(other.choice, Choice::Match(_)) {
                    continue;
                }
                let alt_arr = other.arrival + self.inv_delay();
                let alt_flow = other.flow + self.inv_area();
                let ph = state[n.index()][phase];
                if alt_arr <= ph.required + EPS && alt_flow + EPS < ph.flow {
                    let ph = &mut state[n.index()][phase];
                    ph.choice = Choice::InvertOther;
                    ph.arrival = alt_arr;
                    ph.flow = alt_flow;
                }
            }
        }
        tried
    }

    /// Returns the number of match evaluations performed.
    fn exact_area_pass(&self, aig: &Aig, matches: &[NodeMatches], state: &mut [[Ph; 2]]) -> u64 {
        let mut tried = 0u64;
        for n in aig.and_ids() {
            for phase in 0..2 {
                if state[n.index()][phase].refs == 0 {
                    continue;
                }
                let required = state[n.index()][phase].required;
                let old_choice = state[n.index()][phase].choice;
                // Remove the current implementation's cone.
                self.deref_impl(n, phase, matches, state);
                let list = matches[n.index()].phase(phase == 1);
                tried += list.len() as u64;
                let mut best: Option<(f32, f32, Choice)> = None; // (area, arrival, choice)
                for (i, m) in list.iter().enumerate() {
                    let arr = self.match_arrival(m, state);
                    if arr > required + EPS {
                        continue;
                    }
                    let area =
                        self.ref_candidate(n, phase, Choice::Match(i as u32), matches, state);
                    self.deref_candidate(n, phase, Choice::Match(i as u32), matches, state);
                    let better = match best {
                        None => true,
                        Some((ba, baa, _)) => area < ba - EPS || (area < ba + EPS && arr < baa),
                    };
                    if better {
                        best = Some((area, arr, Choice::Match(i as u32)));
                    }
                }
                // Inverter candidate.
                let other = state[n.index()][1 - phase];
                if matches!(other.choice, Choice::Match(_)) {
                    let arr = other.arrival + self.inv_delay();
                    if arr <= required + EPS {
                        let area =
                            self.ref_candidate(n, phase, Choice::InvertOther, matches, state);
                        self.deref_candidate(n, phase, Choice::InvertOther, matches, state);
                        let better = match best {
                            None => true,
                            Some((ba, _, _)) => area + EPS < ba,
                        };
                        if better {
                            best = Some((area, arr, Choice::InvertOther));
                        }
                    }
                }
                let (arr, choice) = match best {
                    Some((_, arr, choice)) => (arr, choice),
                    None => {
                        // Nothing feasible: restore the old implementation.
                        let arr = state[n.index()][phase].arrival;
                        (arr, old_choice)
                    }
                };
                self.ref_candidate(n, phase, choice, matches, state);
                let ph = &mut state[n.index()][phase];
                ph.choice = choice;
                ph.arrival = arr;
            }
        }
        tried
    }

    /// Frees the gate implementing `(n, phase)` and releases its input
    /// references, returning the freed area.
    fn deref_impl(
        &self,
        n: NodeId,
        phase: usize,
        matches: &[NodeMatches],
        state: &mut [[Ph; 2]],
    ) -> f32 {
        match state[n.index()][phase].choice {
            Choice::PiPos | Choice::Const | Choice::Unset => 0.0,
            Choice::InvertOther => self.inv_area() + self.release(n, 1 - phase, matches, state),
            Choice::Match(i) => {
                let m = matches[n.index()].phase(phase == 1)[i as usize].clone();
                let mut area = self.library.gate(m.gate).area();
                for &(leaf, compl, _) in &m.leaves {
                    area += self.release(leaf, compl as usize, matches, state);
                }
                area
            }
        }
    }

    fn release(
        &self,
        m: NodeId,
        phase: usize,
        matches: &[NodeMatches],
        state: &mut [[Ph; 2]],
    ) -> f32 {
        let s = &mut state[m.index()][phase];
        debug_assert!(s.refs > 0, "release of unreferenced signal");
        s.refs -= 1;
        if s.refs == 0 {
            self.deref_impl(m, phase, matches, state)
        } else {
            0.0
        }
    }

    /// Adds one reference to the candidate implementation of `(n, phase)`,
    /// returning the area it would add.
    fn ref_candidate(
        &self,
        n: NodeId,
        phase: usize,
        cand: Choice,
        matches: &[NodeMatches],
        state: &mut [[Ph; 2]],
    ) -> f32 {
        match cand {
            Choice::PiPos | Choice::Const | Choice::Unset => 0.0,
            Choice::InvertOther => self.inv_area() + self.acquire(n, 1 - phase, matches, state),
            Choice::Match(i) => {
                let m = matches[n.index()].phase(phase == 1)[i as usize].clone();
                let mut area = self.library.gate(m.gate).area();
                for &(leaf, compl, _) in &m.leaves {
                    area += self.acquire(leaf, compl as usize, matches, state);
                }
                area
            }
        }
    }

    fn acquire(
        &self,
        m: NodeId,
        phase: usize,
        matches: &[NodeMatches],
        state: &mut [[Ph; 2]],
    ) -> f32 {
        let needs_impl = state[m.index()][phase].refs == 0;
        let area = if needs_impl {
            // Temporarily reuse ref_candidate on the node's own choice.
            let choice = state[m.index()][phase].choice;
            self.ref_candidate(m, phase, choice, matches, state)
        } else {
            0.0
        };
        state[m.index()][phase].refs += 1;
        area
    }

    fn deref_candidate(
        &self,
        n: NodeId,
        phase: usize,
        cand: Choice,
        matches: &[NodeMatches],
        state: &mut [[Ph; 2]],
    ) -> f32 {
        match cand {
            Choice::PiPos | Choice::Const | Choice::Unset => 0.0,
            Choice::InvertOther => self.inv_area() + self.release(n, 1 - phase, matches, state),
            Choice::Match(i) => {
                let m = matches[n.index()].phase(phase == 1)[i as usize].clone();
                let mut area = self.library.gate(m.gate).area();
                for &(leaf, compl, _) in &m.leaves {
                    area += self.release(leaf, compl as usize, matches, state);
                }
                area
            }
        }
    }

    /// Extracts the final cover as a gate-level netlist.
    #[allow(clippy::too_many_arguments)]
    fn extract(
        &self,
        aig: &Aig,
        matches: &[NodeMatches],
        state: &[[Ph; 2]],
        dp_delay: f32,
        match_stats: MatchStats,
        cut_stats: CutEnumStats,
        matches_tried: u64,
        mut phase_times: PhaseTimes,
    ) -> Result<MappedNetlist, MapError> {
        let mut instances: Vec<Instance> = Vec::new();
        let mut cover_cuts: Vec<(NodeId, slap_cuts::Cut)> = Vec::new();
        let mut emitted = vec![[false, false]; aig.num_nodes()];
        let mut pos = Vec::with_capacity(aig.num_pos());
        for &po in aig.pos() {
            if po.node() == NodeId::CONST0 {
                pos.push(PoSource::Const(po.is_complement()));
                continue;
            }
            let sig = Signal::new(po.node(), po.is_complement());
            self.emit(
                aig,
                matches,
                state,
                sig,
                &mut emitted,
                &mut instances,
                &mut cover_cuts,
            )?;
            pos.push(PoSource::Signal(sig));
        }
        let num_inverters = instances
            .iter()
            .filter(|i| i.gate == self.library.inverter())
            .count();
        let mut stats = MapStats {
            area: 0.0,
            delay: 0.0,
            dp_delay,
            cuts_considered: match_stats.cuts_considered,
            num_instances: instances.len(),
            num_inverters,
            match_stats,
            cut_stats,
            matches_tried,
            phase: phase_times,
        };
        stats.area = instances
            .iter()
            .map(|i| self.library.gate(i.gate).area())
            .sum();
        let mut netlist = MappedNetlist::new(
            self.library.clone(),
            aig.num_pis(),
            instances,
            pos,
            stats,
            cover_cuts,
        );
        let t = Instant::now();
        {
            let _span = slap_obs::span("sta");
            netlist.run_sta();
        }
        phase_times.sta_s = t.elapsed().as_secs_f64();
        netlist.stats_mut().phase = phase_times;
        Ok(netlist)
    }

    #[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
    fn emit(
        &self,
        aig: &Aig,
        matches: &[NodeMatches],
        state: &[[Ph; 2]],
        sig: Signal,
        emitted: &mut [[bool; 2]],
        out: &mut Vec<Instance>,
        cover_cuts: &mut Vec<(NodeId, slap_cuts::Cut)>,
    ) -> Result<(), MapError> {
        let (n, phase) = (sig.node(), sig.complement() as usize);
        if emitted[n.index()][phase] {
            return Ok(());
        }
        emitted[n.index()][phase] = true;
        match state[n.index()][phase].choice {
            Choice::PiPos | Choice::Const => Ok(()),
            Choice::Unset => Err(MapError::Unmappable {
                node: n.index(),
                complemented: phase == 1,
            }),
            Choice::InvertOther => {
                let input = Signal::new(n, phase == 0);
                self.emit(aig, matches, state, input, emitted, out, cover_cuts)?;
                out.push(Instance::new(self.library.inverter(), sig, vec![input]));
                Ok(())
            }
            Choice::Match(i) => {
                let m = &matches[n.index()].phase(phase == 1)[i as usize];
                let gate = self.library.gate(m.gate);
                let mut inputs = vec![Signal::new(NodeId::CONST0, false); gate.num_pins()];
                for &(leaf, compl, pin) in &m.leaves {
                    let ls = Signal::new(leaf, compl);
                    self.emit(aig, matches, state, ls, emitted, out, cover_cuts)?;
                    inputs[pin as usize] = ls;
                }
                cover_cuts.push((n, m.cut));
                out.push(Instance::new(m.gate, sig, inputs));
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_cell::asap7_mini;

    fn small_graph() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let d = aig.add_pi();
        let x = aig.xor(a, b);
        let y = aig.and(c, d);
        let f = aig.or(x, !y);
        aig.add_po(f);
        aig.add_po(!x);
        aig
    }

    #[test]
    fn maps_and_verifies_small_graph() {
        let aig = small_graph();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        assert!(
            nl.verify_against(&aig, 32, 3),
            "netlist must be functionally equivalent"
        );
        assert!(nl.area() > 0.0);
        assert!(nl.delay() > 0.0);
        assert!(nl.stats().cuts_considered > 0);
    }

    #[test]
    fn delay_only_vs_recovered_area() {
        let aig = small_graph();
        let lib = asap7_mini();
        let delay_only = Mapper::new(&lib, MapOptions::delay_only())
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        let recovered = Mapper::new(&lib, MapOptions::default())
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        assert!(recovered.area() <= delay_only.area() + 1e-3);
        // Area recovery must not worsen the DP delay.
        assert!(recovered.stats().dp_delay <= delay_only.stats().dp_delay + 1e-2);
    }

    #[test]
    fn unlimited_considers_more_cuts() {
        let aig = small_graph();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let d = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        let u = mapper
            .map_unlimited(&aig, &CutConfig::default(), 1000)
            .expect("maps");
        assert!(u.stats().cuts_considered >= d.stats().cuts_considered);
        assert!(u.verify_against(&aig, 16, 4));
    }

    #[test]
    fn shuffled_maps_stay_correct() {
        let aig = small_graph();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        for seed in 0..8 {
            let nl = mapper
                .map_shuffled(&aig, &CutConfig::default(), seed, 4)
                .expect("maps");
            assert!(
                nl.verify_against(&aig, 16, seed + 100),
                "seed {seed} broke equivalence"
            );
        }
    }

    #[test]
    fn stats_carry_phase_times_and_work_counters() {
        let aig = small_graph();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        let s = nl.stats();
        assert!(s.matches_tried > 0);
        assert!(s.match_stats.npn_hits > 0);
        assert!(s.cut_stats.cuts_enumerated > 0);
        assert_eq!(s.cut_stats.nodes_processed as usize, aig.num_ands());
        // Phase times are measured (non-negative) and sum consistently.
        assert!(s.phase.enumerate_s >= 0.0 && s.phase.sta_s >= 0.0);
        assert!(s.phase.total_s() >= s.phase.match_s);
    }

    #[test]
    fn po_on_pi_and_constants() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        aig.add_po(a);
        aig.add_po(!a);
        aig.add_po(slap_aig::Lit::TRUE);
        aig.add_po(slap_aig::Lit::FALSE);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        assert!(nl.verify_against(&aig, 8, 5));
        // Exactly one inverter for !a; constants and the plain PI are free.
        assert_eq!(nl.stats().num_instances, 1);
        assert_eq!(nl.stats().num_inverters, 1);
    }

    #[test]
    fn empty_aig_maps_to_empty_netlist() {
        let aig = Aig::new();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        assert_eq!(nl.stats().num_instances, 0);
        assert_eq!(nl.area(), 0.0);
        assert_eq!(nl.delay(), 0.0);
    }
}
