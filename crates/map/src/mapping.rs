//! The covering engine: delay-optimal mapping with area recovery.

use std::time::Instant;

use slap_aig::cone::ConeScratch;
use slap_aig::{Aig, NodeId, Rng64};
use slap_cache::{CachedRun, RunCache, RunKey, SessionCache, SessionDelta};
use slap_cell::{Library, MatchIndex};
use slap_cuts::{
    enumerate_cuts, ArenaStats, Cut, CutArena, CutConfig, CutEnumStats, CutId, DefaultPolicy,
    ShufflePolicy, UnlimitedPolicy, MAX_CUT_SIZE,
};

use crate::error::MapError;
use crate::matching::{compute_matches_ctx, CacheCtx, MatchArena, MatchStats, PreparedMatch};
use crate::netlist::{Instance, MappedNetlist, PoSource, Signal};
use crate::target::{AsicTarget, LutTarget, Target};

/// Tolerance used when comparing arrivals against required times.
const EPS: f32 = 1e-3;

/// A cut-enumeration policy selection as plain data, so callers that
/// route *mixed* workloads (the `slap-serve` engine, the bench bins)
/// can carry "which map" in a job description instead of branching to
/// one of the `map_default` / `map_unlimited` / `map_shuffled` entry
/// points at every call site. `Eq + Hash` so a policy can key run
/// memoization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MapPolicy {
    /// The paper's *ABC Default* priority-cut policy.
    Default,
    /// The *ABC Unlimited* policy; `cap` bounds per-node memory.
    Unlimited {
        /// Per-node cut cap (memory bound, not a priority filter).
        cap: usize,
    },
    /// The random-shuffle exploration policy (Fig. 1 / §IV-B).
    Shuffled {
        /// Shuffle seed.
        seed: u64,
        /// Cuts kept per node.
        keep: usize,
    },
}

impl MapPolicy {
    /// Short policy label (`"default"`, `"unlimited"`, `"shuffled"`)
    /// for manifests and metrics records.
    pub fn name(&self) -> &'static str {
        match self {
            MapPolicy::Default => "default",
            MapPolicy::Unlimited { .. } => "unlimited",
            MapPolicy::Shuffled { .. } => "shuffled",
        }
    }

    /// Runs the policy's cut enumeration.
    fn enumerate(&self, aig: &Aig, config: &CutConfig) -> CutArena {
        match *self {
            MapPolicy::Default => enumerate_cuts(aig, config, &mut DefaultPolicy::default()),
            MapPolicy::Unlimited { cap } => {
                enumerate_cuts(aig, config, &mut UnlimitedPolicy::with_cap(cap))
            }
            MapPolicy::Shuffled { seed, keep } => {
                enumerate_cuts(aig, config, &mut ShufflePolicy::with_keep(seed, keep))
            }
        }
    }
}

/// Mapper configuration.
#[derive(Clone, Debug)]
pub struct MapOptions {
    /// Number of global area-flow recovery passes (ABC runs one or two).
    pub area_flow_passes: usize,
    /// Number of exact local-area recovery passes.
    pub exact_area_passes: usize,
    /// Inject the structural 2-input cut for nodes whose policy-filtered
    /// cut list lost it, guaranteeing mappability.
    pub add_structural_matches: bool,
}

impl MapOptions {
    /// ABC-like defaults: two area-flow passes and one exact pass.
    pub fn new() -> MapOptions {
        MapOptions {
            area_flow_passes: 2,
            exact_area_passes: 1,
            add_structural_matches: true,
        }
    }

    /// Delay-only mapping (no area recovery) — useful for ablations.
    pub fn delay_only() -> MapOptions {
        MapOptions {
            area_flow_passes: 0,
            exact_area_passes: 0,
            add_structural_matches: true,
        }
    }
}

impl Default for MapOptions {
    fn default() -> MapOptions {
        MapOptions::new()
    }
}

/// Wall-clock seconds spent in each mapping phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// Cut enumeration (zero when cuts were supplied externally).
    pub enumerate_s: f64,
    /// Boolean matching against the library index.
    pub match_s: f64,
    /// Delay-optimal covering (the first DP pass).
    pub cover_s: f64,
    /// Global area-flow recovery passes.
    pub area_flow_s: f64,
    /// Exact local-area recovery passes.
    pub exact_area_s: f64,
    /// Load-aware static timing analysis.
    pub sta_s: f64,
}

impl PhaseTimes {
    /// Sum over all phases.
    pub fn total_s(&self) -> f64 {
        self.enumerate_s
            + self.match_s
            + self.cover_s
            + self.area_flow_s
            + self.exact_area_s
            + self.sta_s
    }
}

/// Quality-of-results and accounting for one mapping run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MapStats {
    /// Total cell area in µm² (inverters included).
    pub area: f32,
    /// STA delay in ps under the load-dependent model.
    pub delay: f32,
    /// Delay predicted by the covering DP (unit-load model).
    pub dp_delay: f32,
    /// Cuts exposed to Boolean matching — the paper's footprint metric.
    pub cuts_considered: usize,
    /// Number of emitted instances.
    pub num_instances: usize,
    /// How many of those are phase-fixing inverters.
    pub num_inverters: usize,
    /// Matching-step statistics.
    pub match_stats: MatchStats,
    /// Cut-enumeration counters for the cut sets this run consumed.
    pub cut_stats: CutEnumStats,
    /// Storage footprint of the cut arena this run consumed.
    pub arena_stats: ArenaStats,
    /// Match evaluations performed across all DP passes.
    pub matches_tried: u64,
    /// Per-phase wall time.
    pub phase: PhaseTimes,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Choice {
    Unset,
    PiPos,
    Const,
    Match(u32),
    InvertOther,
}

/// The covering DP's per-signal table in structure-of-arrays layout:
/// entry `2 * node + phase` describes the node's `phase` polarity
/// (`0` = positive). Each pass touches only the columns it needs, so the
/// hot delay/area loops stream through dense `f32` rows instead of
/// striding over an array-of-structs.
#[derive(Debug)]
struct DpState {
    arrival: Vec<f32>,
    required: Vec<f32>,
    flow: Vec<f32>,
    refs: Vec<u32>,
    choice: Vec<Choice>,
}

/// Index of `(node, phase)` in the [`DpState`] columns.
#[inline]
fn sx(n: NodeId, phase: usize) -> usize {
    2 * n.index() + phase
}

impl DpState {
    fn new(num_nodes: usize) -> DpState {
        let mut state = DpState {
            arrival: Vec::new(),
            required: Vec::new(),
            flow: Vec::new(),
            refs: Vec::new(),
            choice: Vec::new(),
        };
        state.reset(num_nodes);
        state
    }

    /// Restores the pristine-table invariants while keeping the
    /// allocations, so a session re-mapping the same AIG pays for the DP
    /// columns once instead of once per run.
    fn reset(&mut self, num_nodes: usize) {
        let len = 2 * num_nodes;
        self.arrival.clear();
        self.arrival.resize(len, f32::INFINITY);
        self.required.clear();
        self.required.resize(len, f32::INFINITY);
        self.flow.clear();
        self.flow.resize(len, f32::INFINITY);
        self.refs.clear();
        self.refs.resize(len, 0);
        self.choice.clear();
        self.choice.resize(len, Choice::Unset);
    }
}

/// The technology mapper: covers AIGs onto a [`Target`] under any cut
/// policy. Defaults to the ASIC target, so `Mapper<'a>` keeps meaning
/// "standard-cell mapper for a library"; [`LutMapper`] is the k-LUT
/// flavor.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Mapper<'a, T: Target = AsicTarget<'a>> {
    target: T,
    options: MapOptions,
    _lib: std::marker::PhantomData<&'a ()>,
}

impl<'a> Mapper<'a> {
    /// Builds an ASIC mapper (and its match index) for a library.
    pub fn new(library: &'a Library, options: MapOptions) -> Mapper<'a> {
        Mapper::for_target(AsicTarget::new(library), options)
    }

    /// The library this mapper targets.
    pub fn library(&self) -> &'a Library {
        self.target.library()
    }

    /// The pre-built match index (shared with SLAP's inference pipeline).
    pub fn index(&self) -> &MatchIndex {
        self.target.index()
    }
}

/// A [`Mapper`] for the k-LUT FPGA target.
pub type LutMapper = Mapper<'static, LutTarget>;

impl LutMapper {
    /// Builds a mapper covering onto `k`-input LUTs.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `2..=6` (see [`LutTarget::new`]).
    pub fn lut(k: usize, options: MapOptions) -> LutMapper {
        Mapper::for_target(LutTarget::new(k), options)
    }
}

impl<'a, T: Target> Mapper<'a, T> {
    /// Builds a mapper for an arbitrary target.
    pub fn for_target(target: T, options: MapOptions) -> Mapper<'a, T> {
        Mapper {
            target,
            options,
            _lib: std::marker::PhantomData,
        }
    }

    /// The target this mapper covers onto.
    pub fn target(&self) -> &T {
        &self.target
    }

    /// Maps with ABC's default cut policy (sort by leaves, dominance
    /// filter, 250-cut limit).
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if some required node has no implementation
    /// (impossible with a library containing basic 2-input cells).
    pub fn map_default(&self, aig: &Aig, config: &CutConfig) -> Result<MappedNetlist, MapError> {
        let t0 = Instant::now();
        let cuts = enumerate_cuts(aig, config, &mut DefaultPolicy::default());
        self.map_with_cuts_timed(aig, &cuts, t0.elapsed().as_secs_f64())
    }

    /// Maps with the paper's *ABC Unlimited* policy (no sorting or
    /// dominance filtering; `cap` bounds per-node memory).
    ///
    /// # Errors
    ///
    /// See [`Mapper::map_default`].
    pub fn map_unlimited(
        &self,
        aig: &Aig,
        config: &CutConfig,
        cap: usize,
    ) -> Result<MappedNetlist, MapError> {
        let t0 = Instant::now();
        let cuts = enumerate_cuts(aig, config, &mut UnlimitedPolicy::with_cap(cap));
        self.map_with_cuts_timed(aig, &cuts, t0.elapsed().as_secs_f64())
    }

    /// Maps with the random-shuffle policy used for design-space
    /// exploration and training-data generation (Fig. 1 / §IV-B).
    ///
    /// # Errors
    ///
    /// See [`Mapper::map_default`].
    pub fn map_shuffled(
        &self,
        aig: &Aig,
        config: &CutConfig,
        seed: u64,
        keep: usize,
    ) -> Result<MappedNetlist, MapError> {
        let _ = Rng64::seed_from(seed); // seed validity is trivially total; kept for symmetry
        let t0 = Instant::now();
        let cuts = enumerate_cuts(aig, config, &mut ShufflePolicy::with_keep(seed, keep));
        self.map_with_cuts_timed(aig, &cuts, t0.elapsed().as_secs_f64())
    }

    /// Maps an AIG given an externally prepared cut arena (the `read_cuts`
    /// entry point used by SLAP).
    ///
    /// # Errors
    ///
    /// Returns [`MapError::CutSetMismatch`] if the cut arena was built for
    /// a different graph, or [`MapError::Unmappable`] if covering fails.
    pub fn map_with_cuts(&self, aig: &Aig, cuts: &CutArena) -> Result<MappedNetlist, MapError> {
        self.map_with_cuts_timed(aig, cuts, 0.0)
    }

    /// Maps with the policy described by `policy` — the data-driven
    /// dispatch over [`Mapper::map_default`] / [`Mapper::map_unlimited`]
    /// / [`Mapper::map_shuffled`], cold (no cache).
    ///
    /// # Errors
    ///
    /// See [`Mapper::map_default`].
    pub fn map_policy(
        &self,
        aig: &Aig,
        config: &CutConfig,
        policy: MapPolicy,
    ) -> Result<MappedNetlist, MapError> {
        let t0 = Instant::now();
        let cuts = policy.enumerate(aig, config);
        self.map_with_cuts_timed(aig, &cuts, t0.elapsed().as_secs_f64())
    }

    /// [`Mapper::map_policy`] against a frozen (`&`) shared cache — the
    /// `slap-serve` worker entry point: cache misses are computed cold
    /// and recorded in the returned [`SessionDelta`] instead of mutating
    /// the cache, so any number of workers can probe one cache
    /// concurrently. The result is bit-identical to the cold
    /// [`Mapper::map_policy`] regardless of what the cache holds; a
    /// disabled cache degrades transparently to the cold path and
    /// records nothing.
    pub fn map_policy_frozen(
        &self,
        aig: &Aig,
        config: &CutConfig,
        policy: MapPolicy,
        cache: &SessionCache,
    ) -> (Result<MappedNetlist, MapError>, SessionDelta) {
        let t0 = Instant::now();
        let cuts = policy.enumerate(aig, config);
        let enumerate_s = t0.elapsed().as_secs_f64();
        let mut delta = SessionDelta::default();
        let mut dp = DpState::new(aig.num_nodes());
        let result = self.map_with_cuts_ctx(
            aig,
            &cuts,
            enumerate_s,
            CacheCtx::Frozen(cache, &mut delta),
            &mut dp,
        );
        (result, delta)
    }

    /// Replays a worker delta into `cache` through this mapper's
    /// target-specific absorb (bindings prepared for ASIC, function-only
    /// for LUT targets). Returns how many truth tables were newly
    /// interned.
    pub fn absorb_into(&self, cache: &mut SessionCache, delta: SessionDelta) -> u64 {
        self.target.absorb_delta(cache, delta)
    }

    /// Opens a memoizing session on `aig`: repeated maps of the same AIG
    /// through the session replay cached cut functions and gate bindings
    /// instead of recomputing them, with bit-identical results. Honors
    /// the `SLAP_CACHE` environment toggle (`SLAP_CACHE=0` forces the
    /// cold path). The one-shot `map_*` methods on [`Mapper`] stay cold.
    pub fn session<'s>(&'s self, aig: &'s Aig) -> MapSession<'s, 'a, T> {
        MapSession {
            mapper: self,
            aig,
            cache: SessionCache::from_env(),
            runs: RunCache::default(),
            dp: DpState::new(aig.num_nodes()),
        }
    }

    /// [`Mapper::session`] with the cache toggle set explicitly instead
    /// of from the environment (used by benchmarks interleaving cold and
    /// warm runs in one process).
    pub fn session_cached<'s>(&'s self, aig: &'s Aig, enabled: bool) -> MapSession<'s, 'a, T> {
        MapSession {
            mapper: self,
            aig,
            cache: SessionCache::new(enabled),
            runs: RunCache::default(),
            dp: DpState::new(aig.num_nodes()),
        }
    }

    /// [`Mapper::map_with_cuts`] with the seconds already spent on cut
    /// enumeration, so the phase breakdown covers the whole run.
    fn map_with_cuts_timed(
        &self,
        aig: &Aig,
        cuts: &CutArena,
        enumerate_s: f64,
    ) -> Result<MappedNetlist, MapError> {
        let mut state = DpState::new(aig.num_nodes());
        self.map_with_cuts_ctx(aig, cuts, enumerate_s, CacheCtx::Off, &mut state)
    }

    /// The full covering run with an explicit cache context and reusable
    /// DP state (the session entry point; `state` is reset here).
    fn map_with_cuts_ctx(
        &self,
        aig: &Aig,
        cuts: &CutArena,
        enumerate_s: f64,
        ctx: CacheCtx<'_>,
        state: &mut DpState,
    ) -> Result<MappedNetlist, MapError> {
        if aig.and_ids().next().is_some() {
            // Cheap sanity check: every stored cut list must index within
            // the graph.
            let max = aig.num_nodes();
            for n in aig.and_ids() {
                for c in cuts.cuts_of(n) {
                    if c.leaf_indices().iter().any(|&l| l as usize >= max) {
                        return Err(MapError::CutSetMismatch);
                    }
                }
            }
        }
        let mut phase_times = PhaseTimes {
            enumerate_s,
            ..PhaseTimes::default()
        };
        let mut matches_tried = 0u64;

        let t = Instant::now();
        let (matches, match_stats) = {
            let _span = slap_obs::span("match");
            compute_matches_ctx(
                aig,
                cuts,
                &self.target,
                self.options.add_structural_matches,
                ctx,
            )
        };
        phase_times.match_s = t.elapsed().as_secs_f64();

        state.reset(aig.num_nodes());
        let t = Instant::now();
        let mut dp_delay = {
            let _span = slap_obs::span("cover");
            self.init_terminals(aig, state);
            matches_tried += self.delay_pass(aig, &matches, state);
            self.compute_refs_required(aig, &matches, state)
        };
        phase_times.cover_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        {
            let _span = slap_obs::span("area-flow");
            for _ in 0..self.options.area_flow_passes {
                matches_tried += self.area_flow_pass(aig, &matches, state);
                dp_delay = self.compute_refs_required(aig, &matches, state);
            }
        }
        phase_times.area_flow_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        {
            let _span = slap_obs::span("exact-area");
            for _ in 0..self.options.exact_area_passes {
                matches_tried += self.exact_area_pass(aig, &matches, state);
                dp_delay = self.compute_refs_required(aig, &matches, state);
            }
        }
        phase_times.exact_area_s = t.elapsed().as_secs_f64();

        let netlist = self.extract(
            aig,
            cuts,
            &matches,
            state,
            dp_delay,
            match_stats,
            matches_tried,
            phase_times,
        )?;
        let reg = slap_obs::Registry::global();
        reg.counter("map.matches_tried").add(matches_tried);
        reg.counter("map.npn_hits").add(match_stats.npn_hits);
        reg.counter("map.npn_misses").add(match_stats.npn_misses);
        reg.counter("map.fn_cache_hits")
            .add(match_stats.fn_cache_hits);
        reg.counter("map.fn_cache_misses")
            .add(match_stats.fn_cache_misses);
        reg.counter("map.binding_cache_hits")
            .add(match_stats.binding_cache_hits);
        reg.counter("map.interned_tts")
            .add(match_stats.interned_tts);
        reg.counter("map.inverters")
            .add(netlist.stats().num_inverters as u64);
        Ok(netlist)
    }

    fn inv_delay(&self) -> f32 {
        self.target.inv_delay()
    }

    fn inv_area(&self) -> f32 {
        self.target.inv_area()
    }

    fn init_terminals(&self, aig: &Aig, state: &mut DpState) {
        for phase in 0..2 {
            let i = sx(NodeId::CONST0, phase);
            state.arrival[i] = 0.0;
            state.flow[i] = 0.0;
            state.choice[i] = Choice::Const;
        }
        for pi in aig.pis() {
            let i = sx(*pi, 0);
            state.arrival[i] = 0.0;
            state.flow[i] = 0.0;
            state.choice[i] = Choice::PiPos;
            let i = sx(*pi, 1);
            state.arrival[i] = self.inv_delay();
            state.flow[i] = self.inv_area();
            state.choice[i] = Choice::InvertOther;
        }
    }

    /// Arrival of a prepared match under the unit-load DP model.
    fn match_arrival(&self, m: &PreparedMatch, state: &DpState) -> f32 {
        let mut arr = 0.0f32;
        for (i, &(leaf, compl, _pin)) in m.leaves().iter().enumerate() {
            let a = state.arrival[sx(leaf, compl as usize)] + self.target.leaf_delay(m, i);
            arr = arr.max(a);
        }
        arr
    }

    /// Area flow of a prepared match given current flows and refs.
    fn match_flow(&self, m: &PreparedMatch, state: &DpState) -> f32 {
        let mut flow = self.target.match_area(m);
        for &(leaf, compl, _) in m.leaves() {
            let i = sx(leaf, compl as usize);
            flow += state.flow[i] / (state.refs[i].max(1) as f32);
        }
        flow
    }

    /// Returns the number of match evaluations performed.
    fn delay_pass(&self, aig: &Aig, matches: &MatchArena, state: &mut DpState) -> u64 {
        let mut tried = 0u64;
        for n in aig.and_ids() {
            for phase in 0..2 {
                let list = matches.of(n, phase == 1);
                tried += list.len() as u64;
                let mut best: Option<(f32, f32, u32)> = None; // (arrival, area, idx)
                for (i, m) in list.iter().enumerate() {
                    let arr = self.match_arrival(m, state);
                    let area = self.target.match_area(m);
                    let better = match best {
                        None => true,
                        Some((ba, bar, _)) => arr < ba - EPS || (arr < ba + EPS && area < bar),
                    };
                    if better {
                        best = Some((arr, area, i as u32));
                    }
                }
                let i = sx(n, phase);
                if let Some((arr, _, idx)) = best {
                    state.arrival[i] = arr;
                    state.choice[i] = Choice::Match(idx);
                } else {
                    state.arrival[i] = f32::INFINITY;
                    state.choice[i] = Choice::Unset;
                }
            }
            // Inverter relaxation between the two phases.
            for phase in 0..2 {
                let o = sx(n, 1 - phase);
                if matches!(state.choice[o], Choice::Match(_)) {
                    let alt = state.arrival[o] + self.inv_delay();
                    let i = sx(n, phase);
                    if alt + EPS < state.arrival[i] || state.choice[i] == Choice::Unset {
                        state.arrival[i] = alt;
                        state.choice[i] = Choice::InvertOther;
                    }
                }
            }
            // Flow bookkeeping so later passes have sane starting values.
            for phase in 0..2 {
                let i = sx(n, phase);
                let flow = match state.choice[i] {
                    Choice::Match(idx) => {
                        let m = &matches.of(n, phase == 1)[idx as usize];
                        self.match_flow(m, state)
                    }
                    Choice::InvertOther => state.flow[sx(n, 1 - phase)] + self.inv_area(),
                    _ => f32::INFINITY,
                };
                state.flow[i] = flow;
            }
        }
        tried
    }

    /// Rebuilds reference counts and required times from the POs over the
    /// current choices. Returns the DP delay (max PO arrival).
    fn compute_refs_required(&self, aig: &Aig, matches: &MatchArena, state: &mut DpState) -> f32 {
        state.refs.fill(0);
        state.required.fill(f32::INFINITY);
        let mut dp_delay = 0.0f32;
        for &po in aig.pos() {
            if po.node() == NodeId::CONST0 {
                continue;
            }
            let arr = state.arrival[sx(po.node(), po.is_complement() as usize)];
            dp_delay = dp_delay.max(arr);
        }
        for &po in aig.pos() {
            if po.node() == NodeId::CONST0 {
                continue;
            }
            let i = sx(po.node(), po.is_complement() as usize);
            state.refs[i] += 1;
            state.required[i] = state.required[i].min(dp_delay);
        }
        let inv_delay = self.inv_delay();
        for idx in (0..aig.num_nodes()).rev() {
            let n = NodeId::new(idx);
            // Inverter edges first (intra-node), then match edges.
            for phase in 0..2 {
                let i = sx(n, phase);
                if state.refs[i] > 0 && state.choice[i] == Choice::InvertOther {
                    let req = state.required[i] - inv_delay;
                    let o = sx(n, 1 - phase);
                    state.refs[o] += 1;
                    state.required[o] = state.required[o].min(req);
                }
            }
            if !aig.is_and(n) {
                continue;
            }
            for phase in 0..2 {
                let i = sx(n, phase);
                if state.refs[i] == 0 {
                    continue;
                }
                if let Choice::Match(mi) = state.choice[i] {
                    let m = &matches.of(n, phase == 1)[mi as usize];
                    let required = state.required[i];
                    for (j, &(leaf, compl, _pin)) in m.leaves().iter().enumerate() {
                        let req = required - self.target.leaf_delay(m, j);
                        let l = sx(leaf, compl as usize);
                        state.refs[l] += 1;
                        state.required[l] = state.required[l].min(req);
                    }
                }
            }
        }
        dp_delay
    }

    /// Returns the number of match evaluations performed.
    fn area_flow_pass(&self, aig: &Aig, matches: &MatchArena, state: &mut DpState) -> u64 {
        let mut tried = 0u64;
        for n in aig.and_ids() {
            // Match-based candidates for both phases.
            for phase in 0..2 {
                let required = state.required[sx(n, phase)];
                let list = matches.of(n, phase == 1);
                tried += list.len() as u64;
                let mut best: Option<(f32, f32, u32)> = None; // (flow, arrival, idx)
                for (i, m) in list.iter().enumerate() {
                    let arr = self.match_arrival(m, state);
                    if arr > required + EPS {
                        continue;
                    }
                    let flow = self.match_flow(m, state);
                    let better = match best {
                        None => true,
                        Some((bf, ba, _)) => flow < bf - EPS || (flow < bf + EPS && arr < ba),
                    };
                    if better {
                        best = Some((flow, arr, i as u32));
                    }
                }
                if let Some((flow, arr, idx)) = best {
                    let i = sx(n, phase);
                    state.choice[i] = Choice::Match(idx);
                    state.arrival[i] = arr;
                    state.flow[i] = flow;
                }
                // If nothing is feasible (tight required through an edge the
                // previous cover did not constrain), the previous choice is
                // kept — it is feasible by construction.
            }
            // Inverter relaxation by flow.
            for phase in 0..2 {
                let o = sx(n, 1 - phase);
                if !matches!(state.choice[o], Choice::Match(_)) {
                    continue;
                }
                let alt_arr = state.arrival[o] + self.inv_delay();
                let alt_flow = state.flow[o] + self.inv_area();
                let i = sx(n, phase);
                if alt_arr <= state.required[i] + EPS && alt_flow + EPS < state.flow[i] {
                    state.choice[i] = Choice::InvertOther;
                    state.arrival[i] = alt_arr;
                    state.flow[i] = alt_flow;
                }
            }
        }
        tried
    }

    /// Returns the number of match evaluations performed.
    fn exact_area_pass(&self, aig: &Aig, matches: &MatchArena, state: &mut DpState) -> u64 {
        let mut tried = 0u64;
        for n in aig.and_ids() {
            for phase in 0..2 {
                let i = sx(n, phase);
                if state.refs[i] == 0 {
                    continue;
                }
                let required = state.required[i];
                let old_choice = state.choice[i];
                // Remove the current implementation's cone.
                self.deref_impl(n, phase, matches, state);
                let list = matches.of(n, phase == 1);
                tried += list.len() as u64;
                let mut best: Option<(f32, f32, Choice)> = None; // (area, arrival, choice)
                for (mi, m) in list.iter().enumerate() {
                    let arr = self.match_arrival(m, state);
                    if arr > required + EPS {
                        continue;
                    }
                    let cand = Choice::Match(mi as u32);
                    let area = self.ref_candidate(n, phase, cand, matches, state);
                    self.deref_candidate(n, phase, cand, matches, state);
                    let better = match best {
                        None => true,
                        Some((ba, baa, _)) => area < ba - EPS || (area < ba + EPS && arr < baa),
                    };
                    if better {
                        best = Some((area, arr, cand));
                    }
                }
                // Inverter candidate.
                let o = sx(n, 1 - phase);
                if matches!(state.choice[o], Choice::Match(_)) {
                    let arr = state.arrival[o] + self.inv_delay();
                    if arr <= required + EPS {
                        let area =
                            self.ref_candidate(n, phase, Choice::InvertOther, matches, state);
                        self.deref_candidate(n, phase, Choice::InvertOther, matches, state);
                        let better = match best {
                            None => true,
                            Some((ba, _, _)) => area + EPS < ba,
                        };
                        if better {
                            best = Some((area, arr, Choice::InvertOther));
                        }
                    }
                }
                let (arr, choice) = match best {
                    Some((_, arr, choice)) => (arr, choice),
                    None => {
                        // Nothing feasible: restore the old implementation.
                        (state.arrival[i], old_choice)
                    }
                };
                self.ref_candidate(n, phase, choice, matches, state);
                state.choice[i] = choice;
                state.arrival[i] = arr;
            }
        }
        tried
    }

    /// Frees the gate implementing `(n, phase)` and releases its input
    /// references, returning the freed area.
    fn deref_impl(
        &self,
        n: NodeId,
        phase: usize,
        matches: &MatchArena,
        state: &mut DpState,
    ) -> f32 {
        match state.choice[sx(n, phase)] {
            Choice::PiPos | Choice::Const | Choice::Unset => 0.0,
            Choice::InvertOther => self.inv_area() + self.release(n, 1 - phase, matches, state),
            Choice::Match(i) => {
                let m = matches.of(n, phase == 1)[i as usize];
                let mut area = self.target.match_area(&m);
                for &(leaf, compl, _) in m.leaves() {
                    area += self.release(leaf, compl as usize, matches, state);
                }
                area
            }
        }
    }

    fn release(&self, m: NodeId, phase: usize, matches: &MatchArena, state: &mut DpState) -> f32 {
        let i = sx(m, phase);
        debug_assert!(state.refs[i] > 0, "release of unreferenced signal");
        state.refs[i] -= 1;
        if state.refs[i] == 0 {
            self.deref_impl(m, phase, matches, state)
        } else {
            0.0
        }
    }

    /// Adds one reference to the candidate implementation of `(n, phase)`,
    /// returning the area it would add.
    fn ref_candidate(
        &self,
        n: NodeId,
        phase: usize,
        cand: Choice,
        matches: &MatchArena,
        state: &mut DpState,
    ) -> f32 {
        match cand {
            Choice::PiPos | Choice::Const | Choice::Unset => 0.0,
            Choice::InvertOther => self.inv_area() + self.acquire(n, 1 - phase, matches, state),
            Choice::Match(i) => {
                let m = matches.of(n, phase == 1)[i as usize];
                let mut area = self.target.match_area(&m);
                for &(leaf, compl, _) in m.leaves() {
                    area += self.acquire(leaf, compl as usize, matches, state);
                }
                area
            }
        }
    }

    fn acquire(&self, m: NodeId, phase: usize, matches: &MatchArena, state: &mut DpState) -> f32 {
        let i = sx(m, phase);
        let needs_impl = state.refs[i] == 0;
        let area = if needs_impl {
            // Temporarily reuse ref_candidate on the node's own choice.
            let choice = state.choice[i];
            self.ref_candidate(m, phase, choice, matches, state)
        } else {
            0.0
        };
        state.refs[sx(m, phase)] += 1;
        area
    }

    fn deref_candidate(
        &self,
        n: NodeId,
        phase: usize,
        cand: Choice,
        matches: &MatchArena,
        state: &mut DpState,
    ) -> f32 {
        match cand {
            Choice::PiPos | Choice::Const | Choice::Unset => 0.0,
            Choice::InvertOther => self.inv_area() + self.release(n, 1 - phase, matches, state),
            Choice::Match(i) => {
                let m = matches.of(n, phase == 1)[i as usize];
                let mut area = self.target.match_area(&m);
                for &(leaf, compl, _) in m.leaves() {
                    area += self.release(leaf, compl as usize, matches, state);
                }
                area
            }
        }
    }

    /// Resolves the cut a match covers: stored cuts by arena id, the
    /// structural sentinel from the node's fanins.
    fn resolve_cover_cut(aig: &Aig, cuts: &CutArena, n: NodeId, m: &PreparedMatch) -> Cut {
        if m.cut == CutId::STRUCTURAL {
            let (f0, f1) = aig.fanins(n);
            Cut::from_leaves(&[f0.node(), f1.node()])
        } else {
            *cuts.cut(m.cut)
        }
    }

    /// Extracts the final cover as a gate-level netlist.
    #[allow(clippy::too_many_arguments)]
    fn extract(
        &self,
        aig: &Aig,
        cuts: &CutArena,
        matches: &MatchArena,
        state: &DpState,
        dp_delay: f32,
        match_stats: MatchStats,
        matches_tried: u64,
        mut phase_times: PhaseTimes,
    ) -> Result<MappedNetlist, MapError> {
        let mut instances: Vec<Instance> = Vec::new();
        let mut cover_cuts: Vec<(NodeId, Cut)> = Vec::new();
        let mut emitted = vec![[false, false]; aig.num_nodes()];
        let mut pos = Vec::with_capacity(aig.num_pos());
        let mut cone = ConeScratch::default();
        for &po in aig.pos() {
            if po.node() == NodeId::CONST0 {
                pos.push(PoSource::Const(po.is_complement()));
                continue;
            }
            let sig = Signal::new(po.node(), po.is_complement());
            self.emit(
                aig,
                cuts,
                matches,
                state,
                sig,
                &mut emitted,
                &mut instances,
                &mut cover_cuts,
                &mut cone,
            )?;
            pos.push(PoSource::Signal(sig));
        }
        let num_inverters = instances
            .iter()
            .filter(|i| self.target.is_inverter(i))
            .count();
        let mut stats = MapStats {
            area: 0.0,
            delay: 0.0,
            dp_delay,
            cuts_considered: match_stats.cuts_considered,
            num_instances: instances.len(),
            num_inverters,
            match_stats,
            cut_stats: *cuts.stats(),
            arena_stats: cuts.arena_stats(),
            matches_tried,
            phase: phase_times,
        };
        stats.area = instances.iter().map(|i| self.target.instance_area(i)).sum();
        let mut netlist = MappedNetlist::new(
            self.target.model(),
            aig.num_pis(),
            instances,
            pos,
            stats,
            cover_cuts,
        );
        let t = Instant::now();
        {
            let _span = slap_obs::span("sta");
            netlist.run_sta();
        }
        phase_times.sta_s = t.elapsed().as_secs_f64();
        netlist.stats_mut().phase = phase_times;
        Ok(netlist)
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        aig: &Aig,
        cuts: &CutArena,
        matches: &MatchArena,
        state: &DpState,
        sig: Signal,
        emitted: &mut [[bool; 2]],
        out: &mut Vec<Instance>,
        cover_cuts: &mut Vec<(NodeId, Cut)>,
        cone: &mut ConeScratch,
    ) -> Result<(), MapError> {
        let (n, phase) = (sig.node(), sig.complement() as usize);
        if emitted[n.index()][phase] {
            return Ok(());
        }
        emitted[n.index()][phase] = true;
        match state.choice[sx(n, phase)] {
            Choice::PiPos | Choice::Const => Ok(()),
            Choice::Unset => Err(MapError::Unmappable {
                node: n.index(),
                complemented: phase == 1,
            }),
            Choice::InvertOther => {
                let input = Signal::new(n, phase == 0);
                self.emit(
                    aig, cuts, matches, state, input, emitted, out, cover_cuts, cone,
                )?;
                out.push(self.target.make_inverter(sig, input));
                Ok(())
            }
            Choice::Match(i) => {
                let m = &matches.of(n, phase == 1)[i as usize];
                let mut leaf_signals = [Signal::new(NodeId::CONST0, false); MAX_CUT_SIZE];
                for (j, &(leaf, compl, _pin)) in m.leaves().iter().enumerate() {
                    let ls = Signal::new(leaf, compl);
                    self.emit(
                        aig, cuts, matches, state, ls, emitted, out, cover_cuts, cone,
                    )?;
                    leaf_signals[j] = ls;
                }
                let cover = Self::resolve_cover_cut(aig, cuts, n, m);
                let inst = self.target.make_instance(
                    aig,
                    n,
                    phase == 1,
                    m,
                    &cover,
                    sig,
                    &leaf_signals[..m.leaves().len()],
                    cone,
                );
                cover_cuts.push((n, cover));
                out.push(inst);
                Ok(())
            }
        }
    }
}

/// A memoizing mapping session: one AIG, one mapper, many map runs.
///
/// Owns the [`SessionCache`] (truth-table interner + function cache +
/// binding cache, see `slap-cache`), a [`RunCache`] memoizing whole
/// shuffled-map outcomes for training-data generation, and the reusable
/// DP state. Every
/// `map_*` method produces output bit-identical to the corresponding
/// one-shot [`Mapper`] method for any `SLAP_THREADS` setting — the cache
/// only removes recomputation, never changes results.
///
/// Sessions are `&mut self` on the warm path. For parallel fan-out over
/// seeds (training-data generation), workers call
/// [`MapSession::map_shuffled_frozen`] through a shared `&MapSession`
/// and the caller [`MapSession::absorb`]s the returned deltas in seed
/// order afterwards, which keeps the cache contents deterministic.
#[derive(Debug)]
pub struct MapSession<'s, 'lib, T: Target = AsicTarget<'lib>> {
    mapper: &'s Mapper<'lib, T>,
    aig: &'s Aig,
    cache: SessionCache,
    runs: RunCache,
    dp: DpState,
}

impl<'s, 'lib, T: Target> MapSession<'s, 'lib, T> {
    /// The AIG this session maps.
    pub fn aig(&self) -> &'s Aig {
        self.aig
    }

    /// The mapper this session runs on.
    pub fn mapper(&self) -> &'s Mapper<'lib, T> {
        self.mapper
    }

    /// Whether memoization is active (false under `SLAP_CACHE=0`).
    pub fn cache_enabled(&self) -> bool {
        self.cache.enabled()
    }

    /// Cached `(root, cut)` functions so far.
    pub fn num_cached_functions(&self) -> usize {
        self.cache.num_functions()
    }

    /// Distinct truth tables interned so far.
    pub fn num_interned_tts(&self) -> usize {
        self.cache.num_interned()
    }

    /// Memoized shuffled-map runs so far (see [`MapSession::store_run`]).
    pub fn num_cached_runs(&self) -> usize {
        self.runs.len()
    }

    /// The stored outcome of an earlier [`MapSession::map_shuffled`] run
    /// with exactly these parameters, or `None` when the run is new or
    /// memoization is disabled. The mapping is a pure function of
    /// `(aig, mapper, config.k, seed, keep)`, so replaying the stored
    /// QoR and cover is bit-identical to re-mapping.
    pub fn cached_run(&self, config: &CutConfig, seed: u64, keep: usize) -> Option<&CachedRun> {
        if !self.cache.enabled() {
            return None;
        }
        self.runs.get(RunKey {
            target: self.mapper.target.cache_key(),
            k: config.k,
            seed,
            keep,
        })
    }

    /// Memoizes the outcome of a [`MapSession::map_shuffled`] run with
    /// these parameters, so a later [`MapSession::cached_run`] can replay
    /// it. No-op when memoization is disabled. Callers are responsible
    /// for passing the netlist the session actually produced for exactly
    /// these parameters.
    pub fn store_run(
        &mut self,
        config: &CutConfig,
        seed: u64,
        keep: usize,
        netlist: &MappedNetlist,
    ) {
        if !self.cache.enabled() {
            return;
        }
        self.runs.insert(
            RunKey {
                target: self.mapper.target.cache_key(),
                k: config.k,
                seed,
                keep,
            },
            CachedRun {
                area_bits: netlist.area().to_bits(),
                delay_bits: netlist.delay().to_bits(),
                cover: netlist.cover_cuts().to_vec(),
            },
        );
    }

    /// Warm equivalent of [`Mapper::map_default`].
    ///
    /// # Errors
    ///
    /// See [`Mapper::map_default`].
    pub fn map_default(&mut self, config: &CutConfig) -> Result<MappedNetlist, MapError> {
        let t0 = Instant::now();
        let cuts = enumerate_cuts(self.aig, config, &mut DefaultPolicy::default());
        let enumerate_s = t0.elapsed().as_secs_f64();
        self.mapper.map_with_cuts_ctx(
            self.aig,
            &cuts,
            enumerate_s,
            CacheCtx::Mut(&mut self.cache),
            &mut self.dp,
        )
    }

    /// Warm equivalent of [`Mapper::map_unlimited`].
    ///
    /// # Errors
    ///
    /// See [`Mapper::map_default`].
    pub fn map_unlimited(
        &mut self,
        config: &CutConfig,
        cap: usize,
    ) -> Result<MappedNetlist, MapError> {
        let t0 = Instant::now();
        let cuts = enumerate_cuts(self.aig, config, &mut UnlimitedPolicy::with_cap(cap));
        let enumerate_s = t0.elapsed().as_secs_f64();
        self.mapper.map_with_cuts_ctx(
            self.aig,
            &cuts,
            enumerate_s,
            CacheCtx::Mut(&mut self.cache),
            &mut self.dp,
        )
    }

    /// Warm equivalent of [`Mapper::map_shuffled`].
    ///
    /// # Errors
    ///
    /// See [`Mapper::map_default`].
    pub fn map_shuffled(
        &mut self,
        config: &CutConfig,
        seed: u64,
        keep: usize,
    ) -> Result<MappedNetlist, MapError> {
        let t0 = Instant::now();
        let cuts = enumerate_cuts(self.aig, config, &mut ShufflePolicy::with_keep(seed, keep));
        let enumerate_s = t0.elapsed().as_secs_f64();
        self.mapper.map_with_cuts_ctx(
            self.aig,
            &cuts,
            enumerate_s,
            CacheCtx::Mut(&mut self.cache),
            &mut self.dp,
        )
    }

    /// Warm equivalent of [`Mapper::map_with_cuts`].
    ///
    /// # Errors
    ///
    /// See [`Mapper::map_with_cuts`].
    pub fn map_with_cuts(&mut self, cuts: &CutArena) -> Result<MappedNetlist, MapError> {
        self.mapper.map_with_cuts_ctx(
            self.aig,
            cuts,
            0.0,
            CacheCtx::Mut(&mut self.cache),
            &mut self.dp,
        )
    }

    /// Warm equivalent of [`Mapper::map_policy`]: data-driven dispatch
    /// over the session's cached map methods.
    ///
    /// # Errors
    ///
    /// See [`Mapper::map_default`].
    pub fn map_policy(
        &mut self,
        config: &CutConfig,
        policy: MapPolicy,
    ) -> Result<MappedNetlist, MapError> {
        let t0 = Instant::now();
        let cuts = policy.enumerate(self.aig, config);
        let enumerate_s = t0.elapsed().as_secs_f64();
        self.mapper.map_with_cuts_ctx(
            self.aig,
            &cuts,
            enumerate_s,
            CacheCtx::Mut(&mut self.cache),
            &mut self.dp,
        )
    }

    /// [`MapSession::map_shuffled`] against a frozen (`&self`) cache, for
    /// `slap-par` workers: cache misses are computed cold and recorded in
    /// the returned [`SessionDelta`] instead of mutating the session.
    /// Callers absorb the deltas of all workers in seed order with
    /// [`MapSession::absorb`], which reproduces the cache contents (and
    /// interning order) of running the seeds sequentially.
    pub fn map_shuffled_frozen(
        &self,
        config: &CutConfig,
        seed: u64,
        keep: usize,
    ) -> (Result<MappedNetlist, MapError>, SessionDelta) {
        let t0 = Instant::now();
        let cuts = enumerate_cuts(self.aig, config, &mut ShufflePolicy::with_keep(seed, keep));
        let enumerate_s = t0.elapsed().as_secs_f64();
        let mut delta = SessionDelta::default();
        let mut dp = DpState::new(self.aig.num_nodes());
        let result = self.mapper.map_with_cuts_ctx(
            self.aig,
            &cuts,
            enumerate_s,
            CacheCtx::Frozen(&self.cache, &mut delta),
            &mut dp,
        );
        (result, delta)
    }

    /// Replays a worker delta into the session cache (in recorded order,
    /// skipping keys that arrived in the meantime). Returns how many
    /// truth tables were newly interned.
    pub fn absorb(&mut self, delta: SessionDelta) -> u64 {
        self.mapper.target.absorb_delta(&mut self.cache, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_cell::asap7_mini;

    fn small_graph() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let d = aig.add_pi();
        let x = aig.xor(a, b);
        let y = aig.and(c, d);
        let f = aig.or(x, !y);
        aig.add_po(f);
        aig.add_po(!x);
        aig
    }

    #[test]
    fn maps_and_verifies_small_graph() {
        let aig = small_graph();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        assert!(
            nl.verify_against(&aig, 32, 3),
            "netlist must be functionally equivalent"
        );
        assert!(nl.area() > 0.0);
        assert!(nl.delay() > 0.0);
        assert!(nl.stats().cuts_considered > 0);
    }

    #[test]
    fn delay_only_vs_recovered_area() {
        let aig = small_graph();
        let lib = asap7_mini();
        let delay_only = Mapper::new(&lib, MapOptions::delay_only())
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        let recovered = Mapper::new(&lib, MapOptions::default())
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        assert!(recovered.area() <= delay_only.area() + 1e-3);
        // Area recovery must not worsen the DP delay.
        assert!(recovered.stats().dp_delay <= delay_only.stats().dp_delay + 1e-2);
    }

    #[test]
    fn unlimited_considers_more_cuts() {
        let aig = small_graph();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let d = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        let u = mapper
            .map_unlimited(&aig, &CutConfig::default(), 1000)
            .expect("maps");
        assert!(u.stats().cuts_considered >= d.stats().cuts_considered);
        assert!(u.verify_against(&aig, 16, 4));
    }

    #[test]
    fn shuffled_maps_stay_correct() {
        let aig = small_graph();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        for seed in 0..8 {
            let nl = mapper
                .map_shuffled(&aig, &CutConfig::default(), seed, 4)
                .expect("maps");
            assert!(
                nl.verify_against(&aig, 16, seed + 100),
                "seed {seed} broke equivalence"
            );
        }
    }

    #[test]
    fn stats_carry_phase_times_and_work_counters() {
        let aig = small_graph();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        let s = nl.stats();
        assert!(s.matches_tried > 0);
        assert!(s.match_stats.npn_hits > 0);
        assert!(s.cut_stats.cuts_enumerated > 0);
        assert_eq!(s.cut_stats.nodes_processed as usize, aig.num_ands());
        // Arena footprint travels with the run.
        assert_eq!(s.arena_stats.cuts, s.cut_stats.cuts_enumerated as usize);
        assert!(s.arena_stats.bytes > 0);
        assert_eq!(s.arena_stats.spans, aig.num_nodes());
        // Phase times are measured (non-negative) and sum consistently.
        assert!(s.phase.enumerate_s >= 0.0 && s.phase.sta_s >= 0.0);
        assert!(s.phase.total_s() >= s.phase.match_s);
    }

    #[test]
    fn cover_cuts_resolve_through_the_arena() {
        let aig = small_graph();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let nl = mapper.map_with_cuts(&aig, &cuts).expect("maps");
        assert!(!nl.cover_cuts().is_empty());
        for (n, cut) in nl.cover_cuts() {
            // Every cover cut is either stored for its node or the
            // structural fallback — in both cases its leaves precede it.
            assert!(!cut.is_empty());
            for leaf in cut.leaves() {
                assert!(leaf.index() < n.index());
            }
        }
    }

    #[test]
    fn po_on_pi_and_constants() {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        aig.add_po(a);
        aig.add_po(!a);
        aig.add_po(slap_aig::Lit::TRUE);
        aig.add_po(slap_aig::Lit::FALSE);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        assert!(nl.verify_against(&aig, 8, 5));
        // Exactly one inverter for !a; constants and the plain PI are free.
        assert_eq!(nl.stats().num_instances, 1);
        assert_eq!(nl.stats().num_inverters, 1);
    }

    /// Everything that must be bit-identical between a cold map and a
    /// warm session map of the same circuit/policy.
    fn assert_same_mapping(a: &MappedNetlist, b: &MappedNetlist, what: &str) {
        assert_eq!(a.instances(), b.instances(), "{what}: instances");
        assert_eq!(a.cover_cuts(), b.cover_cuts(), "{what}: cover cuts");
        assert_eq!(a.area().to_bits(), b.area().to_bits(), "{what}: area");
        assert_eq!(a.delay().to_bits(), b.delay().to_bits(), "{what}: delay");
        assert_eq!(
            a.stats().dp_delay.to_bits(),
            b.stats().dp_delay.to_bits(),
            "{what}: dp delay"
        );
        assert_eq!(
            a.stats().match_stats.without_cache_counters(),
            b.stats().match_stats.without_cache_counters(),
            "{what}: match stats"
        );
        assert_eq!(
            a.stats().matches_tried,
            b.stats().matches_tried,
            "{what}: matches tried"
        );
    }

    #[test]
    fn session_maps_are_bit_identical_to_cold_maps() {
        let aig = small_graph();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let config = CutConfig::default();
        let mut session = mapper.session_cached(&aig, true);
        assert!(session.cache_enabled());

        let cold = mapper.map_default(&aig, &config).expect("maps");
        let warm1 = session.map_default(&config).expect("maps");
        let warm2 = session.map_default(&config).expect("maps");
        assert_same_mapping(&warm1, &cold, "first warm default");
        assert_same_mapping(&warm2, &cold, "second warm default");
        assert!(warm2.stats().match_stats.fn_cache_hits > 0);
        assert_eq!(warm2.stats().match_stats.fn_cache_misses, 0);

        let cold_u = mapper.map_unlimited(&aig, &config, 1000).expect("maps");
        let warm_u = session.map_unlimited(&config, 1000).expect("maps");
        assert_same_mapping(&warm_u, &cold_u, "warm unlimited");

        for seed in 0..4 {
            let cold_s = mapper.map_shuffled(&aig, &config, seed, 4).expect("maps");
            let warm_s = session.map_shuffled(&config, seed, 4).expect("maps");
            assert_same_mapping(&warm_s, &cold_s, "warm shuffled");
        }
        assert!(session.num_cached_functions() > 0);
        assert!(session.num_interned_tts() > 0);
    }

    #[test]
    fn run_cache_replays_stored_outcomes_exactly() {
        let aig = small_graph();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let config = CutConfig::default();
        let mut session = mapper.session_cached(&aig, true);
        assert_eq!(session.num_cached_runs(), 0);
        assert!(session.cached_run(&config, 3, 4).is_none());

        let nl = session.map_shuffled(&config, 3, 4).expect("maps");
        session.store_run(&config, 3, 4, &nl);
        assert_eq!(session.num_cached_runs(), 1);
        let run = session.cached_run(&config, 3, 4).expect("stored");
        assert_eq!(run.area_bits, nl.area().to_bits());
        assert_eq!(run.delay_bits, nl.delay().to_bits());
        assert_eq!(run.cover, nl.cover_cuts());
        // Different seed / keep / k are distinct keys.
        assert!(session.cached_run(&config, 4, 4).is_none());
        assert!(session.cached_run(&config, 3, 5).is_none());
        assert!(session.cached_run(&CutConfig::with_k(4), 3, 4).is_none());

        // A disabled session neither stores nor replays.
        let mut cold = mapper.session_cached(&aig, false);
        let nl = cold.map_shuffled(&config, 3, 4).expect("maps");
        cold.store_run(&config, 3, 4, &nl);
        assert_eq!(cold.num_cached_runs(), 0);
        assert!(cold.cached_run(&config, 3, 4).is_none());
    }

    #[test]
    fn frozen_session_maps_match_and_absorb_warms_the_cache() {
        let aig = small_graph();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let config = CutConfig::default();
        let mut session = mapper.session_cached(&aig, true);
        // Frozen runs on a cold session: identical output, all work in
        // the deltas.
        let mut deltas = Vec::new();
        for seed in 0..3 {
            let cold = mapper.map_shuffled(&aig, &config, seed, 4).expect("maps");
            let (warm, delta) = session.map_shuffled_frozen(&config, seed, 4);
            let warm = warm.expect("maps");
            assert_same_mapping(&warm, &cold, "frozen shuffled");
            assert!(!delta.is_empty());
            deltas.push(delta);
        }
        assert_eq!(session.num_cached_functions(), 0);
        for delta in deltas {
            session.absorb(delta);
        }
        assert!(session.num_cached_functions() > 0);
        // Replaying a seed through the warmed cache is now a pure hit.
        let cold = mapper.map_shuffled(&aig, &config, 0, 4).expect("maps");
        let (warm, delta) = session.map_shuffled_frozen(&config, 0, 4);
        assert_same_mapping(&warm.expect("maps"), &cold, "frozen replay");
        assert!(delta.is_empty(), "warm frozen replay records nothing");
    }

    #[test]
    fn disabled_session_is_cold_and_stores_nothing() {
        let aig = small_graph();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let config = CutConfig::default();
        let mut session = mapper.session_cached(&aig, false);
        assert!(!session.cache_enabled());
        let cold = mapper.map_default(&aig, &config).expect("maps");
        let off = session.map_default(&config).expect("maps");
        assert_same_mapping(&off, &cold, "disabled session");
        assert_eq!(off.stats().match_stats, cold.stats().match_stats);
        assert_eq!(session.num_cached_functions(), 0);
        assert_eq!(session.num_interned_tts(), 0);
    }

    #[test]
    fn lut_target_maps_and_verifies() {
        let aig = small_graph();
        let k = 4;
        let mapper = LutMapper::lut(k, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        assert!(nl.verify_against(&aig, 32, 9), "LUT netlist inequivalent");
        // Unit cost model: area = LUT count, delay = LUT depth (integer).
        assert_eq!(nl.area(), nl.stats().num_instances as f32);
        assert!(nl.delay() >= 1.0);
        assert_eq!(nl.delay().fract(), 0.0, "LUT delay must count levels");
        assert_eq!(nl.delay(), nl.stats().dp_delay, "unit models agree");
        for inst in nl.instances() {
            let tt = inst.lut_tt().expect("all instances are LUTs");
            assert!(inst.inputs.len() <= k);
            assert_eq!(tt.num_vars(), inst.inputs.len());
        }
        // Shuffled and unlimited policies stay correct too.
        assert!(mapper
            .map_unlimited(&aig, &CutConfig::default(), 1000)
            .expect("maps")
            .verify_against(&aig, 16, 10));
        for seed in 0..4 {
            assert!(mapper
                .map_shuffled(&aig, &CutConfig::default(), seed, 4)
                .expect("maps")
                .verify_against(&aig, 16, seed + 20));
        }
    }

    #[test]
    fn lut_session_maps_are_bit_identical_to_cold_maps() {
        let aig = small_graph();
        let mapper = LutMapper::lut(4, MapOptions::default());
        let config = CutConfig::default();
        let mut session = mapper.session_cached(&aig, true);

        let cold = mapper.map_default(&aig, &config).expect("maps");
        let warm1 = session.map_default(&config).expect("maps");
        let warm2 = session.map_default(&config).expect("maps");
        assert_same_mapping(&warm1, &cold, "first warm LUT default");
        assert_same_mapping(&warm2, &cold, "second warm LUT default");
        assert!(warm2.stats().match_stats.fn_cache_hits > 0);
        assert_eq!(warm2.stats().match_stats.fn_cache_misses, 0);

        for seed in 0..3 {
            let cold_s = mapper.map_shuffled(&aig, &config, seed, 4).expect("maps");
            let (froz, delta) = session.map_shuffled_frozen(&config, seed, 4);
            assert_same_mapping(&froz.expect("maps"), &cold_s, "frozen LUT shuffled");
            session.absorb(delta);
        }
        assert!(session.num_cached_functions() > 0);

        // Run memoization is keyed by target, so an ASIC run with the
        // same (k, seed, keep) never aliases a LUT run.
        let nl = session.map_shuffled(&config, 3, 4).expect("maps");
        session.store_run(&config, 3, 4, &nl);
        assert!(session.cached_run(&config, 3, 4).is_some());
        let lib = asap7_mini();
        let asic = Mapper::new(&lib, MapOptions::default());
        let mut asic_session = asic.session_cached(&aig, true);
        assert!(asic_session.cached_run(&config, 3, 4).is_none());
        let anl = asic_session.map_shuffled(&config, 3, 4).expect("maps");
        asic_session.store_run(&config, 3, 4, &anl);
        let stored = asic_session.cached_run(&config, 3, 4).expect("stored");
        assert_ne!(stored.area_bits, nl.area().to_bits());
    }

    #[test]
    fn empty_aig_maps_to_empty_netlist() {
        let aig = Aig::new();
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        assert_eq!(nl.stats().num_instances, 0);
        assert_eq!(nl.area(), 0.0);
        assert_eq!(nl.delay(), 0.0);
    }
}
