//! The mapped gate-level netlist and its static timing analysis.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use slap_aig::sim::simulate_nodes;
use slap_aig::{Aig, NodeId, Rng64, Tt};
use slap_cell::{GateId, Library};
use slap_cuts::Cut;

use crate::mapping::MapStats;

/// A signal in the mapped netlist: an AIG node in one polarity.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signal {
    node: NodeId,
    complement: bool,
}

impl Signal {
    /// Creates a signal.
    pub fn new(node: NodeId, complement: bool) -> Signal {
        Signal { node, complement }
    }

    /// The underlying AIG node.
    pub fn node(self) -> NodeId {
        self.node
    }

    /// Whether this is the complemented polarity of the node.
    pub fn complement(self) -> bool {
        self.complement
    }
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{:?}",
            if self.complement { "!" } else { "" },
            self.node
        )
    }
}

/// What a placed instance computes: a library cell for ASIC targets, or
/// a programmed truth table (over the instance's inputs, in pin order)
/// for LUT targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceKind {
    /// An ASIC library cell.
    Gate(GateId),
    /// A LUT programmed with the given function of its inputs.
    Lut(Tt),
}

/// One placed gate or LUT: what it computes, its output signal, and one
/// input signal per pin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// What the instance computes.
    pub kind: InstanceKind,
    /// The signal this instance produces.
    pub output: Signal,
    /// `inputs[pin]` is the signal driving that pin.
    pub inputs: Vec<Signal>,
}

impl Instance {
    /// Creates an instance.
    pub fn new(kind: InstanceKind, output: Signal, inputs: Vec<Signal>) -> Instance {
        Instance {
            kind,
            output,
            inputs,
        }
    }

    /// The library cell, when this is an ASIC gate instance.
    pub fn gate_id(&self) -> Option<GateId> {
        match self.kind {
            InstanceKind::Gate(g) => Some(g),
            InstanceKind::Lut(_) => None,
        }
    }

    /// The programmed function, when this is a LUT instance.
    pub fn lut_tt(&self) -> Option<Tt> {
        match self.kind {
            InstanceKind::Gate(_) => None,
            InstanceKind::Lut(tt) => Some(tt),
        }
    }
}

/// The cost/realization model a netlist was mapped onto — the
/// target-specific state [`MappedNetlist`] needs after mapping (STA,
/// re-evaluation, reporting).
#[derive(Clone, Debug)]
pub enum TargetModel {
    /// An ASIC standard-cell library.
    Asic(Library),
    /// `k`-input LUTs with unit area and unit level delay.
    Lut {
        /// Maximum LUT inputs.
        k: usize,
    },
}

impl TargetModel {
    /// The standard-cell library, for ASIC netlists.
    pub fn library(&self) -> Option<&Library> {
        match self {
            TargetModel::Asic(lib) => Some(lib),
            TargetModel::Lut { .. } => None,
        }
    }
}

/// What drives a primary output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoSource {
    /// A constant output.
    Const(bool),
    /// A mapped signal.
    Signal(Signal),
}

/// A technology-mapped netlist: instances in topological order, PO
/// bindings, the QoR statistics, and per-signal STA results.
///
/// Produced by [`crate::Mapper`]; see the crate docs for an example.
#[derive(Clone, Debug)]
pub struct MappedNetlist {
    target: TargetModel,
    num_pis: usize,
    instances: Vec<Instance>,
    pos: Vec<PoSource>,
    stats: MapStats,
    arrivals: HashMap<Signal, f32>,
    cover_cuts: Vec<(NodeId, Cut)>,
}

impl MappedNetlist {
    pub(crate) fn new(
        target: TargetModel,
        num_pis: usize,
        instances: Vec<Instance>,
        pos: Vec<PoSource>,
        stats: MapStats,
        cover_cuts: Vec<(NodeId, Cut)>,
    ) -> MappedNetlist {
        MappedNetlist {
            target,
            num_pis,
            instances,
            pos,
            stats,
            arrivals: HashMap::new(),
            cover_cuts,
        }
    }

    /// The cuts realized by the cover's (non-inverter) gates: one
    /// `(root node, cut)` pair per mapped match, deduplicated per
    /// node-phase. This is the paper's "cuts used to deliver the mapping"
    /// training signal.
    pub fn cover_cuts(&self) -> &[(NodeId, Cut)] {
        &self.cover_cuts
    }

    /// The target model the netlist is mapped onto.
    pub fn target(&self) -> &TargetModel {
        &self.target
    }

    /// The library the netlist is mapped onto (ASIC targets only).
    pub fn library(&self) -> Option<&Library> {
        self.target.library()
    }

    /// The gate instances, in topological order.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Primary-output bindings.
    pub fn pos(&self) -> &[PoSource] {
        &self.pos
    }

    /// Number of primary inputs of the original AIG.
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// Total cell area in µm².
    pub fn area(&self) -> f32 {
        self.stats.area
    }

    /// Critical-path delay in ps from the load-aware STA (the paper's
    /// `stime` number).
    pub fn delay(&self) -> f32 {
        self.stats.delay
    }

    /// Area-delay product.
    pub fn adp(&self) -> f64 {
        self.stats.area as f64 * self.stats.delay as f64
    }

    /// All mapping statistics.
    pub fn stats(&self) -> &MapStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut MapStats {
        &mut self.stats
    }

    /// Arrival time of a signal computed by the last [`MappedNetlist::run_sta`].
    pub fn arrival(&self, sig: Signal) -> Option<f32> {
        self.arrivals.get(&sig).copied()
    }

    /// Runs the load-aware static timing analysis: each instance's output
    /// arrival is the max over pins of `input arrival + intrinsic(pin) +
    /// slope × fanout(output)`. Updates `stats.delay`.
    pub fn run_sta(&mut self) {
        // Fanout per signal = number of instance pins reading it + PO uses.
        let mut fanout: HashMap<Signal, usize> = HashMap::new();
        for inst in &self.instances {
            for &s in &inst.inputs {
                *fanout.entry(s).or_insert(0) += 1;
            }
        }
        for po in &self.pos {
            if let PoSource::Signal(s) = po {
                *fanout.entry(*s).or_insert(0) += 1;
            }
        }
        let mut arrivals: HashMap<Signal, f32> = HashMap::new();
        let arrival_of = |arrivals: &HashMap<Signal, f32>, s: Signal| -> f32 {
            // PIs (positive phase) and constants arrive at t = 0; everything
            // else must have been computed already (topological order).
            *arrivals.get(&s).unwrap_or(&0.0)
        };
        for inst in &self.instances {
            let load = fanout.get(&inst.output).copied().unwrap_or(0).max(1);
            let mut arr = 0.0f32;
            match (&self.target, &inst.kind) {
                (TargetModel::Asic(lib), InstanceKind::Gate(g)) => {
                    let gate = lib.gate(*g);
                    for (pin, &s) in inst.inputs.iter().enumerate() {
                        arr = arr.max(arrival_of(&arrivals, s) + gate.delay(pin, load));
                    }
                }
                (TargetModel::Lut { .. }, InstanceKind::Lut(_)) => {
                    // Unit level delay: one level per LUT, load-independent.
                    for &s in &inst.inputs {
                        arr = arr.max(arrival_of(&arrivals, s) + 1.0);
                    }
                }
                _ => panic!("instance kind does not match netlist target"),
            }
            arrivals.insert(inst.output, arr);
        }
        let mut delay = 0.0f32;
        for po in &self.pos {
            if let PoSource::Signal(s) = po {
                delay = delay.max(arrival_of(&arrivals, *s));
            }
        }
        self.stats.delay = delay;
        self.arrivals = arrivals;
    }

    /// Evaluates the netlist on one 64-pattern word per PI, returning one
    /// word per PO.
    ///
    /// # Panics
    ///
    /// Panics if `pi_values.len() != self.num_pis()`.
    pub fn evaluate(&self, pi_values: &[u64]) -> Vec<u64> {
        assert_eq!(pi_values.len(), self.num_pis, "one word per PI required");
        let mut values: HashMap<Signal, u64> = HashMap::new();
        // PI signals: node ids 1..=num_pis in creation order is not
        // guaranteed in general, but the mapper only produces PI signals
        // for real PI nodes; we reconstruct their ids from instances and
        // PO uses lazily via the node index ordering: PIs are the first
        // nodes after the constant.
        for (k, &w) in pi_values.iter().enumerate() {
            values.insert(Signal::new(NodeId::new(k + 1), false), w);
        }
        values.insert(Signal::new(NodeId::CONST0, false), 0);
        values.insert(Signal::new(NodeId::CONST0, true), u64::MAX);
        for inst in &self.instances {
            let tt_bits = match &inst.kind {
                InstanceKind::Gate(g) => self
                    .target
                    .library()
                    .expect("gate instance requires an ASIC netlist")
                    .gate(*g)
                    .tt()
                    .bits(),
                InstanceKind::Lut(tt) => tt.bits(),
            };
            let inputs: Vec<u64> = inst
                .inputs
                .iter()
                .map(|s| lookup_signal(&values, *s))
                .collect();
            let out = eval_gate(tt_bits, &inputs);
            values.insert(inst.output, out);
        }
        self.pos
            .iter()
            .map(|po| match po {
                PoSource::Const(true) => u64::MAX,
                PoSource::Const(false) => 0,
                PoSource::Signal(s) => lookup_signal(&values, *s),
            })
            .collect()
    }

    /// Probabilistically verifies functional equivalence against the
    /// source AIG with `rounds` × 64 random patterns.
    ///
    /// # Panics
    ///
    /// Panics if the AIG's PI count differs from the netlist's.
    pub fn verify_against(&self, aig: &Aig, rounds: usize, seed: u64) -> bool {
        assert_eq!(aig.num_pis(), self.num_pis, "PI counts differ");
        let mut rng = Rng64::seed_from(seed);
        for _ in 0..rounds {
            let pi: Vec<u64> = (0..self.num_pis).map(|_| rng.next_u64()).collect();
            let expect: Vec<u64> = {
                let node_vals = simulate_nodes(aig, &pi);
                aig.pos()
                    .iter()
                    .map(|&po| {
                        let v = node_vals[po.node().index()];
                        if po.is_complement() {
                            !v
                        } else {
                            v
                        }
                    })
                    .collect()
            };
            if self.evaluate(&pi) != expect {
                return false;
            }
        }
        true
    }

    /// Per-cell (or per-LUT-width) instance counts, for reports. Ordered
    /// so serialized reports are stable across runs.
    pub fn gate_counts(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for inst in &self.instances {
            let name = match &inst.kind {
                InstanceKind::Gate(g) => self
                    .target
                    .library()
                    .expect("gate instance requires an ASIC netlist")
                    .gate(*g)
                    .name()
                    .to_string(),
                InstanceKind::Lut(tt) => format!("LUT{}", tt.num_vars()),
            };
            *counts.entry(name).or_insert(0) += 1;
        }
        counts
    }
}

fn lookup_signal(values: &HashMap<Signal, u64>, s: Signal) -> u64 {
    if let Some(&v) = values.get(&s) {
        return v;
    }
    // A complemented signal whose positive phase exists only implicitly
    // cannot occur (the mapper emits an inverter instance), but a positive
    // PI phase consulted through its complement does: derive it.
    let other = Signal::new(s.node(), !s.complement());
    match values.get(&other) {
        Some(&v) => !v,
        None => panic!("signal {s:?} evaluated before its driver"),
    }
}

/// Evaluates a gate truth table bitwise over 64-pattern input words.
fn eval_gate(tt_bits: u64, inputs: &[u64]) -> u64 {
    let n = inputs.len();
    let mut out = 0u64;
    for assignment in 0..(1u64 << n) {
        if (tt_bits >> assignment) & 1 == 0 {
            continue;
        }
        let mut mask = u64::MAX;
        for (p, &w) in inputs.iter().enumerate() {
            mask &= if (assignment >> p) & 1 != 0 { w } else { !w };
        }
        out |= mask;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{MapOptions, Mapper};
    use slap_cell::asap7_mini;
    use slap_cuts::CutConfig;

    #[test]
    fn eval_gate_matches_truth_table() {
        // AND2: tt 0b1000 over inputs a, b.
        let a = 0b1010u64;
        let b = 0b1100u64;
        assert_eq!(eval_gate(0b1000, &[a, b]) & 0xF, 0b1000);
        // XOR2: 0b0110.
        assert_eq!(eval_gate(0b0110, &[a, b]) & 0xF, 0b0110);
        // INV: tt 0b01 over one input.
        assert_eq!(eval_gate(0b01, &[a]) & 0xF, 0b0101);
    }

    fn mapped_pair() -> (Aig, MappedNetlist) {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let s = aig.xor(a, b);
        let s2 = aig.xor(s, c);
        let carry = aig.maj(a, b, c);
        aig.add_po(s2);
        aig.add_po(carry);
        let lib = asap7_mini();
        let mapper = Mapper::new(&lib, MapOptions::default());
        let nl = mapper
            .map_default(&aig, &CutConfig::default())
            .expect("maps");
        (aig, nl)
    }

    #[test]
    fn full_adder_maps_correctly() {
        let (aig, nl) = mapped_pair();
        assert!(nl.verify_against(&aig, 32, 11));
    }

    #[test]
    fn sta_delay_positive_and_consistent() {
        let (_, nl) = mapped_pair();
        assert!(nl.delay() > 0.0);
        // Every instance output must have an arrival.
        for inst in nl.instances() {
            assert!(nl.arrival(inst.output).is_some());
        }
    }

    #[test]
    fn area_is_sum_of_instance_areas() {
        let (_, nl) = mapped_pair();
        let lib = nl.library().expect("ASIC netlist").clone();
        let sum: f32 = nl
            .instances()
            .iter()
            .map(|i| lib.gate(i.gate_id().expect("ASIC instance")).area())
            .sum();
        assert!((nl.area() - sum).abs() < 1e-4);
        assert!(nl.adp() > 0.0);
    }

    #[test]
    fn gate_counts_total_instances() {
        let (_, nl) = mapped_pair();
        let total: usize = nl.gate_counts().values().sum();
        assert_eq!(total, nl.instances().len());
    }

    #[test]
    fn lut_netlist_evaluates_and_times_by_level() {
        // out = (a ^ b) & c as a hand-built 2-LUT netlist:
        //   x = LUT2(xor)(a, b); out = LUT2(and)(x, c).
        let a = Signal::new(NodeId::new(1), false);
        let b = Signal::new(NodeId::new(2), false);
        let c = Signal::new(NodeId::new(3), false);
        let x = Signal::new(NodeId::new(4), false);
        let o = Signal::new(NodeId::new(5), false);
        let instances = vec![
            Instance::new(InstanceKind::Lut(Tt::from_bits(0b0110, 2)), x, vec![a, b]),
            Instance::new(InstanceKind::Lut(Tt::from_bits(0b1000, 2)), o, vec![x, c]),
        ];
        let mut nl = MappedNetlist::new(
            TargetModel::Lut { k: 2 },
            3,
            instances,
            vec![PoSource::Signal(o)],
            MapStats::default(),
            Vec::new(),
        );
        assert!(nl.library().is_none());
        let av = 0b1010u64;
        let bv = 0b1100u64;
        let cv = 0b1111u64;
        assert_eq!(nl.evaluate(&[av, bv, cv])[0] & 0xF, 0b0110);
        nl.run_sta();
        // Two LUT levels to the PO at unit delay each.
        assert_eq!(nl.delay(), 2.0);
        assert_eq!(nl.gate_counts().get("LUT2"), Some(&2));
    }

    #[test]
    fn instances_are_topologically_ordered() {
        let (_, nl) = mapped_pair();
        let mut produced: Vec<Signal> = Vec::new();
        for inst in nl.instances() {
            for &inp in &inst.inputs {
                let is_primary = inp.node().index() <= nl.num_pis() && !inp.complement();
                let is_const = inp.node() == NodeId::CONST0;
                assert!(
                    is_primary || is_const || produced.contains(&inp),
                    "input {inp:?} not yet produced"
                );
            }
            produced.push(inst.output);
        }
    }
}
