//! The [`Target`] abstraction: what differs between mapping onto ASIC
//! standard cells and onto k-input LUTs.
//!
//! Cut enumeration, truth tables, the match arena, the covering DP
//! skeleton, sessions, and extraction order are all target-generic; a
//! target supplies exactly four things:
//!
//! 1. **Matching** — how one cut becomes [`PreparedMatch`]es
//!    ([`Target::match_cut`], plus the session-cache absorption rule for
//!    parallel deltas);
//! 2. **Cost model** — per-match area and per-leaf unit-load delay for
//!    the DP, plus the phase-fixing inverter's cost;
//! 3. **Extraction** — how a chosen match and the phase inverter become
//!    [`Instance`]s;
//! 4. **Identity** — a stable name (manifest field) and a 64-bit cache
//!    discriminant so run-cache entries of different targets never mix.
//!
//! [`AsicTarget`] reproduces the pre-refactor mapper bit-for-bit (same
//! float expressions, same iteration order). [`LutTarget`] implements
//! the classical k-LUT FPGA model: any cut whose function has true
//! support ≤ k is a match in both polarities, every LUT costs unit area
//! and one level of delay, and instances carry their shrunk cut truth
//! table instead of a `GateId`.

use slap_aig::cone::{cut_function_with, ConeScratch};
use slap_aig::{Aig, NodeId, Tt};
use slap_cache::{SessionCache, SessionDelta};
use slap_cell::{GateId, Library, MatchIndex};
use slap_cuts::{Cut, CutId};

use crate::matching::{asic_match_cut, lut_match_cut, CacheCtx, MatchScratch, MatchStats};
use crate::netlist::{Instance, InstanceKind, Signal, TargetModel};
use crate::PreparedMatch;

/// Sentinel [`GateId`] carried by LUT matches: `PreparedMatch::gate` is
/// meaningless for a target without a cell library, so LUT matches all
/// share this out-of-range id (never dereferenced).
pub(crate) fn lut_gate() -> GateId {
    GateId::new(u32::MAX as usize)
}

/// What a mapping target supplies; everything else in the pipeline is
/// target-generic. See the [module docs](self) for the contract and
/// DESIGN.md §12 for the full discussion.
pub trait Target: std::fmt::Debug + Sync {
    /// Stable short name (`"asic"`, `"lut:6"`): the value recorded in
    /// run manifests and the basis of the cache discriminant.
    fn name(&self) -> String;

    /// 64-bit discriminant mixed into `RunKey`s so one session's run
    /// cache can never replay a run of a different target.
    fn cache_key(&self) -> u64 {
        slap_obs::content_hash(self.name().as_bytes())
    }

    /// The owned cost/naming model embedded into produced netlists
    /// (drives STA, simulation, and reporting on the netlist side).
    fn model(&self) -> TargetModel;

    /// Matches a single cut, appending prepared matches for both phases
    /// into the scratch lists. Returns true if anything matched.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    fn match_cut(
        &self,
        aig: &Aig,
        root: NodeId,
        cut: &Cut,
        cut_id: CutId,
        scratch: &mut MatchScratch,
        stats: &mut MatchStats,
        ctx: &mut CacheCtx<'_>,
    ) -> bool;

    /// Replays a frozen-probe delta into the session cache (ASIC also
    /// prepares gate bindings; LUT only interns functions). Returns how
    /// many truth tables were newly interned.
    #[doc(hidden)]
    fn absorb_delta(&self, cache: &mut SessionCache, delta: SessionDelta) -> u64;

    /// Delay of the phase-fixing inverter under unit load.
    fn inv_delay(&self) -> f32;

    /// Area of the phase-fixing inverter.
    fn inv_area(&self) -> f32;

    /// Area contribution of one prepared match.
    fn match_area(&self, m: &PreparedMatch) -> f32;

    /// Unit-load pin-to-output delay through leaf `i` of `m`.
    fn leaf_delay(&self, m: &PreparedMatch, i: usize) -> f32;

    /// The instance realizing the phase-fixing inverter.
    fn make_inverter(&self, output: Signal, input: Signal) -> Instance;

    /// The instance realizing match `m` of `(root, phase)`. `cover` is
    /// the concrete cut the match covers (structural sentinel already
    /// resolved), `leaf_signals[i]` the emitted signal of `m.leaves()[i]`,
    /// and `cone` reusable cone-simulation scratch.
    #[allow(clippy::too_many_arguments)]
    fn make_instance(
        &self,
        aig: &Aig,
        root: NodeId,
        phase: bool,
        m: &PreparedMatch,
        cover: &Cut,
        output: Signal,
        leaf_signals: &[Signal],
        cone: &mut ConeScratch,
    ) -> Instance;

    /// Whether `inst` is a phase-fixing inverter (for the QoR counter).
    fn is_inverter(&self, inst: &Instance) -> bool;

    /// Area of an emitted instance.
    fn instance_area(&self, inst: &Instance) -> f32;
}

/// The ASIC standard-cell target: a genlib [`Library`] plus its
/// [`MatchIndex`]. This is the default target of [`crate::Mapper`] and
/// is bit-identical to the pre-`Target` mapper.
#[derive(Debug)]
pub struct AsicTarget<'a> {
    library: &'a Library,
    index: MatchIndex,
}

impl<'a> AsicTarget<'a> {
    /// Builds the target (and its match index) for a library.
    pub fn new(library: &'a Library) -> AsicTarget<'a> {
        AsicTarget {
            library,
            index: MatchIndex::build(library),
        }
    }

    /// The library this target maps onto.
    pub fn library(&self) -> &'a Library {
        self.library
    }

    /// The pre-built match index.
    pub fn index(&self) -> &MatchIndex {
        &self.index
    }
}

impl Target for AsicTarget<'_> {
    fn name(&self) -> String {
        "asic".to_string()
    }

    fn model(&self) -> TargetModel {
        TargetModel::Asic(self.library.clone())
    }

    fn match_cut(
        &self,
        aig: &Aig,
        root: NodeId,
        cut: &Cut,
        cut_id: CutId,
        scratch: &mut MatchScratch,
        stats: &mut MatchStats,
        ctx: &mut CacheCtx<'_>,
    ) -> bool {
        asic_match_cut(aig, root, cut, cut_id, &self.index, scratch, stats, ctx)
    }

    fn absorb_delta(&self, cache: &mut SessionCache, delta: SessionDelta) -> u64 {
        cache.absorb(delta, &self.index)
    }

    fn inv_delay(&self) -> f32 {
        self.library.gate(self.library.inverter()).delay(0, 1)
    }

    fn inv_area(&self) -> f32 {
        self.library.gate(self.library.inverter()).area()
    }

    fn match_area(&self, m: &PreparedMatch) -> f32 {
        self.library.gate(m.gate).area()
    }

    fn leaf_delay(&self, m: &PreparedMatch, i: usize) -> f32 {
        let (_, _, pin) = m.leaves()[i];
        self.library.gate(m.gate).delay(pin as usize, 1)
    }

    fn make_inverter(&self, output: Signal, input: Signal) -> Instance {
        Instance::new(
            InstanceKind::Gate(self.library.inverter()),
            output,
            vec![input],
        )
    }

    fn make_instance(
        &self,
        _aig: &Aig,
        _root: NodeId,
        _phase: bool,
        m: &PreparedMatch,
        _cover: &Cut,
        output: Signal,
        leaf_signals: &[Signal],
        _cone: &mut ConeScratch,
    ) -> Instance {
        let gate = self.library.gate(m.gate);
        let mut inputs = vec![Signal::new(NodeId::CONST0, false); gate.num_pins()];
        for (j, &(_, _, pin)) in m.leaves().iter().enumerate() {
            inputs[pin as usize] = leaf_signals[j];
        }
        Instance::new(InstanceKind::Gate(m.gate), output, inputs)
    }

    fn is_inverter(&self, inst: &Instance) -> bool {
        inst.kind == InstanceKind::Gate(self.library.inverter())
    }

    fn instance_area(&self, inst: &Instance) -> f32 {
        match inst.kind {
            InstanceKind::Gate(g) => self.library.gate(g).area(),
            InstanceKind::Lut(_) => unreachable!("LUT instance under the ASIC target"),
        }
    }
}

/// The k-LUT FPGA target: any cut whose function has true support ≤ k
/// matches in both polarities; every LUT costs unit area and one level
/// of delay (the phase-fixing inverter is itself a 1-input NOT LUT, so
/// it costs the same). `area` therefore reads as LUT count and `delay`
/// as LUT depth.
#[derive(Clone, Copy, Debug)]
pub struct LutTarget {
    k: usize,
}

impl LutTarget {
    /// A k-input LUT target.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= k <= 6` (cut functions are 64-bit truth
    /// tables, and a 1-input LUT cannot cover an AND node).
    pub fn new(k: usize) -> LutTarget {
        assert!(
            (2..=Tt::MAX_VARS).contains(&k),
            "LUT size must be within 2..=6, got {k}"
        );
        LutTarget { k }
    }

    /// The LUT input count.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Target for LutTarget {
    fn name(&self) -> String {
        format!("lut:{}", self.k)
    }

    fn model(&self) -> TargetModel {
        TargetModel::Lut { k: self.k }
    }

    fn match_cut(
        &self,
        aig: &Aig,
        root: NodeId,
        cut: &Cut,
        cut_id: CutId,
        scratch: &mut MatchScratch,
        stats: &mut MatchStats,
        ctx: &mut CacheCtx<'_>,
    ) -> bool {
        lut_match_cut(aig, root, cut, cut_id, self.k, scratch, stats, ctx)
    }

    fn absorb_delta(&self, cache: &mut SessionCache, delta: SessionDelta) -> u64 {
        cache.absorb_functions(delta)
    }

    fn inv_delay(&self) -> f32 {
        1.0
    }

    fn inv_area(&self) -> f32 {
        1.0
    }

    fn match_area(&self, _m: &PreparedMatch) -> f32 {
        1.0
    }

    fn leaf_delay(&self, _m: &PreparedMatch, _i: usize) -> f32 {
        1.0
    }

    fn make_inverter(&self, output: Signal, input: Signal) -> Instance {
        Instance::new(InstanceKind::Lut(Tt::var(0, 1).not()), output, vec![input])
    }

    fn make_instance(
        &self,
        aig: &Aig,
        root: NodeId,
        phase: bool,
        _m: &PreparedMatch,
        cover: &Cut,
        output: Signal,
        leaf_signals: &[Signal],
        cone: &mut ConeScratch,
    ) -> Instance {
        // Recompute the cut function deterministically from the cover
        // cut and shrink it to its true support — the same computation
        // matching performed, so the support order agrees with
        // `m.leaves()` (and therefore with `leaf_signals`).
        let mut leaves = [NodeId::CONST0; Tt::MAX_VARS];
        for (i, l) in cover.leaves().enumerate() {
            leaves[i] = l;
        }
        let (tt, _vol) = cut_function_with(aig, root, &leaves[..cover.len()], cone)
            .expect("cover cut was matched, so its cone is closed");
        let mut support = [0usize; Tt::MAX_VARS];
        let (stt, num_support) = tt.shrink_to_support_into(&mut support);
        debug_assert_eq!(num_support, leaf_signals.len());
        let stt = if phase { stt.not() } else { stt };
        Instance::new(InstanceKind::Lut(stt), output, leaf_signals.to_vec())
    }

    fn is_inverter(&self, inst: &Instance) -> bool {
        matches!(inst.kind, InstanceKind::Lut(tt) if tt == Tt::var(0, 1).not())
    }

    fn instance_area(&self, _inst: &Instance) -> f32 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_names_and_cache_keys_are_distinct() {
        let lib = slap_cell::asap7_mini();
        let asic = AsicTarget::new(&lib);
        assert_eq!(asic.name(), "asic");
        let lut4 = LutTarget::new(4);
        let lut6 = LutTarget::new(6);
        assert_eq!(lut6.name(), "lut:6");
        assert_eq!(lut6.k(), 6);
        let keys = [asic.cache_key(), lut4.cache_key(), lut6.cache_key()];
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
        assert_eq!(lut6.cache_key(), LutTarget::new(6).cache_key());
    }

    #[test]
    #[should_panic(expected = "LUT size")]
    fn oversized_lut_rejected() {
        let _ = LutTarget::new(7);
    }

    #[test]
    fn lut_cost_model_is_unit() {
        let t = LutTarget::new(5);
        assert_eq!(t.inv_delay(), 1.0);
        assert_eq!(t.inv_area(), 1.0);
        let inv = t.make_inverter(
            Signal::new(NodeId::new(3), false),
            Signal::new(NodeId::new(3), true),
        );
        assert!(t.is_inverter(&inv));
        assert_eq!(t.instance_area(&inv), 1.0);
        assert_eq!(inv.kind, InstanceKind::Lut(Tt::from_bits(0b01, 1)));
    }
}
