//! Boolean matching: binding library gates to cut functions.

use std::collections::HashMap;

use slap_aig::cone::cut_function;
use slap_aig::{Aig, NodeId};
use slap_cell::{GateId, MatchIndex};
use slap_cuts::{Cut, CutSets};

/// One realizable implementation of a node phase: a gate plus, for each
/// gate pin, the AIG node and polarity feeding it.
#[derive(Clone, Debug)]
pub struct PreparedMatch {
    /// The library gate.
    pub gate: GateId,
    /// `(node, complemented, pin)` per connected leaf; `pin` indexes the
    /// gate's pins.
    pub leaves: Vec<(NodeId, bool, u8)>,
    /// The cut this match was derived from (as enumerated, pre-shrink) —
    /// recorded so training-data generation can label "cuts used to
    /// deliver the mapping".
    pub cut: Cut,
}

/// The match lists of one AND node, per output phase.
#[derive(Clone, Debug, Default)]
pub struct NodeMatches {
    /// Implementations of the node's positive function.
    pub pos: Vec<PreparedMatch>,
    /// Implementations of the complemented function.
    pub neg: Vec<PreparedMatch>,
}

impl NodeMatches {
    /// The match list for the given phase (`true` = complemented).
    pub fn phase(&self, complemented: bool) -> &[PreparedMatch] {
        if complemented {
            &self.neg
        } else {
            &self.pos
        }
    }
}

/// Aggregate statistics of the matching step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Cuts exposed to the matcher — the paper's memory-footprint metric.
    pub cuts_considered: usize,
    /// Cuts that produced at least one gate binding (either phase).
    pub cuts_matched: usize,
    /// Structural fallback cuts injected to keep nodes mappable.
    pub structural_added: usize,
    /// Total prepared matches over all nodes and phases.
    pub total_matches: usize,
    /// Match-index lookups that returned at least one gate.
    pub npn_hits: u64,
    /// Match-index lookups that returned nothing.
    pub npn_misses: u64,
}

impl MatchStats {
    /// Fraction of index lookups that found a gate (`0.0` when none ran).
    pub fn npn_hit_rate(&self) -> f64 {
        let total = self.npn_hits + self.npn_misses;
        if total == 0 {
            0.0
        } else {
            self.npn_hits as f64 / total as f64
        }
    }
}

/// Computes the per-node match lists for every AND node.
///
/// For each stored cut the local function is computed by cone simulation,
/// shrunk to its true support, and looked up (both polarities) in the
/// match index. When `add_structural` is set, the structural cut
/// `{fanin0, fanin1}` is additionally matched for nodes whose stored cut
/// list does not contain it — this guarantees every node stays mappable
/// regardless of how aggressive the filtering policy was (any 2-input
/// AND-with-polarities is in the library).
pub fn compute_matches(
    aig: &Aig,
    cuts: &CutSets,
    index: &MatchIndex,
    add_structural: bool,
) -> (Vec<NodeMatches>, MatchStats) {
    let mut result: Vec<NodeMatches> = vec![NodeMatches::default(); aig.num_nodes()];
    let mut stats = MatchStats::default();
    // Cut functions repeat massively across a circuit; memoizing on the
    // (root, leaves) pair is useless, but prepared lookups keyed on the
    // function alone are shared via the index, so only cone simulation
    // remains per-cut — cheap. No extra cache needed.
    let mut scratch_leaves: Vec<NodeId> = Vec::new();
    for n in aig.and_ids() {
        let list = cuts.cuts_of(n);
        let (f0, f1) = aig.fanins(n);
        let structural = Cut::from_leaves(&[f0.node(), f1.node()]);
        let has_structural = list.contains(&structural);
        let mut matches = NodeMatches::default();
        for cut in list {
            stats.cuts_considered += 1;
            if match_cut(
                aig,
                n,
                cut,
                index,
                &mut matches,
                &mut scratch_leaves,
                &mut stats,
            ) {
                stats.cuts_matched += 1;
            }
        }
        if add_structural && !has_structural {
            stats.structural_added += 1;
            stats.cuts_considered += 1;
            if match_cut(
                aig,
                n,
                &structural,
                index,
                &mut matches,
                &mut scratch_leaves,
                &mut stats,
            ) {
                stats.cuts_matched += 1;
            }
        }
        stats.total_matches += matches.pos.len() + matches.neg.len();
        result[n.index()] = matches;
    }
    (result, stats)
}

/// Matches a single cut, appending prepared matches for both phases.
/// Returns true if anything matched.
#[allow(clippy::too_many_arguments)]
fn match_cut(
    aig: &Aig,
    root: NodeId,
    cut: &Cut,
    index: &MatchIndex,
    out: &mut NodeMatches,
    scratch: &mut Vec<NodeId>,
    stats: &mut MatchStats,
) -> bool {
    scratch.clear();
    scratch.extend(cut.leaves());
    if cut.is_trivial_of(root) {
        return false;
    }
    let Some((tt, _vol)) = cut_function(aig, root, scratch) else {
        return false;
    };
    let (tt, support) = tt.shrink_to_support();
    if support.is_empty() {
        // Constant function — a strashed AIG never needs this.
        return false;
    }
    let mut any = false;
    for (phase, key) in [(false, tt), (true, tt.not())] {
        let entries = index.matches(key);
        if entries.is_empty() {
            stats.npn_misses += 1;
        } else {
            stats.npn_hits += 1;
        }
        for entry in entries {
            let mut leaves = Vec::with_capacity(support.len());
            for (i, &orig_var) in support.iter().enumerate() {
                let leaf = scratch[orig_var];
                leaves.push((leaf, entry.leaf_complemented(i), entry.pin(i) as u8));
            }
            let m = PreparedMatch {
                gate: entry.gate,
                leaves,
                cut: *cut,
            };
            if phase {
                out.neg.push(m);
            } else {
                out.pos.push(m);
            }
            any = true;
        }
    }
    any
}

/// Groups matches by gate for reporting (used by explainability tooling).
pub fn gate_histogram(matches: &[NodeMatches]) -> HashMap<GateId, usize> {
    let mut histo = HashMap::new();
    for nm in matches {
        for m in nm.pos.iter().chain(nm.neg.iter()) {
            *histo.entry(m.gate).or_insert(0) += 1;
        }
    }
    histo
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_cell::asap7_mini;
    use slap_cuts::{enumerate_cuts, CutConfig, DefaultPolicy};

    fn xor_and_graph() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_pi();
        let b = aig.add_pi();
        let c = aig.add_pi();
        let x = aig.xor(a, b);
        let f = aig.and(x, c);
        aig.add_po(f);
        aig
    }

    #[test]
    fn every_and_node_gets_matches() {
        let aig = xor_and_graph();
        let lib = asap7_mini();
        let index = MatchIndex::build(&lib);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (matches, stats) = compute_matches(&aig, &cuts, &index, true);
        for n in aig.and_ids() {
            let nm = &matches[n.index()];
            assert!(
                !nm.pos.is_empty() || !nm.neg.is_empty(),
                "node {n} unmatched"
            );
        }
        assert!(stats.cuts_considered >= cuts.total_cuts());
        assert!(stats.total_matches > 0);
        assert!(stats.npn_hits > 0);
        assert!(stats.npn_hit_rate() > 0.0 && stats.npn_hit_rate() <= 1.0);
        assert_eq!(MatchStats::default().npn_hit_rate(), 0.0);
    }

    #[test]
    fn xor_cut_matches_xor_cell() {
        let aig = xor_and_graph();
        let lib = asap7_mini();
        let index = MatchIndex::build(&lib);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (matches, _) = compute_matches(&aig, &cuts, &index, true);
        // The XOR root (third AND created) should have an XOR2 match.
        let xor_root = aig.and_ids().nth(2).expect("three AND nodes before final");
        let nm = &matches[xor_root.index()];
        let has_xor = nm
            .pos
            .iter()
            .chain(nm.neg.iter())
            .any(|m| lib.gate(m.gate).name().starts_with("X"));
        assert!(has_xor, "xor node should match an XOR/XNOR cell");
    }

    #[test]
    fn structural_fallback_injected_when_cuts_removed() {
        let aig = xor_and_graph();
        let lib = asap7_mini();
        let index = MatchIndex::build(&lib);
        let mut cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        cuts.retain_selected(&aig, |_, _| false, false); // drop everything, no restore
        let (matches, stats) = compute_matches(&aig, &cuts, &index, true);
        assert_eq!(stats.structural_added, aig.num_ands());
        for n in aig.and_ids() {
            let nm = &matches[n.index()];
            assert!(!nm.pos.is_empty() && !nm.neg.is_empty());
        }
    }

    #[test]
    fn match_leaves_reference_cut_leaves() {
        let aig = xor_and_graph();
        let lib = asap7_mini();
        let index = MatchIndex::build(&lib);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (matches, _) = compute_matches(&aig, &cuts, &index, true);
        for n in aig.and_ids() {
            for m in matches[n.index()]
                .pos
                .iter()
                .chain(matches[n.index()].neg.iter())
            {
                let gate = lib.gate(m.gate);
                assert!(m.leaves.len() <= gate.num_pins());
                for &(leaf, _, pin) in &m.leaves {
                    assert!(leaf.index() < n.index(), "leaf after root");
                    assert!((pin as usize) < gate.num_pins());
                }
            }
        }
    }

    #[test]
    fn gate_histogram_totals_match() {
        let aig = xor_and_graph();
        let lib = asap7_mini();
        let index = MatchIndex::build(&lib);
        let cuts = enumerate_cuts(&aig, &CutConfig::default(), &mut DefaultPolicy::default());
        let (matches, stats) = compute_matches(&aig, &cuts, &index, true);
        let histo = gate_histogram(&matches);
        let total: usize = histo.values().sum();
        assert_eq!(total, stats.total_matches);
    }
}
